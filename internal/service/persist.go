package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"questpro/internal/conc"
	"questpro/internal/core"
	"questpro/internal/obs"
	"questpro/internal/qerr"
	"questpro/internal/query"
	"questpro/internal/store"
)

// This file integrates the snapshot codec (snapshot.go) and the store
// (internal/store) into the session lifecycle: journal-then-snapshot after
// every state-changing operation, restore-on-startup with WAL replay, and
// dialogue resumption (DESIGN.md §12).
//
// The durability protocol, per mutating operation, all under s.mu and all
// BEFORE the HTTP response is written (the persist runs on the operation's
// deferred unwind, inside the mutex):
//
//  1. the operation applies its mutation in memory and calls
//     markMutatedLocked, optionally staging a WAL record describing how to
//     re-execute it;
//  2. persistPendingLocked appends the WAL record (fsynced) — from here the
//     operation survives a crash even if the snapshot write is torn;
//  3. the full session state is encoded and atomically swapped in as the
//     new snapshot; on success the WAL is truncated (the snapshot subsumes
//     it).
//
// Crash windows: before the WAL append, the operation is simply lost — and
// so is its response, so the client retries against the pre-operation
// state; after the WAL append, restore replays the record against the
// previous snapshot, and because inference and the dialogue kernel are
// deterministic the replay reconstructs the exact post-operation state. A
// *failed* persist (disk error, injected fault) is availability-first: the
// operation still succeeds, the session is left dirty (mutSeq > savedSeq),
// the failure is logged and counted, and the next operation — or
// Registry.Close — retries the flush.

// walOp names the state-changing operations the journal can replay.
const (
	walOpExamples = "examples"
	walOpInfer    = "infer"
	walOpFeedback = "feedback"
	walOpAnswer   = "answer"
)

// walRecord is one journaled operation: enough to re-execute the public
// session op against the preceding snapshot.
type walRecord struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`

	// Examples/Partial carry the submitted set for walOpExamples (IsPartial
	// selects the fragment mode).
	Examples  []snapExample `json:"examples,omitempty"`
	Partial   []snapExample `json:"partial,omitempty"`
	IsPartial bool          `json:"is_partial,omitempty"`

	Mode    string `json:"mode,omitempty"`    // walOpInfer
	Max     int    `json:"max,omitempty"`     // walOpFeedback
	Include bool   `json:"include,omitempty"` // walOpAnswer

	// appended tracks whether this record already reached the journal, so
	// a persist retried after a failed snapshot write does not append it
	// twice. In-memory only.
	appended bool
}

// markMutatedLocked records that the current operation changed durable
// session state. w, when non-nil, is the journal record that re-executes
// the operation; nil marks a snapshot-only mutation (e.g. filling the
// completion cache on an otherwise-failed inference, or delivering a
// buffered dialogue question) whose loss a client retry reconstructs.
// Callers hold s.mu.
func (s *Session) markMutatedLocked(w *walRecord) {
	s.opDirty = true
	if w != nil {
		s.opWAL = w
	}
}

// persistPendingLocked is the snapshot-after-mutation hook: every session
// operation defers it (inside the mutex, before the response is written).
// With persistence disabled it is a single nil check. Callers hold s.mu.
func (s *Session) persistPendingLocked(ctx context.Context) {
	st := s.reg.cfg.Store
	if st == nil {
		s.opDirty, s.opWAL = false, nil
		return
	}
	if s.opDirty {
		s.mutSeq++
		if s.opWAL != nil {
			s.opWAL.Seq = s.mutSeq
		}
		s.opDirty = false
	}
	if s.mutSeq == s.savedSeq {
		return
	}
	_, sp := obs.StartSpan(ctx, "snapshot.save")
	sp.SetInt("seq", s.mutSeq)
	err := func() error {
		if w := s.opWAL; w != nil && !w.appended {
			rec, err := json.Marshal(w)
			if err != nil {
				return fmt.Errorf("encoding journal record: %w", err)
			}
			if err := st.AppendWAL(s.ID, rec); err != nil {
				return err
			}
			w.appended = true
		}
		data, err := encodeSessionLocked(s, s.mutSeq)
		if err != nil {
			return err
		}
		return st.Save(s.ID, data)
	}()
	if err != nil {
		sp.SetOutcome("error")
		sp.Finish()
		s.reg.recordSnapshotError()
		s.reg.logger.Warn("session snapshot failed; session left dirty",
			"session_id", s.ID, "seq", s.mutSeq, "error", err)
		return
	}
	s.savedSeq = s.mutSeq
	s.opWAL = nil
	if err := st.ResetWAL(s.ID); err != nil {
		// Not fatal: stale journal entries carry seq <= savedSeq and replay
		// skips them.
		s.reg.logger.Warn("journal truncate failed", "session_id", s.ID, "error", err)
	}
	sp.SetOutcome("ok")
	sp.Finish()
	s.reg.recordSnapshotWrite()
}

// persistInitial writes a session's first snapshot right after Create, so
// a freshly minted session id survives an immediate crash.
func (s *Session) persistInitial() {
	if s.reg.cfg.Store == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markMutatedLocked(nil)
	s.persistPendingLocked(context.Background())
}

// flushToStore persists the session if it is dirty — Registry.Close calls
// this (before tearing the session down, so an active dialogue's position
// is captured) to guarantee a graceful shutdown loses nothing.
func (s *Session) flushToStore() {
	if s.reg.cfg.Store == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persistPendingLocked(context.Background())
}

// restoreAll loads every stored snapshot into the registry; called by
// NewRegistry before the janitor starts, so persisted idle clocks are
// honored by the first eviction scan rather than racing it.
func (r *Registry) restoreAll() {
	ids, err := r.cfg.Store.List()
	if err != nil {
		r.logger.Error("session store unreadable; starting empty", "error", err)
		return
	}
	restored := 0
	for _, id := range ids {
		if r.restoreOne(id) {
			restored++
		}
	}
	if len(ids) > 0 {
		r.logger.Info("session store restored", "snapshots", len(ids), "restored", restored)
	}
}

// restoreOne rebuilds one session from its snapshot and journal. Every
// failure mode is contained to the one session: corrupt and undecodable
// snapshots are quarantined (the store moves them aside), load errors are
// skipped, and a panic out of the decode path — the chaos suite injects
// one — is caught here, quarantines the snapshot, and lets startup
// continue with the remaining sessions.
func (r *Registry) restoreOne(id string) (restored bool) {
	st := r.cfg.Store
	_, sp := r.tracer.StartRoot(r.ctx, "session.snapshot.restore")
	sp.SetLabel("session_id", id)
	outcome := "error"
	var s *Session
	defer func() {
		if rec := recover(); rec != nil {
			outcome = "panic"
			r.recordPanic()
			r.logger.Error("session restore panicked; snapshot quarantined",
				"session_id", id, "panic", fmt.Sprint(rec))
			r.quarantine(id)
			restored = false
		}
		if n := r.tracer.FinishRoot(sp, outcome); n != nil && s != nil && restored {
			s.recordTrace(n)
		}
	}()

	data, err := st.Load(id)
	switch {
	case errors.Is(err, store.ErrNotFound):
		return false
	case errors.Is(err, store.ErrCorrupt):
		// The store already moved the file aside.
		r.recordSnapshotQuarantine()
		r.logger.Error("corrupt session snapshot quarantined", "session_id", id, "error", err)
		return false
	case err != nil:
		// Transient (or injected) I/O failure: leave the file for the next
		// restart instead of condemning it.
		r.recordSnapshotError()
		r.logger.Error("session snapshot unreadable; skipped", "session_id", id, "error", err)
		return false
	}
	snap, err := decodeSessionSnapshot(data)
	if err == nil && snap.ID != id {
		err = fmt.Errorf("snapshot names session %s", snap.ID)
	}
	if err != nil {
		r.logger.Error("undecodable session snapshot quarantined", "session_id", id, "error", err)
		r.quarantine(id)
		return false
	}
	s, err = r.rebuildSession(snap)
	if err != nil {
		r.logger.Error("unrestorable session snapshot quarantined", "session_id", id, "error", err)
		r.quarantine(id)
		return false
	}

	r.mu.Lock()
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		s.close()
		r.logger.Warn("session limit reached during restore; snapshot kept on disk", "session_id", id)
		return false
	}
	r.sessions[id] = s
	r.snapRestoresTotal++
	r.mu.Unlock()

	r.replayWAL(s, snap.Seq)
	r.logger.Info("session restored", "session_id", id, "seq", snap.Seq,
		"dialogue_active", snap.Feedback != nil)
	outcome = "ok"
	return true
}

// quarantine moves a poisoned snapshot aside and counts it.
func (r *Registry) quarantine(id string) {
	if err := r.cfg.Store.Quarantine(id); err != nil {
		r.logger.Error("quarantine failed", "session_id", id, "error", err)
		return
	}
	r.recordSnapshotQuarantine()
}

// rebuildSession turns a decoded snapshot back into a live session:
// graphs re-interned id-for-id and re-frozen, options and counters
// restored, the persisted idle clock installed verbatim (a session that
// out-idled its TTL across the restart is evicted by the first janitor
// scan), and — when a dialogue was active — the feedback position resumed.
func (r *Registry) rebuildSession(snap *sessionSnapshot) (*Session, error) {
	onto, err := snapToGraph(snap.Ontology)
	if err != nil {
		return nil, fmt.Errorf("ontology: %w", err)
	}
	onto.Freeze()
	opts := snapToOptions(snap.Options)
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("options: %w", err)
	}
	s := newSession(r, snap.ID, onto, opts)
	ok := false
	defer func() {
		if !ok {
			s.close()
		}
	}()
	s.last.Store(snap.LastUsedUnixNs)
	s.mutSeq, s.savedSeq = snap.Seq, snap.Seq
	if s.ex, err = snapToExamples(snap.Examples); err != nil {
		return nil, fmt.Errorf("examples: %w", err)
	}
	if s.pex, err = snapToPartial(snap.Partial); err != nil {
		return nil, fmt.Errorf("partial examples: %w", err)
	}
	if s.completed, err = snapToExamples(snap.Completed); err != nil {
		return nil, fmt.Errorf("completed examples: %w", err)
	}
	s.compReport = snapToCompletion(snap.Completion)
	s.counters = snapToCounters(snap.Counters)
	s.infers = snap.Infers
	if snap.ResultSPARQL != "" {
		u, perr := query.ParseSPARQL(snap.ResultSPARQL)
		if perr != nil {
			return nil, fmt.Errorf("result query: %w", perr)
		}
		s.result = u
	}
	if snap.Feedback != nil {
		if err := s.resumeDialogue(snap.Feedback); err != nil {
			// The session's data is intact; only the dialogue could not be
			// reconstructed. Keep the session, log the loss.
			r.logger.Warn("feedback dialogue not resumed", "session_id", s.ID, "error", err)
		}
	}
	ok = true
	return s, nil
}

// resumeDialogue reconstructs an in-flight feedback dialogue: the top-k
// candidate beam is re-derived by re-running the (deterministic) inference,
// the dialogue goroutine is restarted, and the snapshot's answer log is
// replayed through it — reproducing the exact question sequence, including
// re-pulling the question the client was looking at when the process died,
// so the client's next fetch is idempotent.
func (s *Session) resumeDialogue(fb *snapFeedback) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	exs := s.ex
	opts := s.opts
	if len(s.pex) > 0 {
		if s.compReport == nil || len(s.completed) == 0 {
			return fmt.Errorf("partial session with a dialogue but no completion cache")
		}
		exs = s.completed
		opts.Guard = opts.Guard.Reduce(s.compReport.GuardUsage)
	}
	if len(exs) == 0 {
		return fmt.Errorf("dialogue without an example-set")
	}
	opts.Workers = conc.Workers(opts.Workers)
	cands, _, err := core.InferTopK(s.ctx, exs, opts)
	if err != nil && (len(cands) == 0 || !errors.Is(err, qerr.ErrBudgetExhausted)) {
		return fmt.Errorf("re-deriving candidates: %w", err)
	}
	if len(cands) == 0 {
		return fmt.Errorf("candidate re-derivation produced no candidates")
	}
	s.cands = cands
	qs := make([]*query.Union, len(cands))
	for i, c := range cands {
		qs[i] = c.Query
	}
	run := newFeedbackRun(fb.MaxQuestions)
	s.startDialogueLocked(run, qs)
	for i, ans := range fb.Answers {
		select {
		case <-run.questions:
			run.asked++
		case out := <-run.outcome:
			s.settleOutcomeLocked(run, qs, out)
			return fmt.Errorf("dialogue ended during replay after %d of %d answers", i, len(fb.Answers))
		case <-s.ctx.Done():
			return qerr.Canceled(s.ctx.Err())
		}
		select {
		case run.answers <- ans:
			run.log = append(run.log, ans)
		case <-s.ctx.Done():
			return qerr.Canceled(s.ctx.Err())
		}
	}
	if fb.PendingDelivered {
		// The crashed process had already served the next question; pull it
		// again so it is re-served, not re-computed into the buffer.
		select {
		case q := <-run.questions:
			run.asked++
			run.pending = q
		case out := <-run.outcome:
			s.settleOutcomeLocked(run, qs, out)
			return fmt.Errorf("dialogue ended during replay while a question was pending")
		case <-s.ctx.Done():
			return qerr.Canceled(s.ctx.Err())
		}
	}
	return nil
}

// settleOutcomeLocked applies a dialogue outcome reached unexpectedly
// during replay: the winning candidate (if any) becomes the session's
// result, mirroring nextEventLocked's outcome arm.
func (s *Session) settleOutcomeLocked(run *feedbackRun, qs []*query.Union, out feedbackOutcome) {
	s.fb = nil
	if out.err != nil && !errors.Is(out.err, qerr.ErrMaxQuestions) {
		return
	}
	if out.idx >= 0 && out.idx < len(qs) {
		s.result = qs[out.idx]
	}
}

// replayWAL re-executes journaled operations newer than the snapshot, in
// order. Each replayed operation runs through the public session method —
// re-persisting itself on the way — so after replay the snapshot has
// caught up and the journal is truncated. A record that fails to apply
// stops the replay (state beyond it is unknowable); the session keeps the
// state reached so far.
func (r *Registry) replayWAL(s *Session, snapSeq int64) {
	recs, torn, err := r.cfg.Store.LoadWAL(s.ID)
	if torn {
		r.recordSnapshotQuarantine()
		r.logger.Warn("torn journal tail quarantined", "session_id", s.ID)
	}
	if err != nil {
		r.logger.Error("journal unreadable; skipping replay", "session_id", s.ID, "error", err)
		return
	}
	last := snapSeq
	for _, raw := range recs {
		var w walRecord
		if err := json.Unmarshal(raw, &w); err != nil {
			r.logger.Error("undecodable journal record; replay stopped", "session_id", s.ID, "error", err)
			return
		}
		if w.Seq <= last {
			continue // already subsumed by the snapshot (or a duplicate append)
		}
		last = w.Seq
		if err := s.applyWAL(w); err != nil {
			r.logger.Error("journal replay stopped", "session_id", s.ID, "seq", w.Seq, "op", w.Op, "error", err)
			return
		}
		r.logger.Info("journal record replayed", "session_id", s.ID, "seq", w.Seq, "op", w.Op)
	}
}

// applyWAL re-executes one journaled operation through the public API.
func (s *Session) applyWAL(w walRecord) error {
	ctx := s.ctx
	switch w.Op {
	case walOpExamples:
		if w.IsPartial {
			pex, err := snapToPartial(w.Partial)
			if err != nil {
				return err
			}
			return s.SetPartialExamples(ctx, pex)
		}
		exs, err := snapToExamples(w.Examples)
		if err != nil {
			return err
		}
		return s.SetExamples(ctx, exs)
	case walOpInfer:
		_, err := s.Infer(ctx, w.Mode)
		return err
	case walOpFeedback:
		_, err := s.StartFeedback(ctx, w.Max)
		return err
	case walOpAnswer:
		_, err := s.AnswerFeedback(ctx, w.Include)
		return err
	default:
		return fmt.Errorf("unknown journal op %q", w.Op)
	}
}
