package service_test

// End-to-end partial-provenance test: degrade a sampled sp2b example-set,
// submit the fragments through the real client and server, and check the
// service's completion + inference agrees byte-for-byte with running the
// core pipeline directly on the same fragments. `make race` runs this
// package under -race, so the test doubles as the concurrency audit of the
// partial input mode.

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"questpro/internal/api"
	qpclient "questpro/internal/client"
	"questpro/internal/core"
	"questpro/internal/experiments"
	"questpro/internal/ntriples"
	"questpro/internal/provenance"
	"questpro/internal/service"
	"questpro/internal/workload/sampling"
)

func TestPartialProvenanceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the sp2b workload")
	}
	w, err := experiments.Load("sp2b", 0.35)
	if err != nil {
		t.Fatal(err)
	}
	ev := w.Evaluator()
	const nExpl = 6
	var exs provenance.ExampleSet
	for _, bq := range w.Queries {
		s := sampling.New(ev, bq.Query, rand.New(rand.NewSource(11)))
		rs, err := s.Results(bg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) < nExpl {
			continue
		}
		if exs, err = s.ExampleSet(bg, nExpl); err != nil {
			t.Fatal(err)
		}
		break
	}
	if exs == nil {
		t.Fatalf("no sp2b query has %d results at this scale", nExpl)
	}
	pex, err := sampling.DegradeSet(exs, 25, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: the exact completion + union inference the server is
	// expected to perform (its defaults are core.DefaultOptions with the
	// guard disabled, same as a zero api.Options).
	opts := core.DefaultOptions()
	completed, rep, err := core.CompleteExamples(bg, w.Ontology, pex, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantU, _, err := core.InferUnion(bg, completed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := wantU.SPARQL()

	reg := service.NewRegistry(service.Config{})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)
	cl := qpclient.New(qpclient.Config{BaseURL: ts.URL, HTTPClient: ts.Client()})

	id, err := cl.CreateSession(bg, ntriples.Format(w.Ontology), nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]api.Example, len(pex))
	for i, p := range pex {
		wire[i] = api.Example{
			Triples:       ntriples.Format(p.Graph),
			Distinguished: p.DistinguishedValue(),
			Partial:       &api.PartialSpec{MissingEdges: p.MissingEdges},
		}
	}
	ack, err := cl.SetPartialExamples(bg, id, wire)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Examples != len(pex) || ack.Partial != len(pex) {
		t.Fatalf("ack = %+v, want %d fragments", ack, len(pex))
	}

	resp, err := cl.Infer(bg, id, "union", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SPARQL != want {
		t.Fatalf("server union disagrees with direct completion:\nserver: %s\ndirect: %s", resp.SPARQL, want)
	}
	if resp.Degraded {
		t.Fatal("unguarded inference reported degradation")
	}
	if resp.Completions == nil {
		t.Fatal("partial inference reported no completions")
	}
	if resp.Completions.Considered != rep.Considered || resp.Completions.Accepted != rep.Accepted {
		t.Fatalf("completion counters: server %d/%d, direct %d/%d",
			resp.Completions.Considered, resp.Completions.Accepted, rep.Considered, rep.Accepted)
	}
	if len(resp.Completions.Choices) != len(pex) {
		t.Fatalf("%d choices for %d fragments", len(resp.Completions.Choices), len(pex))
	}
	for i, ch := range resp.Completions.Choices {
		if ch.Example != i {
			t.Fatalf("choice %d reports example %d", i, ch.Example)
		}
		if got, want := ch.Triples, ntriples.Format(completed[i].Graph); got != want {
			t.Fatalf("choice %d completed explanation differs:\nserver: %s\ndirect: %s", i, got, want)
		}
		// Completed explanations must have no holes left.
		g, err := ntriples.ParseString(ch.Triples)
		if err != nil {
			t.Fatalf("choice %d triples do not parse: %v", i, err)
		}
		p2, err := provenance.NewPartialByValue(g, pex[i].DistinguishedValue(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !p2.IsComplete() {
			t.Fatalf("choice %d is still a fragment:\n%s", i, ch.Triples)
		}
	}
	if resp.Stats.CompletionsConsidered != rep.Considered {
		t.Fatalf("stats.completions_considered = %d, want %d", resp.Stats.CompletionsConsidered, rep.Considered)
	}

	comps, err := cl.Completions(bg, id)
	if err != nil {
		t.Fatal(err)
	}
	if comps == nil || comps.Considered != rep.Considered {
		t.Fatalf("completions endpoint: %+v, want considered %d", comps, rep.Considered)
	}

	// A second inference in another mode reuses the cached completion and
	// must still run over the completed set, not the (empty) full set.
	resp2, err := cl.Infer(bg, id, "topk", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp2.SPARQL, "SELECT") || len(resp2.Candidates) == 0 {
		t.Fatalf("topk over completed set: %+v", resp2)
	}
	if resp2.Completions == nil || resp2.Completions.Considered != rep.Considered {
		t.Fatalf("topk lost the completion report: %+v", resp2.Completions)
	}

	st, err := cl.Stats(bg, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Infers != 2 || st.Examples != len(pex) {
		t.Fatalf("stats = %+v", st)
	}
	// The completion ran once (cached on the second infer), so the session
	// counter equals one report's worth.
	if st.Counters.CompletionsConsidered != rep.Considered {
		t.Fatalf("session counters = %+v, want considered %d", st.Counters, rep.Considered)
	}
	if err := cl.DeleteSession(bg, id); err != nil {
		t.Fatal(err)
	}
}
