package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"questpro/internal/api"
	"questpro/internal/core"
	"questpro/internal/paperfix"
	"questpro/internal/store"
)

// get issues one request against the gate and returns the recorder.
func gateGet(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

// TestReadyGateLargeRestore drives the startup-readiness protocol over a
// populated data dir: while the registry is restoring, /readyz and every
// API route answer 503 with the uniform api.Error envelope and a
// Retry-After hint while /healthz stays 200; after the restore, /readyz
// flips to 200 and every restored session is immediately servable.
func TestReadyGateLargeRestore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Populate: a "large" data dir of 32 sessions, each with an ontology,
	// an example-set and a finished inference in its snapshot.
	const n = 32
	seed := NewRegistry(Config{Store: st})
	o := paperfix.Ontology()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := seed.Create(o, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetExamples(context.Background(), paperfix.Explanations(o)); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if _, err := s.Infer(context.Background(), "union"); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, s.ID)
	}
	seed.Close() // flushes and closes the store

	// Restart: the gate fronts the listener before NewRegistry runs.
	gate := NewReadyGate(2 * time.Second)

	if rec := gateGet(t, gate, "GET", "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz while restoring = %d, want 200 (liveness must not wait on readiness)", rec.Code)
	}
	for _, path := range []string{"/readyz", "/v1/sessions/" + ids[0] + "/stats"} {
		rec := gateGet(t, gate, "GET", path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while restoring = %d, want 503", path, rec.Code)
		}
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Fatalf("GET %s while restoring carries no Retry-After", path)
		}
		var e api.Error
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("GET %s while restoring: body is not the api.Error envelope: %v\n%s", path, err, rec.Body)
		}
		if e.Code != api.CodeUnavailable || e.RetryAfterSec < 1 {
			t.Fatalf("GET %s while restoring: envelope = %+v, want code %q with retry hint", path, e, api.CodeUnavailable)
		}
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Config{Store: st2})
	defer reg.Close()
	if got := reg.Metrics().SnapshotRestores; got != n {
		t.Fatalf("restored %d sessions, want %d", got, n)
	}
	gate.Ready(NewServer(reg))

	if rec := gateGet(t, gate, "GET", "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after restore = %d, want 200", rec.Code)
	}
	for _, id := range ids {
		if rec := gateGet(t, gate, "GET", "/v1/sessions/"+id+"/stats"); rec.Code != http.StatusOK {
			t.Fatalf("stats of restored session %s = %d, want 200", id, rec.Code)
		}
	}
}

// TestCreateSessionWithID pins the gateway-affinity create path: a
// caller-minted id is honored verbatim, a malformed one is a 400, a
// duplicate is a 400, and a full registry sheds the create with 503 +
// Retry-After instead of blaming the client with a 4xx it would never
// retry.
func TestCreateSessionWithID(t *testing.T) {
	reg := newTestRegistry(t, Config{MaxSessions: 2})
	h := NewServer(reg)
	onto := `<a> <p> <b> .`

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/sessions", io.NopCloser(strings.NewReader(body)))
		h.ServeHTTP(rec, req)
		return rec
	}

	const id = "0123456789abcdef0123456789abcdef"
	rec := post(`{"ontology":"` + onto + `","session_id":"` + id + `"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create with id = %d: %s", rec.Code, rec.Body)
	}
	var resp api.CreateSessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.SessionID != id {
		t.Fatalf("create with id returned %q, want %q (err %v)", resp.SessionID, id, err)
	}

	if rec := post(`{"ontology":"` + onto + `","session_id":"UPPERCASE-not-hex-and-wrong-len"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed id = %d, want 400", rec.Code)
	}
	if rec := post(`{"ontology":"` + onto + `","session_id":"` + id + `"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate id = %d, want 400", rec.Code)
	}

	// Fill the table (one slot left), then overflow: 503 + Retry-After.
	if rec := post(`{"ontology":"` + onto + `"}`); rec.Code != http.StatusCreated {
		t.Fatalf("second create = %d", rec.Code)
	}
	rec = post(`{"ontology":"` + onto + `"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create beyond the session limit = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("session-limit 503 carries no Retry-After")
	}
	var e api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != api.CodeOverloaded {
		t.Fatalf("session-limit envelope = %+v (err %v), want code %q", e, err, api.CodeOverloaded)
	}
}
