package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/ntriples"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
)

// NewServer wires the registry into an http.Handler. The API is JSON over
// the following routes (see DESIGN.md §service for the request/response
// shapes and README.md for a curl walkthrough):
//
//	POST   /v1/sessions                      create session (ontology + options)
//	DELETE /v1/sessions/{id}                 evict a session
//	GET    /v1/sessions/{id}/stats           per-session counters
//	GET    /v1/sessions/{id}/trace           recent operation traces (span trees)
//	POST   /v1/sessions/{id}/examples        submit the example-set
//	POST   /v1/sessions/{id}/infer           run simple/union/topk inference
//	POST   /v1/sessions/{id}/feedback        start the feedback dialogue
//	GET    /v1/sessions/{id}/feedback        re-read the pending question
//	POST   /v1/sessions/{id}/feedback/answer answer the pending question
//	GET    /healthz                          liveness
//	GET    /metrics                          Prometheus text exposition
//
// Every route runs under the withObs middleware: X-Request-Id in/out, an
// access-log record per request, and a per-endpoint latency histogram.
func NewServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, withObs(reg, endpoint, h))
	}
	handle("POST /v1/sessions", "create", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(reg, w, r)
	})
	handle("DELETE /v1/sessions/{id}", "delete", func(w http.ResponseWriter, r *http.Request) {
		if !reg.Delete(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown session"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
	})
	handle("GET /v1/sessions/{id}/stats", "stats", withSession(reg, handleStats))
	handle("GET /v1/sessions/{id}/trace", "trace", withSession(reg, handleTrace))
	handle("POST /v1/sessions/{id}/examples", "examples", withSession(reg, handleExamples))
	handle("POST /v1/sessions/{id}/infer", "infer", withSession(reg, handleInfer))
	handle("POST /v1/sessions/{id}/feedback", "feedback", withSession(reg, handleFeedback))
	handle("GET /v1/sessions/{id}/feedback", "feedback_pending", withSession(reg, handlePendingFeedback))
	handle("POST /v1/sessions/{id}/feedback/answer", "feedback_answer", withSession(reg, handleAnswer))
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, reg)
	})
	return mux
}

// withSession resolves the {id} path segment before invoking h.
func withSession(reg *Registry, h func(*Session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown session"))
			return
		}
		h(s, w, r)
	}
}

// createRequest creates a session. Ontology is the graph in the repo's
// N-Triples dialect (see internal/ntriples). Zero-valued option fields
// keep the paper's defaults; Workers stays a per-session preference that
// is still clamped by the registry's global budget.
type createRequest struct {
	Ontology string `json:"ontology"`
	Options  struct {
		NumIter        int     `json:"num_iter"`
		K              int     `json:"k"`
		Workers        int     `json:"workers"`
		FirstPairSweep int     `json:"first_pair_sweep"`
		CostW1         float64 `json:"cost_w1"`
		CostW2         float64 `json:"cost_w2"`

		// Resource guard (core.Options.Guard): per-inference budgets for
		// merge/matcher steps, emitted results and provenance bytes. Zero
		// disables the corresponding budget; an exhausted budget degrades
		// the run (200 + "degraded":true) instead of failing it.
		MaxSteps   int64 `json:"max_steps"`
		MaxResults int64 `json:"max_results"`
		MaxBytes   int64 `json:"max_bytes"`
	} `json:"options"`
}

func handleCreate(reg *Registry, w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !readJSON(w, r, &req) {
		return
	}
	onto, err := ntriples.ParseString(req.Ontology)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := core.DefaultOptions()
	if v := req.Options.NumIter; v != 0 {
		opts.NumIter = v
	}
	if v := req.Options.K; v != 0 {
		opts.K = v
	}
	if v := req.Options.Workers; v != 0 {
		opts.Workers = v
	}
	if v := req.Options.FirstPairSweep; v != 0 {
		opts.FirstPairSweep = v
	}
	if v := req.Options.CostW1; v != 0 {
		opts.CostW1 = v
	}
	if v := req.Options.CostW2; v != 0 {
		opts.CostW2 = v
	}
	opts.Guard = eval.Guard{
		MaxSteps:   req.Options.MaxSteps,
		MaxResults: req.Options.MaxResults,
		MaxBytes:   req.Options.MaxBytes,
	}
	s, err := reg.Create(onto, opts)
	if err != nil {
		if errors.Is(err, qerr.ErrInternal) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"session_id": s.ID})
}

// examplesRequest submits the example-set: each example is a provenance
// subgraph (same N-Triples dialect) plus the distinguished node's value.
type examplesRequest struct {
	Examples []struct {
		Triples       string `json:"triples"`
		Distinguished string `json:"distinguished"`
	} `json:"examples"`
}

func handleExamples(s *Session, w http.ResponseWriter, r *http.Request) {
	var req examplesRequest
	if !readJSON(w, r, &req) {
		return
	}
	exs := make(provenance.ExampleSet, 0, len(req.Examples))
	for i, e := range req.Examples {
		g, err := ntriples.ParseString(e.Triples)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("example %d: %w", i, err))
			return
		}
		ex, err := provenance.NewByValue(g, e.Distinguished)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("example %d: %w", i, err))
			return
		}
		exs = append(exs, ex)
	}
	if err := s.SetExamples(r.Context(), exs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"examples": len(exs)})
}

// inferRequest runs inference. TimeoutMS (optional) bounds the run: a
// request exceeding it aborts mid-search with a cancellation error rather
// than holding workers.
type inferRequest struct {
	Mode      string `json:"mode"`
	TimeoutMS int    `json:"timeout_ms"`
}

type candidateJSON struct {
	SPARQL string  `json:"sparql"`
	Cost   float64 `json:"cost"`
}

type inferResponse struct {
	Mode   string `json:"mode"`
	SPARQL string `json:"sparql"`
	// Degraded: the run exhausted its resource guard; SPARQL is the best
	// consistent partial state, not the fixpoint.
	Degraded   bool            `json:"degraded,omitempty"`
	Candidates []candidateJSON `json:"candidates,omitempty"`
	Stats      statsJSON       `json:"stats"`
}

type statsJSON struct {
	Algorithm1Calls int   `json:"algorithm1_calls"`
	Rounds          int   `json:"rounds"`
	CacheHits       int   `json:"cache_hits"`
	CacheMisses     int   `json:"cache_misses"`
	GainEvals       int64 `json:"gain_evals"`
	Restarts        int   `json:"restarts"`
	WallMS          int64 `json:"wall_ms"`
	GuardSteps      int64 `json:"guard_steps,omitempty"`
}

func handleInfer(s *Session, w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Infer(ctx, req.Mode)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	if res.Degraded {
		markRequest(r.Context(), func(ri *reqInfo) { ri.degraded = true })
	}
	c := res.Stats.Counters()
	resp := inferResponse{
		Mode:     res.Mode,
		SPARQL:   res.Query.SPARQL(),
		Degraded: res.Degraded,
		Stats: statsJSON{
			Algorithm1Calls: c.Algorithm1Calls,
			Rounds:          c.Rounds,
			CacheHits:       c.CacheHits,
			CacheMisses:     c.CacheMisses,
			GainEvals:       c.GainEvals,
			Restarts:        c.Restarts,
			WallMS:          res.Stats.TotalWall().Milliseconds(),
			GuardSteps:      res.Stats.GuardUsage.Steps,
		},
	}
	for _, cand := range res.Candidates {
		resp.Candidates = append(resp.Candidates, candidateJSON{
			SPARQL: cand.Query.SPARQL(),
			Cost:   cand.Cost,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// feedbackRequest starts the dialogue; MaxQuestions 0 means unbounded.
type feedbackRequest struct {
	MaxQuestions int `json:"max_questions"`
}

type answerRequest struct {
	Include bool `json:"include"`
}

type feedbackResponse struct {
	Done bool `json:"done"`
	// Pending question, when !Done.
	Result     string `json:"result,omitempty"`
	Provenance string `json:"provenance,omitempty"`
	// Decision, when Done.
	Chosen    int    `json:"chosen,omitempty"`
	SPARQL    string `json:"sparql,omitempty"`
	Questions int    `json:"questions"`
	Truncated bool   `json:"truncated,omitempty"`
	// Redelivered: the answer was not consumed (no question was awaiting
	// one); answer the event returned here instead.
	Redelivered bool `json:"redelivered,omitempty"`
}

func handleFeedback(s *Session, w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if !readJSON(w, r, &req) {
		return
	}
	ev, err := s.StartFeedback(r.Context(), req.MaxQuestions)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

// handlePendingFeedback re-reads the dialogue's current event without
// answering — the recovery path for a client whose previous feedback
// request was canceled before the question reached it.
func handlePendingFeedback(s *Session, w http.ResponseWriter, r *http.Request) {
	ev, err := s.PendingFeedback(r.Context())
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

func handleAnswer(s *Session, w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if !readJSON(w, r, &req) {
		return
	}
	ev, err := s.AnswerFeedback(r.Context(), req.Include)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

func feedbackEventJSON(ev FeedbackEvent) feedbackResponse {
	if !ev.Done {
		return feedbackResponse{
			Result:      ev.Question.Value,
			Provenance:  ntriples.Format(ev.Question.Provenance),
			Questions:   ev.Questions,
			Redelivered: ev.Redelivered,
		}
	}
	return feedbackResponse{
		Done:        true,
		Chosen:      ev.Chosen,
		SPARQL:      ev.Query.SPARQL(),
		Questions:   ev.Questions,
		Truncated:   ev.Truncated,
		Redelivered: ev.Redelivered,
	}
}

// handleTrace serves the session's retained operation traces (the root
// span trees of its most recent operations, oldest first). Traces are
// retained only while the process-wide span gate is on (the questprod
// default; -no-trace disables it).
func handleTrace(s *Session, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.Traces()})
}

func handleStats(s *Session, w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	resp := map[string]any{
		"infers":    st.Infers,
		"examples":  st.Examples,
		"has_query": st.HasQuery,
		"counters": map[string]int64{
			"algorithm1_calls": int64(st.Counters.Algorithm1Calls),
			"rounds":           int64(st.Counters.Rounds),
			"cache_hits":       int64(st.Counters.CacheHits),
			"cache_misses":     int64(st.Counters.CacheMisses),
			"gain_evals":       st.Counters.GainEvals,
			"restarts":         int64(st.Counters.Restarts),
		},
	}
	if st.LastError != "" {
		resp["last_error"] = st.LastError
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeMetrics renders the registry's metrics in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies): every
// series gets # HELP and # TYPE lines — counters for the monotonically
// increasing *_total series, gauges for point-in-time readings — followed
// by the two latency-histogram families. All scalar values come from one
// Registry.Metrics() call, which snapshots the counters under a single
// lock acquisition, so a scrape never mixes readings from two points in
// time (the histograms are independently atomic; see DESIGN.md §9).
func writeMetrics(w io.Writer, reg *Registry) {
	m := reg.Metrics()
	series := []struct {
		name string
		typ  string
		help string
		val  int64
	}{
		{"questprod_sessions_active", "gauge", "Live sessions.", int64(m.SessionsActive)},
		{"questprod_sessions_created_total", "counter", "Sessions ever created.", int64(m.SessionsCreated)},
		{"questprod_sessions_evicted_total", "counter", "Sessions evicted by the TTL janitor.", int64(m.SessionsEvicted)},
		{"questprod_infer_total", "counter", "Inference runs completed.", int64(m.InferTotal)},
		{"questprod_worker_budget", "gauge", "Size of the shared inference worker budget.", int64(m.WorkerBudget)},
		{"questprod_peak_parallelism", "gauge", "Largest in-flight MergePair count ever observed.", int64(m.PeakParallelism)},
		{"questprod_algorithm1_calls_total", "counter", "Algorithm 1 (MergePair) invocations, cached and fresh.", int64(m.Counters.Algorithm1Calls)},
		{"questprod_rounds_total", "counter", "Inference rounds executed.", int64(m.Counters.Rounds)},
		{"questprod_cache_hits_total", "counter", "Merge-cache hits.", int64(m.Counters.CacheHits)},
		{"questprod_cache_misses_total", "counter", "Merge-cache misses (fresh pair computations).", int64(m.Counters.CacheMisses)},
		{"questprod_gain_evals_total", "counter", "Gain-function evaluations in the merge kernel.", m.Counters.GainEvals},
		{"questprod_restarts_total", "counter", "Merge-kernel restarts.", int64(m.Counters.Restarts)},
		{"questprod_panics_recovered_total", "counter", "Panics converted to errors by a recovery boundary.", int64(m.PanicsRecovered)},
		{"questprod_load_shed_total", "counter", "Inference requests shed for load (429).", int64(m.LoadShed)},
		{"questprod_degraded_total", "counter", "Inferences that returned a degraded (guard-exhausted) result.", int64(m.DegradedInfer)},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.val)
	}
	reg.httpDur.WriteProm(w)
	reg.spanDur.WriteProm(w)
}

// writeInferError maps inference failures onto HTTP statuses — the error
// taxonomy of DESIGN.md §8: impossible merges are the client's data (422),
// an exhausted guard with nothing to degrade to is too (422), cancellations
// are timeouts (504), load shedding is 429 with a Retry-After hint,
// recovered panics are 500, anything else is a bad request. The shed/panic
// classifications are also raised on the request's observability record so
// the access log carries them.
func writeInferError(w http.ResponseWriter, r *http.Request, err error, retryAfter time.Duration) {
	switch {
	case errors.Is(err, qerr.ErrOverloaded):
		markRequest(r.Context(), func(ri *reqInfo) { ri.shed = true })
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, qerr.ErrInternal):
		markRequest(r.Context(), func(ri *reqInfo) { ri.panicked = true })
		writeError(w, http.StatusInternalServerError, err)
	case errors.Is(err, qerr.ErrNoConsistentQuery), errors.Is(err, qerr.ErrBudgetExhausted):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, qerr.ErrCanceled):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// maxRequestBody caps request bodies; a package variable so tests can
// exercise the 413 path without building a 64MB payload.
var maxRequestBody int64 = 64 << 20

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	// Read one byte past the cap: a LimitReader alone would silently
	// truncate an oversized body and hand the parser a prefix — a confusing
	// 400 at best, a silently misread request at worst. Detect and refuse.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if int64(len(body)) > maxRequestBody {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("service: request body exceeds %d bytes", maxRequestBody))
		return false
	}
	if len(body) == 0 {
		return true // all request bodies are optional; zero values apply
	}
	if err := json.Unmarshal(body, into); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
