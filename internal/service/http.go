package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"questpro/internal/api"
	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/ntriples"
	"questpro/internal/obs"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
)

// NewServer wires the registry into an http.Handler. The API is JSON over
// the following routes, with every request and response body declared in
// internal/api (the versioned wire contract; see DESIGN.md §service and
// README.md for a curl walkthrough):
//
//	POST   /v1/sessions                      create session (ontology + options)
//	DELETE /v1/sessions/{id}                 evict a session
//	GET    /v1/sessions/{id}/stats           per-session counters
//	GET    /v1/sessions/{id}/trace           recent operation traces (span trees)
//	GET    /v1/sessions/{id}/completions     last inference's completion report
//	POST   /v1/sessions/{id}/examples        submit the example-set (full or partial)
//	POST   /v1/sessions/{id}/infer           run simple/union/topk inference
//	POST   /v1/sessions/{id}/feedback        start the feedback dialogue
//	GET    /v1/sessions/{id}/feedback        re-read the pending question
//	POST   /v1/sessions/{id}/feedback/answer answer the pending question
//	GET    /healthz                          liveness
//	GET    /metrics                          Prometheus text exposition
//
// Every route runs under the withObs middleware: X-Request-Id in/out, an
// access-log record per request, and a per-endpoint latency histogram.
func NewServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, withObs(reg, endpoint, h))
	}
	handle("POST /"+api.Version+"/sessions", "create", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(reg, w, r)
	})
	handle("DELETE /"+api.Version+"/sessions/{id}", "delete", func(w http.ResponseWriter, r *http.Request) {
		if !reg.Delete(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("service: unknown session"))
			return
		}
		writeJSON(w, http.StatusOK, api.DeleteSessionResponse{Deleted: true})
	})
	handle("GET /"+api.Version+"/sessions/{id}/stats", "stats", withSession(reg, handleStats))
	handle("GET /"+api.Version+"/sessions/{id}/trace", "trace", withSession(reg, handleTrace))
	handle("GET /"+api.Version+"/sessions/{id}/completions", "completions", withSession(reg, handleCompletions))
	handle("POST /"+api.Version+"/sessions/{id}/examples", "examples", withSession(reg, handleExamples))
	handle("POST /"+api.Version+"/sessions/{id}/infer", "infer", withSession(reg, handleInfer))
	handle("POST /"+api.Version+"/sessions/{id}/feedback", "feedback", withSession(reg, handleFeedback))
	handle("GET /"+api.Version+"/sessions/{id}/feedback", "feedback_pending", withSession(reg, handlePendingFeedback))
	handle("POST /"+api.Version+"/sessions/{id}/feedback/answer", "feedback_answer", withSession(reg, handleAnswer))
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Readiness: once this mux is serving, the registry has finished its
	// startup restore, so readiness is unconditionally true here. During
	// restore the ReadyGate in front answers 503 instead (see ready.go);
	// the gateway routes on this signal, /healthz stays pure liveness.
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, reg)
	})
	return mux
}

// withSession resolves the {id} path segment before invoking h.
func withSession(reg *Registry, h func(*Session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("service: unknown session"))
			return
		}
		h(s, w, r)
	}
}

func handleCreate(reg *Registry, w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	onto, err := ntriples.ParseString(req.Ontology)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	// Zero-valued option fields keep the paper's defaults; Workers stays a
	// per-session preference that is still clamped by the registry's global
	// budget.
	opts := core.DefaultOptions()
	if v := req.Options.NumIter; v != 0 {
		opts.NumIter = v
	}
	if v := req.Options.K; v != 0 {
		opts.K = v
	}
	if v := req.Options.Workers; v != 0 {
		opts.Workers = v
	}
	if v := req.Options.FirstPairSweep; v != 0 {
		opts.FirstPairSweep = v
	}
	if v := req.Options.CostW1; v != 0 {
		opts.CostW1 = v
	}
	if v := req.Options.CostW2; v != 0 {
		opts.CostW2 = v
	}
	if v := req.Options.MaxCompletions; v != 0 {
		opts.MaxCompletions = v
	}
	opts.Guard = eval.Guard{
		MaxSteps:   req.Options.MaxSteps,
		MaxResults: req.Options.MaxResults,
		MaxBytes:   req.Options.MaxBytes,
	}
	s, err := reg.CreateWithID(req.SessionID, onto, opts)
	if err != nil {
		switch {
		case errors.Is(err, qerr.ErrInternal):
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
		case errors.Is(err, qerr.ErrOverloaded):
			// Capacity, not client data: a full session table answers 503 +
			// Retry-After so retry-aware clients (and the gateway's create
			// re-mint) treat it as transient.
			markRequest(r.Context(), func(ri *reqInfo) { ri.shed = true })
			secs := retryAfterSeconds(reg.retryAfter())
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeErrorEnvelope(w, http.StatusServiceUnavailable, api.Error{
				Code:          api.CodeOverloaded,
				Message:       err.Error(),
				RetryAfterSec: secs,
			})
		default:
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, api.CreateSessionResponse{SessionID: s.ID})
}

// retryAfterSeconds rounds a Retry-After hint to whole seconds, never
// below 1 (a zero header would tell clients to hammer).
func retryAfterSeconds(d time.Duration) int {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func handleExamples(s *Session, w http.ResponseWriter, r *http.Request) {
	var req api.ExamplesRequest
	if !readJSON(w, r, &req) {
		return
	}
	partial := 0
	for _, e := range req.Examples {
		if e.Partial != nil {
			partial++
		}
	}
	if partial == 0 {
		// Full provenance: the base protocol, byte-for-byte. Keeping this
		// path off the partial pipeline is what keeps full-provenance runs
		// identical to the pre-partial implementation.
		exs := make(provenance.ExampleSet, 0, len(req.Examples))
		for i, e := range req.Examples {
			g, err := ntriples.ParseString(e.Triples)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("example %d: %w", i, err))
				return
			}
			ex, err := provenance.NewByValue(g, e.Distinguished)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("example %d: %w", i, err))
				return
			}
			exs = append(exs, ex)
		}
		if err := s.SetExamples(r.Context(), exs); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, api.ExamplesResponse{Examples: len(exs)})
		return
	}
	// Partial input mode: any example marked partial turns the whole set
	// into fragments (unmarked ones become trivially complete fragments and
	// pass through completion untouched).
	pex := make(provenance.PartialExampleSet, 0, len(req.Examples))
	for i, e := range req.Examples {
		g, err := ntriples.ParseString(e.Triples)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("example %d: %w", i, err))
			return
		}
		missing := 0
		if e.Partial != nil {
			missing = e.Partial.MissingEdges
		}
		p, err := provenance.NewPartialByValue(g, e.Distinguished, missing)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("example %d: %w", i, err))
			return
		}
		pex = append(pex, p)
	}
	if err := s.SetPartialExamples(r.Context(), pex); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ExamplesResponse{Examples: len(pex), Partial: partial})
}

func handleInfer(s *Session, w http.ResponseWriter, r *http.Request) {
	var req api.InferRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Infer(ctx, req.Mode)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	if res.Degraded {
		markRequest(r.Context(), func(ri *reqInfo) { ri.degraded = true })
	}
	c := res.Stats.Counters()
	resp := api.InferResponse{
		Mode:        res.Mode,
		SPARQL:      res.Query.SPARQL(),
		Degraded:    res.Degraded,
		Completions: completionsJSON(res.Completions, res.Completed),
		Stats: api.Stats{
			Algorithm1Calls:       c.Algorithm1Calls,
			Rounds:                c.Rounds,
			CacheHits:             c.CacheHits,
			CacheMisses:           c.CacheMisses,
			GainEvals:             c.GainEvals,
			Restarts:              c.Restarts,
			WallMS:                res.Stats.TotalWall().Milliseconds(),
			GuardSteps:            res.Stats.GuardUsage.Steps,
			CompletionsConsidered: c.CompletionsConsidered,
			CompletionsAccepted:   c.CompletionsAccepted,
		},
	}
	for _, cand := range res.Candidates {
		resp.Candidates = append(resp.Candidates, api.Candidate{
			SPARQL: cand.Query.SPARQL(),
			Cost:   cand.Cost,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCompletions serves the completion report of the most recent
// inference over a partial example-set ("completions": null when no
// inference has run yet or the example-set had no fragments).
func handleCompletions(s *Session, w http.ResponseWriter, _ *http.Request) {
	rep, completed, ok := s.Completions()
	if !ok {
		writeJSON(w, http.StatusOK, api.CompletionsResponse{})
		return
	}
	writeJSON(w, http.StatusOK, api.CompletionsResponse{Completions: completionsJSON(&rep, completed)})
}

// completionsJSON renders a completion report (nil-safe) with each choice's
// completed explanation serialized back to the N-Triples dialect.
func completionsJSON(rep *core.CompletionReport, completed provenance.ExampleSet) *api.Completions {
	if rep == nil {
		return nil
	}
	out := &api.Completions{
		Considered: rep.Considered,
		Accepted:   rep.Accepted,
		Degraded:   rep.Degraded,
	}
	for _, ch := range rep.Choices {
		jc := api.CompletionChoice{
			Example:           ch.Example,
			Identity:          ch.Identity,
			AddedTriples:      ch.AddedTriples,
			ResolvedWildcards: ch.ResolvedWildcards,
			Considered:        ch.Considered,
		}
		if ch.Example >= 0 && ch.Example < len(completed) {
			jc.Triples = ntriples.Format(completed[ch.Example].Graph)
		}
		out.Choices = append(out.Choices, jc)
	}
	return out
}

func handleFeedback(s *Session, w http.ResponseWriter, r *http.Request) {
	var req api.FeedbackRequest
	if !readJSON(w, r, &req) {
		return
	}
	ev, err := s.StartFeedback(r.Context(), req.MaxQuestions)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

// handlePendingFeedback re-reads the dialogue's current event without
// answering — the recovery path for a client whose previous feedback
// request was canceled before the question reached it.
func handlePendingFeedback(s *Session, w http.ResponseWriter, r *http.Request) {
	ev, err := s.PendingFeedback(r.Context())
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

func handleAnswer(s *Session, w http.ResponseWriter, r *http.Request) {
	var req api.AnswerRequest
	if !readJSON(w, r, &req) {
		return
	}
	ev, err := s.AnswerFeedback(r.Context(), req.Include)
	if err != nil {
		writeInferError(w, r, err, s.reg.retryAfter())
		return
	}
	writeJSON(w, http.StatusOK, feedbackEventJSON(ev))
}

func feedbackEventJSON(ev FeedbackEvent) api.FeedbackResponse {
	if !ev.Done {
		return api.FeedbackResponse{
			Result:      ev.Question.Value,
			Provenance:  ntriples.Format(ev.Question.Provenance),
			Questions:   ev.Questions,
			Redelivered: ev.Redelivered,
		}
	}
	return api.FeedbackResponse{
		Done:        true,
		Chosen:      ev.Chosen,
		SPARQL:      ev.Query.SPARQL(),
		Questions:   ev.Questions,
		Truncated:   ev.Truncated,
		Redelivered: ev.Redelivered,
	}
}

// handleTrace serves the session's retained operation traces (the root
// span trees of its most recent operations, oldest first). Traces are
// retained only while the process-wide span gate is on (the questprod
// default; -no-trace disables it).
func handleTrace(s *Session, w http.ResponseWriter, _ *http.Request) {
	nodes := s.Traces()
	resp := api.TraceResponse{Traces: make([]*api.TraceNode, 0, len(nodes))}
	for _, n := range nodes {
		resp.Traces = append(resp.Traces, traceNodeJSON(n))
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceNodeJSON converts an obs span tree into its wire mirror, so the
// trace endpoint serves an internal/api shape like every other route.
func traceNodeJSON(n *obs.Node) *api.TraceNode {
	if n == nil {
		return nil
	}
	out := &api.TraceNode{
		Kind:         n.Kind,
		SpanID:       n.SpanID,
		ParentSpanID: n.ParentSpanID,
		StartUnixNs:  n.StartUnixNs,
		DurationNs:   n.DurationNs,
		Outcome:      n.Outcome,
		Counters:     n.Counters,
		Labels:       n.Labels,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, traceNodeJSON(c))
	}
	return out
}

func handleStats(s *Session, w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, api.SessionStatsResponse{
		Infers:   st.Infers,
		Examples: st.Examples,
		HasQuery: st.HasQuery,
		Counters: api.Counters{
			Algorithm1Calls:       int64(st.Counters.Algorithm1Calls),
			Rounds:                int64(st.Counters.Rounds),
			CacheHits:             int64(st.Counters.CacheHits),
			CacheMisses:           int64(st.Counters.CacheMisses),
			GainEvals:             st.Counters.GainEvals,
			Restarts:              int64(st.Counters.Restarts),
			CompletionsConsidered: st.Counters.CompletionsConsidered,
			CompletionsAccepted:   st.Counters.CompletionsAccepted,
		},
		LastError: st.LastError,
	})
}

// writeMetrics renders the registry's metrics in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies): every
// series gets # HELP and # TYPE lines — counters for the monotonically
// increasing *_total series, gauges for point-in-time readings — followed
// by the two latency-histogram families. All scalar values come from one
// Registry.Metrics() call, which snapshots the counters under a single
// lock acquisition, so a scrape never mixes readings from two points in
// time (the histograms are independently atomic; see DESIGN.md §9).
func writeMetrics(w io.Writer, reg *Registry) {
	m := reg.Metrics()
	series := []struct {
		name string
		typ  string
		help string
		val  int64
	}{
		{"questprod_sessions_active", "gauge", "Live sessions.", int64(m.SessionsActive)},
		{"questprod_sessions_created_total", "counter", "Sessions ever created.", int64(m.SessionsCreated)},
		{"questprod_sessions_evicted_total", "counter", "Sessions evicted by the TTL janitor.", int64(m.SessionsEvicted)},
		{"questprod_infer_total", "counter", "Inference runs completed.", int64(m.InferTotal)},
		{"questprod_worker_budget", "gauge", "Size of the shared inference worker budget.", int64(m.WorkerBudget)},
		{"questprod_peak_parallelism", "gauge", "Largest in-flight MergePair count ever observed.", int64(m.PeakParallelism)},
		{"questprod_algorithm1_calls_total", "counter", "Algorithm 1 (MergePair) invocations, cached and fresh.", int64(m.Counters.Algorithm1Calls)},
		{"questprod_rounds_total", "counter", "Inference rounds executed.", int64(m.Counters.Rounds)},
		{"questprod_cache_hits_total", "counter", "Merge-cache hits.", int64(m.Counters.CacheHits)},
		{"questprod_cache_misses_total", "counter", "Merge-cache misses (fresh pair computations).", int64(m.Counters.CacheMisses)},
		{"questprod_gain_evals_total", "counter", "Gain-function evaluations in the merge kernel.", m.Counters.GainEvals},
		{"questprod_restarts_total", "counter", "Merge-kernel restarts.", int64(m.Counters.Restarts)},
		{"questprod_completions_considered_total", "counter", "Candidate completions enumerated for partial examples.", m.Counters.CompletionsConsidered},
		{"questprod_completions_accepted_total", "counter", "Non-identity completions committed for partial examples.", m.Counters.CompletionsAccepted},
		{"questprod_panics_recovered_total", "counter", "Panics converted to errors by a recovery boundary.", int64(m.PanicsRecovered)},
		{"questprod_load_shed_total", "counter", "Inference requests shed for load (429).", int64(m.LoadShed)},
		{"questprod_degraded_total", "counter", "Inferences that returned a degraded (guard-exhausted) result.", int64(m.DegradedInfer)},
		{"questprod_snapshot_writes_total", "counter", "Session snapshots durably committed to the store.", int64(m.SnapshotWrites)},
		{"questprod_snapshot_restores_total", "counter", "Sessions restored from the store at startup.", int64(m.SnapshotRestores)},
		{"questprod_snapshot_quarantined_total", "counter", "Corrupt or torn snapshot/journal files moved to quarantine.", int64(m.SnapshotQuarantined)},
		{"questprod_snapshot_errors_total", "counter", "Failed snapshot persistence operations (session left dirty).", int64(m.SnapshotErrors)},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.val)
	}
	reg.httpDur.WriteProm(w)
	reg.spanDur.WriteProm(w)
}

// writeInferError maps inference failures onto HTTP statuses — the error
// taxonomy of DESIGN.md §8: impossible merges are the client's data (422),
// an exhausted guard with nothing to degrade to is too (422), cancellations
// are timeouts (504), load shedding is 429 with a Retry-After hint,
// recovered panics are 500, anything else is a bad request. The shed/panic
// classifications are also raised on the request's observability record so
// the access log carries them.
func writeInferError(w http.ResponseWriter, r *http.Request, err error, retryAfter time.Duration) {
	switch {
	case errors.Is(err, qerr.ErrOverloaded):
		markRequest(r.Context(), func(ri *reqInfo) { ri.shed = true })
		secs := retryAfterSeconds(retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErrorEnvelope(w, http.StatusTooManyRequests, api.Error{
			Code:          api.CodeOverloaded,
			Message:       err.Error(),
			RetryAfterSec: secs,
		})
	case errors.Is(err, qerr.ErrInternal):
		markRequest(r.Context(), func(ri *reqInfo) { ri.panicked = true })
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
	case errors.Is(err, qerr.ErrNoConsistentQuery):
		writeError(w, http.StatusUnprocessableEntity, api.CodeNoConsistentQuery, err)
	case errors.Is(err, qerr.ErrBudgetExhausted):
		writeError(w, http.StatusUnprocessableEntity, api.CodeBudgetExhausted, err)
	case errors.Is(err, qerr.ErrCanceled):
		writeError(w, http.StatusGatewayTimeout, api.CodeCanceled, err)
	default:
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
	}
}

// maxRequestBody caps request bodies; a package variable so tests can
// exercise the 413 path without building a 64MB payload.
var maxRequestBody int64 = 64 << 20

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	// Read one byte past the cap: a LimitReader alone would silently
	// truncate an oversized body and hand the parser a prefix — a confusing
	// 400 at best, a silently misread request at worst. Detect and refuse.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return false
	}
	if int64(len(body)) > maxRequestBody {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
			fmt.Errorf("service: request body exceeds %d bytes", maxRequestBody))
		return false
	}
	if len(body) == 0 {
		return true // all request bodies are optional; zero values apply
	}
	if err := json.Unmarshal(body, into); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the uniform api.Error envelope — every non-2xx response
// decodes into the same three-field shape regardless of which layer failed.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeErrorEnvelope(w, status, api.Error{Code: code, Message: err.Error()})
}

func writeErrorEnvelope(w http.ResponseWriter, status int, e api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&e)
}
