// Package service hosts concurrent inference sessions behind a small
// HTTP/JSON API (served by cmd/questprod). A session owns one ontology,
// one example-set and the state of at most one feedback dialogue; the
// registry owns the sessions, evicts the idle ones after a TTL, and
// bounds the total number of inference workers across all sessions with
// one shared conc.Budget, so a burst of concurrent requests degrades to
// queueing instead of oversubscribing the machine.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"questpro/internal/conc"
	"questpro/internal/core"
	"questpro/internal/graph"
)

// Config sizes a registry. The zero value selects every default.
type Config struct {
	// TotalWorkers bounds the inference workers in flight across all
	// sessions; it resolves through conc.Workers (<= 0 means GOMAXPROCS).
	TotalWorkers int

	// SessionTTL is how long an idle session survives before the janitor
	// evicts it. <= 0 selects DefaultSessionTTL.
	SessionTTL time.Duration

	// MaxSessions caps live sessions; Create fails beyond it. <= 0 selects
	// DefaultMaxSessions.
	MaxSessions int

	// JanitorInterval is how often the janitor scans for expired sessions.
	// <= 0 selects SessionTTL / 4 (clamped to at least a second).
	JanitorInterval time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultSessionTTL  = 30 * time.Minute
	DefaultMaxSessions = 1024
)

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.JanitorInterval <= 0 {
		c.JanitorInterval = c.SessionTTL / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
	}
	return c
}

// Registry owns the live sessions. Construct with NewRegistry and release
// with Close; the zero value is not usable.
type Registry struct {
	cfg    Config
	budget *conc.Budget

	// ctx is the registry-scoped root context: every session context is a
	// child, so Close cancels all in-flight inference and feedback work.
	ctx    context.Context
	cancel context.CancelFunc

	janitorDone chan struct{}

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	// Aggregate counters over every inference ever run, including in
	// sessions since evicted. Guarded by mu.
	totals       core.CountersSnapshot
	peakParallel int
	inferTotal   int
	createdTotal int
	evictedTotal int
}

// NewRegistry starts a registry (and its eviction janitor) sized by cfg.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:         cfg,
		budget:      conc.NewBudget(cfg.TotalWorkers),
		ctx:         ctx,
		cancel:      cancel,
		janitorDone: make(chan struct{}),
		sessions:    make(map[string]*Session),
	}
	go r.janitor()
	return r
}

// janitor periodically evicts sessions idle past the TTL.
func (r *Registry) janitor() {
	defer close(r.janitorDone)
	t := time.NewTicker(r.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.evictExpired(time.Now())
		}
	}
}

// evictExpired removes every session idle since before now-TTL. A session
// with an operation in flight is never expired, even when the operation —
// a long inference, or a request queued on the exhausted worker budget —
// outlives the TTL: idleness is measured from completed work (operations
// re-touch the clock when they finish). Split from the janitor loop so
// tests can drive it deterministically.
func (r *Registry) evictExpired(now time.Time) int {
	cutoff := now.Add(-r.cfg.SessionTTL)
	var expired []*Session
	r.mu.Lock()
	for id, s := range r.sessions {
		if s.busy() {
			continue
		}
		if s.lastUsed().Before(cutoff) {
			delete(r.sessions, id)
			expired = append(expired, s)
			r.evictedTotal++
		}
	}
	r.mu.Unlock()
	for _, s := range expired {
		s.close()
	}
	return len(expired)
}

// newID returns a 128-bit random session identifier.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a session over the ontology with the given inference
// options (validated here, at the service boundary).
func (r *Registry) Create(onto *graph.Graph, opts core.Options) (*Session, error) {
	if onto == nil || onto.NumNodes() == 0 {
		return nil, fmt.Errorf("service: empty ontology")
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("service: registry is closed")
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		return nil, fmt.Errorf("service: session limit %d reached", r.cfg.MaxSessions)
	}
	s := newSession(r, newID(), onto, opts)
	r.sessions[s.ID] = s
	r.createdTotal++
	return s, nil
}

// Get looks a session up and marks it used (resetting its TTL clock).
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// Delete evicts a session, canceling its in-flight work.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if ok {
		s.close()
	}
	return ok
}

// Len reports the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Budget exposes the shared worker budget (used by tests and metrics).
func (r *Registry) Budget() *conc.Budget { return r.budget }

// Close cancels every session, stops the janitor and waits for all
// session-owned goroutines (feedback dialogues) to exit, so a server
// shutdown leaks nothing.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.janitorDone
		return
	}
	r.closed = true
	all := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		all = append(all, s)
	}
	r.mu.Unlock()
	r.cancel()
	for _, s := range all {
		s.close()
	}
	<-r.janitorDone
}

// recordInfer folds one inference run into the registry-wide totals.
func (r *Registry) recordInfer(st core.Stats) {
	r.mu.Lock()
	r.totals.Add(st.Counters())
	if st.PeakParallelism > r.peakParallel {
		r.peakParallel = st.PeakParallelism
	}
	r.inferTotal++
	r.mu.Unlock()
}

// Metrics is the registry-wide gauge snapshot exported at /metrics.
type Metrics struct {
	SessionsActive  int
	SessionsCreated int
	SessionsEvicted int
	InferTotal      int
	WorkerBudget    int
	PeakParallelism int // largest in-flight MergePair count ever observed
	Counters        core.CountersSnapshot
}

// Metrics returns the current aggregate counters.
func (r *Registry) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Metrics{
		SessionsActive:  len(r.sessions),
		SessionsCreated: r.createdTotal,
		SessionsEvicted: r.evictedTotal,
		InferTotal:      r.inferTotal,
		WorkerBudget:    r.budget.Size(),
		PeakParallelism: r.peakParallel,
		Counters:        r.totals,
	}
}
