// Package service hosts concurrent inference sessions behind a small
// HTTP/JSON API (served by cmd/questprod). A session owns one ontology,
// one example-set and the state of at most one feedback dialogue; the
// registry owns the sessions, evicts the idle ones after a TTL, and
// bounds the total number of inference workers across all sessions with
// one shared conc.Budget, so a burst of concurrent requests degrades to
// queueing instead of oversubscribing the machine.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"questpro/internal/conc"
	"questpro/internal/core"
	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/obs"
	"questpro/internal/qerr"
	"questpro/internal/store"
)

// Config sizes a registry. The zero value selects every default.
type Config struct {
	// TotalWorkers bounds the inference workers in flight across all
	// sessions; it resolves through conc.Workers (<= 0 means GOMAXPROCS).
	TotalWorkers int

	// SessionTTL is how long an idle session survives before the janitor
	// evicts it. <= 0 selects DefaultSessionTTL.
	SessionTTL time.Duration

	// MaxSessions caps live sessions; Create fails beyond it. <= 0 selects
	// DefaultMaxSessions.
	MaxSessions int

	// JanitorInterval is how often the janitor scans for expired sessions.
	// <= 0 selects SessionTTL / 4 (clamped to at least a second).
	JanitorInterval time.Duration

	// AdmissionWait bounds how long an inference request may queue on the
	// shared worker budget before the server sheds it with 429 (load
	// shedding; see conc.Budget.AcquireWithin). 0 selects
	// DefaultAdmissionWait; negative waits without bound — the pre-shedding
	// behavior.
	AdmissionWait time.Duration

	// RetryAfter is the hint sent in the Retry-After header of shed (429)
	// responses. <= 0 selects DefaultRetryAfter.
	RetryAfter time.Duration

	// Logger receives the server's structured logs (one access-log record
	// per request, plus session lifecycle events). nil discards them.
	Logger *slog.Logger

	// TraceLog, when non-nil, receives one JSON line per finished root span
	// (the trace journal; questprod wires -trace-log here). Writes are
	// serialized by the tracer.
	TraceLog io.Writer

	// TraceRing caps how many finished operation traces each session
	// retains for GET /v1/sessions/{id}/trace (oldest evicted first).
	// <= 0 selects DefaultTraceRing.
	TraceRing int

	// DisableTracing leaves the global span gate alone, so sessions run
	// with nil spans (the library's zero-overhead path). The default is to
	// enable tracing for the process when the registry starts.
	DisableTracing bool

	// Store, when non-nil, enables durable session persistence (DESIGN.md
	// §12): every state-changing operation is journaled and snapshotted
	// into it before its response is written, NewRegistry restores the
	// stored sessions (resuming in-flight feedback dialogues), the TTL
	// janitor deletes the snapshots of the sessions it evicts, and Close —
	// which takes ownership of the store and closes it — flushes dirty
	// sessions first. nil, the default, disables persistence entirely; the
	// session hot path then pays one nil check per operation.
	Store *store.Store
}

// Defaults for Config's zero fields.
const (
	DefaultSessionTTL    = 30 * time.Minute
	DefaultMaxSessions   = 1024
	DefaultAdmissionWait = 2 * time.Second
	DefaultRetryAfter    = time.Second
	DefaultTraceRing     = 8
)

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.JanitorInterval <= 0 {
		c.JanitorInterval = c.SessionTTL / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = DefaultAdmissionWait
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.TraceRing <= 0 {
		c.TraceRing = DefaultTraceRing
	}
	return c
}

// Registry owns the live sessions. Construct with NewRegistry and release
// with Close; the zero value is not usable.
type Registry struct {
	cfg    Config
	budget *conc.Budget

	// Observability plumbing (immutable after NewRegistry): the structured
	// logger, the tracer that finishes root spans into histograms and the
	// optional JSONL journal, and the two latency-histogram families
	// rendered at /metrics.
	logger  *slog.Logger
	tracer  *obs.Tracer
	httpDur *obs.Family
	spanDur *obs.Family

	// ctx is the registry-scoped root context: every session context is a
	// child, so Close cancels all in-flight inference and feedback work.
	ctx    context.Context
	cancel context.CancelFunc

	janitorDone chan struct{}

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	// Aggregate counters over every inference ever run, including in
	// sessions since evicted. Guarded by mu.
	totals       core.CountersSnapshot
	peakParallel int
	inferTotal   int
	createdTotal int
	evictedTotal int

	// Fault-tolerance counters: panics converted to errors by a session's
	// recovery boundary, inference requests shed for load, and inferences
	// that returned a degraded (guard-exhausted) partial result. Guarded by
	// mu.
	panicsTotal   int
	shedTotal     int
	degradedTotal int

	// Durability counters (zero without a store). Guarded by mu.
	snapWritesTotal      int
	snapRestoresTotal    int
	snapQuarantinedTotal int
	snapErrorsTotal      int
}

// NewRegistry starts a registry (and its eviction janitor) sized by cfg.
// Unless cfg.DisableTracing is set it turns the process-wide span gate on
// — and never off: the gate is sticky because another registry (or a test)
// may be live in the same process, and an enabled gate without a root span
// installed still costs the library path only one atomic load.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if !cfg.DisableTracing {
		obs.SetEnabled(true)
	}
	spanDur := obs.NewFamily("questprod_span_duration_seconds", "kind",
		"Trace span latency by span kind.")
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:    cfg,
		budget: conc.NewBudget(cfg.TotalWorkers),
		logger: logger,
		tracer: obs.NewTracer(spanDur, cfg.TraceLog),
		httpDur: obs.NewFamily("questprod_http_request_duration_seconds", "endpoint",
			"HTTP request latency by endpoint."),
		spanDur:     spanDur,
		ctx:         ctx,
		cancel:      cancel,
		janitorDone: make(chan struct{}),
		sessions:    make(map[string]*Session),
	}
	// Restore persisted sessions before the janitor starts, so the first
	// eviction scan sees their persisted idle clocks instead of racing the
	// restore.
	if cfg.Store != nil {
		r.restoreAll()
	}
	go r.janitor()
	return r
}

// janitor periodically evicts sessions idle past the TTL.
func (r *Registry) janitor() {
	defer close(r.janitorDone)
	t := time.NewTicker(r.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.evictExpired(time.Now())
		}
	}
}

// evictExpired removes every session idle since before now-TTL. A session
// with an operation in flight is never expired, even when the operation —
// a long inference, or a request queued on the exhausted worker budget —
// outlives the TTL: idleness is measured from completed work (operations
// re-touch the clock when they finish). Split from the janitor loop so
// tests can drive it deterministically.
func (r *Registry) evictExpired(now time.Time) int {
	cutoff := now.Add(-r.cfg.SessionTTL)
	var expired []*Session
	r.mu.Lock()
	for id, s := range r.sessions {
		if s.busy() {
			continue
		}
		if s.lastUsed().Before(cutoff) {
			delete(r.sessions, id)
			expired = append(expired, s)
			r.evictedTotal++
		}
	}
	r.mu.Unlock()
	for _, s := range expired {
		s.close()
		r.deleteSnapshot(s.ID)
		r.logger.Info("session evicted", "session_id", s.ID, "reason", "ttl")
	}
	return len(expired)
}

// deleteSnapshot garbage-collects an evicted or deleted session's durable
// files, so the store never accumulates orphans for sessions that no
// longer exist.
func (r *Registry) deleteSnapshot(id string) {
	if r.cfg.Store == nil {
		return
	}
	if err := r.cfg.Store.Delete(id); err != nil {
		r.recordSnapshotError()
		r.logger.Warn("snapshot delete failed", "session_id", id, "error", err)
	}
}

// idRand is the entropy source behind session identifiers; a package
// variable so tests can exercise the failure path without breaking the
// process's crypto/rand.
var idRand io.Reader = rand.Reader

// newID returns a 128-bit random session identifier. An entropy failure —
// nearly impossible on a healthy host, but exactly the kind of "can't
// happen" that used to panic here — surfaces as a qerr.ErrInternal-matching
// error the HTTP layer maps to 500, keeping the server up. The
// faults.SessionSnapshot injection point fires first so the chaos harness
// can force this path.
func newID() (string, error) {
	if err := faults.Fire(faults.SessionSnapshot); err != nil {
		return "", fmt.Errorf("service: minting session id: %v: %w", err, qerr.ErrInternal)
	}
	var b [16]byte
	if _, err := io.ReadFull(idRand, b[:]); err != nil {
		return "", fmt.Errorf("service: reading random id: %v: %w", err, qerr.ErrInternal)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create registers a session over the ontology with the given inference
// options (validated here, at the service boundary).
func (r *Registry) Create(onto *graph.Graph, opts core.Options) (*Session, error) {
	return r.CreateWithID("", onto, opts)
}

// ValidSessionID reports whether id has the canonical session-identifier
// shape: 32 lowercase hex characters (the encoding newID produces). The
// qpgate gateway mints ids client-side so consistent-hash affinity derives
// from the id; the format gate keeps externally minted ids in the same
// keyspace.
func ValidSessionID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// CreateWithID registers a session under a caller-minted identifier (the
// gateway's shard-affinity path; see api.CreateSessionRequest.SessionID).
// An empty id mints one server-side. A full registry fails with an error
// matching qerr.ErrOverloaded, which the HTTP layer serves as 503 +
// Retry-After — capacity exhaustion is a retryable service condition, not
// a client mistake.
func (r *Registry) CreateWithID(id string, onto *graph.Graph, opts core.Options) (*Session, error) {
	if onto == nil || onto.NumNodes() == 0 {
		return nil, fmt.Errorf("service: empty ontology")
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if id == "" {
		var err error
		if id, err = newID(); err != nil {
			return nil, err
		}
	} else if !ValidSessionID(id) {
		return nil, fmt.Errorf("service: session id must be 32 lowercase hex characters")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("service: registry is closed")
	}
	if _, dup := r.sessions[id]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("service: session %s already exists", id)
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		return nil, fmt.Errorf("service: session limit %d reached: %w", r.cfg.MaxSessions, qerr.ErrOverloaded)
	}
	s := newSession(r, id, onto, opts)
	r.sessions[s.ID] = s
	r.createdTotal++
	active := len(r.sessions)
	r.mu.Unlock()
	// Outside r.mu: the initial snapshot does disk I/O.
	s.persistInitial()
	r.logger.Info("session created", "session_id", s.ID, "sessions_active", active)
	return s, nil
}

// Get looks a session up and marks it used (resetting its TTL clock).
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// Delete evicts a session, canceling its in-flight work and removing its
// durable snapshot (an explicit delete means the client is done with it).
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if ok {
		s.close()
		r.deleteSnapshot(id)
	}
	return ok
}

// Len reports the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Budget exposes the shared worker budget (used by tests and metrics).
func (r *Registry) Budget() *conc.Budget { return r.budget }

// Close cancels every session, stops the janitor and waits for all
// session-owned goroutines (feedback dialogues) to exit, so a server
// shutdown leaks nothing. With a store configured, every dirty session is
// flushed to it first — BEFORE the session is torn down, because teardown
// discards the dialogue state the flush must capture — and the store
// (owned by the registry since NewRegistry) is closed last.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.janitorDone
		return
	}
	r.closed = true
	all := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		all = append(all, s)
	}
	r.mu.Unlock()
	r.cancel()
	for _, s := range all {
		// The flush serializes behind any in-flight operation (which the
		// cancel above is aborting), so it captures the session's final
		// state, dialogue position included.
		s.flushToStore()
		s.close()
	}
	if st := r.cfg.Store; st != nil {
		if err := st.Close(); err != nil {
			r.logger.Warn("session store close failed", "error", err)
		}
	}
	<-r.janitorDone
}

// recordInfer folds one inference run into the registry-wide totals.
func (r *Registry) recordInfer(st core.Stats) {
	r.mu.Lock()
	r.totals.Add(st.Counters())
	if st.PeakParallelism > r.peakParallel {
		r.peakParallel = st.PeakParallelism
	}
	r.inferTotal++
	if st.Degraded {
		r.degradedTotal++
	}
	r.mu.Unlock()
}

// recordPanic counts one panic converted to an error by a recovery boundary.
func (r *Registry) recordPanic() {
	r.mu.Lock()
	r.panicsTotal++
	r.mu.Unlock()
}

// recordShed counts one inference request shed for load (429).
func (r *Registry) recordShed() {
	r.mu.Lock()
	r.shedTotal++
	r.mu.Unlock()
}

// recordSnapshotWrite counts one durably committed session snapshot.
func (r *Registry) recordSnapshotWrite() {
	r.mu.Lock()
	r.snapWritesTotal++
	r.mu.Unlock()
}

// recordSnapshotQuarantine counts one corrupt/torn/poisoned file moved to
// quarantine.
func (r *Registry) recordSnapshotQuarantine() {
	r.mu.Lock()
	r.snapQuarantinedTotal++
	r.mu.Unlock()
}

// recordSnapshotError counts one failed persistence operation (save,
// journal append, load or delete) that did NOT condemn a file.
func (r *Registry) recordSnapshotError() {
	r.mu.Lock()
	r.snapErrorsTotal++
	r.mu.Unlock()
}

// admissionWait resolves the bounded-admission wait (negative = unbounded).
func (r *Registry) admissionWait() time.Duration { return r.cfg.AdmissionWait }

// traceRing is the per-session cap on retained operation traces.
func (r *Registry) traceRing() int { return r.cfg.TraceRing }

// retryAfter is the Retry-After hint for shed responses.
func (r *Registry) retryAfter() time.Duration { return r.cfg.RetryAfter }

// Metrics is the registry-wide gauge snapshot exported at /metrics.
type Metrics struct {
	SessionsActive  int
	SessionsCreated int
	SessionsEvicted int
	InferTotal      int
	WorkerBudget    int
	PeakParallelism int // largest in-flight MergePair count ever observed
	Counters        core.CountersSnapshot

	// Fault-tolerance counters (see the matching questprod_* gauges).
	PanicsRecovered int
	LoadShed        int
	DegradedInfer   int

	// Durability counters (zero without a store; see the
	// questprod_snapshot_*_total series).
	SnapshotWrites      int
	SnapshotRestores    int
	SnapshotQuarantined int
	SnapshotErrors      int
}

// Metrics returns the current aggregate counters.
func (r *Registry) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Metrics{
		SessionsActive:  len(r.sessions),
		SessionsCreated: r.createdTotal,
		SessionsEvicted: r.evictedTotal,
		InferTotal:      r.inferTotal,
		WorkerBudget:    r.budget.Size(),
		PeakParallelism: r.peakParallel,
		Counters:        r.totals,
		PanicsRecovered: r.panicsTotal,
		LoadShed:        r.shedTotal,
		DegradedInfer:   r.degradedTotal,

		SnapshotWrites:      r.snapWritesTotal,
		SnapshotRestores:    r.snapRestoresTotal,
		SnapshotQuarantined: r.snapQuarantinedTotal,
		SnapshotErrors:      r.snapErrorsTotal,
	}
}
