package service

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateSnapSchema = flag.Bool("update-snapshot-schema", false,
	"rewrite the golden snapshot-schema file")

// snapshotTypes enumerates every type that reaches the on-disk snapshot
// (and journal) encoding. A new durable field must be added here and to
// the golden file to become part of the contract.
var snapshotTypes = []any{
	sessionSnapshot{},
	snapGraph{},
	snapNode{},
	snapEdge{},
	snapExample{},
	snapOptions{},
	snapCompletion{},
	snapChoice{},
	snapFeedback{},
	snapCounters{},
	walRecord{},
}

// renderSnapshotSchema flattens the codec's on-disk contract exactly the
// way internal/api's schema test flattens the wire contract: one
// "Type.Field json-tag go-type" line per field.
func renderSnapshotSchema() string {
	var b strings.Builder
	fmt.Fprintf(&b, "snapshot schema v%d\n\n", snapshotSchemaVersion)
	for _, v := range snapshotTypes {
		t := reflect.TypeOf(v)
		fmt.Fprintf(&b, "type %s\n", t.Name())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" {
				tag = "-"
			}
			fmt.Fprintf(&b, "  %-22s %-28s %s\n", f.Name, tag, f.Type.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestSnapshotSchemaGolden pins the durable session-state contract: a
// field rename, type change, or tag change in the snapshot codec would
// strand every snapshot already on disk, so it must show up as a diff here
// and be accompanied by a snapshotSchemaVersion bump plus a migration (or
// a deliberate additive regeneration with -update-snapshot-schema). This
// is make api-check's discipline applied to the on-disk format.
func TestSnapshotSchemaGolden(t *testing.T) {
	got := renderSnapshotSchema()
	path := filepath.Join("testdata",
		fmt.Sprintf("snapshot_schema_v%d.golden", snapshotSchemaVersion))
	if *updateSnapSchema {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot schema (run `go test ./internal/service -run TestSnapshotSchemaGolden -update-snapshot-schema`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("snapshot schema drifted from %s.\nAdditive changes: regenerate with -update-snapshot-schema.\nShape changes: bump snapshotSchemaVersion and handle old snapshots in decode.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSnapshotSchemaNoUntypedFields keeps every durable shape static: no
// interfaces, no interface-valued maps — the decode of a crashed process's
// file must never depend on dynamic types.
func TestSnapshotSchemaNoUntypedFields(t *testing.T) {
	for _, v := range snapshotTypes {
		t2 := reflect.TypeOf(v)
		for i := 0; i < t2.NumField(); i++ {
			f := t2.Field(i)
			if f.Type.Kind() == reflect.Interface {
				t.Errorf("%s.%s is an interface; durable shapes must be static", t2.Name(), f.Name)
			}
			if f.Type.Kind() == reflect.Map && f.Type.Elem().Kind() == reflect.Interface {
				t.Errorf("%s.%s is a map with interface values; durable shapes must be static", t2.Name(), f.Name)
			}
		}
	}
}
