package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"questpro/internal/api"
)

// ReadyGate is the startup-readiness front of a questprod process. The
// listener comes up immediately — liveness probes and supervisors see the
// process — but every API route answers 503 + Retry-After until the
// registry finishes restoring its durable sessions (snapshot decode + WAL
// replay can take real time on a large -data-dir). The qpgate gateway
// probes GET /readyz and holds traffic for a backend until it flips, so a
// restarting shard is never asked about sessions it has not re-loaded yet.
//
//	/healthz  -> 200 always (liveness: the process is up)
//	/readyz   -> 503 until Ready, then the real mux's 200
//	API       -> 503 + api.Error{code:"unavailable"} until Ready
//
// Ready swaps the real handler in atomically; after the swap the gate adds
// one atomic load per request.
type ReadyGate struct {
	handler    atomic.Pointer[http.Handler]
	retryAfter time.Duration
}

// NewReadyGate builds a gate that hints Retry-After retryAfter (rounded up
// to at least one second) on not-ready responses.
func NewReadyGate(retryAfter time.Duration) *ReadyGate {
	return &ReadyGate{retryAfter: retryAfter}
}

// Ready installs the real handler; every subsequent request flows through
// it. Call once, after the registry (and its restore) is constructed.
func (g *ReadyGate) Ready(h http.Handler) {
	g.handler.Store(&h)
}

// IsReady reports whether the real handler has been installed.
func (g *ReadyGate) IsReady() bool { return g.handler.Load() != nil }

func (g *ReadyGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.handler.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	secs := retryAfterSeconds(g.retryAfter)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(&api.Error{
		Code:          api.CodeUnavailable,
		Message:       "service: starting: restoring durable sessions",
		RetryAfterSec: secs,
	})
}
