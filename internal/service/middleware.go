package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// reqInfo is the per-request observability state threaded through the
// handler chain via the context: the request identifier (client-supplied or
// minted here) and the outcome flags handlers set as they classify errors.
// Handlers run on the request goroutine, so plain fields suffice.
type reqInfo struct {
	id           string
	remoteParent string // X-Qp-Trace: span id of the caller's (gateway's) span
	shed         bool
	degraded     bool
	panicked     bool
}

type reqInfoKey struct{}

// requestID returns the request identifier installed by withObs, or "" when
// the context did not pass through the HTTP layer (direct Session calls in
// tests and benchmarks).
func requestID(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		return ri.id
	}
	return ""
}

// remoteParentSpan returns the upstream span id the request carried in
// X-Qp-Trace, or "" (direct requests, tests).
func remoteParentSpan(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		return ri.remoteParent
	}
	return ""
}

// markRequest applies f to the request's reqInfo, if any.
func markRequest(ctx context.Context, f func(*reqInfo)) {
	if ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		f(ri)
	}
}

// ridFallback numbers request ids minted after an entropy failure: the id
// must never be empty (it is the correlation key for logs, spans and
// last_error), and an unreadable entropy source should not fail the request.
var ridFallback atomic.Int64

func newRequestID() string {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		return fmt.Sprintf("req-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the access log and the
// latency histogram (the handler writes it straight through).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withObs is the per-endpoint observability middleware: it honors an
// incoming X-Request-Id (minting one otherwise), echoes it on the response,
// records the caller's X-Qp-Trace parent span id so session roots can link
// under the gateway's proxy span (DESIGN.md §14),
// threads it through the context for spans and recovered-panic reports,
// feeds the endpoint's latency histogram, and emits one structured access
// log line per request — method, endpoint, request id, session id, status,
// duration and the shed/degraded/panic flags handlers raised while
// classifying the outcome.
func withObs(reg *Registry, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = newRequestID()
		}
		ri := &reqInfo{id: rid, remoteParent: r.Header.Get("X-Qp-Trace")}
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		dur := time.Since(start)
		reg.httpDur.Observe(endpoint, dur)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		reg.logger.Info("request",
			"method", r.Method,
			"endpoint", endpoint,
			"path", r.URL.Path,
			"request_id", rid,
			"session_id", r.PathValue("id"),
			"status", status,
			"duration_ms", float64(dur.Nanoseconds())/1e6,
			"shed", ri.shed,
			"degraded", ri.degraded,
			"panic", ri.panicked,
		)
	}
}
