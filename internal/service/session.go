package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"questpro/internal/conc"
	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/feedback"
	"questpro/internal/graph"
	"questpro/internal/obs"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// Session is one client's inference state: an ontology (fixed at creation),
// an example-set, the last inference outcome and at most one feedback
// dialogue. Methods serialize on an internal mutex, so concurrent requests
// against the same session queue instead of racing; distinct sessions only
// share the registry's worker budget.
type Session struct {
	ID string

	reg *Registry

	// ctx is the session-scoped context: a child of the registry's root,
	// canceled when the session is evicted or the registry closes. The
	// feedback dialogue's goroutine runs under it, which is what makes
	// shutdown goroutine-leak-free.
	ctx    context.Context
	cancel context.CancelFunc

	// last is the last-use time in unix nanoseconds, updated lock-free so
	// the TTL janitor never contends with a long-running inference.
	last atomic.Int64

	// inflight counts client operations in progress (including ones queued
	// on the worker budget); the janitor skips busy sessions, so an
	// inference outliving the TTL is not evicted mid-run.
	inflight atomic.Int64

	// lastErr records the session's most recent internal error (a recovered
	// panic), for the stats endpoint. An atomic pointer, not a mutex field:
	// the recovery boundary stores it while the stack is unwinding, at a
	// point where s.mu may already have been released by an earlier defer.
	lastErr atomic.Pointer[qerr.InternalError]

	mu     sync.Mutex
	ev     *eval.Evaluator
	onto   *graph.Graph
	opts   core.Options
	ex     provenance.ExampleSet
	result *query.Union     // last inferred (or feedback-chosen) query
	cands  []core.Candidate // last top-k candidates
	fb     *feedbackRun

	// Partial-provenance state (DESIGN.md §11): pex is the submitted
	// fragment set when the client used the partial input mode (nil when
	// the session holds only complete examples); completed/compReport cache
	// the completion phase's outcome — completion is deterministic for a
	// fixed fragment set and options, so it runs once on the first Infer
	// and is reused until the example-set changes.
	pex        provenance.PartialExampleSet
	completed  provenance.ExampleSet
	compReport *core.CompletionReport

	counters core.CountersSnapshot
	infers   int

	// Durability bookkeeping (DESIGN.md §12), guarded by mu. mutSeq counts
	// committed state-changing operations and savedSeq the last sequence
	// durably snapshotted (dirty ⇔ mutSeq > savedSeq, so a failed persist
	// is retried by the next operation or the Close flush); opDirty/opWAL
	// stage the in-flight operation's mutation flag and journal record for
	// the deferred persistPendingLocked. All four are inert — one nil
	// check per operation — when the registry runs without a store.
	mutSeq   int64
	savedSeq int64
	opDirty  bool
	opWAL    *walRecord

	// traces is the ring of the session's most recent finished operation
	// traces (root span snapshots, oldest first), served at
	// /v1/sessions/{id}/trace. Its own mutex, not s.mu: traces are recorded
	// while the operation's stack unwinds, after its s.mu defer released
	// the lock, and the feedback goroutine records its dialogue trace with
	// no claim on s.mu at all.
	traceMu sync.Mutex
	traces  []*obs.Node
}

func newSession(r *Registry, id string, onto *graph.Graph, opts core.Options) *Session {
	ctx, cancel := context.WithCancel(r.ctx)
	s := &Session{
		ID:     id,
		reg:    r,
		ctx:    ctx,
		cancel: cancel,
		ev:     eval.New(onto),
		onto:   onto,
		opts:   opts,
	}
	s.touch()
	return s
}

func (s *Session) touch()              { s.last.Store(time.Now().UnixNano()) }
func (s *Session) lastUsed() time.Time { return time.Unix(0, s.last.Load()) }

// begin/end bracket one client operation. The end-side touch restarts the
// idle clock when the operation finishes, so a session is idle-for-TTL
// only relative to its last completed work, not the request that started
// it; the inflight count lets the janitor skip sessions mid-operation.
func (s *Session) begin() { s.inflight.Add(1); s.touch() }
func (s *Session) end()   { s.inflight.Add(-1); s.touch() }

// busy reports whether a client operation is in flight.
func (s *Session) busy() bool { return s.inflight.Load() > 0 }

// recoverOp is the session's recovery boundary: every client-facing
// operation defers a closure (FIRST, so it runs last during an unwind,
// after the mutex and inflight defers have already released their state)
// that passes its recover() value here — recover only works when called
// directly by the deferred function, so this helper takes the value rather
// than calling recover itself. A panic anywhere below becomes a
// qerr.ErrInternal-matching error on the operation's named return value.
// The panic poisons only this call: the session stays usable, the
// sanitized stack is kept as the session's last error (tagged with the
// request id when the operation came through the HTTP layer, so the stats
// report correlates with the access log), and the registry counts the
// recovery. Panics on merge-engine worker goroutines never reach here —
// they are recovered at safeMergePair and arrive as ordinary errors; this
// boundary covers the request goroutine itself.
func (s *Session) recoverOp(ctx context.Context, op string, r any, errp *error) {
	if r == nil {
		return
	}
	ie := qerr.Internal(r, debug.Stack())
	if x, ok := ie.(*qerr.InternalError); ok {
		if rid := requestID(ctx); rid != "" {
			x.Recovered += " [request_id=" + rid + "]"
		}
		s.lastErr.Store(x)
	}
	s.reg.recordPanic()
	markRequest(ctx, func(ri *reqInfo) { ri.panicked = true })
	*errp = fmt.Errorf("service: %s: %w", op, ie)
}

// startOp opens the root span for one client-facing session operation; all
// child spans below (inference rounds, pair merges, candidate probes,
// provenance enumeration, feedback turns) hang off it. With tracing
// disabled the span is nil and every downstream obs call short-circuits.
func (s *Session) startOp(ctx context.Context, kind string) (context.Context, *obs.Span) {
	ctx, sp := s.reg.tracer.StartRoot(ctx, kind)
	if sp != nil {
		sp.SetLabel("session_id", s.ID)
		if rid := requestID(ctx); rid != "" {
			sp.SetLabel("request_id", rid)
		}
		if parent := remoteParentSpan(ctx); parent != "" {
			sp.SetRemoteParent(parent)
		}
	}
	return ctx, sp
}

// endOp finishes an operation's root span with its outcome, feeds the
// per-kind latency histograms, appends the snapshot to the session's trace
// ring and (when configured) the trace journal. Runs during the unwind,
// after recoverOp, so a recovered panic is visible as err here.
func (s *Session) endOp(sp *obs.Span, err error, degraded bool) {
	if sp == nil {
		return
	}
	if n := s.reg.tracer.FinishRoot(sp, outcomeOf(err, degraded)); n != nil {
		s.recordTrace(n)
	}
}

// outcomeOf classifies an operation's result for spans and logs: the same
// taxonomy writeInferError maps onto HTTP statuses.
func outcomeOf(err error, degraded bool) string {
	switch {
	case err == nil && degraded:
		return "degraded"
	case err == nil:
		return "ok"
	case errors.Is(err, qerr.ErrInternal):
		return "panic"
	case errors.Is(err, qerr.ErrOverloaded):
		return "shed"
	case errors.Is(err, qerr.ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// recordTrace appends one finished operation trace, evicting the oldest
// beyond the configured ring size.
func (s *Session) recordTrace(n *obs.Node) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.traces = append(s.traces, n)
	if max := s.reg.traceRing(); len(s.traces) > max {
		s.traces = s.traces[len(s.traces)-max:]
	}
}

// Traces returns the session's retained operation traces, oldest first.
// The nodes are immutable snapshots; only the slice is copied.
func (s *Session) Traces() []*obs.Node {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return append([]*obs.Node(nil), s.traces...)
}

// close cancels the session's context and waits for its feedback goroutine
// (if any) to exit.
func (s *Session) close() {
	s.cancel()
	s.mu.Lock()
	fb := s.fb
	s.fb = nil
	s.mu.Unlock()
	if fb != nil {
		<-fb.exited
	}
}

// SetExamples validates and installs the example-set, resetting any
// previous inference outcome and aborting a feedback dialogue in progress.
func (s *Session) SetExamples(ctx context.Context, exs provenance.ExampleSet) (err error) {
	ctx, sp := s.startOp(ctx, "session.examples")
	defer func() {
		s.recoverOp(ctx, "set examples", recover(), &err)
		s.endOp(sp, err, false)
	}()
	sp.SetInt("examples", int64(len(exs)))
	s.begin()
	defer s.end()
	if err := exs.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	s.abortFeedbackLocked()
	s.ex = exs
	s.pex = nil
	s.completed = nil
	s.compReport = nil
	s.result = nil
	s.cands = nil
	s.markMutatedLocked(&walRecord{Op: walOpExamples, Examples: examplesToSnap(exs)})
	return nil
}

// SetPartialExamples validates and installs a fragment set (the partial
// input mode). The fragments are completed against the ontology lazily, on
// the first Infer, so submission stays cheap and the completion search
// runs under the inference request's context and guard.
func (s *Session) SetPartialExamples(ctx context.Context, pex provenance.PartialExampleSet) (err error) {
	ctx, sp := s.startOp(ctx, "session.examples")
	defer func() {
		s.recoverOp(ctx, "set partial examples", recover(), &err)
		s.endOp(sp, err, false)
	}()
	sp.SetInt("examples", int64(len(pex)))
	sp.SetLabel("partial", "true")
	s.begin()
	defer s.end()
	if err := pex.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	s.abortFeedbackLocked()
	s.ex = nil
	s.pex = pex
	s.completed = nil
	s.compReport = nil
	s.result = nil
	s.cands = nil
	s.markMutatedLocked(&walRecord{Op: walOpExamples, Partial: partialToSnap(pex), IsPartial: true})
	return nil
}

// Completions returns the completion report and completed explanations of
// the most recent inference over a partial example-set (ok=false when the
// session has none — no fragments submitted, or no inference run yet).
func (s *Session) Completions() (core.CompletionReport, provenance.ExampleSet, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compReport == nil {
		return core.CompletionReport{}, nil, false
	}
	return *s.compReport, s.completed, true
}

// InferResult is one inference outcome.
type InferResult struct {
	Mode  string
	Query *query.Union // the inferred query (best candidate for top-k)
	// Candidates is the cost-sorted beam, top-k mode only.
	Candidates []core.Candidate
	Stats      core.Stats

	// Degraded reports that the run exhausted its resource guard and Query
	// is the best consistent partial state, not the fixpoint (see
	// core.Options.Guard). Served with 200 + "degraded":true.
	Degraded bool

	// Completions reports the completion phase when the example-set was
	// submitted as fragments (nil otherwise); Completed holds the
	// explanations inference actually ran over, index-aligned with the
	// submitted set.
	Completions *core.CompletionReport
	Completed   provenance.ExampleSet
}

// Infer runs one of the inference algorithms ("simple", "union" or "topk")
// over the session's example-set. The worker count is leased from the
// registry's shared budget for the duration of the run: under load a
// request queues for at most the registry's admission wait and is then
// shed with a qerr.ErrOverloaded-matching error (429 over HTTP) instead of
// piling up unboundedly. Cancellation — the HTTP client going away, a
// request deadline, or session eviction — surfaces as a qerr.ErrCanceled-
// wrapped error from inside the merge engine's round loop. A run that
// exhausts its resource guard but still produced a consistent partial
// query returns it with Degraded set and a nil error.
func (s *Session) Infer(ctx context.Context, mode string) (res InferResult, err error) {
	ctx, sp := s.startOp(ctx, "session.infer")
	defer func() {
		s.recoverOp(ctx, "infer", recover(), &err)
		s.endOp(sp, err, res.Degraded)
	}()
	sp.SetLabel("mode", mode)
	s.begin()
	defer s.end()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	if len(s.ex) == 0 && len(s.pex) == 0 {
		return InferResult{}, fmt.Errorf("service: no example-set submitted")
	}
	s.abortFeedbackLocked()

	// A canceled session must abort the run even when the request context
	// is healthy (e.g. the registry is shutting down).
	ctx, cancel := mergeCancel(ctx, s.ctx)
	defer cancel()

	opts := s.opts
	got, err := s.reg.budget.AcquireWithin(ctx, conc.Workers(opts.Workers), s.reg.admissionWait())
	if err != nil {
		if errors.Is(err, qerr.ErrOverloaded) {
			s.reg.recordShed()
		}
		return InferResult{}, err
	}
	defer s.reg.budget.Release(got)
	opts.Workers = got

	// Partial input mode: resolve the fragments into complete explanations
	// first (cached — completion is deterministic for fixed fragments and
	// options), then shrink the inference guard by what the search spent so
	// both phases share the one per-operation budget.
	exs := s.ex
	ranCompletion := false
	if len(s.pex) > 0 {
		if s.compReport == nil {
			completed, rep, cerr := core.CompleteExamples(ctx, s.onto, s.pex, opts)
			if cerr != nil {
				return InferResult{}, cerr
			}
			s.completed, s.compReport = completed, &rep
			ranCompletion = true
			// The cache is durable state even when the inference below
			// fails: snapshot-only (a lost cache is deterministically
			// recomputed by the client's retry, no journal record needed).
			s.markMutatedLocked(nil)
		}
		exs = s.completed
		res.Completions, res.Completed = s.compReport, s.completed
		opts.Guard = opts.Guard.Reduce(s.compReport.GuardUsage)
		if s.compReport.Degraded {
			res.Degraded = true
		}
	}

	res.Mode = mode
	var stats core.Stats
	switch mode {
	case "simple":
		q, st, err := core.InferSimple(ctx, exs, opts)
		if err != nil {
			return InferResult{}, err
		}
		res.Query, stats = query.NewUnion(q), st
	case "union":
		u, st, err := core.InferUnion(ctx, exs, opts)
		if err != nil {
			if u == nil || !errors.Is(err, qerr.ErrBudgetExhausted) {
				return InferResult{}, err
			}
			res.Degraded = true // guard ran out; u is a consistent partial
		}
		res.Query, stats = u, st
	case "topk":
		cands, st, err := core.InferTopK(ctx, exs, opts)
		if err != nil {
			if len(cands) == 0 || !errors.Is(err, qerr.ErrBudgetExhausted) {
				return InferResult{}, err
			}
			res.Degraded = true
		}
		if len(cands) == 0 {
			return InferResult{}, fmt.Errorf("service: top-k search produced no candidates")
		}
		res.Query, res.Candidates, stats = cands[0].Query, cands, st
	default:
		return InferResult{}, fmt.Errorf("service: unknown inference mode %q", mode)
	}
	// Stats counts the work this call performed: a cached completion
	// (reused by a repeat inference) still rides in res.Completions but
	// charges no counters again.
	if ranCompletion {
		stats.CompletionsConsidered = res.Completions.Considered
		stats.CompletionsAccepted = res.Completions.Accepted
	}
	res.Stats = stats
	// The root span carries the same counters the response reports, so a
	// trace can be cross-checked against the client-visible stats.
	core.AnnotateStats(sp, &stats)
	s.result = res.Query
	s.cands = res.Candidates
	s.counters.Add(stats.Counters())
	s.infers++
	s.reg.recordInfer(stats)
	s.markMutatedLocked(&walRecord{Op: walOpInfer, Mode: mode})
	return res, nil
}

// mergeCancel derives a context from primary that is additionally canceled
// when secondary is.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	stop := context.AfterFunc(secondary, cancel)
	return ctx, func() { stop(); cancel() }
}

// FeedbackEvent is one step of the feedback dialogue as seen over HTTP:
// either the next membership question or the final decision.
type FeedbackEvent struct {
	Done bool

	// Question (when !Done) is the result the user must accept or refuse.
	Question *eval.ResultWithProvenance

	// Chosen and Query (when Done) identify the winning candidate.
	// Truncated reports that the question budget ran out first (the query
	// is the leading candidate, not a confirmed winner).
	Chosen    int
	Query     *query.Union
	Questions int
	Truncated bool

	// Redelivered reports that an AnswerFeedback verdict was NOT consumed
	// because no delivered question was awaiting one (the request that
	// should have delivered it was canceled mid-dialogue); the client must
	// answer the returned question instead.
	Redelivered bool
}

// feedbackRun is the channel plumbing between HTTP handlers and the
// goroutine driving feedback.Session.ChooseQuery. questions is buffered
// (capacity 1) so the goroutine never blocks delivering a question: if the
// HTTP request that should have picked it up is canceled first, the
// question waits in the buffer for the next request instead of stranding
// the dialogue. The goroutine does block waiting for each answer — or for
// the session context to be canceled, which is how eviction and shutdown
// reap it.
type feedbackRun struct {
	questions chan *eval.ResultWithProvenance
	answers   chan bool
	outcome   chan feedbackOutcome // buffered: the goroutine never blocks on it
	exited    chan struct{}
	asked     int

	// pending is the question delivered to the client and awaiting an
	// answer (nil when none). Guarded by the session mutex.
	pending *eval.ResultWithProvenance

	// maxQuestions and log make the dialogue's position replayable by the
	// snapshot codec: the question budget the dialogue was started with,
	// and every answer consumed so far in order. Replaying log through a
	// fresh dialogue over the same (deterministically re-derived)
	// candidates reproduces the exact question sequence. Guarded by the
	// session mutex.
	maxQuestions int
	log          []bool
}

func newFeedbackRun(max int) *feedbackRun {
	return &feedbackRun{
		questions:    make(chan *eval.ResultWithProvenance, 1),
		answers:      make(chan bool),
		outcome:      make(chan feedbackOutcome, 1),
		exited:       make(chan struct{}),
		maxQuestions: max,
	}
}

type feedbackOutcome struct {
	idx int
	tr  *feedback.Transcript
	err error
}

// chanOracle bridges ChooseQuery's synchronous oracle calls onto the run's
// channels.
type chanOracle struct{ run *feedbackRun }

func (o *chanOracle) ShouldInclude(ctx context.Context, res *eval.ResultWithProvenance) (bool, error) {
	select {
	case o.run.questions <- res:
	case <-ctx.Done():
		return false, qerr.Canceled(ctx.Err())
	}
	select {
	case ans := <-o.run.answers:
		return ans, nil
	case <-ctx.Done():
		return false, qerr.Canceled(ctx.Err())
	}
}

// abortFeedbackLocked cancels a dialogue in progress by draining it with a
// throwaway context watcher; callers hold s.mu. The goroutine observes the
// session context only through oracle calls, so we interrupt it by
// replacing the answer it is waiting for with a canceled error via the
// session context — which we cannot cancel here (the session lives on), so
// instead we spin a drainer that answers "exclude" until the loop ends.
func (s *Session) abortFeedbackLocked() {
	fb := s.fb
	if fb == nil {
		return
	}
	s.fb = nil
	go func() {
		for {
			select {
			case <-fb.questions:
			case fb.answers <- false:
			case <-fb.exited:
				return
			}
		}
	}()
}

// StartFeedback begins Algorithm 3 over the candidates of the last top-k
// inference and returns the first event: usually the first question, or an
// immediate decision when the candidates are indistinguishable. max bounds
// the number of questions (0 = unbounded).
func (s *Session) StartFeedback(ctx context.Context, max int) (_ FeedbackEvent, err error) {
	ctx, sp := s.startOp(ctx, "session.feedback.start")
	defer func() {
		s.recoverOp(ctx, "start feedback", recover(), &err)
		s.endOp(sp, err, false)
	}()
	s.begin()
	defer s.end()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	if len(s.cands) == 0 {
		return FeedbackEvent{}, fmt.Errorf("service: no candidates: run a top-k inference first")
	}
	s.abortFeedbackLocked()

	run := newFeedbackRun(max)
	cands := make([]*query.Union, len(s.cands))
	for i, c := range s.cands {
		cands[i] = c.Query
	}
	s.startDialogueLocked(run, cands)
	s.markMutatedLocked(&walRecord{Op: walOpFeedback, Max: max})
	return s.nextEventLocked(ctx, run, cands)
}

// startDialogueLocked installs the run as the session's dialogue and spawns
// the goroutine driving feedback.Session.ChooseQuery over cands; callers
// hold s.mu. Shared by StartFeedback and the restore path's
// resumeDialogue, so a resumed dialogue runs byte-identically to a live
// one.
func (s *Session) startDialogueLocked(run *feedbackRun, cands []*query.Union) {
	fs := &feedback.Session{
		Ev:           s.ev,
		Oracle:       &chanOracle{run: run},
		Ex:           s.ex,
		MaxQuestions: run.maxQuestions,
	}
	s.fb = run
	go func() {
		// A panic on this goroutine would kill the whole process (no HTTP-
		// layer recover covers it), so it gets its own recovery boundary:
		// the panic becomes the dialogue's outcome error, delivered through
		// the usual channel before exited closes. outcome is buffered, so
		// the send never blocks even with no request waiting.
		//
		// The dialogue also gets its own root span: it outlives the HTTP
		// request that started it (each question waits on a later request
		// for its answer), so it cannot hang off the request's span. Its
		// children are the feedback.question turns; their durations include
		// user think time.
		dctx, dsp := s.reg.tracer.StartRoot(s.ctx, "feedback.dialogue")
		if dsp != nil {
			dsp.SetLabel("session_id", s.ID)
			dsp.SetInt("candidates", int64(len(cands)))
		}
		defer close(run.exited)
		defer func() {
			if r := recover(); r != nil {
				ie := qerr.Internal(r, debug.Stack())
				if x, ok := ie.(*qerr.InternalError); ok {
					s.lastErr.Store(x)
				}
				s.reg.recordPanic()
				if n := s.reg.tracer.FinishRoot(dsp, "panic"); n != nil {
					s.recordTrace(n)
				}
				run.outcome <- feedbackOutcome{idx: -1, err: fmt.Errorf("service: feedback dialogue: %w", ie)}
			}
		}()
		idx, tr, err := fs.ChooseQuery(dctx, cands)
		if dsp != nil {
			if tr != nil {
				dsp.SetInt("questions", int64(len(tr.Questions)))
			}
			outcome := outcomeOf(err, false)
			if errors.Is(err, qerr.ErrMaxQuestions) {
				outcome = "truncated"
			}
			if n := s.reg.tracer.FinishRoot(dsp, outcome); n != nil {
				s.recordTrace(n)
			}
		}
		run.outcome <- feedbackOutcome{idx: idx, tr: tr, err: err}
	}()
}

// AnswerFeedback relays the user's verdict on the pending question and
// returns the next event. If no delivered question is awaiting an answer —
// the request that should have delivered it was canceled mid-dialogue —
// the verdict is NOT consumed (it has no question to apply to); instead
// the pending event is (re)delivered with Redelivered set, and the client
// answers that. PendingFeedback offers the same recovery as a read.
func (s *Session) AnswerFeedback(ctx context.Context, include bool) (_ FeedbackEvent, err error) {
	ctx, sp := s.startOp(ctx, "session.feedback.answer")
	defer func() {
		s.recoverOp(ctx, "answer feedback", recover(), &err)
		s.endOp(sp, err, false)
	}()
	s.begin()
	defer s.end()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	run := s.fb
	if run == nil {
		return FeedbackEvent{}, fmt.Errorf("service: no feedback dialogue in progress")
	}
	cands := make([]*query.Union, len(s.cands))
	for i, c := range s.cands {
		cands[i] = c.Query
	}
	if run.pending == nil {
		ev, err := s.nextEventLocked(ctx, run, cands)
		if err == nil {
			ev.Redelivered = true
		}
		return ev, err
	}
	select {
	case run.answers <- include:
		run.pending = nil
		run.log = append(run.log, include)
		s.markMutatedLocked(&walRecord{Op: walOpAnswer, Include: include})
	case <-ctx.Done():
		return FeedbackEvent{}, qerr.Canceled(ctx.Err())
	case <-s.ctx.Done():
		return FeedbackEvent{}, qerr.Canceled(s.ctx.Err())
	}
	return s.nextEventLocked(ctx, run, cands)
}

// PendingFeedback returns the dialogue's current event without consuming
// an answer: the already-delivered question when one awaits a verdict,
// otherwise the next question or the outcome. This is how a client whose
// previous request was canceled mid-dialogue re-fetches the question it
// lost.
func (s *Session) PendingFeedback(ctx context.Context) (_ FeedbackEvent, err error) {
	ctx, sp := s.startOp(ctx, "session.feedback.pending")
	defer func() {
		s.recoverOp(ctx, "pending feedback", recover(), &err)
		s.endOp(sp, err, false)
	}()
	s.begin()
	defer s.end()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.persistPendingLocked(ctx)
	run := s.fb
	if run == nil {
		return FeedbackEvent{}, fmt.Errorf("service: no feedback dialogue in progress")
	}
	if run.pending != nil {
		// Re-serving the already-delivered question changes nothing; the
		// deferred persist sees a clean session and is a no-op.
		return FeedbackEvent{Question: run.pending, Questions: run.asked}, nil
	}
	cands := make([]*query.Union, len(s.cands))
	for i, c := range s.cands {
		cands[i] = c.Query
	}
	return s.nextEventLocked(ctx, run, cands)
}

// nextEventLocked waits for the dialogue's next question or its outcome;
// callers hold s.mu.
func (s *Session) nextEventLocked(ctx context.Context, run *feedbackRun, cands []*query.Union) (FeedbackEvent, error) {
	select {
	case q := <-run.questions:
		run.asked++
		run.pending = q
		// Snapshot-only mutation: losing an undelivered pull just means the
		// restored dialogue re-serves the same question.
		s.markMutatedLocked(nil)
		return FeedbackEvent{Question: q, Questions: run.asked}, nil
	case out := <-run.outcome:
		s.fb = nil
		s.markMutatedLocked(nil)
		truncated := false
		if out.err != nil {
			if !errors.Is(out.err, qerr.ErrMaxQuestions) {
				return FeedbackEvent{}, out.err
			}
			truncated = true
		}
		s.result = cands[out.idx]
		asked := 0
		if out.tr != nil {
			asked = len(out.tr.Questions)
		}
		return FeedbackEvent{
			Done:      true,
			Chosen:    out.idx,
			Query:     cands[out.idx],
			Questions: asked,
			Truncated: truncated,
		}, nil
	case <-ctx.Done():
		return FeedbackEvent{}, qerr.Canceled(ctx.Err())
	case <-s.ctx.Done():
		return FeedbackEvent{}, qerr.Canceled(s.ctx.Err())
	}
}

// SessionStats is the per-session counter snapshot served at
// /v1/sessions/{id}/stats.
type SessionStats struct {
	Infers   int
	Counters core.CountersSnapshot
	Examples int
	HasQuery bool

	// LastError is the session's most recent recovered panic (sanitized
	// message, no stack), empty when none ever fired.
	LastError string
}

// Stats returns the session's accumulated counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{
		Infers:   s.infers,
		Counters: s.counters,
		Examples: len(s.ex) + len(s.pex),
		HasQuery: s.result != nil,
	}
	if ie := s.lastErr.Load(); ie != nil {
		st.LastError = ie.Error()
	}
	return st
}

// Result returns the session's current query (last inferred or
// feedback-chosen), or nil.
func (s *Session) Result() *query.Union {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}
