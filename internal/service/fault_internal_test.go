package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
)

// failingReader simulates an entropy outage.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("entropy pool on fire") }

// An entropy failure while minting a session id is a 500, not a process
// crash (satellite of the fault-tolerance work: newID used to panic).
func TestCreateSurvivesEntropyFailure(t *testing.T) {
	old := idRand
	idRand = failingReader{}
	defer func() { idRand = old }()

	if _, err := newID(); err == nil || !errors.Is(err, qerr.ErrInternal) {
		t.Fatalf("newID with broken entropy: err = %v, want ErrInternal", err)
	}

	reg := NewRegistry(Config{})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	body := fmt.Sprintf(`{"ontology": %q}`, ntriples.Format(paperfix.Ontology()))
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("create with broken entropy: status %d, want 500", resp.StatusCode)
	}

	// The server is still alive and, with entropy restored, still serves.
	idRand = old
	resp2, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("create after entropy recovery: status %d, want 201", resp2.StatusCode)
	}
}

// An oversized request body is refused with 413, not silently truncated
// into a misparsed prefix.
func TestOversizedBodyIs413(t *testing.T) {
	oldMax := maxRequestBody
	maxRequestBody = 1024
	defer func() { maxRequestBody = oldMax }()

	reg := NewRegistry(Config{})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	// 2KB of valid JSON: without the cap check this parses fine, with a
	// plain LimitReader it would truncate into invalid JSON (400); only the
	// explicit check yields the honest 413.
	big := fmt.Sprintf(`{"ontology": %q}`, strings.Repeat("x", 2048))
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("oversized body: status %d (%s), want 413", resp.StatusCode, b)
	}

	// At exactly the cap the request is processed normally (here: a parse
	// failure on the junk ontology — 400, not 413).
	exact := fmt.Sprintf(`{"ontology": %q}`, strings.Repeat("y", 900))
	if int64(len(exact)) > maxRequestBody {
		t.Fatalf("test payload larger than cap: %d", len(exact))
	}
	resp2, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(exact)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatalf("within-cap body rejected as too large")
	}
}
