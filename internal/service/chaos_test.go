package service_test

// The chaos harness: drive the full HTTP service while the faults package
// injects errors and panics at every registered point, under -race (see
// `make chaos`). The invariants are the service's fault model (DESIGN.md
// §8): the process never dies, a failure poisons at most the operation
// that hit it, sessions recover, and once the faults clear a full
// end-to-end session works against the same server.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"questpro/internal/api"
	qpclient "questpro/internal/client"
	"questpro/internal/eval"
	"questpro/internal/faults"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/query"
	"questpro/internal/service"
	"questpro/internal/store"
)

// paperfixWant is the oracle's intended result set (Union(Q3, Q4)), the
// same target runSessionE2E drives toward.
func paperfixWant(t *testing.T) map[string]bool {
	t.Helper()
	o := paperfix.Ontology()
	vals, err := eval.New(o).Results(bg, query.NewUnion(paperfix.Q3(), paperfix.Q4()))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, v := range vals {
		want[v] = true
	}
	return want
}

// chaosFlow drives one best-effort session lifecycle — create, examples,
// top-k inference, feedback with a few answers, delete — tolerating any
// well-formed error response. It returns without judging outcomes: under
// injected faults any step may fail; the caller asserts on server-level
// invariants instead.
func chaosFlow(t *testing.T, c *client) {
	t.Helper()
	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		return // e.g. session.snapshot fault at id minting: a clean 500
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	defer c.do(http.MethodDelete, base, nil)
	if status, _ = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		return
	}
	if status, _ = c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		return
	}
	status, resp = c.post(base+"/feedback", nil)
	for i := 0; status == http.StatusOK && i < 8; i++ {
		if done, _ := resp["done"].(bool); done {
			break
		}
		status, resp = c.post(base+"/feedback/answer", map[string]any{"include": false})
	}
}

// TestChaosEveryInjectionPoint exercises each registered fault point in
// turn with injected errors. For every point: the fault actually fires
// during a session lifecycle, the server keeps answering /healthz while
// poisoned, and after the injector is removed a complete end-to-end
// session (feedback dialogue included) succeeds against the same server.
func TestChaosEveryInjectionPoint(t *testing.T) {
	c := newTestServer(t, service.Config{})
	want := paperfixWant(t)

	for _, p := range faults.Points() {
		in := faults.NewInjector(42, faults.Rule{Point: p, FirstN: 3})
		restore := faults.Activate(in)
		chaosFlow(t, c)
		if status, _ := c.do(http.MethodGet, "/healthz", nil); status != http.StatusOK {
			restore()
			t.Fatalf("point %s: healthz %d while faults active", p, status)
		}
		restore()
		if in.Fired(p) == 0 {
			t.Errorf("point %s never fired during the session lifecycle", p)
		}
		if err := runSessionE2E(t, c, want); err != nil {
			t.Fatalf("point %s: clean E2E after faults cleared: %v", p, err)
		}
	}
}

// TestChaosPanicStorm injects panics (not errors) at the merge engine and
// at budget admission — the two seams covered by different recovery
// boundaries (in-goroutine worker recovery and the session's recoverOp) —
// while several sessions run concurrently. The process survives, every
// response is well-formed HTTP, and the server serves a clean E2E after.
func TestChaosPanicStorm(t *testing.T) {
	c := newTestServer(t, service.Config{})
	want := paperfixWant(t)

	in := faults.NewInjector(7,
		faults.Rule{Point: faults.MergePair, Prob: 0.2, MaxFires: 64, Panic: true},
		faults.Rule{Point: faults.BudgetAcquire, Prob: 0.2, MaxFires: 16, Panic: true},
	)
	restore := faults.Activate(in)
	const flows = 6
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaosFlow(t, c)
		}()
	}
	wg.Wait()
	if status, _ := c.do(http.MethodGet, "/healthz", nil); status != http.StatusOK {
		restore()
		t.Fatalf("healthz %d during panic storm", status)
	}
	restore()

	if in.Fired(faults.MergePair) == 0 && in.Fired(faults.BudgetAcquire) == 0 {
		t.Fatal("no panic was ever injected; the storm tested nothing")
	}
	if err := runSessionE2E(t, c, want); err != nil {
		t.Fatalf("clean E2E after panic storm: %v", err)
	}
}

// chaosStoreServer builds a persistence-enabled registry + HTTP server over
// dir, returning both (the registry for metrics, the client for traffic).
// The registry is NOT auto-closed — restart tests close it themselves.
func chaosStoreServer(t *testing.T, dir string) (*service.Registry, *client) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := service.NewRegistry(service.Config{Store: st})
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)
	return reg, &client{t: t, base: ts.URL, http: ts.Client()}
}

// TestChaosSnapshotSaveFails: with every store write failing, mutating
// operations still succeed (availability first — the session is left dirty
// and the failures counted), the server stays healthy, and once the fault
// clears the next operation's persist retry writes the state back.
func TestChaosSnapshotSaveFails(t *testing.T) {
	dir := t.TempDir()
	reg, c := chaosStoreServer(t, dir)
	t.Cleanup(reg.Close)

	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		t.Fatalf("create: %d (%v)", status, resp)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, _ = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: %d", status)
	}
	writesBefore := reg.Metrics().SnapshotWrites

	// Activated after creation: the id mint and the first snapshots succeed,
	// every store operation from here fails.
	in := faults.NewInjector(5, faults.Rule{Point: faults.SessionSnapshot, FirstN: 1 << 20})
	restore := faults.Activate(in)
	if status, _ = c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		restore()
		t.Fatalf("infer under persist faults: %d, want 200 (availability first)", status)
	}
	if status, _ = c.post(base+"/feedback", nil); status != http.StatusOK {
		restore()
		t.Fatalf("feedback start under persist faults: %d", status)
	}
	if status, _ := c.do(http.MethodGet, "/healthz", nil); status != http.StatusOK {
		restore()
		t.Fatalf("healthz %d while persistence down", status)
	}
	restore()
	if in.Fired(faults.SessionSnapshot) == 0 {
		t.Fatal("no persist fault ever fired")
	}
	if m := reg.Metrics(); m.SnapshotErrors == 0 {
		t.Fatalf("failed persists not counted: %+v", m)
	}

	// The next mutating operation retries the flush and succeeds.
	if status, _ = c.post(base+"/feedback/answer", map[string]any{"include": false}); status != http.StatusOK {
		t.Fatalf("answer after faults cleared: %d", status)
	}
	if m := reg.Metrics(); m.SnapshotWrites <= writesBefore {
		t.Fatalf("persist retry never landed: writes %d -> %d", writesBefore, m.SnapshotWrites)
	}
	if err := runSessionE2E(t, c, paperfixWant(t)); err != nil {
		t.Fatalf("clean E2E after persist faults: %v", err)
	}
}

// TestChaosSnapshotLoadFails: a store whose loads fail during startup
// restore skips the unreadable session — leaving its file in place for the
// next restart — and the registry comes up healthy; a later restart without
// the fault restores the session intact.
func TestChaosSnapshotLoadFails(t *testing.T) {
	dir := t.TempDir()
	reg1, c1 := chaosStoreServer(t, dir)
	status, resp := c1.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		t.Fatalf("create: %d (%v)", status, resp)
	}
	id := resp["session_id"].(string)
	if status, _ = c1.post("/v1/sessions/"+id+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: %d", status)
	}
	reg1.Close()

	in := faults.NewInjector(6, faults.Rule{Point: faults.SessionSnapshot, FirstN: 1 << 20})
	restore := faults.Activate(in)
	reg2, c2 := chaosStoreServer(t, dir)
	restore()
	if in.Fired(faults.SessionSnapshot) == 0 {
		reg2.Close()
		t.Fatal("restore never hit the injected load fault")
	}
	if n := reg2.Len(); n != 0 {
		reg2.Close()
		t.Fatalf("%d sessions restored through a failing store", n)
	}
	if m := reg2.Metrics(); m.SnapshotErrors == 0 {
		reg2.Close()
		t.Fatalf("load failure not counted: %+v", m)
	}
	// The degraded registry still serves new sessions.
	if err := runSessionE2E(t, c2, paperfixWant(t)); err != nil {
		reg2.Close()
		t.Fatalf("E2E against degraded registry: %v", err)
	}
	reg2.Close()

	// The snapshot was skipped, not condemned: the next restart restores it.
	reg3, _ := chaosStoreServer(t, dir)
	t.Cleanup(reg3.Close)
	if _, ok := reg3.Get(id); !ok {
		t.Fatal("session not restored once the load fault cleared")
	}
}

// TestChaosPanicInCodec: a panic inside the snapshot encode path — which
// runs on the operation's deferred persist, inside the session mutex — is
// caught by the operation's recovery boundary: the request gets a clean
// 500, the counter ticks, and the session keeps working.
func TestChaosPanicInCodec(t *testing.T) {
	dir := t.TempDir()
	reg, c := chaosStoreServer(t, dir)
	t.Cleanup(reg.Close)

	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		t.Fatalf("create: %d (%v)", status, resp)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, _ = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: %d", status)
	}

	// The persist path hits faults.SessionSnapshot twice per journaled op:
	// the journal append, then the codec encode. OnNth selects the encode.
	in := faults.NewInjector(8, faults.Rule{Point: faults.SessionSnapshot, OnNth: 2, Panic: true})
	restore := faults.Activate(in)
	status, resp = c.post(base+"/infer", map[string]any{"mode": "topk"})
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("infer with codec panic: %d (%v), want 500", status, resp)
	}
	if in.Fired(faults.SessionSnapshot) != 1 {
		t.Fatalf("codec panic fired %d times, want 1", in.Fired(faults.SessionSnapshot))
	}
	if m := reg.Metrics(); m.PanicsRecovered == 0 {
		t.Fatalf("codec panic not recovered/counted: %+v", m)
	}
	if status, _ := c.do(http.MethodGet, "/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz %d after codec panic", status)
	}
	// The poisoned call left the session usable; the retry persists cleanly.
	if status, _ = c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		t.Fatalf("infer retry after codec panic: %d", status)
	}
}

// TestChaosShedAndRetry saturates the worker budget and lets the
// retry-aware client ride it out: the first attempts are shed with 429,
// the client backs off honoring Retry-After, and once the budget frees up
// the inference completes.
func TestChaosShedAndRetry(t *testing.T) {
	reg := service.NewRegistry(service.Config{
		TotalWorkers:  2,
		AdmissionWait: 20 * time.Millisecond,
	})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)

	cl := qpclient.New(qpclient.Config{
		BaseURL:    ts.URL,
		MaxRetries: 8,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		Seed:       3,
		HTTPClient: ts.Client(),
	})
	id, err := cl.CreateSession(bg, ntriples.Format(paperfix.Ontology()), nil)
	if err != nil {
		t.Fatal(err)
	}
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	if err := cl.SetExamples(bg, id, exs); err != nil {
		t.Fatal(err)
	}

	// Hold the budget long enough that the client is shed at least twice
	// (the Retry-After floor is 1s, so retries land at ~1s and ~2s) before
	// the capacity frees up and the third attempt goes through.
	held, err := reg.Budget().Acquire(bg, reg.Budget().Size())
	if err != nil {
		t.Fatal(err)
	}
	release := time.AfterFunc(1500*time.Millisecond, func() { reg.Budget().Release(held) })
	defer release.Stop()

	res, err := cl.Infer(bg, id, "union", 0)
	if err != nil {
		t.Fatalf("infer through saturation: %v (retries %d)", err, cl.Retries())
	}
	if res.SPARQL == "" {
		t.Fatal("infer through saturation returned no query")
	}
	if cl.Retries() < 2 {
		t.Fatalf("client retried %d times, want >= 2 (shed at least twice)", cl.Retries())
	}
	if m := reg.Metrics(); m.LoadShed < 2 {
		t.Fatalf("registry shed count = %d, want >= 2", m.LoadShed)
	}
}
