package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"questpro/internal/core"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
)

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r
}

func createPaperfix(t *testing.T, r *Registry) *Session {
	t.Helper()
	o := paperfix.Ontology()
	s, err := r.Create(o, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetExamples(context.Background(), paperfix.Explanations(o)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistryCreateGetDelete(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	if got, ok := r.Get(s.ID); !ok || got != s {
		t.Fatalf("Get(%q) = %v, %v", s.ID, got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.Delete(s.ID) {
		t.Fatal("Delete failed")
	}
	if r.Delete(s.ID) {
		t.Fatal("second Delete succeeded")
	}
	if err := s.ctx.Err(); err == nil {
		t.Fatal("deleted session context not canceled")
	}
}

func TestRegistryValidatesOptions(t *testing.T) {
	r := newTestRegistry(t, Config{})
	bad := core.DefaultOptions()
	bad.Workers = -1
	if _, err := r.Create(paperfix.Ontology(), bad); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := r.Create(nil, core.DefaultOptions()); err == nil {
		t.Fatal("nil ontology accepted")
	}
}

func TestRegistryMaxSessions(t *testing.T) {
	r := newTestRegistry(t, Config{MaxSessions: 2})
	o := paperfix.Ontology()
	for i := 0; i < 2; i++ {
		if _, err := r.Create(o, core.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Create(o, core.DefaultOptions()); err == nil {
		t.Fatal("session above the cap accepted")
	}
}

// TestRegistryConcurrentSessions drives 32 independent sessions through the
// whole lifecycle concurrently (the -race build is the real assertion).
func TestRegistryConcurrentSessions(t *testing.T) {
	r := newTestRegistry(t, Config{TotalWorkers: 2})
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := paperfix.Ontology()
			s, err := r.Create(o, core.DefaultOptions())
			if err != nil {
				errs[i] = err
				return
			}
			if err := s.SetExamples(context.Background(), paperfix.Explanations(o)); err != nil {
				errs[i] = err
				return
			}
			for _, mode := range []string{"simple", "union", "topk"} {
				if _, err := s.Infer(context.Background(), mode); err != nil {
					errs[i] = err
					return
				}
			}
			if s.Result() == nil {
				errs[i] = errors.New("no result after inference")
			}
			r.Delete(s.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	m := r.Metrics()
	if m.SessionsCreated != 32 || m.InferTotal != 96 || m.SessionsActive != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Counters.Algorithm1Calls == 0 {
		t.Fatal("aggregate counters not recorded")
	}
}

func TestRegistryTTLEviction(t *testing.T) {
	r := newTestRegistry(t, Config{SessionTTL: time.Minute})
	s := createPaperfix(t, r)
	if n := r.evictExpired(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	if n := r.evictExpired(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, ok := r.Get(s.ID); ok {
		t.Fatal("evicted session still resolvable")
	}
	if s.ctx.Err() == nil {
		t.Fatal("evicted session context not canceled")
	}
	if r.Metrics().SessionsEvicted != 1 {
		t.Fatal("eviction not counted")
	}
}

// A Get resets the TTL clock, keeping active sessions alive.
func TestRegistryGetTouches(t *testing.T) {
	r := newTestRegistry(t, Config{SessionTTL: time.Minute})
	s := createPaperfix(t, r)
	s.last.Store(time.Now().Add(-55 * time.Second).UnixNano())
	r.Get(s.ID)
	if n := r.evictExpired(time.Now().Add(30 * time.Second)); n != 0 {
		t.Fatal("recently touched session evicted")
	}
}

// Infer under an already-canceled context fails with the typed sentinel and
// the underlying context error.
func TestInferCanceled(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Infer(ctx, "simple")
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("underlying context.Canceled not preserved: %v", err)
	}
}

// Close reaps a feedback dialogue parked on an unanswered question.
func TestCloseReapsFeedback(t *testing.T) {
	r := NewRegistry(Config{})
	s := createPaperfix(t, r)
	if _, err := s.Infer(context.Background(), "topk"); err != nil {
		t.Fatal(err)
	}
	ev, err := s.StartFeedback(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done {
		t.Skip("candidates collapsed without questions")
	}
	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a pending feedback dialogue")
	}
}

// Starting a new dialogue (or resubmitting examples) aborts the previous
// dialogue without leaking its goroutine.
func TestFeedbackRestart(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	if _, err := s.Infer(context.Background(), "topk"); err != nil {
		t.Fatal(err)
	}
	first, err := s.StartFeedback(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.StartFeedback(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Done && !second.Done && second.Question == nil {
		t.Fatal("restarted dialogue returned no question")
	}
	// Drive the second dialogue to completion.
	for i := 0; !second.Done && i < 32; i++ {
		second, err = s.AnswerFeedback(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !second.Done {
		t.Fatal("dialogue did not converge")
	}
	if s.Result() == nil {
		t.Fatal("no chosen query recorded")
	}
}

// A feedback request canceled before the question reaches the client must
// not strand the dialogue: the question waits in the buffer, a blind
// AnswerFeedback re-delivers it (without consuming the verdict) instead of
// deadlocking on the oracle channel, and the dialogue still converges.
func TestFeedbackCanceledRequestRecovers(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	if _, err := s.Infer(context.Background(), "topk"); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// With an already-canceled context the select usually loses the
	// question; retry a few times in case it races the other way (each
	// StartFeedback aborts the previous dialogue).
	stranded := false
	for i := 0; i < 50 && !stranded; i++ {
		ev, err := s.StartFeedback(canceled, 0)
		if err != nil {
			stranded = true
			break
		}
		if ev.Done {
			t.Skip("candidates collapsed without questions")
		}
	}
	if !stranded {
		t.Skip("cancellation never won the race against the first question")
	}

	// The dialogue is live with an undelivered question. The answer must
	// not be consumed: it comes back as a redelivered event.
	ev, err := s.AnswerFeedback(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Redelivered {
		t.Fatalf("answer with no delivered question consumed: %+v", ev)
	}
	if !ev.Done && ev.Question == nil {
		t.Fatalf("redelivered event has no question: %+v", ev)
	}
	for i := 0; !ev.Done && i < 32; i++ {
		ev, err = s.AnswerFeedback(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ev.Done {
		t.Fatal("dialogue did not converge after recovery")
	}
	if s.Result() == nil {
		t.Fatal("no chosen query recorded")
	}
}

// PendingFeedback re-reads the delivered-but-unanswered question without
// consuming anything, and the dialogue continues normally afterwards.
func TestPendingFeedbackIdempotentRead(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	if _, err := s.Infer(context.Background(), "topk"); err != nil {
		t.Fatal(err)
	}
	ev, err := s.StartFeedback(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done {
		t.Skip("candidates collapsed without questions")
	}
	for i := 0; i < 3; i++ {
		again, err := s.PendingFeedback(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if again.Done || again.Question != ev.Question || again.Questions != ev.Questions {
			t.Fatalf("pending read %d diverged: %+v vs %+v", i, again, ev)
		}
	}
	for i := 0; !ev.Done && i < 32; i++ {
		ev, err = s.AnswerFeedback(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ev.Done {
		t.Fatal("dialogue did not converge")
	}
}

// The janitor must not evict a session whose operation is still in flight,
// however stale its last-used clock; and completing the operation restarts
// the idle clock.
func TestEvictionSkipsBusySessions(t *testing.T) {
	r := newTestRegistry(t, Config{SessionTTL: time.Minute})
	s := createPaperfix(t, r)
	s.begin()
	s.last.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := r.evictExpired(time.Now()); n != 0 {
		t.Fatalf("busy session evicted (%d)", n)
	}
	s.end()
	if n := r.evictExpired(time.Now()); n != 0 {
		t.Fatal("completing the operation did not reset the idle clock")
	}
	s.last.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := r.evictExpired(time.Now()); n != 1 {
		t.Fatalf("idle expired session kept (%d)", n)
	}
}

func TestAnswerWithoutDialogue(t *testing.T) {
	r := newTestRegistry(t, Config{})
	s := createPaperfix(t, r)
	if _, err := s.AnswerFeedback(context.Background(), true); err == nil {
		t.Fatal("answer without a dialogue accepted")
	}
}
