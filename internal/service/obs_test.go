package service_test

// Observability-layer tests (DESIGN.md §9): the per-session trace endpoint,
// the Prometheus exposition at /metrics, request-id propagation, the
// structured access log, and the chaos-facing invariants (a recovered panic
// still produces a finished root span; /metrics stays scrapeable mid-storm).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"questpro/internal/faults"
	"questpro/internal/obs"
	"questpro/internal/service"
)

// getTraces fetches and decodes the session's retained root spans.
func getTraces(t *testing.T, c *client, base string) []map[string]any {
	t.Helper()
	status, resp := c.do(http.MethodGet, base+"/trace", nil)
	if status != http.StatusOK {
		t.Fatalf("trace: status %d (%v)", status, resp)
	}
	raw, _ := resp["traces"].([]any)
	var out []map[string]any
	for _, n := range raw {
		m, ok := n.(map[string]any)
		if !ok {
			t.Fatalf("trace node is %T, want object", n)
		}
		out = append(out, m)
	}
	return out
}

// findRoot returns the last retained root span of the given kind, or nil.
func findRoot(traces []map[string]any, kind string) map[string]any {
	var found map[string]any
	for _, n := range traces {
		if n["kind"] == kind {
			found = n
		}
	}
	return found
}

// checkDurations walks a decoded span tree asserting that at every level
// the children's summed durations do not exceed the parent's (the session
// is created with workers=1, so all child work is sequential and nested).
func checkDurations(t *testing.T, node map[string]any, path string) {
	t.Helper()
	parent, _ := node["duration_ns"].(float64)
	children, _ := node["children"].([]any)
	sum := 0.0
	for i, ch := range children {
		c := ch.(map[string]any)
		sum += c["duration_ns"].(float64)
		checkDurations(t, c, fmt.Sprintf("%s/%v[%d]", path, c["kind"], i))
	}
	if sum > parent {
		t.Errorf("%s: children sum %v ns > parent %v ns", path, sum, parent)
	}
}

// TestTraceEndpointSpanTree drives one inference on a workers=1 session and
// checks the invariants the trace endpoint promises: a session.infer root
// whose nested child durations sum to no more than each parent, and whose
// root counters equal the session's /stats totals.
func TestTraceEndpointSpanTree(t *testing.T) {
	c := newTestServer(t, service.Config{})
	base := createPaperfixSession(t, c, map[string]any{"workers": 1})
	if status, resp := c.post(base+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
		t.Fatalf("infer: status %d (%v)", status, resp)
	}

	traces := getTraces(t, c, base)
	if findRoot(traces, "session.examples") == nil {
		t.Error("no session.examples root span retained")
	}
	root := findRoot(traces, "session.infer")
	if root == nil {
		t.Fatalf("no session.infer root span in %d traces", len(traces))
	}
	if root["outcome"] != "ok" {
		t.Errorf("session.infer outcome = %v, want ok", root["outcome"])
	}
	labels, _ := root["labels"].(map[string]any)
	if labels["mode"] != "union" {
		t.Errorf("session.infer mode label = %v, want union", labels["mode"])
	}
	if labels["session_id"] == "" || labels["request_id"] == "" {
		t.Errorf("session.infer missing session/request labels: %v", labels)
	}
	checkDurations(t, root, "session.infer")

	// The root's counters are the per-operation deltas; with exactly one
	// inference they must equal the session's cumulative /stats totals.
	status, stats := c.do(http.MethodGet, base+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	want, _ := stats["counters"].(map[string]any)
	got, _ := root["counters"].(map[string]any)
	for _, key := range []string{"algorithm1_calls", "rounds", "cache_hits", "cache_misses", "gain_evals", "restarts"} {
		g, _ := got[key].(float64)
		w, _ := want[key].(float64)
		if g != w {
			t.Errorf("root counter %s = %v, stats total = %v", key, got[key], want[key])
		}
	}
}

// TestTraceFeedbackDialogue drives the feedback dialogue to completion and
// checks the background goroutine's own root span lands in the session
// trace with the questions counter set.
func TestTraceFeedbackDialogue(t *testing.T) {
	c := newTestServer(t, service.Config{TraceRing: 16})
	want := paperfixWant(t)
	base := createPaperfixSession(t, c, nil)
	if status, _ := c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		t.Fatal("infer failed")
	}
	status, resp := c.post(base+"/feedback", nil)
	if status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}
	questions := 0
	for i := 0; i < 32; i++ {
		if done, _ := resp["done"].(bool); done {
			break
		}
		res, _ := resp["result"].(string)
		questions++
		status, resp = c.post(base+"/feedback/answer", map[string]any{"include": want[res]})
		if status != http.StatusOK {
			t.Fatalf("answer: status %d (%v)", status, resp)
		}
	}
	if done, _ := resp["done"].(bool); !done {
		t.Fatal("dialogue did not converge")
	}

	// The dialogue span is finished by the background goroutine after the
	// final answer is delivered; poll briefly for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if dlg := findRoot(getTraces(t, c, base), "feedback.dialogue"); dlg != nil {
			if dlg["outcome"] != "ok" {
				t.Fatalf("feedback.dialogue outcome = %v, want ok", dlg["outcome"])
			}
			counters, _ := dlg["counters"].(map[string]any)
			if got, _ := counters["questions"].(float64); int(got) != questions {
				t.Fatalf("feedback.dialogue questions = %v, asked %d", counters["questions"], questions)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("feedback.dialogue root span never appeared in the trace")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceRingEviction caps the per-session ring at 2 and runs three
// operations: the oldest trace (session.examples) must be evicted.
func TestTraceRingEviction(t *testing.T) {
	c := newTestServer(t, service.Config{TraceRing: 2})
	base := createPaperfixSession(t, c, nil)
	for i := 0; i < 2; i++ {
		if status, _ := c.post(base+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
			t.Fatalf("infer %d failed", i)
		}
	}
	traces := getTraces(t, c, base)
	if len(traces) != 2 {
		t.Fatalf("ring retained %d traces, want 2", len(traces))
	}
	for _, n := range traces {
		if n["kind"] != "session.infer" {
			t.Errorf("ring retained %v, want only the two youngest (session.infer)", n["kind"])
		}
	}
}

// rawMetrics scrapes /metrics and returns the parsed families.
func rawMetrics(t *testing.T, c *client) map[string]*obs.MetricFamily {
	t.Helper()
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	fams, err := obs.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("metrics do not parse as Prometheus text format: %v", err)
	}
	return fams
}

// TestMetricsPromFormat checks /metrics against a strict text-exposition
// parser: every family has HELP and TYPE, counters are *_total, and both
// latency-histogram families are present and internally consistent.
func TestMetricsPromFormat(t *testing.T) {
	c := newTestServer(t, service.Config{})
	base := createPaperfixSession(t, c, nil)
	if status, _ := c.post(base+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
		t.Fatal("infer failed")
	}

	fams := rawMetrics(t, c)
	for name, mf := range fams {
		if mf.Help == "" {
			t.Errorf("family %s has no # HELP", name)
		}
		if mf.Type == "" {
			t.Errorf("family %s has no # TYPE", name)
		}
		if mf.Type == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %s does not end in _total", name)
		}
	}
	for name, typ := range map[string]string{
		"questprod_sessions_active":               "gauge",
		"questprod_worker_budget":                 "gauge",
		"questprod_sessions_created_total":        "counter",
		"questprod_infer_total":                   "counter",
		"questprod_gain_evals_total":              "counter",
		"questprod_panics_recovered_total":        "counter",
		"questprod_http_request_duration_seconds": "histogram",
		"questprod_span_duration_seconds":         "histogram",
	} {
		mf := fams[name]
		if mf == nil {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if mf.Type != typ {
			t.Errorf("family %s type = %s, want %s", name, mf.Type, typ)
		}
	}
	if mf := fams["questprod_infer_total"]; mf != nil {
		if v, ok := mf.Value(); !ok || v != 1 {
			t.Errorf("questprod_infer_total = %v, want 1", v)
		}
	}
	// The histograms carry per-endpoint / per-kind labels; the infer above
	// must have recorded into both.
	found := map[string]bool{}
	if mf := fams["questprod_http_request_duration_seconds"]; mf != nil {
		for _, s := range mf.Samples {
			found["endpoint:"+s.Labels["endpoint"]] = true
		}
	}
	if mf := fams["questprod_span_duration_seconds"]; mf != nil {
		for _, s := range mf.Samples {
			found["kind:"+s.Labels["kind"]] = true
		}
	}
	for _, want := range []string{"endpoint:infer", "endpoint:create", "kind:session.infer", "kind:merge.pair"} {
		if !found[want] {
			t.Errorf("no histogram samples for %s", want)
		}
	}
}

// TestMetricsScrapeUnderLoad scrapes /metrics continuously while sessions
// run: every scrape must parse cleanly (the -race build of this test is
// the consistency audit for writeMetrics' one-snapshot rule).
func TestMetricsScrapeUnderLoad(t *testing.T) {
	c := newTestServer(t, service.Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rawMetrics(t, c)
			}
		}()
	}
	var flows sync.WaitGroup
	for i := 0; i < 4; i++ {
		flows.Add(1)
		go func() {
			defer flows.Done()
			chaosFlow(t, c)
		}()
	}
	flows.Wait()
	close(stop)
	wg.Wait()

	fams := rawMetrics(t, c)
	if mf := fams["questprod_sessions_created_total"]; mf != nil {
		if v, _ := mf.Value(); v < 4 {
			t.Errorf("questprod_sessions_created_total = %v, want >= 4", v)
		}
	}
}

// TestRequestIDPropagation checks both halves of the request-id contract:
// an incoming X-Request-Id is honored and echoed; a missing one is minted
// and echoed.
func TestRequestIDPropagation(t *testing.T) {
	c := newTestServer(t, service.Config{})

	req, _ := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
	req.Header.Set("X-Request-Id", "rid-12345")
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "rid-12345" {
		t.Errorf("incoming request id not echoed: got %q", got)
	}

	resp, err = c.http.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("no request id minted for a bare request")
	}

	// Two bare requests get distinct ids.
	resp2, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if a, b := resp.Header.Get("X-Request-Id"), resp2.Header.Get("X-Request-Id"); a == b {
		t.Errorf("two requests share request id %q", a)
	}
}

// TestFaultPanicRequestIDInLastError injects a panic at budget admission on
// a request carrying a known X-Request-Id: the recovered error stored in
// the session's last_error must name that request id, so an operator can
// join the 500 response, the access log and the session state.
func TestFaultPanicRequestIDInLastError(t *testing.T) {
	c := newTestServer(t, service.Config{})
	base := createPaperfixSession(t, c, nil)

	in := faults.NewInjector(1, faults.Rule{Point: faults.BudgetAcquire, OnNth: 1, Panic: true})
	restore := faults.Activate(in)
	body, _ := json.Marshal(map[string]any{"mode": "union"})
	req, _ := http.NewRequest(http.MethodPost, c.base+base+"/infer", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "rid-panic-join")
	resp, err := c.http.Do(req)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("infer under panic: status %d, want 500", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "rid-panic-join" {
		t.Errorf("500 response lost the request id: got %q", got)
	}

	status, stats := c.do(http.MethodGet, base+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	lastErr, _ := stats["last_error"].(string)
	if !strings.Contains(lastErr, "rid-panic-join") {
		t.Errorf("last_error %q does not name the request id", lastErr)
	}
}

// syncWriter serializes writes from concurrent request handlers into one
// buffer for log assertions.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestAccessLogFields routes the structured log into a buffer and checks
// the per-request record carries the fields an operator greps for.
func TestAccessLogFields(t *testing.T) {
	var out syncWriter
	logger := slog.New(slog.NewJSONHandler(&out, nil))
	c := newTestServer(t, service.Config{Logger: logger})
	createPaperfixSession(t, c, nil)

	var create map[string]any
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if rec["msg"] == "request" && rec["endpoint"] == "create" {
			create = rec
		}
	}
	if create == nil {
		t.Fatalf("no request record for the create endpoint in:\n%s", out.String())
	}
	if create["method"] != "POST" {
		t.Errorf("method = %v, want POST", create["method"])
	}
	if status, _ := create["status"].(float64); status != float64(http.StatusCreated) {
		t.Errorf("status = %v, want 201", create["status"])
	}
	if rid, _ := create["request_id"].(string); rid == "" {
		t.Error("request record has no request_id")
	}
	if _, ok := create["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms = %v, want a number", create["duration_ms"])
	}
	for _, flag := range []string{"shed", "degraded", "panic"} {
		if v, ok := create[flag].(bool); !ok || v {
			t.Errorf("%s = %v, want false", flag, create[flag])
		}
	}
}

// TestChaosPanicRootSpanOutcome checks a recovered panic still produces a
// finished root span: the trace for the poisoned inference is retained
// with outcome=panic, not dropped mid-unwind.
func TestChaosPanicRootSpanOutcome(t *testing.T) {
	c := newTestServer(t, service.Config{})
	base := createPaperfixSession(t, c, nil)

	in := faults.NewInjector(1, faults.Rule{Point: faults.BudgetAcquire, OnNth: 1, Panic: true})
	restore := faults.Activate(in)
	status, _ := c.post(base+"/infer", map[string]any{"mode": "union"})
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("infer under panic: status %d, want 500", status)
	}

	root := findRoot(getTraces(t, c, base), "session.infer")
	if root == nil {
		t.Fatal("panicked inference left no session.infer root span")
	}
	if root["outcome"] != "panic" {
		t.Errorf("root span outcome = %v, want panic", root["outcome"])
	}

	// The session is not poisoned: a clean inference afterwards traces ok.
	if status, _ := c.post(base+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
		t.Fatalf("clean infer after panic: status %d", status)
	}
	if root := findRoot(getTraces(t, c, base), "session.infer"); root["outcome"] != "ok" {
		t.Errorf("post-recovery root span outcome = %v, want ok", root["outcome"])
	}
}

// TestChaosMetricsScrapeableMidStorm keeps /metrics scrapeable and
// parseable while panics are being injected under concurrent sessions.
func TestChaosMetricsScrapeableMidStorm(t *testing.T) {
	c := newTestServer(t, service.Config{})
	in := faults.NewInjector(7,
		faults.Rule{Point: faults.MergePair, Prob: 0.2, MaxFires: 64, Panic: true},
		faults.Rule{Point: faults.BudgetAcquire, Prob: 0.2, MaxFires: 16, Panic: true},
	)
	restore := faults.Activate(in)
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rawMetrics(t, c)
		}
	}()
	var flows sync.WaitGroup
	for i := 0; i < 4; i++ {
		flows.Add(1)
		go func() {
			defer flows.Done()
			chaosFlow(t, c)
		}()
	}
	flows.Wait()
	close(stop)
	scrapes.Wait()
	restore()

	if in.Fired(faults.MergePair) == 0 && in.Fired(faults.BudgetAcquire) == 0 {
		t.Skip("no panic fired; storm tested nothing this run")
	}
	fams := rawMetrics(t, c)
	mf := fams["questprod_panics_recovered_total"]
	if mf == nil {
		t.Fatal("questprod_panics_recovered_total missing after storm")
	}
}
