package service

// In-package tests of the durability layer (persist.go + snapshot.go over
// internal/store): restore fidelity across a registry restart, WAL replay,
// quarantine on restore, idle-clock preservation, eviction GC, and the
// Close-time flush of sessions left dirty by injected persist failures.
// The kill -9 variant of the same scenario lives in cmd/questprod's crash
// harness; here the "crash" is a graceful Close so the tests stay hermetic
// and fast.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"questpro/internal/core"
	"questpro/internal/faults"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
	"questpro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// runDialogueAllFalse drives a started dialogue to completion answering
// "exclude" to everything, returning the question values in order.
func runDialogueAllFalse(t *testing.T, s *Session, ev FeedbackEvent) []string {
	t.Helper()
	var qs []string
	for i := 0; !ev.Done; i++ {
		if i > 64 {
			t.Fatal("dialogue did not converge in 64 questions")
		}
		qs = append(qs, ev.Question.Value)
		var err error
		ev, err = s.AnswerFeedback(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	return qs
}

// TestPersistRestoreRoundTrip is the core fidelity check: a session parked
// mid-dialogue (one answer given, the next question delivered but
// unanswered) is shut down, restored into a fresh registry from its
// snapshot, must re-serve the pending question idempotently, and the
// finished dialogue must produce the byte-identical SPARQL an uninterrupted
// session produces.
func TestPersistRestoreRoundTrip(t *testing.T) {
	ctx := context.Background()

	// Control: the full all-false dialogue in a store-less registry.
	ctrl := newTestRegistry(t, Config{})
	cs := createPaperfix(t, ctrl)
	if _, err := cs.Infer(ctx, "topk"); err != nil {
		t.Fatal(err)
	}
	ev, err := cs.StartFeedback(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done {
		t.Skip("candidates collapsed without questions")
	}
	want := runDialogueAllFalse(t, cs, ev)
	if len(want) < 2 {
		t.Skipf("dialogue asks only %d question(s); cannot park mid-dialogue", len(want))
	}
	wantSPARQL := cs.Result().SPARQL()

	// Interrupted run: answer question 1, leave question 2 delivered but
	// unanswered, then shut the registry down (flushing the snapshot).
	dir := t.TempDir()
	r1 := NewRegistry(Config{Store: openStore(t, dir)})
	s := createPaperfix(t, r1)
	id := s.ID
	if _, err := s.Infer(ctx, "topk"); err != nil {
		t.Fatal(err)
	}
	ev, err = s.StartFeedback(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done || ev.Question.Value != want[0] {
		t.Fatalf("first question = %+v, want %q", ev, want[0])
	}
	ev, err = s.AnswerFeedback(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done || ev.Question.Value != want[1] {
		t.Fatalf("second question = %+v, want %q", ev, want[1])
	}
	r1.Close()

	// Restart: the session is restored, the dialogue resumed, and the
	// delivered-but-unanswered question re-served — idempotently.
	r2 := NewRegistry(Config{Store: openStore(t, dir)})
	t.Cleanup(r2.Close)
	if got := r2.Metrics().SnapshotRestores; got != 1 {
		t.Fatalf("SnapshotRestores = %d, want 1", got)
	}
	s2, ok := r2.Get(id)
	if !ok {
		t.Fatalf("session %s not restored", id)
	}
	for i := 0; i < 2; i++ {
		pend, err := s2.PendingFeedback(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if pend.Done || pend.Question == nil || pend.Question.Value != want[1] {
			t.Fatalf("pending read %d = %+v, want question %q", i, pend, want[1])
		}
		if pend.Questions != 2 {
			t.Fatalf("pending read %d reports %d questions asked, want 2", i, pend.Questions)
		}
	}

	// Finish the dialogue: the remaining question sequence and the final
	// query must match the uninterrupted control byte for byte.
	pend, err := s2.PendingFeedback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]string{want[0]}, runDialogueAllFalse(t, s2, pend)...)
	if len(got) != len(want) {
		t.Fatalf("resumed dialogue asked %d questions, control asked %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("question %d = %q, control asked %q", i, got[i], want[i])
		}
	}
	if gotSPARQL := s2.Result().SPARQL(); gotSPARQL != wantSPARQL {
		t.Fatalf("resumed SPARQL diverged:\n%s\n--- control ---\n%s", gotSPARQL, wantSPARQL)
	}
	if st := s2.Stats(); st.Infers != 1 || !st.HasQuery {
		t.Fatalf("restored stats = %+v", st)
	}
}

// TestRestoreHonorsIdleClock: the snapshot's last-used clock is installed
// verbatim on restore, so a session that out-idled its TTL while the
// process was down is evicted by the first janitor scan — and its snapshot
// is deleted with it.
func TestRestoreHonorsIdleClock(t *testing.T) {
	dir := t.TempDir()
	r1 := NewRegistry(Config{Store: openStore(t, dir)})
	s := createPaperfix(t, r1)
	id := s.ID
	// Backdate the idle clock and force one more snapshot so it lands on disk.
	s.last.Store(time.Now().Add(-time.Hour).UnixNano())
	s.mu.Lock()
	s.markMutatedLocked(nil)
	s.persistPendingLocked(context.Background())
	s.mu.Unlock()
	r1.Close()

	st2 := openStore(t, dir)
	r2 := newTestRegistry(t, Config{Store: st2, SessionTTL: time.Minute})
	if _, ok := r2.Get(id); !ok {
		t.Fatal("stale session not restored at all")
	}
	// Get touches the clock; restore the staleness before the scan.
	s2, _ := r2.Get(id)
	s2.last.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := r2.evictExpired(time.Now()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, ok := r2.Get(id); ok {
		t.Fatal("expired session still resolvable after restore")
	}
	ids, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("snapshots %v still on disk after eviction", ids)
	}
}

// TestEvictionDeletesSnapshot: TTL eviction garbage-collects the evicted
// session's snapshot and journal — no orphaned files accumulate.
func TestEvictionDeletesSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := newTestRegistry(t, Config{Store: st, SessionTTL: time.Minute})
	s := createPaperfix(t, r)
	if ids, _ := st.List(); len(ids) != 1 {
		t.Fatalf("List = %v, want the one session", ids)
	}
	s.last.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := r.evictExpired(time.Now()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("snapshots %v survived eviction", ids)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			t.Fatalf("orphaned file %s after eviction", e.Name())
		}
	}
}

// TestCloseFlushesDirtySessions: when every persist fails (injected), the
// operations still succeed — availability first — and the session is left
// dirty; once the fault clears, Registry.Close's flush writes the final
// state, and a restart restores it completely.
func TestCloseFlushesDirtySessions(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r1 := NewRegistry(Config{Store: openStore(t, dir)})
	s := createPaperfix(t, r1)
	id := s.ID

	// Fail every store operation from here on (activated after creation so
	// the session-id mint and the initial snapshot are not affected).
	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.SessionSnapshot, FirstN: 1 << 20}))
	if _, err := s.Infer(ctx, "topk"); err != nil {
		restore()
		t.Fatalf("Infer under persist faults must still succeed: %v", err)
	}
	if m := r1.Metrics(); m.SnapshotErrors == 0 {
		restore()
		t.Fatalf("failed persist not counted: %+v", m)
	}
	restore()
	r1.Close()

	r2 := newTestRegistry(t, Config{Store: openStore(t, dir)})
	s2, ok := r2.Get(id)
	if !ok {
		t.Fatalf("session %s not restored after dirty flush", id)
	}
	if st := s2.Stats(); st.Infers != 1 || !st.HasQuery {
		t.Fatalf("flushed state incomplete: %+v", st)
	}
	if s2.Result() == nil {
		t.Fatal("inferred query lost")
	}
}

// TestWALReplayAfterTornSnapshot: a journal record newer than the snapshot
// (the post-WAL-append, pre-snapshot crash window) is replayed through the
// public session op on restore — and the replay re-persists, so a second
// restart needs no journal at all.
func TestWALReplayAfterTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	r1 := NewRegistry(Config{Store: openStore(t, dir)})
	s := createPaperfix(t, r1)
	id := s.ID
	r1.Close()

	// Simulate the crash window: the infer's journal record landed, the
	// snapshot after it did not.
	st2 := openStore(t, dir)
	data, err := st2.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeSessionSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(walRecord{Seq: snap.Seq + 1, Op: walOpInfer, Mode: "union"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendWAL(id, rec); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(Config{Store: st2})
	s2, ok := r2.Get(id)
	if !ok {
		t.Fatalf("session %s not restored", id)
	}
	if st := s2.Stats(); st.Infers != 1 || !st.HasQuery {
		t.Fatalf("journal record not replayed: %+v", st)
	}
	wantSPARQL := s2.Result().SPARQL()
	r2.Close()

	// The replayed op re-persisted itself: a third incarnation restores the
	// same state from the snapshot alone.
	r3 := newTestRegistry(t, Config{Store: openStore(t, dir)})
	s3, ok := r3.Get(id)
	if !ok {
		t.Fatal("session lost after replay-then-restart")
	}
	if st := s3.Stats(); st.Infers != 1 {
		t.Fatalf("replay did not catch the snapshot up: %+v", st)
	}
	if got := s3.Result().SPARQL(); got != wantSPARQL {
		t.Fatalf("SPARQL diverged across restarts:\n%s\n--- want ---\n%s", got, wantSPARQL)
	}
}

// TestCorruptSnapshotQuarantinedOnRestore: a garbage snapshot file is moved
// to quarantine during restore, counted, and the registry comes up healthy.
func TestCorruptSnapshotQuarantinedOnRestore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newTestRegistry(t, Config{Store: openStore(t, dir)})
	if got := r.Metrics().SnapshotQuarantined; got != 1 {
		t.Fatalf("SnapshotQuarantined = %d, want 1", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", r.Len())
	}
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(ents))
	}
	// The registry is healthy: new sessions create and persist normally.
	s := createPaperfix(t, r)
	if _, ok := r.Get(s.ID); !ok {
		t.Fatal("fresh session unusable after a quarantined restore")
	}
}

// TestRestorePartialSession: a partial-provenance session — fragments, the
// cached completion report, and a dialogue over the completed examples —
// survives a restart.
func TestRestorePartialSession(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r1 := NewRegistry(Config{Store: openStore(t, dir)})
	o := paperfix.Ontology()
	s, err := r1.Create(o, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID
	exs := paperfix.Explanations(o)
	pex := make(provenance.PartialExampleSet, len(exs))
	for i, ex := range exs {
		if pex[i], err = provenance.NewPartialByValue(ex.Graph, ex.DistinguishedValue(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetPartialExamples(ctx, pex); err != nil {
		t.Fatal(err)
	}
	res, err := s.Infer(ctx, "topk")
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == nil {
		t.Fatal("partial inference reported no completion phase")
	}
	ev, err := s.StartFeedback(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSPARQL := res.Query.SPARQL()
	r1.Close()

	r2 := newTestRegistry(t, Config{Store: openStore(t, dir)})
	s2, ok := r2.Get(id)
	if !ok {
		t.Fatalf("partial session %s not restored", id)
	}
	rep, completed, ok := s2.Completions()
	if !ok || len(completed) != len(pex) {
		t.Fatalf("completion cache lost: ok=%v completed=%d", ok, len(completed))
	}
	if len(rep.Choices) != len(pex) {
		t.Fatalf("completion report lost its choices: %+v", rep)
	}
	if ev.Done {
		// The dialogue collapsed immediately pre-restart; the chosen query
		// must still be there.
		if s2.Result() == nil {
			t.Fatal("chosen query lost")
		}
		return
	}
	if got := s2.Result().SPARQL(); got != wantSPARQL {
		t.Fatalf("restored result diverged:\n%s\n--- want ---\n%s", got, wantSPARQL)
	}
	// The pre-restart question is re-served and the dialogue finishes.
	pend, err := s2.PendingFeedback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pend.Done || pend.Question == nil || pend.Question.Value != ev.Question.Value {
		t.Fatalf("pending after restore = %+v, want question %q", pend, ev.Question.Value)
	}
	fin := pend
	for i := 0; !fin.Done && i < 64; i++ {
		if fin, err = s2.AnswerFeedback(ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	if !fin.Done {
		t.Fatal("resumed partial dialogue did not converge")
	}
	if s2.Result() == nil {
		t.Fatal("no chosen query after resumed dialogue")
	}
}
