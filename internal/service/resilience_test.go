package service_test

// Fault-tolerance tests for the HTTP service: load shedding under a
// saturated worker budget, panic isolation (merge-engine workers and the
// request goroutine itself), and guard-exhausted degraded inference. The
// chaos suite in chaos_test.go composes these failure modes; here each is
// pinned in isolation.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"questpro/internal/faults"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/service"
)

// createPaperfixSession creates a session over the running example's
// ontology (with the given create options, may be nil), submits the
// example-set, and returns the session's base path.
func createPaperfixSession(t *testing.T, c *client, options map[string]any) string {
	t.Helper()
	body := map[string]any{"ontology": ntriples.Format(paperfix.Ontology())}
	if options != nil {
		body["options"] = options
	}
	status, resp := c.post("/v1/sessions", body)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", status, resp)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, resp := c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: status %d (%v)", status, resp)
	}
	return base
}

// metricsText fetches /metrics as raw text.
func metricsText(t *testing.T, c *client) string {
	t.Helper()
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// A saturated worker budget sheds inference requests with 429 and a
// Retry-After hint instead of queueing them unboundedly; once the budget
// frees up the same request succeeds.
func TestHTTPLoadShedSaturatedBudget(t *testing.T) {
	reg := service.NewRegistry(service.Config{
		TotalWorkers:  2,
		AdmissionWait: 50 * time.Millisecond,
		RetryAfter:    3 * time.Second,
	})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	base := createPaperfixSession(t, c, nil)

	// Hold the whole budget, standing in for long inferences in flight.
	held, err := reg.Budget().Acquire(bg, reg.Budget().Size())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.http.Post(c.base+base+"/infer", "application/json",
		strings.NewReader(`{"mode": "union"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("infer under saturation: status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}

	reg.Budget().Release(held)
	status, out := c.post(base+"/infer", map[string]any{"mode": "union"})
	if status != http.StatusOK {
		t.Fatalf("infer after release: status %d (%v)", status, out)
	}
	if s, _ := out["sparql"].(string); !strings.Contains(s, "SELECT") {
		t.Fatalf("infer after release: implausible sparql %q", s)
	}

	if m := metricsText(t, c); !strings.Contains(m, "questprod_load_shed_total 1") {
		t.Fatalf("metrics missing shed count:\n%s", m)
	}
}

// A panic on a merge-engine worker goroutine is recovered in-goroutine and
// surfaces as a 500 on the one request that hit it; the session stays
// usable and other sessions are untouched.
func TestHTTPMergePanicIsolatedToSession(t *testing.T) {
	c := newTestServer(t, service.Config{})
	baseA := createPaperfixSession(t, c, nil)
	baseB := createPaperfixSession(t, c, nil)

	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.MergePair, FirstN: 1 << 30, Panic: true}))
	status, resp := c.post(baseA+"/infer", map[string]any{"mode": "union"})
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("infer under merge panics: status %d (%v), want 500", status, resp)
	}
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "injected panic") {
		t.Fatalf("error %q does not name the recovered panic", resp["error"])
	}

	// The poisoned session recovered; the other one never noticed.
	if status, resp := c.post(baseA+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
		t.Fatalf("infer after recovery: status %d (%v)", status, resp)
	}
	if status, resp := c.post(baseB+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		t.Fatalf("sibling session infer: status %d (%v)", status, resp)
	}
}

// A panic on the request goroutine itself (here: injected at worker-budget
// admission) hits the session's recovery boundary: 500 to the client, the
// sanitized message in the session's stats, the registry's panic counter
// bumped — and the session still serves the next request.
func TestHTTPRequestPanicRecordedInStats(t *testing.T) {
	c := newTestServer(t, service.Config{})
	base := createPaperfixSession(t, c, nil)

	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.BudgetAcquire, OnNth: 1, Panic: true}))
	status, resp := c.post(base+"/infer", map[string]any{"mode": "union"})
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("infer under admission panic: status %d (%v), want 500", status, resp)
	}

	status, stats := c.do(http.MethodGet, base+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	lastErr, _ := stats["last_error"].(string)
	if !strings.Contains(lastErr, "injected panic") {
		t.Fatalf("stats last_error = %q, want the recovered panic", lastErr)
	}
	if strings.Contains(lastErr, "goroutine") {
		t.Fatalf("stats last_error leaks a stack trace: %q", lastErr)
	}

	if m := metricsText(t, c); !strings.Contains(m, "questprod_panics_recovered_total 1") {
		t.Fatalf("metrics missing panic count:\n%s", m)
	}

	if status, resp := c.post(base+"/infer", map[string]any{"mode": "union"}); status != http.StatusOK {
		t.Fatalf("infer after recovery: status %d (%v)", status, resp)
	}
}

// An exhausted resource guard degrades inference instead of failing it:
// 200 with "degraded": true and a usable (partial) query. A roomy guard
// meters without degrading and reports its usage in the stats.
func TestHTTPDegradedInferenceJSON(t *testing.T) {
	c := newTestServer(t, service.Config{})

	tight := createPaperfixSession(t, c, map[string]any{"max_steps": 1})
	status, resp := c.post(tight+"/infer", map[string]any{"mode": "union"})
	if status != http.StatusOK {
		t.Fatalf("tight-guard infer: status %d (%v), want 200", status, resp)
	}
	if d, _ := resp["degraded"].(bool); !d {
		t.Fatalf(`tight-guard infer: "degraded" not set in %v`, resp)
	}
	if s, _ := resp["sparql"].(string); !strings.Contains(s, "SELECT") {
		t.Fatalf("tight-guard infer: implausible partial sparql %q", s)
	}

	roomy := createPaperfixSession(t, c, map[string]any{"max_steps": float64(1 << 40)})
	status, resp = c.post(roomy+"/infer", map[string]any{"mode": "union"})
	if status != http.StatusOK {
		t.Fatalf("roomy-guard infer: status %d (%v)", status, resp)
	}
	if d, _ := resp["degraded"].(bool); d {
		t.Fatalf("roomy-guard infer reported degraded: %v", resp)
	}
	st, _ := resp["stats"].(map[string]any)
	if gs, _ := st["guard_steps"].(float64); gs <= 0 {
		t.Fatalf("roomy-guard infer: guard_steps = %v, want > 0", st["guard_steps"])
	}

	if m := metricsText(t, c); !strings.Contains(m, "questprod_degraded_total 1") {
		t.Fatalf("metrics missing degraded count:\n%s", m)
	}
}
