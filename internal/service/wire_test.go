package service_test

// Wire-parity tests: every request body is a marshaled internal/api type
// and every response body — success or error — must decode back into the
// matching api type under DisallowUnknownFields. Any field the server
// emits that the versioned contract does not declare fails the suite, so
// internal/api stays the single source of truth for the JSON shapes.

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"questpro/internal/api"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/service"
	"questpro/internal/workload/sampling"
)

// apiDo sends in (nil for an empty body) and strictly decodes the response
// into out. The decoder rejects unknown fields in both directions of the
// contract: requests are api types by construction, responses by decoding.
func apiDo(t *testing.T, c *client, method, path string, in, out any) int {
	t.Helper()
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(out); err != nil {
			t.Fatalf("%s %s: response is not a strict %T: %v\nbody: %s", method, path, out, err, raw)
		}
	}
	return resp.StatusCode
}

// apiExamples renders the running example's explanations as wire examples.
func apiExamples() []api.Example {
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	return exs
}

// TestWireParityLifecycle drives a full session — create, examples, top-k
// inference, feedback to convergence, completions, stats, trace, delete —
// with every body round-tripped through the api types strictly.
func TestWireParityLifecycle(t *testing.T) {
	c := newTestServer(t, service.Config{})

	var created api.CreateSessionResponse
	status := apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions",
		api.CreateSessionRequest{
			Ontology: ntriples.Format(paperfix.Ontology()),
			Options:  api.Options{NumIter: 40},
		}, &created)
	if status != http.StatusCreated || created.SessionID == "" {
		t.Fatalf("create: status %d, id %q", status, created.SessionID)
	}
	base := "/" + api.Version + "/sessions/" + created.SessionID

	exs := apiExamples()
	var ack api.ExamplesResponse
	if status := apiDo(t, c, http.MethodPost, base+"/examples", api.ExamplesRequest{Examples: exs}, &ack); status != http.StatusOK {
		t.Fatalf("examples: status %d", status)
	}
	if ack.Examples != len(exs) || ack.Partial != 0 {
		t.Fatalf("examples ack = %+v, want %d full examples", ack, len(exs))
	}

	var inf api.InferResponse
	if status := apiDo(t, c, http.MethodPost, base+"/infer", api.InferRequest{Mode: "topk"}, &inf); status != http.StatusOK {
		t.Fatalf("infer: status %d", status)
	}
	if !strings.Contains(inf.SPARQL, "SELECT") || len(inf.Candidates) == 0 {
		t.Fatalf("infer: implausible response %+v", inf)
	}
	if inf.Completions != nil || inf.Stats.CompletionsConsidered != 0 {
		t.Fatalf("full-provenance infer reported completions: %+v", inf)
	}

	// No fragments were submitted, so the report must be null.
	var comps api.CompletionsResponse
	if status := apiDo(t, c, http.MethodGet, base+"/completions", nil, &comps); status != http.StatusOK {
		t.Fatalf("completions: status %d", status)
	}
	if comps.Completions != nil {
		t.Fatalf("completions on a full-provenance session: %+v", comps.Completions)
	}

	var fb api.FeedbackResponse
	if status := apiDo(t, c, http.MethodPost, base+"/feedback", api.FeedbackRequest{}, &fb); status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}
	for i := 0; i < 32 && !fb.Done; i++ {
		if fb.Result == "" || fb.Provenance == "" {
			t.Fatalf("pending question missing fields: %+v", fb)
		}
		fb = api.FeedbackResponse{}
		if status := apiDo(t, c, http.MethodPost, base+"/feedback/answer", api.AnswerRequest{Include: false}, &fb); status != http.StatusOK {
			t.Fatalf("answer: status %d", status)
		}
	}
	if !fb.Done || !strings.Contains(fb.SPARQL, "SELECT") {
		t.Fatalf("feedback did not converge: %+v", fb)
	}

	var st api.SessionStatsResponse
	if status := apiDo(t, c, http.MethodGet, base+"/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	if st.Infers != 1 || st.Examples != len(exs) || !st.HasQuery {
		t.Fatalf("stats = %+v", st)
	}

	var tr api.TraceResponse
	if status := apiDo(t, c, http.MethodGet, base+"/trace", nil, &tr); status != http.StatusOK {
		t.Fatalf("trace: status %d", status)
	}

	var del api.DeleteSessionResponse
	if status := apiDo(t, c, http.MethodDelete, base, nil, &del); status != http.StatusOK || !del.Deleted {
		t.Fatalf("delete: status %d, %+v", status, del)
	}
}

// TestWireParityErrorEnvelope checks that non-2xx responses of different
// layers all decode strictly into the one api.Error shape with the
// documented codes.
func TestWireParityErrorEnvelope(t *testing.T) {
	c := newTestServer(t, service.Config{})

	var e api.Error
	status := apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions/deadbeef/infer", api.InferRequest{}, &e)
	if status != http.StatusNotFound || e.Code != api.CodeNotFound || e.Message == "" {
		t.Fatalf("unknown session: status %d, envelope %+v", status, e)
	}

	e = api.Error{}
	status = apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions",
		api.CreateSessionRequest{Ontology: "a b\n"}, &e)
	if status != http.StatusBadRequest || e.Code != api.CodeBadRequest || e.Message == "" {
		t.Fatalf("bad ontology: status %d, envelope %+v", status, e)
	}

	// Inference without an example-set is a session-layer failure; it must
	// ride the same envelope.
	var created api.CreateSessionResponse
	if status := apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions",
		api.CreateSessionRequest{Ontology: ntriples.Format(paperfix.Ontology())}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	e = api.Error{}
	status = apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions/"+created.SessionID+"/infer", api.InferRequest{Mode: "union"}, &e)
	if status != http.StatusBadRequest || e.Code != api.CodeBadRequest || !strings.Contains(e.Message, "example") {
		t.Fatalf("infer without examples: status %d, envelope %+v", status, e)
	}
}

// TestWireParityPartialExamples round-trips a degraded example-set: the
// server must acknowledge the fragments, complete them, and report the
// completion phase in both the infer response and the completions endpoint
// — all in strict api shapes.
func TestWireParityPartialExamples(t *testing.T) {
	c := newTestServer(t, service.Config{})

	var created api.CreateSessionResponse
	if status := apiDo(t, c, http.MethodPost, "/"+api.Version+"/sessions",
		api.CreateSessionRequest{Ontology: ntriples.Format(paperfix.Ontology())}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/" + api.Version + "/sessions/" + created.SessionID

	o := paperfix.Ontology()
	full := paperfix.Explanations(o)
	rng := rand.New(rand.NewSource(3))
	var wire []api.Example
	for _, ex := range full {
		p, err := sampling.Degrade(ex, 34, rng)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, api.Example{
			Triples:       ntriples.Format(p.Graph),
			Distinguished: p.DistinguishedValue(),
			Partial:       &api.PartialSpec{MissingEdges: p.MissingEdges},
		})
	}

	var ack api.ExamplesResponse
	if status := apiDo(t, c, http.MethodPost, base+"/examples", api.ExamplesRequest{Examples: wire}, &ack); status != http.StatusOK {
		t.Fatalf("examples: status %d", status)
	}
	if ack.Examples != len(wire) || ack.Partial != len(wire) {
		t.Fatalf("partial ack = %+v, want %d fragments", ack, len(wire))
	}

	var inf api.InferResponse
	if status := apiDo(t, c, http.MethodPost, base+"/infer", api.InferRequest{Mode: "union"}, &inf); status != http.StatusOK {
		t.Fatalf("infer: status %d", status)
	}
	if !strings.Contains(inf.SPARQL, "SELECT") {
		t.Fatalf("infer: implausible sparql %q", inf.SPARQL)
	}
	if inf.Completions == nil || inf.Completions.Considered == 0 || len(inf.Completions.Choices) != len(wire) {
		t.Fatalf("infer did not report completions: %+v", inf.Completions)
	}
	if inf.Stats.CompletionsConsidered != inf.Completions.Considered {
		t.Fatalf("stats/completions disagree: %d vs %d",
			inf.Stats.CompletionsConsidered, inf.Completions.Considered)
	}

	var comps api.CompletionsResponse
	if status := apiDo(t, c, http.MethodGet, base+"/completions", nil, &comps); status != http.StatusOK {
		t.Fatalf("completions: status %d", status)
	}
	if comps.Completions == nil || comps.Completions.Considered != inf.Completions.Considered {
		t.Fatalf("completions endpoint disagrees with infer: %+v vs %+v", comps.Completions, inf.Completions)
	}
}
