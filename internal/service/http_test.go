package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"questpro/internal/eval"
	"questpro/internal/experiments"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/query"
	"questpro/internal/service"
	"questpro/internal/workload/sampling"
)

var bg = context.Background()

// client is a minimal JSON client over the test server.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func (c *client) do(method, path string, body any) (int, map[string]any) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 && json.Valid(raw) {
		if err := json.Unmarshal(raw, &out); err != nil {
			c.t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func (c *client) post(path string, body any) (int, map[string]any) {
	return c.do(http.MethodPost, path, body)
}

func newTestServer(t *testing.T, cfg service.Config) *client {
	t.Helper()
	reg := service.NewRegistry(cfg)
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)
	return &client{t: t, base: ts.URL, http: ts.Client()}
}

// paperfixExamples renders the running example's explanations in the wire
// format.
func paperfixExamples() map[string]any {
	o := paperfix.Ontology()
	var exs []map[string]string
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, map[string]string{
			"triples":       ntriples.Format(e.Graph),
			"distinguished": e.DistinguishedValue(),
		})
	}
	return map[string]any{"examples": exs}
}

// runSessionE2E drives one full lifecycle: create, submit examples, top-k
// inference, feedback dialogue to completion, stats, delete. The oracle
// mimics a user whose intended query is Union(Q3, Q4).
func runSessionE2E(t *testing.T, c *client, wantResult map[string]bool) error {
	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		return fmt.Errorf("create: status %d (%v)", status, resp)
	}
	id, _ := resp["session_id"].(string)
	if id == "" {
		return fmt.Errorf("create: no session_id in %v", resp)
	}
	base := "/v1/sessions/" + id

	if status, resp = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		return fmt.Errorf("examples: status %d (%v)", status, resp)
	}

	status, resp = c.post(base+"/infer", map[string]any{"mode": "topk"})
	if status != http.StatusOK {
		return fmt.Errorf("infer: status %d (%v)", status, resp)
	}
	if s, _ := resp["sparql"].(string); !strings.Contains(s, "SELECT") {
		return fmt.Errorf("infer: implausible sparql %q", s)
	}
	if cands, _ := resp["candidates"].([]any); len(cands) == 0 {
		return fmt.Errorf("infer: no candidates in %v", resp)
	}

	status, resp = c.post(base+"/feedback", nil)
	if status != http.StatusOK {
		return fmt.Errorf("feedback: status %d (%v)", status, resp)
	}
	for i := 0; i < 32; i++ {
		if done, _ := resp["done"].(bool); done {
			break
		}
		res, _ := resp["result"].(string)
		if res == "" {
			return fmt.Errorf("feedback: question without result: %v", resp)
		}
		if prov, _ := resp["provenance"].(string); prov == "" {
			return fmt.Errorf("feedback: question without provenance: %v", resp)
		}
		status, resp = c.post(base+"/feedback/answer", map[string]any{"include": wantResult[res]})
		if status != http.StatusOK {
			return fmt.Errorf("answer: status %d (%v)", status, resp)
		}
	}
	if done, _ := resp["done"].(bool); !done {
		return fmt.Errorf("feedback did not converge: %v", resp)
	}
	if s, _ := resp["sparql"].(string); !strings.Contains(s, "SELECT") {
		return fmt.Errorf("feedback: no final query in %v", resp)
	}

	status, resp = c.do(http.MethodGet, base+"/stats", nil)
	if status != http.StatusOK {
		return fmt.Errorf("stats: status %d", status)
	}
	if n, _ := resp["infers"].(float64); n != 1 {
		return fmt.Errorf("stats: infers = %v, want 1", resp["infers"])
	}

	if status, resp = c.do(http.MethodDelete, base, nil); status != http.StatusOK {
		return fmt.Errorf("delete: status %d (%v)", status, resp)
	}
	return nil
}

// TestHTTPEndToEndConcurrent runs 32 complete sessions concurrently against
// one server (create → examples → infer → feedback → stats → delete); the
// -race build doubles as the registry's concurrency audit.
func TestHTTPEndToEndConcurrent(t *testing.T) {
	c := newTestServer(t, service.Config{})

	o := paperfix.Ontology()
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	vals, err := eval.New(o).Results(bg, target)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, v := range vals {
		want[v] = true
	}

	const sessions = 32
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runSessionE2E(t, c, want)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}

	status, body := c.do(http.MethodGet, "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	_ = body // metrics are plain text; fetch again raw below
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, gauge := range []string{
		"questprod_sessions_created_total 32",
		"questprod_infer_total 32",
		"questprod_sessions_active 0",
	} {
		if !strings.Contains(text, gauge) {
			t.Errorf("metrics missing %q:\n%s", gauge, text)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	c := newTestServer(t, service.Config{})
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

// GET …/feedback re-reads the pending question without consuming it, and
// answering afterwards still converges.
func TestHTTPPendingFeedbackReread(t *testing.T) {
	c := newTestServer(t, service.Config{})
	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, _ = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: status %d", status)
	}
	if status, _ = c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		t.Fatalf("infer: status %d", status)
	}
	status, resp = c.post(base+"/feedback", nil)
	if status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}
	if done, _ := resp["done"].(bool); done {
		t.Skip("candidates collapsed without questions")
	}
	want, _ := resp["result"].(string)
	for i := 0; i < 3; i++ {
		status, again := c.do(http.MethodGet, base+"/feedback", nil)
		if status != http.StatusOK {
			t.Fatalf("pending read: status %d (%v)", status, again)
		}
		if got, _ := again["result"].(string); got != want {
			t.Fatalf("pending read %d returned %q, want %q", i, got, want)
		}
	}
	for i := 0; i < 32; i++ {
		if done, _ := resp["done"].(bool); done {
			return
		}
		status, resp = c.post(base+"/feedback/answer", map[string]any{"include": false})
		if status != http.StatusOK {
			t.Fatalf("answer: status %d (%v)", status, resp)
		}
	}
	t.Fatal("dialogue did not converge after pending re-reads")
}

func TestHTTPUnknownSession(t *testing.T) {
	c := newTestServer(t, service.Config{})
	if status, _ := c.post("/v1/sessions/deadbeef/infer", nil); status != http.StatusNotFound {
		t.Fatalf("status %d, want 404", status)
	}
}

func TestHTTPBadOntology(t *testing.T) {
	c := newTestServer(t, service.Config{})
	status, _ := c.post("/v1/sessions", map[string]any{"ontology": "a b\n"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
}

// TestHTTPInferDeadline proves a deadline kills a long inference mid-search:
// a 50ms budget against a run that takes hundreds of milliseconds comes
// back as 504 with a cancellation error, instead of completing.
func TestHTTPInferDeadline(t *testing.T) {
	w, err := experiments.Load("sp2b", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var target *query.Union
	for _, bq := range w.Queries {
		if bq.Name == "q8b" {
			target = bq.Query
		}
	}
	if target == nil {
		t.Fatal("sp2b workload lost query q8b")
	}
	sampler := sampling.New(w.Evaluator(), target, rand.New(rand.NewSource(7)))
	exs, err := sampler.ExampleSet(bg, 12)
	if err != nil {
		t.Fatal(err)
	}
	var wire []map[string]string
	for _, e := range exs {
		wire = append(wire, map[string]string{
			"triples":       ntriples.Format(e.Graph),
			"distinguished": e.DistinguishedValue(),
		})
	}

	c := newTestServer(t, service.Config{})
	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(w.Ontology),
		// Inflate per-pair work so the 50ms deadline lands mid-search even
		// with the build-best-query-once merge kernel.
		"options": map[string]any{"num_iter": 2000},
	})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", status, resp)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, resp = c.post(base+"/examples", map[string]any{"examples": wire}); status != http.StatusOK {
		t.Fatalf("examples: status %d (%v)", status, resp)
	}

	start := time.Now()
	status, resp = c.post(base+"/infer", map[string]any{"mode": "topk", "timeout_ms": 50})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v) after %s, want 504", status, resp, elapsed)
	}
	msg, _ := resp["error"].(string)
	if !strings.Contains(msg, "canceled") && !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not look like a cancellation", msg)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s, deadline not enforced mid-search", elapsed)
	}
}

// TestHTTPShutdownNoLeaks checks that closing the server and registry reaps
// every session goroutine, including a feedback dialogue parked on an
// unanswered question.
func TestHTTPShutdownNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := service.NewRegistry(service.Config{})
	ts := httptest.NewServer(service.NewServer(reg))
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	status, resp := c.post("/v1/sessions", map[string]any{
		"ontology": ntriples.Format(paperfix.Ontology()),
	})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/sessions/" + resp["session_id"].(string)
	if status, _ = c.post(base+"/examples", paperfixExamples()); status != http.StatusOK {
		t.Fatalf("examples: status %d", status)
	}
	if status, _ = c.post(base+"/infer", map[string]any{"mode": "topk"}); status != http.StatusOK {
		t.Fatalf("infer: status %d", status)
	}
	// Leave the dialogue hanging on its first question.
	if status, _ = c.post(base+"/feedback", nil); status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}

	ts.Close()
	reg.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
