package service

import (
	"encoding/json"
	"fmt"

	"questpro/internal/core"
	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/provenance"
)

// This file is the session snapshot codec: the deterministic, versioned
// serialization of a Session's durable state (DESIGN.md §12). The schema
// below IS the on-disk contract — TestSnapshotSchemaGolden pins its shape
// the way make api-check pins the wire API, so a field rename or type
// change fails loudly instead of silently orphaning every snapshot on
// disk. When the shape must change, bump snapshotSchemaVersion, regenerate
// the golden, and teach decode to migrate (or refuse) older versions.
//
// Graphs are serialized explicitly — node table in id order, edge table in
// id order — NOT via ntriples.Format: the N-Triples round-trip re-derives
// node ids from triple order, which permutes ids for graphs that interleave
// typed and untyped node creation, and inference results are only
// guaranteed byte-identical for identical id assignments. Rebuilding with
// AddNode/AddEdge in table order reproduces the exact ids.
//
// What deliberately does NOT survive a restart: the last inference's
// candidate beam when no dialogue is active (re-run Infer to get it back),
// the completion cache's intermediate guard meter (the final Usage does),
// per-operation trace rings, and the last recovered-panic diagnostic —
// all reconstructible or purely diagnostic.

// snapshotSchemaVersion is the codec's schema version, stored in every
// snapshot and checked on decode.
const snapshotSchemaVersion = 1

// sessionSnapshot is the root of the durable session state.
type sessionSnapshot struct {
	Schema         int    `json:"schema"`
	ID             string `json:"id"`
	Seq            int64  `json:"seq"`
	LastUsedUnixNs int64  `json:"last_used_unix_ns"`

	Ontology snapGraph   `json:"ontology"`
	Options  snapOptions `json:"options"`

	// Exactly one of Examples/Partial is populated (matching the session's
	// input mode); Completed and Completion cache the completion phase for
	// partial sessions.
	Examples   []snapExample   `json:"examples,omitempty"`
	Partial    []snapExample   `json:"partial,omitempty"`
	Completed  []snapExample   `json:"completed,omitempty"`
	Completion *snapCompletion `json:"completion,omitempty"`

	// ResultSPARQL is the session's current query (last inferred or
	// feedback-chosen) in its canonical SPARQL rendering.
	ResultSPARQL string `json:"result_sparql,omitempty"`

	Feedback *snapFeedback `json:"feedback,omitempty"`

	Counters snapCounters `json:"counters"`
	Infers   int          `json:"infers"`
}

// snapGraph is an id-preserving graph serialization: nodes and edges in id
// order, so replaying AddNode/AddEdge reproduces identical ids.
type snapGraph struct {
	Nodes []snapNode `json:"nodes"`
	Edges []snapEdge `json:"edges"`
}

type snapNode struct {
	Value string `json:"v"`
	Type  string `json:"t,omitempty"`
}

type snapEdge struct {
	From  int32  `json:"f"`
	To    int32  `json:"o"`
	Label string `json:"l"`
}

// snapExample serializes one explanation or fragment.
type snapExample struct {
	Graph         snapGraph `json:"graph"`
	Distinguished int32     `json:"distinguished"`
	MissingEdges  int       `json:"missing_edges,omitempty"`
}

// snapOptions mirrors core.Options field-for-field (the guard flattened),
// so restored sessions infer with exactly the options they were created
// with.
type snapOptions struct {
	GainWeights     [3]float64 `json:"gain_weights"`
	NumIter         int        `json:"num_iter"`
	CostW1          float64    `json:"cost_w1"`
	CostW2          float64    `json:"cost_w2"`
	K               int        `json:"k"`
	FirstPairSweep  int        `json:"first_pair_sweep,omitempty"`
	Workers         int        `json:"workers,omitempty"`
	ReferenceScan   bool       `json:"reference_scan,omitempty"`
	GuardMaxSteps   int64      `json:"guard_max_steps,omitempty"`
	GuardMaxResults int64      `json:"guard_max_results,omitempty"`
	GuardMaxBytes   int64      `json:"guard_max_bytes,omitempty"`
	MaxCompletions  int        `json:"max_completions,omitempty"`
}

// snapCompletion mirrors core.CompletionReport.
type snapCompletion struct {
	Considered   int64        `json:"considered"`
	Accepted     int64        `json:"accepted"`
	Degraded     bool         `json:"degraded,omitempty"`
	UsageSteps   int64        `json:"usage_steps,omitempty"`
	UsageResults int64        `json:"usage_results,omitempty"`
	UsageBytes   int64        `json:"usage_bytes,omitempty"`
	Exhausted    bool         `json:"exhausted,omitempty"`
	Choices      []snapChoice `json:"choices"`
}

type snapChoice struct {
	Example           int  `json:"example"`
	Identity          bool `json:"identity,omitempty"`
	AddedTriples      int  `json:"added_triples,omitempty"`
	ResolvedWildcards int  `json:"resolved_wildcards,omitempty"`
	Considered        int  `json:"considered,omitempty"`
}

// snapFeedback is the dialogue position: the consumed-answer log plus
// whether the question after the last answer was already delivered to the
// client. Restore re-runs the (deterministic) top-k inference, restarts the
// dialogue goroutine and replays Answers through it, which reproduces the
// exact question sequence — including the pending question, re-pulled when
// PendingDelivered is set so a client's re-fetch after the restart is
// idempotent.
type snapFeedback struct {
	MaxQuestions     int    `json:"max_questions,omitempty"`
	Answers          []bool `json:"answers"`
	Asked            int    `json:"asked"`
	PendingDelivered bool   `json:"pending_delivered,omitempty"`
}

// snapCounters mirrors core.CountersSnapshot.
type snapCounters struct {
	Algorithm1Calls       int   `json:"algorithm1_calls,omitempty"`
	Rounds                int   `json:"rounds,omitempty"`
	CacheHits             int   `json:"cache_hits,omitempty"`
	CacheMisses           int   `json:"cache_misses,omitempty"`
	GainEvals             int64 `json:"gain_evals,omitempty"`
	Restarts              int   `json:"restarts,omitempty"`
	CompletionsConsidered int64 `json:"completions_considered,omitempty"`
	CompletionsAccepted   int64 `json:"completions_accepted,omitempty"`
}

func graphToSnap(g *graph.Graph) snapGraph {
	sg := snapGraph{
		Nodes: make([]snapNode, g.NumNodes()),
		Edges: make([]snapEdge, g.NumEdges()),
	}
	for i := range sg.Nodes {
		n := g.Node(graph.NodeID(i))
		sg.Nodes[i] = snapNode{Value: n.Value, Type: n.Type}
	}
	for i := range sg.Edges {
		e := g.Edge(graph.EdgeID(i))
		sg.Edges[i] = snapEdge{From: int32(e.From), To: int32(e.To), Label: e.Label}
	}
	return sg
}

func snapToGraph(sg snapGraph) (*graph.Graph, error) {
	g := graph.New()
	for i, n := range sg.Nodes {
		id, err := g.AddNode(n.Value, n.Type)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		if int(id) != i {
			return nil, fmt.Errorf("node %d rebuilt with id %d", i, id)
		}
	}
	for i, e := range sg.Edges {
		if _, err := g.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To), e.Label); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}

func examplesToSnap(exs provenance.ExampleSet) []snapExample {
	if len(exs) == 0 {
		return nil
	}
	out := make([]snapExample, len(exs))
	for i, e := range exs {
		out[i] = snapExample{Graph: graphToSnap(e.Graph), Distinguished: int32(e.Distinguished)}
	}
	return out
}

func snapToExamples(in []snapExample) (provenance.ExampleSet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(provenance.ExampleSet, len(in))
	for i, se := range in {
		g, err := snapToGraph(se.Graph)
		if err != nil {
			return nil, fmt.Errorf("example %d: %w", i, err)
		}
		out[i] = provenance.Explanation{Graph: g, Distinguished: graph.NodeID(se.Distinguished)}
	}
	return out, nil
}

func partialToSnap(pex provenance.PartialExampleSet) []snapExample {
	if len(pex) == 0 {
		return nil
	}
	out := make([]snapExample, len(pex))
	for i, p := range pex {
		out[i] = snapExample{
			Graph:         graphToSnap(p.Graph),
			Distinguished: int32(p.Distinguished),
			MissingEdges:  p.MissingEdges,
		}
	}
	return out
}

func snapToPartial(in []snapExample) (provenance.PartialExampleSet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(provenance.PartialExampleSet, len(in))
	for i, se := range in {
		g, err := snapToGraph(se.Graph)
		if err != nil {
			return nil, fmt.Errorf("fragment %d: %w", i, err)
		}
		out[i] = provenance.PartialExplanation{
			Graph:         g,
			Distinguished: graph.NodeID(se.Distinguished),
			MissingEdges:  se.MissingEdges,
		}
	}
	return out, nil
}

func optionsToSnap(o core.Options) snapOptions {
	return snapOptions{
		GainWeights:     o.GainWeights,
		NumIter:         o.NumIter,
		CostW1:          o.CostW1,
		CostW2:          o.CostW2,
		K:               o.K,
		FirstPairSweep:  o.FirstPairSweep,
		Workers:         o.Workers,
		ReferenceScan:   o.ReferenceScan,
		GuardMaxSteps:   o.Guard.MaxSteps,
		GuardMaxResults: o.Guard.MaxResults,
		GuardMaxBytes:   o.Guard.MaxBytes,
		MaxCompletions:  o.MaxCompletions,
	}
}

func snapToOptions(so snapOptions) core.Options {
	o := core.Options{
		GainWeights:    so.GainWeights,
		NumIter:        so.NumIter,
		CostW1:         so.CostW1,
		CostW2:         so.CostW2,
		K:              so.K,
		FirstPairSweep: so.FirstPairSweep,
		Workers:        so.Workers,
		ReferenceScan:  so.ReferenceScan,
		MaxCompletions: so.MaxCompletions,
	}
	o.Guard.MaxSteps = so.GuardMaxSteps
	o.Guard.MaxResults = so.GuardMaxResults
	o.Guard.MaxBytes = so.GuardMaxBytes
	return o
}

func completionToSnap(rep *core.CompletionReport) *snapCompletion {
	if rep == nil {
		return nil
	}
	sc := &snapCompletion{
		Considered:   rep.Considered,
		Accepted:     rep.Accepted,
		Degraded:     rep.Degraded,
		UsageSteps:   rep.GuardUsage.Steps,
		UsageResults: rep.GuardUsage.Results,
		UsageBytes:   rep.GuardUsage.Bytes,
		Exhausted:    rep.GuardUsage.Exhausted,
		Choices:      make([]snapChoice, len(rep.Choices)),
	}
	for i, c := range rep.Choices {
		sc.Choices[i] = snapChoice{
			Example:           c.Example,
			Identity:          c.Identity,
			AddedTriples:      c.AddedTriples,
			ResolvedWildcards: c.ResolvedWildcards,
			Considered:        c.Considered,
		}
	}
	return sc
}

func snapToCompletion(sc *snapCompletion) *core.CompletionReport {
	if sc == nil {
		return nil
	}
	rep := &core.CompletionReport{
		Considered: sc.Considered,
		Accepted:   sc.Accepted,
		Degraded:   sc.Degraded,
		Choices:    make([]core.CompletionChoice, len(sc.Choices)),
	}
	rep.GuardUsage.Steps = sc.UsageSteps
	rep.GuardUsage.Results = sc.UsageResults
	rep.GuardUsage.Bytes = sc.UsageBytes
	rep.GuardUsage.Exhausted = sc.Exhausted
	for i, c := range sc.Choices {
		rep.Choices[i] = core.CompletionChoice{
			Example:           c.Example,
			Identity:          c.Identity,
			AddedTriples:      c.AddedTriples,
			ResolvedWildcards: c.ResolvedWildcards,
			Considered:        c.Considered,
		}
	}
	return rep
}

func countersToSnap(c core.CountersSnapshot) snapCounters {
	return snapCounters{
		Algorithm1Calls:       c.Algorithm1Calls,
		Rounds:                c.Rounds,
		CacheHits:             c.CacheHits,
		CacheMisses:           c.CacheMisses,
		GainEvals:             c.GainEvals,
		Restarts:              c.Restarts,
		CompletionsConsidered: c.CompletionsConsidered,
		CompletionsAccepted:   c.CompletionsAccepted,
	}
}

func snapToCounters(sc snapCounters) core.CountersSnapshot {
	return core.CountersSnapshot{
		Algorithm1Calls:       sc.Algorithm1Calls,
		Rounds:                sc.Rounds,
		CacheHits:             sc.CacheHits,
		CacheMisses:           sc.CacheMisses,
		GainEvals:             sc.GainEvals,
		Restarts:              sc.Restarts,
		CompletionsConsidered: sc.CompletionsConsidered,
		CompletionsAccepted:   sc.CompletionsAccepted,
	}
}

// encodeSessionLocked serializes the session's durable state at sequence
// seq; the caller holds s.mu. The faults.SessionSnapshot point fires first
// — the codec leg of the save path — so the chaos suite can inject both
// encode errors and panics here.
func encodeSessionLocked(s *Session, seq int64) ([]byte, error) {
	if err := faults.Fire(faults.SessionSnapshot); err != nil {
		return nil, fmt.Errorf("encoding snapshot: %w", err)
	}
	snap := sessionSnapshot{
		Schema:         snapshotSchemaVersion,
		ID:             s.ID,
		Seq:            seq,
		LastUsedUnixNs: s.last.Load(),
		Ontology:       graphToSnap(s.onto),
		Options:        optionsToSnap(s.opts),
		Examples:       examplesToSnap(s.ex),
		Partial:        partialToSnap(s.pex),
		Completed:      examplesToSnap(s.completed),
		Completion:     completionToSnap(s.compReport),
		Counters:       countersToSnap(s.counters),
		Infers:         s.infers,
	}
	if s.result != nil {
		snap.ResultSPARQL = s.result.SPARQL()
	}
	if run := s.fb; run != nil {
		snap.Feedback = &snapFeedback{
			MaxQuestions:     run.maxQuestions,
			Answers:          append([]bool(nil), run.log...),
			Asked:            run.asked,
			PendingDelivered: run.pending != nil,
		}
	}
	return json.Marshal(snap)
}

// decodeSessionSnapshot parses and version-checks a snapshot payload.
func decodeSessionSnapshot(data []byte) (*sessionSnapshot, error) {
	var snap sessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	if snap.Schema != snapshotSchemaVersion {
		return nil, fmt.Errorf("snapshot schema %d, this build reads %d", snap.Schema, snapshotSchemaVersion)
	}
	if snap.ID == "" {
		return nil, fmt.Errorf("snapshot without session id")
	}
	return &snap, nil
}
