// Package client is a retry-aware Go client for the questprod HTTP API —
// the consumer half of the service's load-shedding contract. The server
// sheds saturated requests with 429 + Retry-After (see internal/service);
// this client backs off with capped exponential delays and seeded jitter,
// honors Retry-After as a floor, and replays the request body verbatim on
// every attempt, so a burst of clients against a saturated server drains
// as a staggered queue instead of a synchronized retry storm.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"questpro/internal/api"
	"questpro/internal/qerr"
)

// sessions is the versioned URL prefix of every session route.
const sessions = "/" + api.Version + "/sessions"

// Config sizes a Client. The zero value of every field selects its default.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8370". Required.
	BaseURL string

	// MaxRetries bounds the retry attempts after the first try (so a request
	// is sent at most MaxRetries+1 times). 0 selects DefaultMaxRetries;
	// negative disables retrying.
	MaxRetries int

	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay. 0 selects DefaultBaseDelay / DefaultMaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// Seed seeds the jitter source, so tests replay identical schedules.
	Seed int64

	// AttemptTimeout bounds each individual attempt (not the whole retried
	// request), so one hung connection — a server dying mid-response, a
	// half-open socket after a crash — costs one attempt instead of the
	// caller's whole deadline. 0 selects DefaultAttemptTimeout; negative
	// disables the per-attempt bound. A timed-out attempt is retried like
	// any transport failure; the caller's own context still cuts the whole
	// request short.
	AttemptTimeout time.Duration

	// HTTPClient overrides the transport (httptest servers, custom
	// timeouts). nil selects the package's shared connection-pooled client
	// (see NewTransport) — NOT http.DefaultClient, whose 2-idle-conns-per-
	// host default collapses under concurrent fan-in.
	HTTPClient *http.Client
}

// Defaults for Config's zero fields.
const (
	DefaultMaxRetries     = 6
	DefaultBaseDelay      = 100 * time.Millisecond
	DefaultMaxDelay       = 5 * time.Second
	DefaultAttemptTimeout = 30 * time.Second
)

// ErrSessionNotFound is matched (errors.Is) by an APIError whenever the
// server answered 404 for a session-scoped route — the session was evicted,
// or the server restarted without durable session state. Callers riding
// through a restart (the crash-recovery harness does) branch on it to
// distinguish "recreate the session" from genuine request errors.
var ErrSessionNotFound = errors.New("client: session not found")

// Client talks to one questprod server. Safe for concurrent use; construct
// with New.
type Client struct {
	base     string
	retries  int
	backoff  *Backoff
	attemptD time.Duration
	httpc    *http.Client

	retried atomic.Int64
	lastRid atomic.Value // string: most recent response's X-Request-Id
}

// New builds a client over cfg.
func New(cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = DefaultBaseDelay
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.AttemptTimeout < 0 {
		cfg.AttemptTimeout = 0
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = sharedHTTPClient
	}
	return &Client{
		base:     strings.TrimRight(cfg.BaseURL, "/"),
		retries:  cfg.MaxRetries,
		backoff:  NewBackoff(cfg.BaseDelay, cfg.MaxDelay, cfg.Seed),
		attemptD: cfg.AttemptTimeout,
		httpc:    cfg.HTTPClient,
	}
}

// Retries reports the total number of retry waits this client has
// performed, across all requests (test observability).
func (c *Client) Retries() int64 { return c.retried.Load() }

// LastRequestID returns the X-Request-Id of the most recent response this
// client received (any status), or "". Both questprod and qpgate echo or
// mint the header on every response, so after a failed call this is the
// correlation key joining the failure to server logs and trace rings. Under
// concurrent use it reports *a* recent response's id; callers needing
// per-dialogue attribution serialize their calls (internal/soak does).
func (c *Client) LastRequestID() string {
	if v, ok := c.lastRid.Load().(string); ok {
		return v
	}
	return ""
}

// APIError is a non-2xx response: the HTTP status, the decoded api.Error
// envelope (code + message), and the Retry-After hint (zero when absent) —
// taken from the header, or from the envelope's retry_after_sec field when
// the header is missing. It matches qerr.ErrOverloaded under errors.Is
// when the status is 429, so callers can branch on shedding without
// importing net/http statuses.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

func (e *APIError) Is(target error) bool {
	switch target {
	case qerr.ErrOverloaded:
		return e.Status == http.StatusTooManyRequests
	case ErrSessionNotFound:
		return e.Status == http.StatusNotFound
	}
	return false
}

// retryable reports whether the failure is worth another attempt: load
// shedding (429) and transient unavailability (503). Everything else —
// including 504, which means the request's own deadline died server-side —
// is the caller's problem.
func (e *APIError) retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do sends one JSON request with retries and decodes a 2xx response into
// out (skipped when out is nil). The body is marshaled exactly once and
// replayed from the same bytes on every attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		apiErr, err := c.once(ctx, method, path, body, out)
		if err == nil && apiErr == nil {
			return nil
		}
		retryAfter := time.Duration(0)
		if apiErr != nil {
			if !apiErr.retryable() {
				return apiErr
			}
			retryAfter = apiErr.RetryAfter
		}
		if attempt >= c.retries {
			if apiErr != nil {
				return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, apiErr)
			}
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, err)
		}
		if err := sleep(ctx, c.backoff.Delay(attempt, retryAfter)); err != nil {
			return fmt.Errorf("client: canceled while backing off: %w", err)
		}
		c.retried.Add(1)
	}
}

// once performs a single attempt, bounded by the per-attempt timeout. A
// transport failure (including an attempt timeout) comes back in err; a
// non-2xx response in apiErr; success is (nil, nil).
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (*APIError, error) {
	actx := ctx
	if c.attemptD > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.attemptD)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died; retrying cannot help.
			return nil, fmt.Errorf("client: %w", ctx.Err())
		}
		if actx.Err() != nil {
			// Only the attempt's own deadline fired: a hung connection, worth
			// a fresh attempt.
			return nil, fmt.Errorf("client: attempt timed out after %s: %w", c.attemptD, err)
		}
		return nil, fmt.Errorf("client: transport: %w", err)
	}
	defer resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid != "" {
		c.lastRid.Store(rid)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 == 2 {
		if out == nil || len(raw) == 0 {
			return nil, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("client: decoding response: %w", err)
		}
		return nil, nil
	}
	// Every non-2xx body is the uniform api.Error envelope; a raw-text
	// fallback keeps proxies and middleware that bypass the service legible.
	ae := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var wire api.Error
	if json.Unmarshal(raw, &wire) == nil && wire.Message != "" {
		ae.Code = wire.Code
		ae.Message = wire.Message
		ae.RetryAfter = time.Duration(wire.RetryAfterSec) * time.Second
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae, nil
}

// CreateSession creates a session over the ontology (N-Triples text) and
// returns its id. opts may be nil (the server's defaults apply).
func (c *Client) CreateSession(ctx context.Context, ontology string, opts *api.Options) (string, error) {
	req := api.CreateSessionRequest{Ontology: ontology}
	if opts != nil {
		req.Options = *opts
	}
	var resp api.CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, sessions, req, &resp); err != nil {
		return "", err
	}
	if resp.SessionID == "" {
		return "", fmt.Errorf("client: server returned no session id")
	}
	return resp.SessionID, nil
}

// SetExamples submits the session's example-set. Examples carrying a
// Partial spec switch the session into partial input mode (see
// SetPartialExamples for the convenience wrapper).
func (c *Client) SetExamples(ctx context.Context, sessionID string, exs []api.Example) error {
	return c.do(ctx, http.MethodPost, sessions+"/"+sessionID+"/examples",
		api.ExamplesRequest{Examples: exs}, nil)
}

// SetPartialExamples submits the example-set as provenance fragments: every
// example without an explicit Partial spec gets the zero spec, so the whole
// set enters the completion pipeline (wildcard "*" labels, "*"-prefixed
// placeholder values and missing-edge hints are resolved against the
// ontology before inference). It returns the server's acknowledgment with
// the fragment count.
func (c *Client) SetPartialExamples(ctx context.Context, sessionID string, exs []api.Example) (*api.ExamplesResponse, error) {
	marked := make([]api.Example, len(exs))
	for i, e := range exs {
		if e.Partial == nil {
			e.Partial = &api.PartialSpec{}
		}
		marked[i] = e
	}
	var resp api.ExamplesResponse
	if err := c.do(ctx, http.MethodPost, sessions+"/"+sessionID+"/examples",
		api.ExamplesRequest{Examples: marked}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Infer runs inference ("simple", "union" or "topk"); timeout bounds the
// run server-side (0 = none). On a partial example-set the response's
// Completions field reports how the fragments were resolved.
func (c *Client) Infer(ctx context.Context, sessionID, mode string, timeout time.Duration) (*api.InferResponse, error) {
	req := api.InferRequest{Mode: mode}
	if timeout > 0 {
		req.TimeoutMS = int(timeout / time.Millisecond)
	}
	var resp api.InferResponse
	if err := c.do(ctx, http.MethodPost, sessions+"/"+sessionID+"/infer", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Completions fetches the completion report of the session's most recent
// inference. A nil report (with nil error) means no inference has run yet
// or the example-set had no fragments.
func (c *Client) Completions(ctx context.Context, sessionID string) (*api.Completions, error) {
	var resp api.CompletionsResponse
	if err := c.do(ctx, http.MethodGet, sessions+"/"+sessionID+"/completions", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Completions, nil
}

// StartFeedback begins the interactive feedback dialogue (Algorithm 3)
// over the candidates of the session's last top-k inference. maxQuestions
// 0 means unbounded. The response is either the first membership question
// or an immediate decision.
func (c *Client) StartFeedback(ctx context.Context, sessionID string, maxQuestions int) (*api.FeedbackResponse, error) {
	req := api.FeedbackRequest{MaxQuestions: maxQuestions}
	var resp api.FeedbackResponse
	if err := c.do(ctx, http.MethodPost, sessions+"/"+sessionID+"/feedback", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PendingFeedback re-reads the dialogue's current event without consuming
// anything — the recovery read for a client whose previous request (or
// whose server) died with a question in flight. Repeated calls return the
// same event.
func (c *Client) PendingFeedback(ctx context.Context, sessionID string) (*api.FeedbackResponse, error) {
	var resp api.FeedbackResponse
	if err := c.do(ctx, http.MethodGet, sessions+"/"+sessionID+"/feedback", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AnswerFeedback answers the pending question and returns the next event.
// An event with Redelivered set means the verdict was NOT consumed (no
// question was awaiting one); answer the event's question instead.
func (c *Client) AnswerFeedback(ctx context.Context, sessionID string, include bool) (*api.FeedbackResponse, error) {
	var resp api.FeedbackResponse
	if err := c.do(ctx, http.MethodPost, sessions+"/"+sessionID+"/feedback/answer",
		api.AnswerRequest{Include: include}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the session's cumulative counters.
func (c *Client) Stats(ctx context.Context, sessionID string) (*api.SessionStatsResponse, error) {
	var resp api.SessionStatsResponse
	if err := c.do(ctx, http.MethodGet, sessions+"/"+sessionID+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace fetches the session's retained operation traces (root span trees,
// oldest first). Served through qpgate the forest is the assembled
// cross-tier view: gateway proxy spans prepended to the backend's roots.
func (c *Client) Trace(ctx context.Context, sessionID string) (*api.TraceResponse, error) {
	var resp api.TraceResponse
	if err := c.do(ctx, http.MethodGet, sessions+"/"+sessionID+"/trace", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteSession evicts the session.
func (c *Client) DeleteSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, sessions+"/"+sessionID, nil, nil)
}
