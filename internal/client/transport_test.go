package client

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTransportConnectionReuse pins the connection-pooling contract of the
// shared transport: a burst of concurrent requests against one host must be
// served over at most ~one connection per concurrent worker, reused across
// the whole burst — not one connection per request, which is what
// http.DefaultTransport's 2-idle-conns-per-host cap degrades to under
// fan-in. The counter hooks the httptest server's ConnState callback, so it
// counts real TCP accepts.
func TestTransportConnectionReuse(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	const (
		workers  = 8
		requests = 200
	)
	cl := New(Config{
		BaseURL:    srv.URL,
		MaxRetries: -1,
		HTTPClient: &http.Client{Transport: NewTransport(workers)},
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests/workers; i++ {
				if _, err := cl.Stats(context.Background(), "x"); err != nil {
					// The fake id decodes as an empty 200 body here; any
					// transport-level error is a real failure.
					t.Errorf("request: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := conns.Load(); got > 2*workers {
		t.Fatalf("%d requests over %d workers opened %d connections; pooling is broken (want <= %d)",
			requests, workers, got, 2*workers)
	}
}
