package client

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential equal-jitter retry delays — the
// machinery behind this package's retry loop, exported so the qpgate
// gateway schedules its backend dial retries on the identical policy (a
// shed fleet drains as one staggered queue, whichever layer is retrying).
// Safe for concurrent use.
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// NewBackoff builds a backoff schedule: base doubles per attempt up to max
// (non-positive values select DefaultBaseDelay / DefaultMaxDelay). seed
// seeds the jitter source so tests replay identical schedules.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBaseDelay
	}
	if max <= 0 {
		max = DefaultMaxDelay
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay computes the wait before retry attempt (0-based): capped
// exponential backoff with equal jitter (half fixed, half uniform-random),
// floored at the server's Retry-After hint when one was sent.
func (b *Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	d := b.base << attempt
	if d > b.max || d <= 0 { // <= 0: shift overflow
		d = b.max
	}
	b.mu.Lock()
	jittered := d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	b.mu.Unlock()
	if jittered < retryAfter {
		jittered = retryAfter
	}
	return jittered
}
