package client

import (
	"net"
	"net/http"
	"time"
)

// Connection pooling. http.DefaultClient rides http.DefaultTransport, whose
// MaxIdleConnsPerHost is 2: any fan-in heavier than two concurrent requests
// per host — a gateway funneling thousands of dialogues into a handful of
// backends, a soak driver hammering one server — closes and re-dials
// connections on nearly every request, turning connection setup into the
// throughput ceiling. Every consumer of this package therefore shares one
// transport sized for that fan-in, and qpgate builds one per backend pool
// from the same constructor.

// DefaultMaxConnsPerHost sizes the per-host idle-connection pool of the
// shared transport. It bounds connection *reuse*, not concurrency: more
// than this many in-flight requests still run, the excess connections are
// just not kept alive. 256 comfortably covers the soak driver's worker
// budget against a single host.
const DefaultMaxConnsPerHost = 256

// NewTransport builds a connection-pooled HTTP transport: maxPerHost idle
// connections kept per backend (<= 0 selects DefaultMaxConnsPerHost) and
// sane dial/TLS/idle timeouts, so a hung remote costs a bounded dial wait
// instead of an unbounded one. Callers that talk to N backends get up to
// N*maxPerHost pooled connections in total.
func NewTransport(maxPerHost int) *http.Transport {
	if maxPerHost <= 0 {
		maxPerHost = DefaultMaxConnsPerHost
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          4 * maxPerHost,
		MaxIdleConnsPerHost:   maxPerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// sharedHTTPClient is the pooled client every Client without an explicit
// Config.HTTPClient shares — one pool per process, not per Client, so a
// thousand Clients against one server still reuse one connection set.
var sharedHTTPClient = &http.Client{Transport: NewTransport(0)}
