package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"questpro/internal/api"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
	"questpro/internal/service"
)

var bg = context.Background()

// fastCfg points a quick-retrying client at url.
func fastCfg(url string) Config {
	return Config{
		BaseURL:    url,
		MaxRetries: 5,
		BaseDelay:  time.Millisecond,
		MaxDelay:   5 * time.Millisecond,
		Seed:       1,
	}
}

// Transient 503s are retried until the server recovers, and the request
// body is replayed byte-identically on every attempt.
func TestRetriesTransientFailures(t *testing.T) {
	var attempts atomic.Int64
	var firstBody atomic.Pointer[string]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s := string(body)
		if prev := firstBody.Load(); prev == nil {
			firstBody.Store(&s)
		} else if *prev != s {
			t.Errorf("attempt %d body %q differs from first %q", attempts.Load()+1, s, *prev)
		}
		if attempts.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"session_id":"abc123"}`))
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	id, err := c.CreateSession(bg, "o1 p o2\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != "abc123" {
		t.Fatalf("session id %q, want abc123", id)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

// Client errors (400) are not retried; the typed APIError carries the
// server's message.
func TestNoRetryOnClientError(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"no such ontology"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	_, err := c.CreateSession(bg, "x\n", nil)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Message != "no such ontology" {
		t.Fatalf("APIError = %+v", ae)
	}
	if attempts.Load() != 1 || c.Retries() != 0 {
		t.Fatalf("attempts = %d, retries = %d; want 1, 0", attempts.Load(), c.Retries())
	}
}

// A 429 APIError matches qerr.ErrOverloaded so callers can branch on
// shedding without comparing HTTP statuses; other statuses do not.
func TestAPIErrorMatchesOverloaded(t *testing.T) {
	if !errors.Is(&APIError{Status: http.StatusTooManyRequests}, qerr.ErrOverloaded) {
		t.Fatal("429 APIError does not match ErrOverloaded")
	}
	if errors.Is(&APIError{Status: http.StatusServiceUnavailable}, qerr.ErrOverloaded) {
		t.Fatal("503 APIError matches ErrOverloaded")
	}
}

// Backoff.Delay: exponential growth under the cap, equal jitter within
// [d/2, d], and the server's Retry-After hint as a floor.
func TestNextDelaySchedule(t *testing.T) {
	c := New(Config{BaseURL: "http://x", BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 7})
	for attempt, want := range []time.Duration{
		time.Millisecond,     // 1ms
		2 * time.Millisecond, // 2ms
		4 * time.Millisecond, // 4ms (cap)
		4 * time.Millisecond, // still capped
	} {
		for i := 0; i < 50; i++ {
			d := c.backoff.Delay(attempt, 0)
			if d < want/2 || d > want {
				t.Fatalf("Delay(%d) = %s outside [%s, %s]", attempt, d, want/2, want)
			}
		}
	}
	if d := c.backoff.Delay(0, 2*time.Second); d != 2*time.Second {
		t.Fatalf("Delay with Retry-After floor = %s, want 2s", d)
	}
	// An absurd attempt count must not overflow into a negative delay.
	if d := c.backoff.Delay(62, 0); d < 0 || d > 4*time.Millisecond {
		t.Fatalf("Delay(62) = %s", d)
	}
}

// Exhausted retries surface the last failure, with the attempt count.
func TestGivesUpAfterMaxRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close() // transport errors from the first attempt on

	cfg := fastCfg(ts.URL)
	cfg.MaxRetries = 2
	c := New(cfg)
	_, err := c.CreateSession(bg, "x\n", nil)
	if err == nil {
		t.Fatal("CreateSession against a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// Cancellation interrupts a backoff sleep promptly.
func TestCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 3, BaseDelay: 10 * time.Second, Seed: 1})
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CreateSession(ctx, "x\n", nil)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s; backoff sleep not interrupted", elapsed)
	}
}

// A hung connection costs one attempt, not the caller's whole deadline:
// the per-attempt timeout fires, the attempt is retried, and a server that
// recovers in the meantime serves the retry.
func TestAttemptTimeoutRetriesHungServer(t *testing.T) {
	var attempts atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			<-release // hang the first attempt well past its timeout
			return
		}
		w.Write([]byte(`{"session_id":"abc123"}`))
	}))
	defer ts.Close()
	defer close(release)

	cfg := fastCfg(ts.URL)
	cfg.AttemptTimeout = 50 * time.Millisecond
	c := New(cfg)
	id, err := c.CreateSession(bg, "o1 p o2\n", nil)
	if err != nil {
		t.Fatalf("hung first attempt not ridden out: %v", err)
	}
	if id != "abc123" {
		t.Fatalf("session id %q", id)
	}
	if attempts.Load() < 2 || c.Retries() < 1 {
		t.Fatalf("attempts = %d, retries = %d; the timeout never retried", attempts.Load(), c.Retries())
	}
}

// The caller's own context still dominates: when it dies first, the error
// is the caller's deadline, not a retried attempt timeout.
func TestCallerContextBeatsAttemptTimeout(t *testing.T) {
	hung := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-hung
	}))
	defer ts.Close()
	defer close(hung)

	cfg := fastCfg(ts.URL)
	cfg.AttemptTimeout = 10 * time.Second
	c := New(cfg)
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	_, err := c.CreateSession(ctx, "x\n", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's DeadlineExceeded", err)
	}
	if c.Retries() != 0 {
		t.Fatalf("caller-context death was retried %d times", c.Retries())
	}
}

// A 404 APIError matches ErrSessionNotFound — the typed branch a client
// takes when the server restarted without the session's state.
func TestAPIErrorMatchesSessionNotFound(t *testing.T) {
	if !errors.Is(&APIError{Status: http.StatusNotFound}, ErrSessionNotFound) {
		t.Fatal("404 APIError does not match ErrSessionNotFound")
	}
	if errors.Is(&APIError{Status: http.StatusBadRequest}, ErrSessionNotFound) {
		t.Fatal("400 APIError matches ErrSessionNotFound")
	}
	reg := service.NewRegistry(service.Config{})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)
	c := New(fastCfg(ts.URL))
	if _, err := c.Stats(bg, "deadbeef"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("stats of an unknown session = %v, want ErrSessionNotFound", err)
	}
}

// The typed feedback methods drive a full dialogue: start, idempotent
// pending reads, answers through to the decision.
func TestFeedbackMethodsAgainstService(t *testing.T) {
	reg := service.NewRegistry(service.Config{})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)

	c := New(fastCfg(ts.URL))
	id, err := c.CreateSession(bg, ntriples.Format(paperfix.Ontology()), nil)
	if err != nil {
		t.Fatal(err)
	}
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	if err := c.SetExamples(bg, id, exs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(bg, id, "topk", 0); err != nil {
		t.Fatal(err)
	}
	ev, err := c.StartFeedback(bg, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Done {
		t.Skip("candidates collapsed without questions")
	}
	pend, err := c.PendingFeedback(bg, id)
	if err != nil {
		t.Fatal(err)
	}
	if pend.Done || pend.Result != ev.Result {
		t.Fatalf("pending read diverged: %+v vs %+v", pend, ev)
	}
	for i := 0; !ev.Done && i < 32; i++ {
		if ev, err = c.AnswerFeedback(bg, id, false); err != nil {
			t.Fatal(err)
		}
	}
	if !ev.Done || !strings.Contains(ev.SPARQL, "SELECT") {
		t.Fatalf("dialogue did not converge to a query: %+v", ev)
	}
}

// The typed helpers drive a real service end to end: create, examples,
// union inference, delete.
func TestEndToEndAgainstService(t *testing.T) {
	reg := service.NewRegistry(service.Config{})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(service.NewServer(reg))
	t.Cleanup(ts.Close)

	c := New(fastCfg(ts.URL))
	id, err := c.CreateSession(bg, ntriples.Format(paperfix.Ontology()), &api.Options{NumIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	if err := c.SetExamples(bg, id, exs); err != nil {
		t.Fatal(err)
	}
	res, err := c.Infer(bg, id, "union", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SPARQL, "SELECT") {
		t.Fatalf("implausible sparql %q", res.SPARQL)
	}
	if res.Degraded {
		t.Fatalf("unguarded inference reported degraded")
	}
	if err := c.DeleteSession(bg, id); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("session survived deletion")
	}
}
