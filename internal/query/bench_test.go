package query

import (
	"fmt"
	"testing"
)

// benchChain builds an n-edge chain query with one constant anchor.
func benchChain(n int) *Simple {
	q := NewSimple()
	prev := q.MustEnsureNode(Const("anchor"), "")
	for i := 0; i < n; i++ {
		next := q.MustEnsureNode(Var(fmt.Sprintf("x%d", i)), "T")
		q.MustAddEdge(prev, next, "p")
		prev = next
	}
	if err := q.SetProjected(prev); err != nil {
		panic(err)
	}
	return q
}

func BenchmarkIsomorphicChain8(b *testing.B) {
	x := benchChain(8)
	y := benchChain(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Isomorphic(x, y) {
			b.Fatal("chains should be isomorphic")
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	q := benchChain(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Fingerprint()
	}
}

func BenchmarkSPARQLRender(b *testing.B) {
	u := NewUnion(benchChain(6), benchChain(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.SPARQL()
	}
}

func BenchmarkSPARQLParse(b *testing.B) {
	text := NewUnion(benchChain(6), benchChain(4)).SPARQL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSPARQL(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	q := benchChain(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Clone()
	}
}
