package query

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a cheap invariant of the query under variable
// renaming: equal queries always have equal fingerprints, and unequal
// fingerprints certify non-isomorphism. Used to prefilter candidate
// deduplication before the exact Isomorphic check.
func (q *Simple) Fingerprint() string {
	describe := func(id NodeID) string {
		n := q.nodes[id]
		mark := ""
		if id == q.projected {
			mark = "*"
		}
		if n.Term.IsVar {
			return fmt.Sprintf("V%s(%s|%d,%d)", mark, n.Type, len(q.out[id]), len(q.in[id]))
		}
		return fmt.Sprintf("C%s(%s)", mark, n.Term.Value)
	}
	parts := make([]string, 0, len(q.edges))
	for _, e := range q.edges {
		opt := ""
		if q.IsOptional(e.ID) {
			opt = "?"
		}
		parts = append(parts, describe(e.From)+"-"+e.Label+opt+"->"+describe(e.To))
	}
	sort.Strings(parts)
	return fmt.Sprintf("n%d e%d v%d d%d|%s",
		len(q.nodes), len(q.edges), q.NumVars(), len(q.diseqs), strings.Join(parts, ";"))
}

// Isomorphic reports whether a and b are the same query up to renaming of
// variables: there is a bijection of nodes mapping constants to equal
// constants, variables to variables with the same type, edges to edges with
// the same label, projected node to projected node, and disequality sets to
// each other.
func Isomorphic(a, b *Simple) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() ||
		a.NumVars() != b.NumVars() || len(a.diseqs) != len(b.diseqs) {
		return false
	}
	if (a.projected == NoNode) != (b.projected == NoNode) {
		return false
	}
	// Constants must match one-to-one by value; seed the mapping with them.
	mapping := make([]NodeID, a.NumNodes())
	used := make([]bool, b.NumNodes())
	for i := range mapping {
		mapping[i] = NoNode
	}
	for _, n := range a.nodes {
		if n.Term.IsVar {
			continue
		}
		bn, ok := b.NodeByTerm(n.Term)
		if !ok || bn.Type != n.Type {
			return false
		}
		mapping[n.ID] = bn.ID
		used[bn.ID] = true
	}
	// Order a's variable nodes by decreasing degree for faster failure.
	var vars []NodeID
	for _, n := range a.nodes {
		if n.Term.IsVar {
			vars = append(vars, n.ID)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return a.Degree(vars[i]) > a.Degree(vars[j]) })

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(vars) {
			return isoComplete(a, b, mapping)
		}
		av := vars[k]
		an := a.nodes[av]
		for _, bn := range b.nodes {
			if !bn.Term.IsVar || used[bn.ID] || bn.Type != an.Type {
				continue
			}
			if a.Degree(av) != b.Degree(bn.ID) ||
				len(a.out[av]) != len(b.out[bn.ID]) {
				continue
			}
			if (av == a.projected) != (bn.ID == b.projected) {
				continue
			}
			mapping[av] = bn.ID
			used[bn.ID] = true
			if isoPartialOK(a, b, av, mapping) && rec(k+1) {
				return true
			}
			mapping[av] = NoNode
			used[bn.ID] = false
		}
		return false
	}
	return rec(0)
}

// isoPartialOK checks that every edge of a incident to the newly mapped node
// whose other endpoint is already mapped has a matching edge in b.
func isoPartialOK(a, b *Simple, v NodeID, mapping []NodeID) bool {
	for _, eid := range a.out[v] {
		e := a.edges[eid]
		if mapping[e.To] != NoNode && !b.HasEdgeTriple(mapping[v], mapping[e.To], e.Label) {
			return false
		}
	}
	for _, eid := range a.in[v] {
		e := a.edges[eid]
		if mapping[e.From] != NoNode && !b.HasEdgeTriple(mapping[e.From], mapping[v], e.Label) {
			return false
		}
	}
	return true
}

// isoComplete verifies the full mapping: every edge of a maps to an edge of
// b (counts being equal makes this a bijection), the projected nodes
// correspond, and the disequality sets coincide under the mapping.
func isoComplete(a, b *Simple, mapping []NodeID) bool {
	for _, e := range a.edges {
		be, ok := b.FindEdge(mapping[e.From], mapping[e.To], e.Label)
		if !ok || b.IsOptional(be.ID) != a.IsOptional(e.ID) {
			return false
		}
	}
	if a.projected != NoNode && mapping[a.projected] != b.projected {
		return false
	}
	key := func(d Diseq) string {
		if d.YIsNode {
			x, y := d.X, d.Y
			if x > y {
				x, y = y, x
			}
			return fmt.Sprintf("n%d|n%d", x, y)
		}
		return fmt.Sprintf("n%d|v%s", d.X, d.YValue)
	}
	want := map[string]int{}
	for _, d := range b.diseqs {
		want[key(d)]++
	}
	for _, d := range a.diseqs {
		md := Diseq{X: mapping[d.X], Y: d.Y, YIsNode: d.YIsNode, YValue: d.YValue}
		if d.YIsNode {
			md.Y = mapping[d.Y]
		}
		k := key(md)
		if want[k] == 0 {
			return false
		}
		want[k]--
	}
	return true
}

// UnionIsomorphic reports whether two union queries have the same multiset
// of branches up to isomorphism.
func UnionIsomorphic(a, b *Union) bool {
	if a.Size() != b.Size() {
		return false
	}
	matched := make([]bool, b.Size())
	for _, ab := range a.branches {
		found := false
		for j, bb := range b.branches {
			if matched[j] {
				continue
			}
			if Isomorphic(ab, bb) {
				matched[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// UnionFingerprint is the sorted concatenation of branch fingerprints.
func (u *Union) Fingerprint() string {
	parts := make([]string, len(u.branches))
	for i, b := range u.branches {
		parts[i] = b.Fingerprint()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x02")
}
