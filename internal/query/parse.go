package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseSPARQL parses the SPARQL subset emitted by (*Simple).SPARQL and
// (*Union).SPARQL: a single SELECT of one variable over triple patterns,
// disequality FILTERs, equality BINDs, and top-level UNION groups. It always
// returns a Union (with one branch for a plain simple query). Node type
// annotations are not part of SPARQL text and are therefore empty in the
// parsed query.
func ParseSPARQL(text string) (*Union, error) {
	toks, err := lexSPARQL(text)
	if err != nil {
		return nil, err
	}
	p := &sparqlParser{toks: toks}
	u, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query: parse: %w", err)
	}
	return u, nil
}

type tokKind int

const (
	tokWord tokKind = iota // SELECT, WHERE, UNION, FILTER, BIND, AS
	tokVar                 // ?name
	tokIRI                 // <label>
	tokStr                 // "literal"
	tokSym                 // { } ( ) . != =
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lexSPARQL(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == '(' || c == ')' || c == '.':
			toks = append(toks, token{tokSym, string(c), i})
			i++
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokSym, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: lex: stray '!' at offset %d", i)
			}
		case c == '=':
			toks = append(toks, token{tokSym, "=", i})
			i++
		case c == '?':
			j := i + 1
			for j < len(s) && (isWordByte(s[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("query: lex: empty variable at offset %d", i)
			}
			toks = append(toks, token{tokVar, s[i+1 : j], i})
			i = j
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("query: lex: unterminated IRI at offset %d", i)
			}
			toks = append(toks, token{tokIRI, s[i+1 : i+j], i})
			i += j + 1
		case c == '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("query: lex: unterminated string at offset %d", i)
			}
			lit, err := strconv.Unquote(s[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("query: lex: bad string at offset %d: %v", i, err)
			}
			toks = append(toks, token{tokStr, lit, i})
			i = j + 1
		default:
			if !isWordByte(c) {
				return nil, fmt.Errorf("query: lex: unexpected byte %q at offset %d", c, i)
			}
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			toks = append(toks, token{tokWord, s[i:j], i})
			i = j
		}
	}
	return toks, nil
}

func isWordByte(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

type sparqlParser struct {
	toks []token
	i    int
}

func (p *sparqlParser) peek() (token, bool) {
	if p.i >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *sparqlParser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of input")
	}
	p.i++
	return t, nil
}

func (p *sparqlParser) expectWord(w string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokWord || !strings.EqualFold(t.text, w) {
		return fmt.Errorf("expected %s, got %q at offset %d", w, t.text, t.pos)
	}
	return nil
}

func (p *sparqlParser) expectSym(s string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokSym || t.text != s {
		return fmt.Errorf("expected %q, got %q at offset %d", s, t.text, t.pos)
	}
	return nil
}

// branchAST is the staging form of one union branch before materialization.
type branchAST struct {
	triples  [][3]Term // subject, (unused middle), object
	labels   []string
	optional []bool // parallel to triples: inside an OPTIONAL block
	diseqs   []diseqAST
	binds    map[string]string // var name -> constant value
}

type diseqAST struct {
	x      string // variable name
	yVar   string // other variable, when yIsVar
	yIsVar bool
	yVal   string // literal otherwise
}

func (p *sparqlParser) parseQuery() (*Union, error) {
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	vt, err := p.next()
	if err != nil {
		return nil, err
	}
	if vt.kind != tokVar {
		return nil, fmt.Errorf("expected projected variable, got %q", vt.text)
	}
	outVar := vt.text
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}

	var branches []*branchAST
	if t, ok := p.peek(); ok && t.kind == tokSym && t.text == "{" {
		// Union form: { group } (UNION { group })*
		for {
			if err := p.expectSym("{"); err != nil {
				return nil, err
			}
			br, err := p.parseStatements()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("}"); err != nil {
				return nil, err
			}
			branches = append(branches, br)
			t, ok := p.peek()
			if ok && t.kind == tokWord && strings.EqualFold(t.text, "UNION") {
				p.i++
				continue
			}
			break
		}
	} else {
		br, err := p.parseStatements()
		if err != nil {
			return nil, err
		}
		branches = append(branches, br)
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("trailing input %q at offset %d", t.text, t.pos)
	}

	simple := make([]*Simple, 0, len(branches))
	for _, br := range branches {
		q, err := br.materialize(outVar)
		if err != nil {
			return nil, err
		}
		simple = append(simple, q)
	}
	return NewUnion(simple...), nil
}

func (p *sparqlParser) parseStatements() (*branchAST, error) {
	br := &branchAST{binds: map[string]string{}}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("unexpected end of statements")
		}
		if t.kind == tokSym && t.text == "}" {
			return br, nil
		}
		switch {
		case t.kind == tokWord && strings.EqualFold(t.text, "FILTER"):
			p.i++
			if err := p.parseFilter(br); err != nil {
				return nil, err
			}
		case t.kind == tokWord && strings.EqualFold(t.text, "BIND"):
			p.i++
			if err := p.parseBind(br); err != nil {
				return nil, err
			}
		case t.kind == tokWord && strings.EqualFold(t.text, "OPTIONAL"):
			p.i++
			if err := p.parseOptional(br); err != nil {
				return nil, err
			}
		case t.kind == tokVar || t.kind == tokStr:
			if err := p.parseTriple(br, false); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
		}
	}
}

func (p *sparqlParser) parseTermTok() (Term, error) {
	t, err := p.next()
	if err != nil {
		return Term{}, err
	}
	switch t.kind {
	case tokVar:
		return Var(t.text), nil
	case tokStr:
		return Const(t.text), nil
	default:
		return Term{}, fmt.Errorf("expected term, got %q at offset %d", t.text, t.pos)
	}
}

// parseOptional parses OPTIONAL { triple+ }; every triple inside is marked
// optional.
func (p *sparqlParser) parseOptional(br *branchAST) error {
	if err := p.expectSym("{"); err != nil {
		return err
	}
	count := 0
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("unexpected end inside OPTIONAL")
		}
		if t.kind == tokSym && t.text == "}" {
			p.i++
			if count == 0 {
				return fmt.Errorf("empty OPTIONAL block")
			}
			return nil
		}
		if err := p.parseTriple(br, true); err != nil {
			return err
		}
		count++
	}
}

func (p *sparqlParser) parseTriple(br *branchAST, optional bool) error {
	subj, err := p.parseTermTok()
	if err != nil {
		return err
	}
	pt, err := p.next()
	if err != nil {
		return err
	}
	if pt.kind != tokIRI {
		return fmt.Errorf("expected predicate IRI, got %q at offset %d", pt.text, pt.pos)
	}
	obj, err := p.parseTermTok()
	if err != nil {
		return err
	}
	if err := p.expectSym("."); err != nil {
		return err
	}
	br.triples = append(br.triples, [3]Term{subj, {}, obj})
	br.labels = append(br.labels, pt.text)
	br.optional = append(br.optional, optional)
	return nil
}

func (p *sparqlParser) parseFilter(br *branchAST) error {
	if err := p.expectSym("("); err != nil {
		return err
	}
	left, err := p.next()
	if err != nil {
		return err
	}
	if left.kind != tokVar {
		return fmt.Errorf("FILTER left side must be a variable, got %q", left.text)
	}
	op, err := p.next()
	if err != nil {
		return err
	}
	if op.kind != tokSym || (op.text != "!=" && op.text != "=") {
		return fmt.Errorf("expected != or = in FILTER, got %q", op.text)
	}
	right, err := p.parseTermTok()
	if err != nil {
		return err
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	if op.text == "=" {
		if right.IsVar {
			return fmt.Errorf("equality FILTER with variable right side unsupported")
		}
		br.binds[left.text] = right.Value
		return nil
	}
	d := diseqAST{x: left.text}
	if right.IsVar {
		d.yIsVar, d.yVar = true, right.Value
	} else {
		d.yVal = right.Value
	}
	br.diseqs = append(br.diseqs, d)
	return nil
}

func (p *sparqlParser) parseBind(br *branchAST) error {
	if err := p.expectSym("("); err != nil {
		return err
	}
	val, err := p.next()
	if err != nil {
		return err
	}
	if val.kind != tokStr {
		return fmt.Errorf("BIND value must be a literal, got %q", val.text)
	}
	if err := p.expectWord("AS"); err != nil {
		return err
	}
	v, err := p.next()
	if err != nil {
		return err
	}
	if v.kind != tokVar {
		return fmt.Errorf("BIND target must be a variable, got %q", v.text)
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	br.binds[v.text] = val.text
	return nil
}

// materialize builds the Simple query from the staged statements, applying
// equality binds as substitutions and marking the projected node.
func (br *branchAST) materialize(outVar string) (*Simple, error) {
	subst := func(t Term) Term {
		if t.IsVar {
			if v, ok := br.binds[t.Value]; ok {
				return Const(v)
			}
		}
		return t
	}
	q := NewSimple()
	for i, tr := range br.triples {
		from, err := q.EnsureNode(subst(tr[0]), "")
		if err != nil {
			return nil, err
		}
		to, err := q.EnsureNode(subst(tr[2]), "")
		if err != nil {
			return nil, err
		}
		eid, err := q.AddEdge(from, to, br.labels[i])
		if err != nil {
			return nil, err
		}
		if br.optional[i] {
			if err := q.SetOptional(eid, true); err != nil {
				return nil, err
			}
		}
	}
	// Projected node: the output variable after substitution.
	projTerm := subst(Var(outVar))
	pid, err := q.EnsureNode(projTerm, "")
	if err != nil {
		return nil, err
	}
	if err := q.SetProjected(pid); err != nil {
		return nil, err
	}
	for _, d := range br.diseqs {
		xt := subst(Var(d.x))
		if !xt.IsVar {
			return nil, fmt.Errorf("disequality on bound variable ?%s", d.x)
		}
		xn, ok := q.NodeByTerm(xt)
		if !ok {
			return nil, fmt.Errorf("disequality over unknown variable ?%s", d.x)
		}
		if d.yIsVar {
			yt := subst(Var(d.yVar))
			yn, ok := q.NodeByTerm(yt)
			if !ok {
				return nil, fmt.Errorf("disequality over unknown variable ?%s", d.yVar)
			}
			if err := q.AddDiseqNodes(xn.ID, yn.ID); err != nil {
				return nil, err
			}
			continue
		}
		// Literal right side: attach to the pattern node when the literal
		// occurs in the query, else keep as a value constraint.
		if yn, ok := q.NodeByTerm(Const(d.yVal)); ok {
			if err := q.AddDiseqNodes(xn.ID, yn.ID); err != nil {
				return nil, err
			}
		} else if err := q.AddDiseqValue(xn.ID, d.yVal); err != nil {
			return nil, err
		}
	}
	return q, nil
}
