package query

import (
	"strings"
	"testing"

	"questpro/internal/graph"
)

// chainQuery builds ?p1 wb ?a1* / ?p1 wb Erdos, a tiny two-edge pattern.
func chainQuery(t *testing.T) *Simple {
	t.Helper()
	q := NewSimple()
	p1 := q.MustEnsureNode(Var("p1"), "Paper")
	a1 := q.MustEnsureNode(Var("a1"), "Author")
	erdos := q.MustEnsureNode(Const("Erdos"), "Author")
	q.MustAddEdge(p1, a1, "wb")
	q.MustAddEdge(p1, erdos, "wb")
	if err := q.SetProjected(a1); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTermBasics(t *testing.T) {
	v := Var("?x")
	if !v.IsVar || v.Value != "x" || v.String() != "?x" {
		t.Fatalf("Var(?x) = %+v (%s)", v, v)
	}
	c := Const("x")
	if c.IsVar || c.String() != "x" {
		t.Fatalf("Const(x) = %+v", c)
	}
	if v == c {
		t.Fatal("var and const with same spelling compare equal")
	}
}

func TestEnsureNodeIdentity(t *testing.T) {
	q := NewSimple()
	a, err := q.EnsureNode(Var("x"), "T")
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.EnsureNode(Var("x"), "")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same variable produced two nodes")
	}
	if _, err := q.EnsureNode(Var("x"), "U"); err == nil {
		t.Fatal("conflicting type accepted")
	}
	c, err := q.EnsureNode(Const("x"), "")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("const x aliased with var x")
	}
	if q.NumNodes() != 2 || q.NumVars() != 1 {
		t.Fatalf("nodes=%d vars=%d", q.NumNodes(), q.NumVars())
	}
}

func TestFreshVar(t *testing.T) {
	q := NewSimple()
	q.MustEnsureNode(Var("v1"), "")
	id := q.FreshVar("T")
	n := q.Node(id)
	if !n.Term.IsVar || n.Term.Value == "v1" {
		t.Fatalf("FreshVar collided: %+v", n)
	}
	if n.Type != "T" {
		t.Fatalf("FreshVar type = %q", n.Type)
	}
}

func TestAddEdgeDuplicate(t *testing.T) {
	q := chainQuery(t)
	p1, _ := q.NodeByTerm(Var("p1"))
	a1, _ := q.NodeByTerm(Var("a1"))
	if _, err := q.AddEdge(p1.ID, a1.ID, "wb"); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := q.AddEdge(p1.ID, a1.ID, "cites"); err != nil {
		t.Fatalf("distinct-label edge rejected: %v", err)
	}
	if _, err := q.AddEdge(p1.ID, NodeID(99), "x"); err == nil {
		t.Fatal("invalid endpoint accepted")
	}
}

func TestDiseqs(t *testing.T) {
	q := chainQuery(t)
	a1, _ := q.NodeByTerm(Var("a1"))
	p1, _ := q.NodeByTerm(Var("p1"))
	erdos, _ := q.NodeByTerm(Const("Erdos"))

	if err := q.AddDiseqNodes(a1.ID, erdos.ID); err != nil {
		t.Fatal(err)
	}
	// Swapped orientation is normalized.
	if err := q.AddDiseqNodes(erdos.ID, a1.ID); err != nil {
		t.Fatal(err)
	}
	if q.NumDiseqs() != 1 {
		t.Fatalf("diseqs = %d, want 1 after dedup", q.NumDiseqs())
	}
	if err := q.AddDiseqNodes(a1.ID, p1.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	if q.NumDiseqs() != 3 {
		t.Fatalf("diseqs = %d, want 3", q.NumDiseqs())
	}
	if err := q.AddDiseqValue(erdos.ID, "Bob"); err == nil {
		t.Fatal("diseq on constant accepted")
	}
	if err := q.AddDiseqNodes(a1.ID, a1.ID); err == nil {
		t.Fatal("self diseq accepted")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	stripped := q.WithoutDiseqs()
	if stripped.NumDiseqs() != 0 || q.NumDiseqs() != 3 {
		t.Fatal("WithoutDiseqs leaked")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := chainQuery(t)
	c := q.Clone()
	c.FreshVar("")
	a1, _ := c.NodeByTerm(Var("a1"))
	p1, _ := c.NodeByTerm(Var("p1"))
	if err := c.AddDiseqNodes(a1.ID, p1.ID); err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() == c.NumNodes() || q.NumDiseqs() != 0 {
		t.Fatal("clone shares state with original")
	}
}

func TestFromExplanation(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	g.MustAddTriple("paper1", "wb", "Bob")
	alice, _ := g.NodeByValue("Alice")
	g.SetNodeType(alice.ID, "Author")

	q, err := FromExplanation(g, alice.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsGround() || q.NumEdges() != 2 {
		t.Fatalf("ground query: vars=%d edges=%d", q.NumVars(), q.NumEdges())
	}
	pn := q.Node(q.Projected())
	if pn.Term.IsVar || pn.Term.Value != "Alice" || pn.Type != "Author" {
		t.Fatalf("projected = %+v", pn)
	}
}

func TestUnionCost(t *testing.T) {
	// Example 4.2 cost structure: constants-only branches cost w2 each,
	// variables cost w1 each.
	q := chainQuery(t) // 2 vars
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	alice, _ := g.NodeByValue("Alice")
	ground, err := FromExplanation(g, alice.ID)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnion(q, ground)
	if u.TotalVars() != 2 || u.Size() != 2 {
		t.Fatalf("vars=%d size=%d", u.TotalVars(), u.Size())
	}
	if got := u.Cost(2, 5); got != 2*2+5*2 {
		t.Fatalf("Cost = %v", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionReplace(t *testing.T) {
	a, b, c := chainQuery(t), chainQuery(t), chainQuery(t)
	u := NewUnion(a, b, c)
	merged := chainQuery(t)
	v, err := u.Replace(0, 2, merged)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 2 || v.Branch(0) != b || v.Branch(1) != merged {
		t.Fatalf("Replace result wrong: %v", v)
	}
	if _, err := u.Replace(1, 1, merged); err == nil {
		t.Fatal("Replace(i,i) accepted")
	}
	if _, err := u.Replace(0, 9, merged); err == nil {
		t.Fatal("Replace out of range accepted")
	}
}

func TestIsomorphicPositive(t *testing.T) {
	a := chainQuery(t)
	// Same shape, different variable names, different insertion order.
	b := NewSimple()
	erdos := b.MustEnsureNode(Const("Erdos"), "Author")
	x := b.MustEnsureNode(Var("x"), "Author")
	p := b.MustEnsureNode(Var("paperVar"), "Paper")
	b.MustAddEdge(p, erdos, "wb")
	b.MustAddEdge(p, x, "wb")
	if err := b.SetProjected(x); err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(a, b) || !Isomorphic(b, a) {
		t.Fatal("isomorphic queries not recognized")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for isomorphic queries")
	}
}

func TestIsomorphicNegative(t *testing.T) {
	a := chainQuery(t)

	// Different projected node.
	b := a.Clone()
	p1, _ := b.NodeByTerm(Var("p1"))
	if err := b.SetProjected(p1.ID); err != nil {
		t.Fatal(err)
	}
	if Isomorphic(a, b) {
		t.Fatal("different projection considered isomorphic")
	}

	// Different constant.
	c := NewSimple()
	p := c.MustEnsureNode(Var("p1"), "Paper")
	x := c.MustEnsureNode(Var("a1"), "Author")
	other := c.MustEnsureNode(Const("Euler"), "Author")
	c.MustAddEdge(p, x, "wb")
	c.MustAddEdge(p, other, "wb")
	c.SetProjected(x)
	if Isomorphic(a, c) {
		t.Fatal("different constants considered isomorphic")
	}

	// Different diseq sets.
	d := a.Clone()
	a1, _ := d.NodeByTerm(Var("a1"))
	if err := d.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	if Isomorphic(a, d) {
		t.Fatal("different diseqs considered isomorphic")
	}

	// Reversed edge direction.
	e := NewSimple()
	pe := e.MustEnsureNode(Var("p1"), "Paper")
	ae := e.MustEnsureNode(Var("a1"), "Author")
	ce := e.MustEnsureNode(Const("Erdos"), "Author")
	e.MustAddEdge(ae, pe, "wb")
	e.MustAddEdge(pe, ce, "wb")
	e.SetProjected(ae)
	if Isomorphic(a, e) {
		t.Fatal("reversed edge considered isomorphic")
	}
}

func TestIsomorphicDiseqMapping(t *testing.T) {
	mk := func(varNames [2]string, diseq bool) *Simple {
		q := NewSimple()
		p := q.MustEnsureNode(Var(varNames[0]), "")
		a := q.MustEnsureNode(Var(varNames[1]), "")
		c := q.MustEnsureNode(Const("Erdos"), "")
		q.MustAddEdge(p, a, "wb")
		q.MustAddEdge(p, c, "wb")
		q.SetProjected(a)
		if diseq {
			if err := q.AddDiseqNodes(a, c); err != nil {
				panic(err)
			}
		}
		return q
	}
	a := mk([2]string{"p", "a"}, true)
	b := mk([2]string{"paper", "author"}, true)
	if !Isomorphic(a, b) {
		t.Fatal("diseq-carrying isomorphic queries not recognized")
	}
}

func TestUnionIsomorphic(t *testing.T) {
	a1, a2 := chainQuery(t), chainQuery(t)
	b1, b2 := chainQuery(t), chainQuery(t)
	x, _ := b2.NodeByTerm(Var("a1"))
	if err := b2.AddDiseqValue(x.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	u1 := NewUnion(a1, a2)
	u2 := NewUnion(a2, a1)
	if !UnionIsomorphic(u1, u2) {
		t.Fatal("branch order should not matter")
	}
	u3 := NewUnion(b1, b2)
	if UnionIsomorphic(u1, u3) {
		t.Fatal("different branch content considered isomorphic")
	}
	if UnionIsomorphic(u1, NewUnion(a1)) {
		t.Fatal("different sizes considered isomorphic")
	}
	if u1.Fingerprint() != u2.Fingerprint() {
		t.Fatal("union fingerprint depends on branch order")
	}
}

func TestSPARQLRenderSimple(t *testing.T) {
	q := chainQuery(t)
	a1, _ := q.NodeByTerm(Var("a1"))
	if err := q.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	s := q.SPARQL()
	for _, want := range []string{"SELECT ?a1 WHERE {", `?p1 <wb> ?a1 .`, `?p1 <wb> "Erdos" .`, `FILTER (?a1 != "Bob")`} {
		if !strings.Contains(s, want) {
			t.Fatalf("SPARQL output missing %q:\n%s", want, s)
		}
	}
}

func TestSPARQLRenderGroundProjected(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	alice, _ := g.NodeByValue("Alice")
	q, err := FromExplanation(g, alice.ID)
	if err != nil {
		t.Fatal(err)
	}
	s := q.SPARQL()
	if !strings.Contains(s, `BIND ("Alice" AS ?out)`) || !strings.Contains(s, "SELECT ?out") {
		t.Fatalf("ground projected rendering wrong:\n%s", s)
	}
}

func TestSPARQLRoundTripSimple(t *testing.T) {
	q := chainQuery(t)
	a1, _ := q.NodeByTerm(Var("a1"))
	p1, _ := q.NodeByTerm(Var("p1"))
	erdos, _ := q.NodeByTerm(Const("Erdos"))
	if err := q.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqNodes(a1.ID, p1.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqNodes(a1.ID, erdos.ID); err != nil {
		t.Fatal(err)
	}
	u, err := ParseSPARQL(q.SPARQL())
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 1 {
		t.Fatalf("parsed %d branches", u.Size())
	}
	// Types are not carried by SPARQL text; compare untyped copies.
	if !Isomorphic(stripTypes(q), u.Branch(0)) {
		t.Fatalf("round trip broke the query:\n%s\nvs\n%s", q.SPARQL(), u.Branch(0).SPARQL())
	}
}

func TestSPARQLRoundTripUnion(t *testing.T) {
	q1 := chainQuery(t)
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	alice, _ := g.NodeByValue("Alice")
	q2, err := FromExplanation(g, alice.ID)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnion(q1, q2)
	text := u.SPARQL()
	back, err := ParseSPARQL(text)
	if err != nil {
		t.Fatalf("parsing %s: %v", text, err)
	}
	if !UnionIsomorphic(NewUnion(stripTypes(q1), stripTypes(q2)), back) {
		t.Fatalf("union round trip broke:\n%s\nvs\n%s", text, back.SPARQL())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no select":          "WHERE { }",
		"no var":             "SELECT x WHERE { }",
		"unterminated":       "SELECT ?x WHERE { ?x <p> ?y .",
		"trailing":           "SELECT ?x WHERE { } garbage",
		"bad filter op":      "SELECT ?x WHERE { FILTER (?x < ?y) }",
		"const filter left":  `SELECT ?x WHERE { FILTER ("a" != ?y) }`,
		"triple no dot":      "SELECT ?x WHERE { ?x <p> ?y }",
		"bad iri":            "SELECT ?x WHERE { ?x <p ?y . }",
		"bad string":         `SELECT ?x WHERE { ?x <p> "open . }`,
		"diseq unknown var":  "SELECT ?x WHERE { ?x <p> ?y . FILTER (?z != ?y) }",
		"eq var right":       "SELECT ?x WHERE { ?x <p> ?y . FILTER (?x = ?y) }",
		"bind non-literal":   "SELECT ?x WHERE { BIND (?y AS ?x) }",
		"bind non-var":       `SELECT ?x WHERE { BIND ("a" AS "b") }`,
		"stray bang":         "SELECT ?x WHERE { FILTER (?x ! ?y) }",
		"empty var":          "SELECT ? WHERE { }",
		"diseq on bound var": `SELECT ?x WHERE { ?x <p> ?y . FILTER (?y != ?x) BIND ("a" AS ?y) }`,
	}
	for name, text := range cases {
		if _, err := ParseSPARQL(text); err == nil {
			t.Errorf("%s: parse succeeded for %q", name, text)
		}
	}
}

// stripTypes removes node types, matching what SPARQL text can carry.
func stripTypes(q *Simple) *Simple {
	c := q.Clone()
	for i := range c.nodes {
		c.nodes[i].Type = ""
	}
	return c
}

func TestValidateCatchesBadDiseq(t *testing.T) {
	q := chainQuery(t)
	q.diseqs = append(q.diseqs, Diseq{X: 2}) // node 2 is the Erdos constant
	if err := q.Validate(); err == nil {
		t.Fatal("diseq on constant passed validation")
	}
}

func TestStringForms(t *testing.T) {
	q := chainQuery(t)
	if s := q.String(); !strings.Contains(s, "?a1") || !strings.Contains(s, "wb") {
		t.Fatalf("String = %q", s)
	}
	u := NewUnion(q, q.Clone())
	if s := u.String(); !strings.HasPrefix(s, "Union(") {
		t.Fatalf("Union String = %q", s)
	}
}

func TestUnionSPARQLOutVarCollision(t *testing.T) {
	// A branch already using ?out forces the union onto ?out1.
	b1 := NewSimple()
	p := b1.MustEnsureNode(Var("out"), "")
	a := b1.MustEnsureNode(Var("a"), "")
	b1.MustAddEdge(p, a, "wb")
	b1.SetProjected(a)
	b2 := chainQuery(t)
	u := NewUnion(b1, b2)
	s := u.SPARQL()
	if !strings.Contains(s, "SELECT ?out1 WHERE") {
		t.Fatalf("collision not avoided:\n%s", s)
	}
	back, err := ParseSPARQL(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 2 {
		t.Fatalf("round trip lost branches:\n%s", back.SPARQL())
	}
}

func TestSimpleSPARQLGroundOutCollision(t *testing.T) {
	// A ground-projected query with a variable named "out" elsewhere.
	q := NewSimple()
	c := q.MustEnsureNode(Const("Alice"), "")
	v := q.MustEnsureNode(Var("out"), "")
	q.MustAddEdge(v, c, "wb")
	q.SetProjected(c)
	s := q.SPARQL()
	if !strings.Contains(s, `BIND ("Alice" AS ?out1)`) {
		t.Fatalf("fresh out name not chosen:\n%s", s)
	}
	back, err := ParseSPARQL(s)
	if err != nil {
		t.Fatal(err)
	}
	bp := back.Branch(0).Node(back.Branch(0).Projected())
	if bp.Term.IsVar || bp.Term.Value != "Alice" {
		t.Fatalf("projected constant lost: %+v", bp)
	}
}

func TestOptionalAccessors(t *testing.T) {
	q := chainQuery(t)
	e := q.Edges()[0].ID
	if q.IsOptional(e) || q.NumOptionalEdges() != 0 {
		t.Fatal("fresh edges should be mandatory")
	}
	if err := q.SetOptional(e, true); err != nil {
		t.Fatal(err)
	}
	if !q.IsOptional(e) || q.NumOptionalEdges() != 1 {
		t.Fatal("SetOptional(true) not applied")
	}
	// Clone carries optionality; clearing on the clone leaves the original.
	c := q.Clone()
	if err := c.SetOptional(e, false); err != nil {
		t.Fatal(err)
	}
	if c.NumOptionalEdges() != 0 || !q.IsOptional(e) {
		t.Fatal("optional state shared between clones")
	}
	if err := q.SetOptional(EdgeID(99), true); err == nil {
		t.Fatal("invalid edge accepted")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Render and reparse preserve the OPTIONAL block in-package too.
	s := q.SPARQL()
	if !strings.Contains(s, "OPTIONAL {") {
		t.Fatalf("render missing OPTIONAL:\n%s", s)
	}
	back, err := ParseSPARQL(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Branch(0).NumOptionalEdges() != 1 {
		t.Fatalf("parse lost optionality:\n%s", back.Branch(0).SPARQL())
	}
	if _, err := ParseSPARQL("SELECT ?x WHERE { OPTIONAL { FILTER (?x != ?y) } }"); err == nil {
		t.Fatal("FILTER inside OPTIONAL accepted")
	}
	if _, err := ParseSPARQL("SELECT ?x WHERE { OPTIONAL ?x <p> ?y . }"); err == nil {
		t.Fatal("OPTIONAL without braces accepted")
	}
}
