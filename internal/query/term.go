// Package query implements the SPARQL query class of the paper (Section
// II-A): simple queries — basic graph patterns over an ontology graph with a
// single projected node — unions of simple queries, and disequality
// constraints between nodes of the same ontology type (Section V).
//
// A query is itself a labeled graph whose nodes carry terms: either constant
// ontology values or variables. Node identity coincides with term identity
// (two occurrences of the same variable, or of the same constant, are the
// same query node), which matches the homomorphism semantics of Definition
// 2.2.
package query

import "strings"

// Term is the label of a query node: a constant ontology value or a variable.
type Term struct {
	IsVar bool
	// Value is the constant's ontology value, or the variable's name
	// (without the leading "?").
	Value string
}

// Const returns a constant term.
func Const(value string) Term { return Term{Value: value} }

// Var returns a variable term. A leading "?" is stripped for convenience.
func Var(name string) Term {
	return Term{IsVar: true, Value: strings.TrimPrefix(name, "?")}
}

// String renders the term in SPARQL-ish form: ?name for variables and the
// raw value for constants.
func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Value
	}
	return t.Value
}

// Term is a comparable struct, so it is used directly as the map key in
// Simple.byTerm: a variable and a constant with the same spelling differ in
// IsVar and never collide. (An earlier string encoding of the same
// distinction allocated a key string per lookup on the BuildQuery hot path.)
