package query

import (
	"fmt"
	"sort"

	"questpro/internal/graph"
)

// NodeID identifies a node within one Simple query.
type NodeID int32

// EdgeID identifies an edge within one Simple query.
type EdgeID int32

// NoNode is the sentinel "no node" id (also the initial projected node).
const NoNode NodeID = -1

// Node is a query node: a term plus an optional ontology type annotation
// (used when inferring disequalities; see Section V).
type Node struct {
	ID   NodeID
	Term Term
	Type string
}

// Edge is a directed labeled query edge.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Label    string
}

// Diseq is a disequality constraint ?x != y where X is a variable node and
// the right-hand side is either another query node (variable or constant) or
// a literal constant value not necessarily present in the pattern.
type Diseq struct {
	X NodeID // always a variable node
	// Y is the other node when YIsNode; otherwise YValue is a literal value.
	Y       NodeID
	YIsNode bool
	YValue  string
}

// Simple is a simple SPARQL query: a basic graph pattern with one projected
// node and optional disequalities. As a representational convenience the
// projected node may be a constant (this arises for the trivial union query
// of Section IV that turns each explanation into a constants-only pattern).
type Simple struct {
	nodes  []Node
	edges  []Edge
	byTerm map[Term]NodeID // lazily allocated on first EnsureNode

	// out/in are indexed by NodeID (node ids are dense) and grown alongside
	// nodes; a map here cost one hash per AddEdge and per adjacency lookup.
	out [][]EdgeID
	in  [][]EdgeID

	edgeTriples map[qTripleKey]EdgeID // lazily allocated on first AddEdge

	optional map[EdgeID]bool // lazily allocated on first SetOptional(true)

	projected NodeID
	diseqs    []Diseq

	varCounter int // for FreshVar
}

type qTripleKey struct {
	from, to NodeID
	label    string
}

// NewSimple returns an empty simple query with no projected node. The
// internal maps are allocated lazily: queries are built in bulk on the merge
// kernel's hot path, and empty-map allocations there are pure overhead.
func NewSimple() *Simple {
	return &Simple{projected: NoNode}
}

// Grow preallocates internal storage for at least n more nodes and e more
// edges, like the append contract: callers that know the final pattern size
// (e.g. BuildQuery) avoid incremental slice growth and map rehashing.
func (q *Simple) Grow(n, e int) {
	if n > 0 {
		q.nodes = append(make([]Node, 0, len(q.nodes)+n), q.nodes...)
		q.out = append(make([][]EdgeID, 0, len(q.out)+n), q.out...)
		q.in = append(make([][]EdgeID, 0, len(q.in)+n), q.in...)
		if q.byTerm == nil {
			q.byTerm = make(map[Term]NodeID, n)
		}
	}
	if e > 0 {
		q.edges = append(make([]Edge, 0, len(q.edges)+e), q.edges...)
		if q.edgeTriples == nil {
			q.edgeTriples = make(map[qTripleKey]EdgeID, e)
		}
	}
}

// NumNodes reports the number of query nodes.
func (q *Simple) NumNodes() int { return len(q.nodes) }

// NumEdges reports the number of query edges.
func (q *Simple) NumEdges() int { return len(q.edges) }

// NumVars reports the number of distinct variable nodes — the paper's
// preference criterion for simple queries (Section III).
func (q *Simple) NumVars() int {
	n := 0
	for _, node := range q.nodes {
		if node.Term.IsVar {
			n++
		}
	}
	return n
}

// EnsureNode returns the node carrying the given term, creating it if
// needed. A non-empty type fills an empty one; a conflicting non-empty type
// is an error.
func (q *Simple) EnsureNode(t Term, typ string) (NodeID, error) {
	if id, ok := q.byTerm[t]; ok {
		n := &q.nodes[id]
		if typ != "" && n.Type == "" {
			n.Type = typ
		} else if typ != "" && n.Type != typ {
			return NoNode, fmt.Errorf("query: node %s has type %q, conflicting type %q", t, n.Type, typ)
		}
		return id, nil
	}
	id := NodeID(len(q.nodes))
	q.nodes = append(q.nodes, Node{ID: id, Term: t, Type: typ})
	q.out = append(q.out, nil)
	q.in = append(q.in, nil)
	if q.byTerm == nil {
		q.byTerm = make(map[Term]NodeID)
	}
	q.byTerm[t] = id
	return id, nil
}

// MustEnsureNode is EnsureNode that panics on error; for fixtures and tests.
func (q *Simple) MustEnsureNode(t Term, typ string) NodeID {
	id, err := q.EnsureNode(t, typ)
	if err != nil {
		panic(err)
	}
	return id
}

// FreshVar creates a new variable node with an unused generated name.
func (q *Simple) FreshVar(typ string) NodeID {
	for {
		q.varCounter++
		t := Var(fmt.Sprintf("v%d", q.varCounter))
		if _, ok := q.byTerm[t]; ok {
			continue
		}
		id, err := q.EnsureNode(t, typ)
		if err != nil {
			panic(err) // unreachable: name is fresh
		}
		return id
	}
}

// AddEdge adds the edge from -label-> to. Duplicate (from, to, label)
// triples are rejected, matching the ontology model.
func (q *Simple) AddEdge(from, to NodeID, label string) (EdgeID, error) {
	if !q.validNode(from) || !q.validNode(to) {
		return -1, fmt.Errorf("query: invalid edge endpoints (%d, %d)", from, to)
	}
	key := qTripleKey{from: from, to: to, label: label}
	if _, ok := q.edgeTriples[key]; ok {
		return -1, fmt.Errorf("query: duplicate edge %s -%s-> %s",
			q.nodes[from].Term, label, q.nodes[to].Term)
	}
	id := EdgeID(len(q.edges))
	q.edges = append(q.edges, Edge{ID: id, From: from, To: to, Label: label})
	if q.edgeTriples == nil {
		q.edgeTriples = make(map[qTripleKey]EdgeID)
	}
	q.edgeTriples[key] = id
	q.out[from] = append(q.out[from], id)
	q.in[to] = append(q.in[to], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error.
func (q *Simple) MustAddEdge(from, to NodeID, label string) EdgeID {
	id, err := q.AddEdge(from, to, label)
	if err != nil {
		panic(err)
	}
	return id
}

// SetOptional marks an edge as OPTIONAL (an extension beyond the paper's
// query class; the conclusion names OPTIONAL as future work). Optional
// edges never restrict the result set: the evaluator binds them when a
// compatible ontology edge exists and skips them otherwise, so they enrich
// provenance with context rather than filter results.
func (q *Simple) SetOptional(e EdgeID, optional bool) error {
	if e < 0 || int(e) >= len(q.edges) {
		return fmt.Errorf("query: invalid edge id %d", e)
	}
	if optional {
		if q.optional == nil {
			q.optional = make(map[EdgeID]bool)
		}
		q.optional[e] = true
	} else {
		delete(q.optional, e)
	}
	return nil
}

// IsOptional reports whether the edge is OPTIONAL.
func (q *Simple) IsOptional(e EdgeID) bool { return q.optional[e] }

// NumOptionalEdges reports how many edges are OPTIONAL.
func (q *Simple) NumOptionalEdges() int { return len(q.optional) }

// HasEdgeTriple reports whether from -label-> to exists.
func (q *Simple) HasEdgeTriple(from, to NodeID, label string) bool {
	_, ok := q.edgeTriples[qTripleKey{from: from, to: to, label: label}]
	return ok
}

// FindEdge returns the edge from -label-> to, if present.
func (q *Simple) FindEdge(from, to NodeID, label string) (Edge, bool) {
	id, ok := q.edgeTriples[qTripleKey{from: from, to: to, label: label}]
	if !ok {
		return Edge{}, false
	}
	return q.edges[id], true
}

func (q *Simple) validNode(id NodeID) bool { return id >= 0 && int(id) < len(q.nodes) }

// Node returns the node with the given id; it panics on invalid ids.
func (q *Simple) Node(id NodeID) Node {
	if !q.validNode(id) {
		panic(fmt.Sprintf("query: invalid node id %d", id))
	}
	return q.nodes[id]
}

// Edge returns the edge with the given id; it panics on invalid ids.
func (q *Simple) Edge(id EdgeID) Edge {
	if id < 0 || int(id) >= len(q.edges) {
		panic(fmt.Sprintf("query: invalid edge id %d", id))
	}
	return q.edges[id]
}

// NodeByTerm looks a node up by its term.
func (q *Simple) NodeByTerm(t Term) (Node, bool) {
	id, ok := q.byTerm[t]
	if !ok {
		return Node{}, false
	}
	return q.nodes[id], true
}

// Nodes returns a copy of all nodes in id order.
func (q *Simple) Nodes() []Node {
	out := make([]Node, len(q.nodes))
	copy(out, q.nodes)
	return out
}

// Edges returns a copy of all edges in id order.
func (q *Simple) Edges() []Edge {
	out := make([]Edge, len(q.edges))
	copy(out, q.edges)
	return out
}

// OutEdges returns the ids of edges with source n; shared slice, read-only.
func (q *Simple) OutEdges(n NodeID) []EdgeID {
	if !q.validNode(n) {
		return nil
	}
	return q.out[n]
}

// InEdges returns the ids of edges with target n; shared slice, read-only.
func (q *Simple) InEdges(n NodeID) []EdgeID {
	if !q.validNode(n) {
		return nil
	}
	return q.in[n]
}

// Degree reports the total degree of a node.
func (q *Simple) Degree(n NodeID) int {
	if !q.validNode(n) {
		return 0
	}
	return len(q.out[n]) + len(q.in[n])
}

// SetProjected designates the projected (output) node.
func (q *Simple) SetProjected(id NodeID) error {
	if !q.validNode(id) {
		return fmt.Errorf("query: invalid projected node id %d", id)
	}
	q.projected = id
	return nil
}

// Projected returns the projected node id, or NoNode if unset.
func (q *Simple) Projected() NodeID { return q.projected }

// Labels returns the sorted set of edge labels.
func (q *Simple) Labels() []string {
	set := map[string]bool{}
	for _, e := range q.edges {
		set[e.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// AddDiseqNodes adds the disequality x != y between two query nodes. x must
// be a variable node; if x is constant but y is a variable the pair is
// swapped. Duplicates are ignored.
func (q *Simple) AddDiseqNodes(x, y NodeID) error {
	if !q.validNode(x) || !q.validNode(y) {
		return fmt.Errorf("query: invalid disequality nodes (%d, %d)", x, y)
	}
	if !q.nodes[x].Term.IsVar {
		if !q.nodes[y].Term.IsVar {
			return fmt.Errorf("query: disequality between two constants %s, %s",
				q.nodes[x].Term, q.nodes[y].Term)
		}
		x, y = y, x
	}
	if x == y {
		return fmt.Errorf("query: disequality of a node with itself")
	}
	d := Diseq{X: x, Y: y, YIsNode: true}
	// Canonical var-var orientation: lower id first, for dedup.
	if q.nodes[y].Term.IsVar && y < x {
		d = Diseq{X: y, Y: x, YIsNode: true}
	}
	for _, existing := range q.diseqs {
		if existing == d {
			return nil
		}
	}
	q.diseqs = append(q.diseqs, d)
	return nil
}

// AddDiseqValue adds the disequality x != value for a literal value.
func (q *Simple) AddDiseqValue(x NodeID, value string) error {
	if !q.validNode(x) {
		return fmt.Errorf("query: invalid disequality node %d", x)
	}
	if !q.nodes[x].Term.IsVar {
		return fmt.Errorf("query: disequality on constant node %s", q.nodes[x].Term)
	}
	d := Diseq{X: x, YValue: value}
	for _, existing := range q.diseqs {
		if existing == d {
			return nil
		}
	}
	q.diseqs = append(q.diseqs, d)
	return nil
}

// Diseqs returns a copy of the disequality constraints.
func (q *Simple) Diseqs() []Diseq {
	out := make([]Diseq, len(q.diseqs))
	copy(out, q.diseqs)
	return out
}

// NumDiseqs reports the number of disequality constraints.
func (q *Simple) NumDiseqs() int { return len(q.diseqs) }

// Clone returns a deep copy.
func (q *Simple) Clone() *Simple {
	c := NewSimple()
	c.nodes = append([]Node(nil), q.nodes...)
	c.edges = append([]Edge(nil), q.edges...)
	if q.byTerm != nil {
		c.byTerm = make(map[Term]NodeID, len(q.byTerm))
		for k, v := range q.byTerm {
			c.byTerm[k] = v
		}
	}
	c.out = make([][]EdgeID, len(q.out))
	for n, es := range q.out {
		c.out[n] = append([]EdgeID(nil), es...)
	}
	c.in = make([][]EdgeID, len(q.in))
	for n, es := range q.in {
		c.in[n] = append([]EdgeID(nil), es...)
	}
	if q.edgeTriples != nil {
		c.edgeTriples = make(map[qTripleKey]EdgeID, len(q.edgeTriples))
		for k, v := range q.edgeTriples {
			c.edgeTriples[k] = v
		}
	}
	if q.optional != nil {
		c.optional = make(map[EdgeID]bool, len(q.optional))
		for k, v := range q.optional {
			c.optional[k] = v
		}
	}
	c.projected = q.projected
	c.diseqs = append([]Diseq(nil), q.diseqs...)
	c.varCounter = q.varCounter
	return c
}

// WithoutDiseqs returns a copy of q with all disequalities removed — the
// Q^no form used by the feedback loop (Section V).
func (q *Simple) WithoutDiseqs() *Simple {
	c := q.Clone()
	c.diseqs = nil
	return c
}

// WithDiseqs returns a copy of q whose disequalities are exactly the given
// subset (which must be valid constraints of some query over the same nodes).
func (q *Simple) WithDiseqs(ds []Diseq) *Simple {
	c := q.Clone()
	c.diseqs = append([]Diseq(nil), ds...)
	return c
}

// IsGround reports whether the query has no variable nodes.
func (q *Simple) IsGround() bool { return q.NumVars() == 0 }

// Validate checks internal invariants.
func (q *Simple) Validate() error {
	seen := map[Term]bool{}
	for i, n := range q.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("query: node %d has id %d", i, n.ID)
		}
		if seen[n.Term] {
			return fmt.Errorf("query: duplicate term %s", n.Term)
		}
		seen[n.Term] = true
	}
	for i, e := range q.edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("query: edge %d has id %d", i, e.ID)
		}
		if !q.validNode(e.From) || !q.validNode(e.To) {
			return fmt.Errorf("query: edge %d has invalid endpoints", i)
		}
	}
	if q.projected != NoNode && !q.validNode(q.projected) {
		return fmt.Errorf("query: invalid projected node %d", q.projected)
	}
	for e := range q.optional {
		if e < 0 || int(e) >= len(q.edges) {
			return fmt.Errorf("query: optional flag on invalid edge %d", e)
		}
	}
	for _, d := range q.diseqs {
		if !q.validNode(d.X) || !q.nodes[d.X].Term.IsVar {
			return fmt.Errorf("query: disequality left side %d is not a variable node", d.X)
		}
		if d.YIsNode && !q.validNode(d.Y) {
			return fmt.Errorf("query: disequality right side %d invalid", d.Y)
		}
	}
	return nil
}

// FromExplanation converts an ontology subgraph with a distinguished node
// into a constants-only Simple query whose projected node carries the
// distinguished node's value. This is both the trivial consistent pattern of
// Section IV (the leaves of Algorithm 2's lattice) and the uniform
// representation that lets Algorithm 1 merge explanations and intermediate
// queries alike.
func FromExplanation(g *graph.Graph, distinguished graph.NodeID) (*Simple, error) {
	q := NewSimple()
	ids := make([]NodeID, g.NumNodes())
	for i, nn := 0, g.NumNodes(); i < nn; i++ {
		n := g.Node(graph.NodeID(i))
		id, err := q.EnsureNode(Const(n.Value), n.Type)
		if err != nil {
			return nil, err
		}
		ids[n.ID] = id
	}
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		e := g.Edge(graph.EdgeID(i))
		if _, err := q.AddEdge(ids[e.From], ids[e.To], e.Label); err != nil {
			return nil, err
		}
	}
	dn := g.Node(distinguished)
	pid, ok := q.NodeByTerm(Const(dn.Value))
	if !ok {
		return nil, fmt.Errorf("query: distinguished node %q missing", dn.Value)
	}
	if err := q.SetProjected(pid.ID); err != nil {
		return nil, err
	}
	return q, nil
}
