package query_test

import (
	"fmt"
	"log"

	"questpro/internal/query"
)

// ExampleParseSPARQL round-trips a query through its SPARQL text.
func ExampleParseSPARQL() {
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(p, a, "wb")
	q.MustAddEdge(p, erdos, "wb")
	if err := q.SetProjected(a); err != nil {
		log.Fatal(err)
	}
	if err := q.AddDiseqNodes(a, erdos); err != nil {
		log.Fatal(err)
	}

	text := q.SPARQL()
	fmt.Println(text)

	back, err := query.ParseSPARQL(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip isomorphic:", query.Isomorphic(q, back.Branch(0)))
	// Output:
	// SELECT ?a WHERE {
	//   ?p <wb> ?a .
	//   ?p <wb> "Erdos" .
	//   FILTER (?a != "Erdos")
	// }
	// round trip isomorphic: true
}

// ExampleUnion_Cost evaluates the minimum-generalization objective of
// Definition 4.1.
func ExampleUnion_Cost() {
	branch := query.NewSimple()
	p := branch.MustEnsureNode(query.Var("p"), "")
	a := branch.MustEnsureNode(query.Var("a"), "")
	branch.MustAddEdge(p, a, "wb")
	if err := branch.SetProjected(a); err != nil {
		log.Fatal(err)
	}
	u := query.NewUnion(branch, branch.Clone())
	// f(Q) = w1 * total variables + w2 * branches = 1*4 + 7*2
	fmt.Println(u.Cost(1, 7))
	// Output:
	// 18
}
