package query

import "fmt"

// Union is a SPARQL query that is a union of simple queries (Section II-A).
// A Union with a single branch is semantically that simple query.
type Union struct {
	branches []*Simple
}

// NewUnion builds a union query over the given branches.
func NewUnion(branches ...*Simple) *Union {
	return &Union{branches: append([]*Simple(nil), branches...)}
}

// Branches returns the underlying simple queries; shared slice, read-only.
func (u *Union) Branches() []*Simple { return u.branches }

// Size reports the number of branches (|Q| in the cost function of Def 4.1).
func (u *Union) Size() int { return len(u.branches) }

// Branch returns the i-th branch.
func (u *Union) Branch(i int) *Simple { return u.branches[i] }

// TotalVars reports the total number of variables over all branches
// (Σ_{q∈Q} |vars(q)| in Definition 4.1).
func (u *Union) TotalVars() int {
	n := 0
	for _, b := range u.branches {
		n += b.NumVars()
	}
	return n
}

// TotalDiseqs reports the total number of disequalities over all branches.
func (u *Union) TotalDiseqs() int {
	n := 0
	for _, b := range u.branches {
		n += b.NumDiseqs()
	}
	return n
}

// Cost evaluates the minimum-generalization objective of Definition 4.1:
// f(Q) = w1 * Σ_{q∈Q} |vars(q)| + w2 * |Q|.
func (u *Union) Cost(w1, w2 float64) float64 {
	return w1*float64(u.TotalVars()) + w2*float64(u.Size())
}

// Clone deep-copies the union.
func (u *Union) Clone() *Union {
	out := make([]*Simple, len(u.branches))
	for i, b := range u.branches {
		out[i] = b.Clone()
	}
	return &Union{branches: out}
}

// WithoutDiseqs returns a copy with every branch's disequalities stripped
// (the Q^no form of Section V).
func (u *Union) WithoutDiseqs() *Union {
	out := make([]*Simple, len(u.branches))
	for i, b := range u.branches {
		out[i] = b.WithoutDiseqs()
	}
	return &Union{branches: out}
}

// Replace returns a copy where branches i and j are removed and merged is
// appended; used by Algorithm 2's merge step.
func (u *Union) Replace(i, j int, merged *Simple) (*Union, error) {
	if i == j || i < 0 || j < 0 || i >= len(u.branches) || j >= len(u.branches) {
		return nil, fmt.Errorf("query: invalid branch indexes (%d, %d)", i, j)
	}
	out := make([]*Simple, 0, len(u.branches)-1)
	for k, b := range u.branches {
		if k == i || k == j {
			continue
		}
		out = append(out, b)
	}
	out = append(out, merged)
	return &Union{branches: out}, nil
}

// Validate checks every branch.
func (u *Union) Validate() error {
	if len(u.branches) == 0 {
		return fmt.Errorf("query: empty union")
	}
	for i, b := range u.branches {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("branch %d: %w", i, err)
		}
		if b.Projected() == NoNode {
			return fmt.Errorf("branch %d: no projected node", i)
		}
	}
	return nil
}
