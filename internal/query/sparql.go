package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// sparqlTerm renders a term as it appears inside a triple pattern: ?name for
// variables, a quoted literal for constants.
func sparqlTerm(t Term) string {
	if t.IsVar {
		return "?" + t.Value
	}
	return strconv.Quote(t.Value)
}

// sparqlLabel renders a predicate label as an IRI-ish token.
func sparqlLabel(l string) string { return "<" + l + ">" }

// renderBody writes the triple patterns, FILTER and BIND lines of q with the
// given indentation. outVar, when non-empty, renames the projected node to
// that variable (and, when the projected node is a constant, emits a BIND of
// the constant to the variable).
func (q *Simple) renderBody(sb *strings.Builder, indent, outVar string) {
	termOf := func(id NodeID) string {
		n := q.nodes[id]
		if outVar != "" && id == q.projected {
			return "?" + outVar
		}
		return sparqlTerm(n.Term)
	}
	if outVar != "" && q.projected != NoNode && !q.nodes[q.projected].Term.IsVar {
		fmt.Fprintf(sb, "%sBIND (%s AS ?%s)\n", indent,
			strconv.Quote(q.nodes[q.projected].Term.Value), outVar)
	}
	for _, e := range q.edges {
		if q.IsOptional(e.ID) {
			fmt.Fprintf(sb, "%sOPTIONAL { %s %s %s . }\n", indent,
				termOf(e.From), sparqlLabel(e.Label), termOf(e.To))
			continue
		}
		fmt.Fprintf(sb, "%s%s %s %s .\n", indent,
			termOf(e.From), sparqlLabel(e.Label), termOf(e.To))
	}
	for _, d := range q.diseqs {
		left := termOf(d.X)
		var right string
		if d.YIsNode {
			right = termOf(d.Y)
		} else {
			right = strconv.Quote(d.YValue)
		}
		fmt.Fprintf(sb, "%sFILTER (%s != %s)\n", indent, left, right)
	}
}

// SPARQL renders the simple query as SPARQL text (the subset this package
// also parses). The projected node determines the SELECT variable; a
// constant projected node is exposed through a BIND onto a fresh variable.
func (q *Simple) SPARQL() string {
	outVar := ""
	selectVar := ""
	if q.projected != NoNode {
		if p := q.nodes[q.projected]; p.Term.IsVar {
			selectVar = p.Term.Value
		} else {
			outVar = q.freshOutName()
			selectVar = outVar
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT ?%s WHERE {\n", selectVar)
	q.renderBody(&sb, "  ", outVar)
	sb.WriteString("}")
	return sb.String()
}

// freshOutName picks an output variable name unused by the query.
func (q *Simple) freshOutName() string {
	name := "out"
	for i := 0; ; i++ {
		if i > 0 {
			name = fmt.Sprintf("out%d", i)
		}
		if _, taken := q.byTerm[Var(name)]; !taken {
			return name
		}
	}
}

// String renders a compact single-line description, stable across runs.
func (q *Simple) String() string {
	parts := make([]string, 0, len(q.edges))
	for _, e := range q.edges {
		parts = append(parts, sparqlTerm(q.nodes[e.From].Term)+"-"+e.Label+"->"+sparqlTerm(q.nodes[e.To].Term))
	}
	sort.Strings(parts)
	proj := "∅"
	if q.projected != NoNode {
		proj = sparqlTerm(q.nodes[q.projected].Term)
	}
	extra := ""
	if len(q.diseqs) > 0 {
		extra = fmt.Sprintf(" +%d≠", len(q.diseqs))
	}
	return fmt.Sprintf("Q{%s | %s%s}", proj, strings.Join(parts, ", "), extra)
}

// SPARQL renders the union query. Every branch's projected node is renamed
// onto a common output variable so the union is well-formed SPARQL.
func (u *Union) SPARQL() string {
	if len(u.branches) == 1 {
		return u.branches[0].SPARQL()
	}
	outVar := "out"
	for i := 0; ; i++ {
		if i > 0 {
			outVar = fmt.Sprintf("out%d", i)
		}
		taken := false
		for _, b := range u.branches {
			if _, ok := b.byTerm[Var(outVar)]; ok {
				taken = true
				break
			}
		}
		if !taken {
			break
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT ?%s WHERE {\n", outVar)
	for i, b := range u.branches {
		if i > 0 {
			sb.WriteString("  UNION\n")
		}
		sb.WriteString("  {\n")
		b.renderBody(&sb, "    ", outVar)
		sb.WriteString("  }\n")
	}
	sb.WriteString("}")
	return sb.String()
}

// String renders a compact description of the union.
func (u *Union) String() string {
	parts := make([]string, len(u.branches))
	for i, b := range u.branches {
		parts[i] = b.String()
	}
	sort.Strings(parts)
	return "Union(" + strings.Join(parts, " ∪ ") + ")"
}
