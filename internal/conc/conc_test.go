package conc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"questpro/internal/conc"
	"questpro/internal/faults"
	"questpro/internal/qerr"
)

func TestWorkersDefault(t *testing.T) {
	if got := conc.Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := conc.Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := conc.Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestBudgetClampsOversizedRequest(t *testing.T) {
	b := conc.NewBudget(2)
	got, err := b.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Acquire clamped to %d, want 2", got)
	}
	b.Release(got)
}

func TestBudgetAcquireCanceled(t *testing.T) {
	b := conc.NewBudget(1)
	got, err := b.Acquire(context.Background(), 1)
	if err != nil || got != 1 {
		t.Fatalf("first acquire: got=%d err=%v", got, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 1); !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("blocked acquire returned %v, want ErrCanceled", err)
	}
	b.Release(got)
	// The token released by the failed acquire must be usable again.
	if got, err := b.Acquire(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("post-cancel acquire: got=%d err=%v", got, err)
	}
}

func TestBudgetConcurrentUse(t *testing.T) {
	b := conc.NewBudget(4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := b.Acquire(context.Background(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(n)
		}()
	}
	wg.Wait()
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("budget leaked tokens: got=%d err=%v", got, err)
	}
}

// TestBudgetMultiTokenNoDeadlock is the partial-acquisition deadlock repro:
// with token-at-a-time acquisition, 32 goroutines each wanting 3 of 4
// tokens end up holding 1-2 tokens apiece and hang forever. All-or-nothing
// grants must let every one of them through.
func TestBudgetMultiTokenNoDeadlock(t *testing.T) {
	b := conc.NewBudget(4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := b.Acquire(context.Background(), 3)
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(n)
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("multi-token acquirers deadlocked")
	}
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("budget leaked tokens: got=%d err=%v", got, err)
	}
}

// A canceled waiter at the head of the queue must not wedge the queue:
// the smaller request behind it gets the tokens.
func TestBudgetCanceledHeadUnblocksQueue(t *testing.T) {
	b := conc.NewBudget(4)
	got, err := b.Acquire(context.Background(), 3)
	if err != nil || got != 3 {
		t.Fatalf("setup acquire: got=%d err=%v", got, err)
	}
	// Head waiter: wants 4, can never fit while 3 are out.
	headCtx, cancelHead := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := b.Acquire(headCtx, 4)
		headErr <- err
	}()
	// Second waiter: wants 1, fits right now but must queue behind the head.
	tail := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond) // let the head enqueue first
		n, err := b.Acquire(context.Background(), 1)
		if err == nil {
			b.Release(n)
		}
		tail <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancelHead()
	if err := <-headErr; !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("canceled head returned %v, want ErrCanceled", err)
	}
	select {
	case err := <-tail:
		if err != nil {
			t.Fatalf("queued acquire after canceled head: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled head waiter wedged the queue")
	}
	b.Release(got)
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("budget leaked tokens: got=%d err=%v", got, err)
	}
}

func TestTryAcquire(t *testing.T) {
	b := conc.NewBudget(2)
	got, ok := b.TryAcquire(2)
	if !ok || got != 2 {
		t.Fatalf("TryAcquire on idle budget: got=%d ok=%v", got, ok)
	}
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire succeeded on a saturated budget")
	}
	b.Release(got)
	if got, ok := b.TryAcquire(10); !ok || got != 2 {
		t.Fatalf("TryAcquire did not clamp: got=%d ok=%v", got, ok)
	}
	b.Release(2)
}

// TryAcquire must not jump the FIFO queue: while a waiter is parked, even a
// fitting request is denied.
func TestTryAcquireRespectsWaiters(t *testing.T) {
	b := conc.NewBudget(4)
	got, err := b.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		n, err := b.Acquire(context.Background(), 3)
		if err == nil {
			b.Release(n)
		}
		waiterOut <- err
	}()
	<-waiterIn
	time.Sleep(50 * time.Millisecond) // let the waiter enqueue
	if _, ok := b.TryAcquire(1); ok {
		t.Fatal("TryAcquire overtook a queued waiter")
	}
	b.Release(got)
	if err := <-waiterOut; err != nil {
		t.Fatal(err)
	}
}

func TestAcquireWithinShedsOnSaturation(t *testing.T) {
	b := conc.NewBudget(1)
	got, err := b.AcquireWithin(context.Background(), 1, 50*time.Millisecond)
	if err != nil || got != 1 {
		t.Fatalf("idle AcquireWithin: got=%d err=%v", got, err)
	}
	start := time.Now()
	_, err = b.AcquireWithin(context.Background(), 1, 50*time.Millisecond)
	if !errors.Is(err, qerr.ErrOverloaded) {
		t.Fatalf("saturated AcquireWithin = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, qerr.ErrCanceled) {
		t.Fatal("overload must not be reported as cancellation")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("bounded wait was not bounded")
	}
	// wait == 0 is TryAcquire semantics.
	if _, err := b.AcquireWithin(context.Background(), 1, 0); !errors.Is(err, qerr.ErrOverloaded) {
		t.Fatalf("zero-wait saturated AcquireWithin = %v, want ErrOverloaded", err)
	}
	b.Release(got)
	if got, err := b.AcquireWithin(context.Background(), 1, 0); err != nil || got != 1 {
		t.Fatalf("post-release zero-wait: got=%d err=%v", got, err)
	}
	b.Release(1)
}

// A caller whose own context dies during the bounded wait sees cancellation,
// not overload: the two must stay distinguishable (504 vs 429 upstream).
func TestAcquireWithinCanceledCallerIsNotOverload(t *testing.T) {
	b := conc.NewBudget(1)
	got, err := b.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = b.AcquireWithin(ctx, 1, 10*time.Second)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("canceled-caller AcquireWithin = %v, want ErrCanceled", err)
	}
	if errors.Is(err, qerr.ErrOverloaded) {
		t.Fatal("cancellation must not be reported as overload")
	}
	b.Release(got)
}

func TestAcquireWithinFaultInjection(t *testing.T) {
	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.BudgetAcquire, FirstN: 2}))
	defer restore()
	b := conc.NewBudget(4)
	for i := 0; i < 2; i++ {
		if _, err := b.AcquireWithin(context.Background(), 1, time.Second); !errors.Is(err, qerr.ErrOverloaded) {
			t.Fatalf("injected admission fault %d = %v, want ErrOverloaded", i, err)
		}
	}
	got, err := b.AcquireWithin(context.Background(), 1, time.Second)
	if err != nil || got != 1 {
		t.Fatalf("post-fault acquire: got=%d err=%v", got, err)
	}
	b.Release(got)
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("injected faults leaked tokens: got=%d err=%v", got, err)
	}
}
