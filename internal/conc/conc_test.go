package conc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"questpro/internal/conc"
	"questpro/internal/qerr"
)

func TestWorkersDefault(t *testing.T) {
	if got := conc.Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := conc.Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := conc.Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestBudgetClampsOversizedRequest(t *testing.T) {
	b := conc.NewBudget(2)
	got, err := b.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Acquire clamped to %d, want 2", got)
	}
	b.Release(got)
}

func TestBudgetAcquireCanceled(t *testing.T) {
	b := conc.NewBudget(1)
	got, err := b.Acquire(context.Background(), 1)
	if err != nil || got != 1 {
		t.Fatalf("first acquire: got=%d err=%v", got, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 1); !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("blocked acquire returned %v, want ErrCanceled", err)
	}
	b.Release(got)
	// The token released by the failed acquire must be usable again.
	if got, err := b.Acquire(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("post-cancel acquire: got=%d err=%v", got, err)
	}
}

func TestBudgetConcurrentUse(t *testing.T) {
	b := conc.NewBudget(4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := b.Acquire(context.Background(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(n)
		}()
	}
	wg.Wait()
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("budget leaked tokens: got=%d err=%v", got, err)
	}
}
