// Package conc centralizes the worker-pool conventions shared by the
// parallel fan-outs of the eval and core layers and by the inference
// service's global budget. Every parallelism knob in the codebase
// (core.Options.Workers, the eval Results*Parallel worker arguments,
// service.Config.TotalWorkers) resolves through Workers, so "<= 0 means
// GOMAXPROCS" holds uniformly.
package conc

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"questpro/internal/faults"
	"questpro/internal/qerr"
)

// Workers resolves a worker-count knob: n if positive, otherwise
// runtime.GOMAXPROCS(0). This is the single shared default for all
// parallel fan-outs.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Budget is a weighted counting semaphore bounding the total number of
// inference workers in flight across concurrent sessions. Grants are
// all-or-nothing and FIFO (in the style of golang.org/x/sync/semaphore):
// a multi-token request either takes all its tokens atomically or joins a
// waiter queue, so concurrent multi-token acquirers can never deadlock by
// each holding a partial grant, and a large request at the head of the
// queue is not starved by a stream of smaller ones. The zero value is not
// usable; construct with NewBudget.
type Budget struct {
	size int

	mu      sync.Mutex
	used    int       // tokens currently granted
	waiters list.List // of *budgetWaiter, FIFO
}

// budgetWaiter is one queued Acquire: ready is closed once the whole
// request has been granted.
type budgetWaiter struct {
	n     int
	ready chan struct{}
}

// NewBudget returns a budget of Workers(n) tokens.
func NewBudget(n int) *Budget {
	return &Budget{size: Workers(n)}
}

// Size reports the total number of tokens.
func (b *Budget) Size() int { return b.size }

// Acquire takes n tokens, blocking until all n are available at once or
// the context is done (in which case no tokens are held and a
// qerr.ErrCanceled-wrapped error is reported). Requests above the budget
// size are clamped to it, so a single oversized request cannot deadlock;
// the clamped count is returned for the matching Release.
func (b *Budget) Acquire(ctx context.Context, n int) (int, error) {
	if n > b.size {
		n = b.size
	}
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	if b.used+n <= b.size && b.waiters.Len() == 0 {
		b.used += n
		b.mu.Unlock()
		return n, nil
	}
	w := &budgetWaiter{n: n, ready: make(chan struct{})}
	elem := b.waiters.PushBack(w)
	b.mu.Unlock()

	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
		b.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: give the
			// tokens back (waking anyone they now satisfy) and report the
			// cancellation.
			b.used -= n
			b.grantWaitersLocked()
			b.mu.Unlock()
		default:
			front := b.waiters.Front() == elem
			b.waiters.Remove(elem)
			// Removing the (possibly large) head request may unblock the
			// smaller ones queued behind it.
			if front {
				b.grantWaitersLocked()
			}
			b.mu.Unlock()
		}
		return 0, qerr.Canceled(ctx.Err())
	}
}

// TryAcquire takes n tokens (clamped like Acquire) only when they are
// immediately available and no earlier request is queued; it never blocks.
// It reports the granted count and whether the grant happened.
func (b *Budget) TryAcquire(n int) (int, bool) {
	if n > b.size {
		n = b.size
	}
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n <= b.size && b.waiters.Len() == 0 {
		b.used += n
		return n, true
	}
	return 0, false
}

// AcquireWithin is Acquire with bounded patience — the admission-control
// primitive behind the service's load shedding. It waits at most wait for
// the whole grant; if the budget stays saturated past the wait while the
// caller's own context is still live, it reports a qerr.ErrOverloaded-
// wrapped error (shed the request, tell the client to retry later) instead
// of ErrCanceled. wait == 0 degenerates to TryAcquire; wait < 0 waits
// forever (plain Acquire). The faults.BudgetAcquire injection point fires
// here, surfacing as an overload.
func (b *Budget) AcquireWithin(ctx context.Context, n int, wait time.Duration) (int, error) {
	if err := faults.Fire(faults.BudgetAcquire); err != nil {
		return 0, fmt.Errorf("conc: budget admission: %v: %w", err, qerr.ErrOverloaded)
	}
	if wait < 0 {
		return b.Acquire(ctx, n)
	}
	if got, ok := b.TryAcquire(n); ok {
		return got, nil
	}
	if wait == 0 {
		return 0, fmt.Errorf("conc: budget saturated: %w", qerr.ErrOverloaded)
	}
	waitCtx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	got, err := b.Acquire(waitCtx, n)
	if err != nil {
		if ctx.Err() == nil && waitCtx.Err() == context.DeadlineExceeded {
			return 0, fmt.Errorf("conc: budget saturated after %s: %w", wait, qerr.ErrOverloaded)
		}
		return 0, err
	}
	return got, nil
}

// Release returns n tokens to the budget, waking queued acquirers whose
// whole request now fits.
func (b *Budget) Release(n int) {
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.mu.Unlock()
		panic("conc: Budget.Release of more tokens than acquired")
	}
	b.grantWaitersLocked()
	b.mu.Unlock()
}

// grantWaitersLocked grants queued requests in FIFO order while they fit,
// stopping at the first that does not (so a big request cannot be starved).
// Callers hold b.mu.
func (b *Budget) grantWaitersLocked() {
	for {
		front := b.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*budgetWaiter)
		if b.used+w.n > b.size {
			return
		}
		b.used += w.n
		b.waiters.Remove(front)
		close(w.ready)
	}
}
