// Package conc centralizes the worker-pool conventions shared by the
// parallel fan-outs of the eval and core layers and by the inference
// service's global budget. Every parallelism knob in the codebase
// (core.Options.Workers, the eval Results*Parallel worker arguments,
// service.Config.TotalWorkers) resolves through Workers, so "<= 0 means
// GOMAXPROCS" holds uniformly.
package conc

import (
	"context"
	"runtime"

	"questpro/internal/qerr"
)

// Workers resolves a worker-count knob: n if positive, otherwise
// runtime.GOMAXPROCS(0). This is the single shared default for all
// parallel fan-outs.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Budget is a counting semaphore bounding the total number of inference
// workers in flight across concurrent sessions. The zero value is not
// usable; construct with NewBudget.
type Budget struct {
	tokens chan struct{}
}

// NewBudget returns a budget of Workers(n) tokens.
func NewBudget(n int) *Budget {
	size := Workers(n)
	b := &Budget{tokens: make(chan struct{}, size)}
	for i := 0; i < size; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Size reports the total number of tokens.
func (b *Budget) Size() int { return cap(b.tokens) }

// Acquire takes n tokens, blocking until they are available or the context
// is done (in which case any partially acquired tokens are returned and a
// qerr.ErrCanceled-wrapped error is reported). Requests above the budget
// size are clamped to it, so a single oversized request cannot deadlock;
// the clamped count is returned for the matching Release.
func (b *Budget) Acquire(ctx context.Context, n int) (int, error) {
	if n > cap(b.tokens) {
		n = cap(b.tokens)
	}
	if n < 1 {
		n = 1
	}
	for got := 0; got < n; got++ {
		select {
		case <-b.tokens:
		case <-ctx.Done():
			b.Release(got)
			return 0, qerr.Canceled(ctx.Err())
		}
	}
	return n, nil
}

// Release returns n tokens to the budget.
func (b *Budget) Release(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}
