package soak

import (
	"context"
	"fmt"
	"strings"
	"time"

	"questpro/internal/api"
)

// VerifyTraceContinuity proves the cross-tier trace contract (DESIGN.md
// §14) end to end against a live deployment: it drives one dialogue setup
// (create → examples → infer) through the target, notes the X-Request-Id
// the target echoed for the inference, then fetches the session's trace
// through the SAME target and checks the assembled forest — a
// gateway.proxy span must be present, and the backend's session.* root for
// the inference must link under it (parent_span_id naming the gateway
// span, both sides carrying the same request_id label). The target must be
// a qpgate gateway with tracing enabled; against a direct backend the
// forest has no gateway tier and the check fails by design.
func VerifyTraceContinuity(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	cl := newClient(&cfg, cfg.TargetURL, 4, cfg.Seed+31337)

	id, err := cl.CreateSession(ctx, wireOntology(), nil)
	if err != nil {
		return fmt.Errorf("soak: trace continuity: create: %w", err)
	}
	// Delete only after the check: a DELETE through the gateway drops the
	// session's retained gateway spans.
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cl.DeleteSession(dctx, id)
	}()
	if err := cl.SetExamples(ctx, id, wireExamples()); err != nil {
		return fmt.Errorf("soak: trace continuity: examples: %w", err)
	}
	if _, err := cl.Infer(ctx, id, "topk", 0); err != nil {
		return fmt.Errorf("soak: trace continuity: infer: %w", err)
	}
	inferRid := cl.LastRequestID()
	if inferRid == "" {
		return fmt.Errorf("soak: trace continuity: target echoed no X-Request-Id for the inference")
	}

	forest, err := cl.Trace(ctx, id)
	if err != nil {
		return fmt.Errorf("soak: trace continuity: trace fetch: %w", err)
	}

	gatewaySpans := make(map[string]*api.TraceNode)
	var backendRoots []*api.TraceNode
	for _, n := range forest.Traces {
		switch {
		case n.Kind == "gateway.proxy":
			if n.SpanID == "" {
				return fmt.Errorf("soak: trace continuity: gateway.proxy span without span_id")
			}
			gatewaySpans[n.SpanID] = n
		case strings.HasPrefix(n.Kind, "session."):
			backendRoots = append(backendRoots, n)
		}
	}
	if len(gatewaySpans) == 0 {
		return fmt.Errorf("soak: trace continuity: forest has no gateway.proxy spans — is %s a qpgate with tracing enabled?", cfg.TargetURL)
	}

	for _, root := range backendRoots {
		if root.Labels["request_id"] != inferRid {
			continue
		}
		parent := gatewaySpans[root.ParentSpanID]
		if parent == nil {
			return fmt.Errorf("soak: trace continuity: backend root %s (request_id=%s) has parent_span_id=%q naming no gateway span in the forest",
				root.Kind, inferRid, root.ParentSpanID)
		}
		if parent.Labels["request_id"] != inferRid {
			return fmt.Errorf("soak: trace continuity: request id diverges across tiers: gateway span %s carries %q, backend root carries %q",
				parent.SpanID, parent.Labels["request_id"], inferRid)
		}
		return nil
	}
	return fmt.Errorf("soak: trace continuity: no backend root span carries the inference's request id %s (forest has %d gateway spans, %d backend roots)",
		inferRid, len(gatewaySpans), len(backendRoots))
}
