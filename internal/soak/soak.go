// Package soak drives concurrent simulated feedback dialogues against a
// questprod deployment — usually through the qpgate gateway — and checks
// every inferred query against a control run on a direct single backend.
// It is the shared engine of cmd/qpsoak (the CLI soak harness), the
// kill-restart soak test, and cmd/qpbench's gateway-scaling benchmark.
//
// Each dialogue replays the paper's running example end to end: create a
// session, submit the explanations, run a top-k inference, then answer the
// membership questions of Algorithm 3 following a deterministic per-
// dialogue answer pattern, pausing Think between turns like an interactive
// user would. The final SPARQL must be byte-identical to the control
// transcript for the same pattern — a gateway that misroutes, drops, or
// double-applies a message fails this check, not just a latency budget.
//
// The driver survives shard kill-restarts: every non-answer step retries
// through the shedding 503s a recovering fleet emits, and answers — the
// one non-idempotent message, where a blind retry could consume the answer
// twice — go through a non-retrying client plus an explicit resync: on any
// failure the driver re-reads the idempotent pending question and matches
// it against the control transcript to learn whether the answer was
// applied or lost.
package soak

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"questpro/internal/api"
	qpclient "questpro/internal/client"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
)

// Config configures one soak run.
type Config struct {
	// TargetURL is the base URL all dialogues are driven against (the
	// gateway; a direct backend works too).
	TargetURL string
	// ControlURL is the direct single-backend base URL the control
	// transcripts are computed on before the run. Empty selects
	// TargetURL — self-consistency instead of an independent control.
	ControlURL string
	// Dialogues is the total number of dialogues to complete.
	Dialogues int
	// Concurrency is how many dialogues run at once.
	Concurrency int
	// Think is the simulated user's pause after each question (also
	// applied between the setup steps). Zero means as-fast-as-possible.
	Think time.Duration
	// Patterns is how many distinct answer patterns the dialogues cycle
	// through (default 4). Each pattern gets one control transcript.
	Patterns int
	// Seed derives the answer patterns and client jitter.
	Seed int64
	// DialogueTimeout bounds one dialogue end to end, retries and
	// kill-restart recovery included (default 2 minutes).
	DialogueTimeout time.Duration
	// KeepSessions leaves finished sessions on their shards. Default
	// false: each dialogue deletes its session, returning the slot to the
	// shard — the behavior a capacity-model benchmark needs.
	KeepSessions bool
	// HTTPClient overrides the pooled transport shared by every worker.
	HTTPClient *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Transcript is one answer pattern's expected dialogue: the exact question
// sequence and the final SPARQL.
type Transcript struct {
	Pattern   uint64   `json:"pattern"`
	Questions []string `json:"questions"`
	SPARQL    string   `json:"sparql"`
}

// Report is the outcome of a soak run.
type Report struct {
	Dialogues  int `json:"dialogues"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Mismatched int `json:"mismatched"` // completed but diverged from control

	Resyncs int64 `json:"resyncs"` // answers recovered via the pending-resync protocol
	Retries int64 `json:"retries"` // client-level retries across all dialogues

	WallMs         float64 `json:"wall_ms"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	P50Ms          float64 `json:"p50_ms"` // dialogue completion latency
	P99Ms          float64 `json:"p99_ms"`

	Errors []string `json:"errors,omitempty"` // first few failure messages

	// FailedRequestIDs holds the last X-Request-Id each failed dialogue
	// saw, in "dialogue N: rid" form — the correlation key an operator
	// feeds into the cross-tier trace and the access logs of whichever
	// shard served it.
	FailedRequestIDs []string `json:"failed_request_ids,omitempty"`
}

// splitmix64 is the pattern/word mixer (same constant family the ring's
// sample tests use); deterministic across runs and platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// patternWord derives answer pattern p's bit word from the run seed.
func patternWord(seed int64, p int) uint64 {
	return splitmix64(uint64(seed)*0x100000001b3 + uint64(p))
}

// answerAt is pattern word's answer for question i (include/exclude).
func answerAt(word uint64, i int) bool {
	return (word>>(uint(i)%64))&1 == 1
}

// maxQuestions caps a dialogue; the paperfix dialogues converge in a
// handful of questions, so hitting this means the protocol went off the
// rails, not that the user was patient.
const maxQuestions = 64

// wireOntology / wireExamples render the paper's running example for the
// HTTP API.
func wireOntology() string { return ntriples.Format(paperfix.Ontology()) }

func wireExamples() []api.Example {
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	return exs
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.ControlURL == "" {
		cfg.ControlURL = cfg.TargetURL
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 4
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.DialogueTimeout <= 0 {
		cfg.DialogueTimeout = 2 * time.Minute
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Transport: qpclient.NewTransport(0)}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// newClient builds a retrying client against base. seed staggers jitter
// between workers.
func newClient(cfg *Config, base string, retries int, seed int64) *qpclient.Client {
	return qpclient.New(qpclient.Config{
		BaseURL:        base,
		MaxRetries:     retries,
		BaseDelay:      25 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		AttemptTimeout: 30 * time.Second,
		Seed:           seed,
		HTTPClient:     cfg.HTTPClient,
	})
}

// ControlTranscripts computes the expected dialogue for each answer
// pattern by driving it once against the control backend, think-free.
func ControlTranscripts(ctx context.Context, cfg Config) ([]Transcript, error) {
	cfg = cfg.withDefaults()
	out := make([]Transcript, cfg.Patterns)
	for p := range out {
		word := patternWord(cfg.Seed, p)
		cl := newClient(&cfg, cfg.ControlURL, 4, cfg.Seed+int64(p))
		tr, _, err := driveDialogue(ctx, cl, cl, word, nil, 0, !cfg.KeepSessions)
		if err != nil {
			return nil, fmt.Errorf("soak: control dialogue for pattern %d: %w", p, err)
		}
		out[p] = tr
	}
	return out, nil
}

// Run executes the soak: control transcripts first, then Dialogues
// dialogues across Concurrency workers, each verified turn by turn
// against its pattern's transcript.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	controls, err := ControlTranscripts(ctx, cfg)
	if err != nil {
		return Report{}, err
	}
	cfg.Logf("soak: %d control transcripts computed (%d..%d questions)",
		len(controls), minQuestions(controls), maxQuestionsOf(controls))

	var (
		mu         sync.Mutex
		completed  int
		failed     int
		mismatch   int
		durations  []time.Duration
		errs       []string
		failedRids []string
		resyncs    atomic.Int64
		retries    atomic.Int64
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Dialogues; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				p := i % cfg.Patterns
				word := patternWord(cfg.Seed, p)
				dctx, cancel := context.WithTimeout(ctx, cfg.DialogueTimeout)
				cl := newClient(&cfg, cfg.TargetURL, 8, cfg.Seed+int64(i)*7919)
				raw := newClient(&cfg, cfg.TargetURL, 0, cfg.Seed+int64(i)*104729)
				t0 := time.Now()
				_, nresync, err := driveDialogue(dctx, cl, raw, word, &controls[p], cfg.Think, !cfg.KeepSessions)
				d := time.Since(t0)
				cancel()
				resyncs.Add(nresync)
				retries.Add(cl.Retries())

				// The request id of the dialogue's last exchange. The retrying
				// client makes the final request in every failure path (even a
				// failed answer is followed by its resync read); the raw
				// answer client is the fallback when none of cl's requests
				// produced a response.
				rid := cl.LastRequestID()
				if rid == "" {
					rid = raw.LastRequestID()
				}

				mu.Lock()
				if err != nil {
					failed++
					if errors.Is(err, errTranscriptDiverged) {
						mismatch++
					}
					if len(errs) < 8 {
						errs = append(errs, fmt.Sprintf("dialogue %d (pattern %d): %v", i, p, err))
					}
					if rid == "" {
						rid = "<none: no response carried an id>"
					}
					failedRids = append(failedRids, fmt.Sprintf("dialogue %d: %s", i, rid))
				} else {
					completed++
					durations = append(durations, d)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{
		Dialogues:        cfg.Dialogues,
		Completed:        completed,
		Failed:           failed,
		Mismatched:       mismatch,
		Resyncs:          resyncs.Load(),
		Retries:          retries.Load(),
		WallMs:           float64(wall.Milliseconds()),
		Errors:           errs,
		FailedRequestIDs: failedRids,
	}
	if wall > 0 {
		rep.SessionsPerSec = float64(completed) / wall.Seconds()
	}
	rep.P50Ms, rep.P99Ms = percentiles(durations)
	return rep, nil
}

// errTranscriptDiverged marks a completed-but-wrong dialogue: the fleet
// answered, but not with the control's questions or query.
var errTranscriptDiverged = errors.New("soak: dialogue diverged from the control transcript")

// driveDialogue runs one full dialogue. want == nil records a transcript
// (control mode); otherwise every question and the final SPARQL are
// checked against it. cl is the retrying client for the idempotent-ish
// steps; raw (no retries) carries the answers, with the resync protocol
// recovering lost or ambiguous ones. Returns the observed transcript and
// how many answers needed a resync.
func driveDialogue(ctx context.Context, cl, raw *qpclient.Client, word uint64, want *Transcript, think time.Duration, deleteAfter bool) (Transcript, int64, error) {
	got := Transcript{Pattern: word}

	id, err := cl.CreateSession(ctx, wireOntology(), nil)
	if err != nil {
		return got, 0, fmt.Errorf("create: %w", err)
	}
	if deleteAfter {
		// Free the shard's session slot whatever happens — the capacity
		// model depends on slots cycling. Best effort: an unreachable
		// shard's TTL janitor cleans up eventually.
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = cl.DeleteSession(dctx, id)
		}()
	}
	if think > 0 {
		if err := sleepCtx(ctx, think); err != nil {
			return got, 0, err
		}
	}
	if err := cl.SetExamples(ctx, id, wireExamples()); err != nil {
		return got, 0, fmt.Errorf("examples: %w", err)
	}
	if _, err := cl.Infer(ctx, id, "topk", 0); err != nil {
		return got, 0, fmt.Errorf("infer: %w", err)
	}

	// Start the dialogue. A failed start is recovered through the pending
	// read: if a question is pending, the start WAS applied.
	ev, err := cl.StartFeedback(ctx, id, 0)
	if err != nil {
		if pend, perr := cl.PendingFeedback(ctx, id); perr == nil {
			ev = pend
		} else {
			return got, 0, fmt.Errorf("feedback start: %w (pending read: %v)", err, perr)
		}
	}

	var resyncs int64
	for i := 0; !ev.Done; i++ {
		if i >= maxQuestions {
			return got, resyncs, fmt.Errorf("dialogue did not converge in %d questions", maxQuestions)
		}
		got.Questions = append(got.Questions, ev.Result)
		if want != nil {
			if i >= len(want.Questions) || ev.Result != want.Questions[i] {
				return got, resyncs, fmt.Errorf("%w: question %d = %q, control asked %q",
					errTranscriptDiverged, i, ev.Result, questionAt(want, i))
			}
		}
		if think > 0 {
			if err := sleepCtx(ctx, think); err != nil {
				return got, resyncs, err
			}
		}

		include := answerAt(word, i)
		ev, err = raw.AnswerFeedback(ctx, id, include)
		if err == nil {
			continue
		}
		// The answer failed — applied or lost, we cannot know from the
		// error alone (the shard may have been killed mid-request). The
		// pending question, an idempotent read the retrying client can
		// hammer through the recovery 503s, disambiguates: still question
		// i → the answer was lost, re-send; question i+1 (or Done) → it
		// was applied, move on. Control mode (want == nil) cannot
		// disambiguate a repeated question text, so it fails instead —
		// controls run against a healthy direct backend where a lost
		// answer is already an error.
		resyncs++
		for {
			pend, perr := cl.PendingFeedback(ctx, id)
			if perr != nil {
				return got, resyncs, fmt.Errorf("answer %d: %w; resync failed: %v", i, err, perr)
			}
			if pend.Done {
				ev = pend
				break
			}
			if want == nil {
				return got, resyncs, fmt.Errorf("answer %d failed in control mode: %w", i, err)
			}
			if pend.Result == want.Questions[i] {
				// Not applied: re-send, then re-read.
				if ev, err = raw.AnswerFeedback(ctx, id, include); err == nil {
					break
				}
				if serr := sleepCtx(ctx, 50*time.Millisecond); serr != nil {
					return got, resyncs, serr
				}
				continue
			}
			if i+1 < len(want.Questions) && pend.Result == want.Questions[i+1] {
				ev = pend // applied; the pending read IS the next question
				break
			}
			return got, resyncs, fmt.Errorf("%w: after failed answer %d the pending question is %q",
				errTranscriptDiverged, i, pend.Result)
		}
	}

	if ev.SPARQL == "" {
		return got, resyncs, fmt.Errorf("dialogue decided without a query")
	}
	got.SPARQL = ev.SPARQL
	if want != nil && got.SPARQL != want.SPARQL {
		return got, resyncs, fmt.Errorf("%w: final SPARQL differs\n got: %s\nwant: %s",
			errTranscriptDiverged, got.SPARQL, want.SPARQL)
	}
	return got, resyncs, nil
}

func questionAt(tr *Transcript, i int) string {
	if i < len(tr.Questions) {
		return tr.Questions[i]
	}
	return fmt.Sprintf("<nothing: control finished after %d questions>", len(tr.Questions))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func percentiles(ds []time.Duration) (p50Ms, p99Ms float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Microseconds()) / 1000
	}
	return at(0.50), at(0.99)
}

func minQuestions(trs []Transcript) int {
	m := maxQuestions
	for _, tr := range trs {
		if len(tr.Questions) < m {
			m = len(tr.Questions)
		}
	}
	return m
}

func maxQuestionsOf(trs []Transcript) int {
	m := 0
	for _, tr := range trs {
		if len(tr.Questions) > m {
			m = len(tr.Questions)
		}
	}
	return m
}
