package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the Prometheus text exposition format, written for
// the repo's own tests: it enforces what the acceptance criteria demand —
// a HELP and TYPE line for every series, and well-formed cumulative
// _bucket/_sum/_count triples for histograms — rather than the full
// leniency of a real scraper. It understands exactly the subset the
// /metrics renderer emits (comments, `name value`, `name{k="v",...} value`).

// MetricFamily is one parsed metric: its metadata and every sample that
// resolved to it (for histograms that includes the _bucket/_sum/_count
// series).
type MetricFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full series name, e.g. foo_bucket
	Labels map[string]string
	Value  float64
}

// Value returns the value of the family's single unlabeled sample, for
// counter/gauge assertions.
func (mf *MetricFamily) Value() (float64, bool) {
	for _, s := range mf.Samples {
		if len(s.Labels) == 0 && s.Name == mf.Name {
			return s.Value, true
		}
	}
	return 0, false
}

// ParsePromText parses and validates an exposition document. Every sample
// must resolve to a family with both HELP and TYPE declared before it;
// histogram families are checked for cumulative non-decreasing buckets, a
// +Inf bucket, and _count equal to the +Inf bucket, per label set.
func ParsePromText(r io.Reader) (map[string]*MetricFamily, error) {
	families := make(map[string]*MetricFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		mf, err := familyFor(s.Name, families)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		mf.Samples = append(mf.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, mf := range families {
		if mf.Help == "" {
			return nil, fmt.Errorf("family %s: no HELP line", mf.Name)
		}
		if mf.Type == "" {
			return nil, fmt.Errorf("family %s: no TYPE line", mf.Name)
		}
		// A family may legally be declared with no samples yet: a labeled
		// histogram exposes its HELP/TYPE before the first observation.
		if mf.Type == "histogram" && len(mf.Samples) > 0 {
			if err := validateHistogram(mf); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]*MetricFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // a plain comment; the renderer emits none, but tolerate
	}
	name := fields[2]
	mf := families[name]
	if mf == nil {
		mf = &MetricFamily{Name: name}
		families[name] = mf
	}
	rest := ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	switch fields[1] {
	case "HELP":
		if mf.Help != "" {
			return fmt.Errorf("family %s: duplicate HELP", name)
		}
		if rest == "" {
			return fmt.Errorf("family %s: empty HELP text", name)
		}
		mf.Help = rest
	case "TYPE":
		if mf.Type != "" {
			return fmt.Errorf("family %s: duplicate TYPE", name)
		}
		switch rest {
		case "counter", "gauge", "histogram", "summary", "untyped":
			mf.Type = rest
		default:
			return fmt.Errorf("family %s: unknown TYPE %q", name, rest)
		}
		if len(mf.Samples) > 0 {
			return fmt.Errorf("family %s: TYPE after samples", name)
		}
	}
	return nil
}

// familyFor resolves a sample name to its declared family: the name
// itself, or — for histogram component series — the base name with the
// _bucket/_sum/_count suffix stripped.
func familyFor(name string, families map[string]*MetricFamily) (*MetricFamily, error) {
	if mf, ok := families[name]; ok && mf.Type != "" {
		return mf, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if mf, ok := families[base]; ok && mf.Type == "histogram" {
			return mf, nil
		}
	}
	return nil, fmt.Errorf("sample %s: no TYPE declared before it", name)
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%q: %w", line, err)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) != 1 { // no timestamps in our output
		return s, fmt.Errorf("expected one value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("%q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(text, 64)
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(body) {
		eq := strings.Index(body[i:], "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body[i:])
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("label %s: unterminated value", key)
			}
			c := body[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("label %s: trailing escape", key)
				}
				switch body[i+1] {
				case '"', '\\':
					b.WriteByte(body[i+1])
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: unknown escape \\%c", key, body[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("label %s: expected ',' at %q", key, body[i:])
			}
			i++
		}
	}
	return labels, nil
}

// validateHistogram checks the _bucket/_sum/_count triple of every label
// set in the family.
func validateHistogram(mf *MetricFamily) error {
	type group struct {
		buckets []Sample // in file order
		sum     *Sample
		count   *Sample
	}
	groups := make(map[string]*group)
	order := []string{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	for _, s := range mf.Samples {
		k := keyOf(s.Labels)
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		s := s
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = &s
		case strings.HasSuffix(s.Name, "_count"):
			g.count = &s
		default:
			return fmt.Errorf("family %s: stray sample %s in histogram", mf.Name, s.Name)
		}
	}
	for _, k := range order {
		g := groups[k]
		where := fmt.Sprintf("family %s{%s}", mf.Name, strings.TrimSuffix(k, ","))
		if len(g.buckets) == 0 {
			return fmt.Errorf("%s: no _bucket series", where)
		}
		if g.sum == nil {
			return fmt.Errorf("%s: no _sum series", where)
		}
		if g.count == nil {
			return fmt.Errorf("%s: no _count series", where)
		}
		prevLe := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range g.buckets {
			leText, ok := b.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", where)
			}
			le, err := parseValue(leText)
			if err != nil {
				return fmt.Errorf("%s: bad le %q: %w", where, leText, err)
			}
			if le <= prevLe {
				return fmt.Errorf("%s: le bounds not increasing at %q", where, leText)
			}
			if b.Value < prevCum {
				return fmt.Errorf("%s: cumulative count decreases at le=%q", where, leText)
			}
			prevLe, prevCum = le, b.Value
			if math.IsInf(le, 1) {
				sawInf = true
				if b.Value != g.count.Value {
					return fmt.Errorf("%s: +Inf bucket %v != _count %v", where, b.Value, g.count.Value)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("%s: no +Inf bucket", where)
		}
	}
	return nil
}
