package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// scrapeOf parses an exposition doc as one backend's scrape, failing the
// test on parse errors — aggregation inputs are always post-validation.
func scrapeOf(t *testing.T, backend, doc string) Scrape {
	t.Helper()
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("scrape %s: %v", backend, err)
	}
	return Scrape{Backend: backend, Families: fams}
}

func famByName(t *testing.T, fams []*MetricFamily, name string) *MetricFamily {
	t.Helper()
	for _, mf := range fams {
		if mf.Name == name {
			return mf
		}
	}
	t.Fatalf("family %s not in aggregate output", name)
	return nil
}

func sampleValue(t *testing.T, mf *MetricFamily, name string, want map[string]string) float64 {
	t.Helper()
	for _, s := range mf.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	t.Fatalf("no sample %s with labels %v", name, want)
	return 0
}

func TestAggregateSumsCountersAndKeepsPerBackendSeries(t *testing.T) {
	a := scrapeOf(t, "b1", `# HELP requests_total Requests.
# TYPE requests_total counter
requests_total{endpoint="infer"} 3
requests_total{endpoint="examples"} 1
`)
	b := scrapeOf(t, "b2", `# HELP requests_total Requests.
# TYPE requests_total counter
requests_total{endpoint="infer"} 4
`)
	fams, err := Aggregate([]Scrape{b, a}) // input order must not matter
	if err != nil {
		t.Fatal(err)
	}
	mf := famByName(t, fams, "requests_total")
	if got := sampleValue(t, mf, "requests_total", map[string]string{"endpoint": "infer"}); got != 7 {
		t.Fatalf("fleet infer sum = %v, want 7", got)
	}
	if got := sampleValue(t, mf, "requests_total", map[string]string{"endpoint": "examples"}); got != 1 {
		t.Fatalf("fleet examples sum = %v, want 1", got)
	}
	if got := sampleValue(t, mf, "requests_total", map[string]string{"endpoint": "infer", "backend": "b1"}); got != 3 {
		t.Fatalf("b1 infer = %v, want 3", got)
	}
	if got := sampleValue(t, mf, "requests_total", map[string]string{"endpoint": "infer", "backend": "b2"}); got != 4 {
		t.Fatalf("b2 infer = %v, want 4", got)
	}

	// Fleet sums must equal the sum of the per-backend series, per the
	// acceptance criterion, for every label set.
	for _, s := range mf.Samples {
		if _, perBackend := s.Labels["backend"]; perBackend {
			continue
		}
		sum := 0.0
		for _, p := range mf.Samples {
			if _, perBackend := p.Labels["backend"]; !perBackend {
				continue
			}
			match := true
			for k, v := range s.Labels {
				if p.Labels[k] != v {
					match = false
					break
				}
			}
			if match && len(p.Labels) == len(s.Labels)+1 {
				sum += p.Value
			}
		}
		if sum != s.Value {
			t.Fatalf("fleet series %v=%v != per-backend sum %v", s.Labels, s.Value, sum)
		}
	}
}

// TestAggregateMergesHistograms builds two real Family histograms so the le
// grid is the production grid, merges their rendered scrapes, and checks
// bucket sums, monotonicity, and that the output round-trips through the
// strict parser (which itself enforces cumulative validity per label set).
func TestAggregateMergesHistograms(t *testing.T) {
	mk := func(durs ...time.Duration) string {
		f := NewFamily("op_duration_seconds", "op", "Op latency.")
		for _, d := range durs {
			f.Observe("infer", d)
		}
		var buf bytes.Buffer
		f.WriteProm(&buf)
		return buf.String()
	}
	a := scrapeOf(t, "b1", mk(10*time.Microsecond, 5*time.Millisecond))
	b := scrapeOf(t, "b2", mk(20*time.Microsecond, 70*time.Second))

	fams, err := Aggregate([]Scrape{a, b})
	if err != nil {
		t.Fatal(err)
	}
	mf := famByName(t, fams, "op_duration_seconds")
	if got := sampleValue(t, mf, "op_duration_seconds_count", map[string]string{"op": "infer"}); got != 4 {
		t.Fatalf("fleet count = %v, want 4", got)
	}

	// Monotone cumulative buckets on the fleet series, +Inf == count.
	prev := -1.0
	inf := math.NaN()
	for _, s := range mf.Samples {
		if s.Name != "op_duration_seconds_bucket" || s.Labels["backend"] != "" {
			continue
		}
		if s.Value < prev {
			t.Fatalf("fleet buckets not monotone at le=%s: %v < %v", s.Labels["le"], s.Value, prev)
		}
		prev = s.Value
		if s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 4 {
		t.Fatalf("fleet +Inf bucket = %v, want 4", inf)
	}

	// The whole merged document re-parses strictly (histogram validation
	// runs per label set, covering fleet and per-backend groups alike).
	var buf bytes.Buffer
	WriteFamilies(&buf, fams)
	if _, err := ParsePromText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged document does not round-trip: %v\n%s", err, buf.String())
	}
}

func TestAggregateRejectsTypeConflict(t *testing.T) {
	a := scrapeOf(t, "b1", "# HELP x X.\n# TYPE x counter\nx 1\n")
	b := scrapeOf(t, "b2", "# HELP x X.\n# TYPE x gauge\nx 1\n")
	if _, err := Aggregate([]Scrape{a, b}); err == nil {
		t.Fatal("want TYPE conflict error")
	}
}

func TestAggregateRejectsReservedBackendLabel(t *testing.T) {
	a := scrapeOf(t, "b1", "# HELP x X.\n# TYPE x counter\nx{backend=\"oops\"} 1\n")
	if _, err := Aggregate([]Scrape{a}); err == nil {
		t.Fatal("want reserved-label error")
	}
}

func TestAggregateRejectsLeGridMismatch(t *testing.T) {
	a := scrapeOf(t, "b1", `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 1
h_sum 0.5
h_count 1
`)
	b := scrapeOf(t, "b2", `# HELP h H.
# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="+Inf"} 1
h_sum 1.5
h_count 1
`)
	if _, err := Aggregate([]Scrape{a, b}); err == nil {
		t.Fatal("want le grid mismatch error")
	}
}

func TestWriteFamiliesRoundTripsEscapes(t *testing.T) {
	in := []*MetricFamily{{
		Name: "weird", Type: "gauge", Help: "Weird labels.",
		Samples: []Sample{{
			Name:   "weird",
			Labels: map[string]string{"v": "a\"b\\c\nd"},
			Value:  1,
		}},
	}}
	var buf bytes.Buffer
	WriteFamilies(&buf, in)
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	got := fams["weird"].Samples[0].Labels["v"]
	if got != "a\"b\\c\nd" {
		t.Fatalf("label value mangled: %q", got)
	}
}

func TestMergedCountsAndBucketBounds(t *testing.T) {
	f := NewFamily("d_seconds", "k", "D.")
	f.Observe("a", 10*time.Microsecond)
	f.Observe("b", 10*time.Microsecond)
	f.Observe("b", 50*time.Second)
	counts, total, sumNs := f.MergedCounts()
	if len(counts) != NumBuckets() {
		t.Fatalf("len(counts) = %d, want %d", len(counts), NumBuckets())
	}
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if want := int64(10*time.Microsecond)*2 + int64(50*time.Second); sumNs != want {
		t.Fatalf("sumNs = %d, want %d", sumNs, want)
	}
	var n uint64
	for i, c := range counts {
		n += c
		if c > 0 && BucketUpperNs(i) < int64(10*time.Microsecond) {
			t.Fatalf("observation below its bucket bound at %d", i)
		}
	}
	if n != total {
		t.Fatalf("bucket counts sum %d != total %d", n, total)
	}
	if !math.IsInf(BucketUpperSeconds(NumBuckets()-1), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
	if BucketUpperSeconds(0) <= 0 {
		t.Fatal("first bucket bound must be positive")
	}
}

func TestSpanIDsAndRemoteParent(t *testing.T) {
	SetEnabled(true)
	ctx, root := NewRoot(context.Background(), "session.infer")
	if root.ID() == "" || len(root.ID()) != 16 {
		t.Fatalf("root id %q, want 16 hex chars", root.ID())
	}
	_, child := StartSpan(ctx, "core.merge")
	if child.ID() == root.ID() {
		t.Fatal("child shares root's id")
	}
	root.SetRemoteParent("deadbeefdeadbeef")
	root.Finish()
	n := root.Snapshot()
	if n.SpanID != root.ID() {
		t.Fatalf("snapshot SpanID = %q, want %q", n.SpanID, root.ID())
	}
	if n.ParentSpanID != "deadbeefdeadbeef" {
		t.Fatalf("snapshot ParentSpanID = %q", n.ParentSpanID)
	}
	if n.Children[0].ParentSpanID != "" {
		t.Fatal("structural child must not carry ParentSpanID")
	}

	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if seen[id] {
			t.Fatalf("duplicate span id %s", id)
		}
		seen[id] = true
	}

	var nilSpan *Span
	if nilSpan.ID() != "" {
		t.Fatal("nil span id must be empty")
	}
	nilSpan.SetRemoteParent("x") // must not panic
}
