package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteFamilies renders parsed (or programmatically built) metric families
// back to the Prometheus text exposition format. It is the strict inverse
// of ParsePromText for the subset this repo emits: every family gets its
// HELP and TYPE line before any sample, label keys render sorted, values
// render shortest-round-trip, and +Inf/-Inf use the exposition spelling —
// so WriteFamilies output always re-parses with ParsePromText.
//
// Families render in the order given; callers wanting determinism sort
// first (SortFamilies). Samples within a family render in stored order,
// which for histograms must keep each label set's buckets le-ascending.
func WriteFamilies(w io.Writer, fams []*MetricFamily) {
	for _, mf := range fams {
		if mf == nil {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", mf.Name, mf.Help)
		fmt.Fprintf(w, "# TYPE %s %s\n", mf.Name, mf.Type)
		for _, s := range mf.Samples {
			writeSample(w, s)
		}
	}
}

// SortFamilies orders families by name, for deterministic scrapes.
func SortFamilies(fams []*MetricFamily) {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
}

func writeSample(w io.Writer, s Sample) {
	io.WriteString(w, s.Name)
	if len(s.Labels) > 0 {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		io.WriteString(w, "{")
		for i, k := range keys {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=\"%s\"", k, escapeLabelValue(s.Labels[k]))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(s.Value))
	io.WriteString(w, "\n")
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
