package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Latency histograms, hand-rolled (the repo takes no dependencies): fixed
// power-of-two nanosecond buckets, atomic counters, rendered in the
// Prometheus text exposition format as cumulative `le` buckets in seconds.
//
// Bucket i has upper bound 2^(histMinExp+i) ns: 8.2µs, 16.4µs, ... up to
// 2^(histMinExp+histBounds-1) ≈ 68.7s, then +Inf. A log2 grid needs no
// per-workload tuning, classifies in a couple of bit operations, and its
// ~2x resolution is plenty for the "where did the time go" questions the
// trace layer answers; anything finer belongs in pprof.
const (
	histMinExp = 13 // first bound 2^13 ns = 8.192µs
	histBounds = 24 // last finite bound 2^36 ns ≈ 68.7s
)

// Histogram is one label-value's latency distribution. counts[histBounds]
// is the +Inf bucket. Counts and the nanosecond sum are updated with
// independent atomics: a scrape may observe a sum and counts that differ
// by an in-flight observation, which Prometheus histogram semantics
// tolerate (cumulative bucket counts themselves are each read atomically
// and only ever grow).
type Histogram struct {
	counts [histBounds + 1]atomic.Uint64
	sumNs  atomic.Int64
}

// bucketIndex classifies a duration: the smallest i with ns <= 2^(minExp+i),
// i.e. ceil(log2 ns) - minExp clamped into the bucket range. Exact powers
// of two land in their own bucket (le is inclusive).
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns-1)) - histMinExp // ceil(log2 ns) - minExp
	if i < 0 {
		return 0
	}
	if i > histBounds {
		return histBounds
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
}

// snapshot reads the counts once (each atomically) and returns them with
// their total.
func (h *Histogram) snapshot() (counts [histBounds + 1]uint64, total uint64, sumNs int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total, h.sumNs.Load()
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() uint64 {
	_, total, _ := h.snapshot()
	return total
}

// Family is a named histogram metric partitioned by one label (endpoint,
// span kind, ...). Observe creates the label's histogram on first use.
type Family struct {
	name  string
	help  string
	label string

	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewFamily declares a histogram family. label is the single label key its
// series carry.
func NewFamily(name, label, help string) *Family {
	return &Family{name: name, help: help, label: label, hists: make(map[string]*Histogram)}
}

// Name returns the family's metric name.
func (f *Family) Name() string { return f.name }

// Observe records one duration under the label value.
func (f *Family) Observe(labelValue string, d time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	h := f.hists[labelValue]
	if h == nil {
		h = &Histogram{}
		f.hists[labelValue] = h
	}
	f.mu.Unlock()
	h.Observe(d)
}

// Get returns the label value's histogram, or nil.
func (f *Family) Get(labelValue string) *Histogram {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hists[labelValue]
}

// NumBuckets is how many cumulative buckets every histogram carries,
// +Inf included — the length of MergedCounts results.
func NumBuckets() int { return histBounds + 1 }

// BucketUpperNs returns bucket i's inclusive upper bound in nanoseconds;
// the last bucket (+Inf) returns math.MaxInt64.
func BucketUpperNs(i int) int64 {
	if i >= histBounds {
		return math.MaxInt64
	}
	return int64(1) << (histMinExp + i)
}

// BucketUpperSeconds is BucketUpperNs in seconds (+Inf for the last bucket).
func BucketUpperSeconds(i int) float64 {
	if i >= histBounds {
		return math.Inf(1)
	}
	return float64(int64(1)<<(histMinExp+i)) / 1e9
}

// MergedCounts sums the family's per-label histograms into one
// distribution: per-bucket (NON-cumulative) counts, their total, and the
// summed nanoseconds. The SLO layer diffs two of these snapshots to get a
// rolling-window distribution.
func (f *Family) MergedCounts() (counts []uint64, total uint64, sumNs int64) {
	counts = make([]uint64, histBounds+1)
	if f == nil {
		return counts, 0, 0
	}
	f.mu.Lock()
	hists := make([]*Histogram, 0, len(f.hists))
	for _, h := range f.hists {
		hists = append(hists, h)
	}
	f.mu.Unlock()
	for _, h := range hists {
		c, t, s := h.snapshot()
		for i := range c {
			counts[i] += c[i]
		}
		total += t
		sumNs += s
	}
	return counts, total, sumNs
}

// Family snapshots the histogram family as a parsed-form MetricFamily, so
// callers composing a full exposition document (the gateway's /metrics)
// can render every family through WriteFamilies. Label values appear in
// sorted order; per label value the samples are the cumulative _bucket
// series (le ascending), then _sum and _count — exactly what WriteProm
// emits and ParsePromText validates.
func (f *Family) Family() *MetricFamily {
	mf := &MetricFamily{Name: f.name, Type: "histogram", Help: f.help}
	f.mu.Lock()
	labels := make([]string, 0, len(f.hists))
	for lv := range f.hists {
		labels = append(labels, lv)
	}
	sort.Strings(labels)
	hists := make([]*Histogram, len(labels))
	for i, lv := range labels {
		hists[i] = f.hists[lv]
	}
	f.mu.Unlock()
	for i, lv := range labels {
		counts, total, sumNs := hists[i].snapshot()
		cum := uint64(0)
		for b := 0; b <= histBounds; b++ {
			cum += counts[b]
			mf.Samples = append(mf.Samples, Sample{
				Name:   f.name + "_bucket",
				Labels: map[string]string{f.label: lv, "le": leSeconds(b)},
				Value:  float64(cum),
			})
		}
		mf.Samples = append(mf.Samples, Sample{
			Name: f.name + "_sum", Labels: map[string]string{f.label: lv},
			Value: float64(sumNs) / 1e9,
		})
		mf.Samples = append(mf.Samples, Sample{
			Name: f.name + "_count", Labels: map[string]string{f.label: lv},
			Value: float64(total),
		})
	}
	return mf
}

// leSeconds renders a bucket's upper bound in seconds, the unit Prometheus
// histogram conventions prescribe.
func leSeconds(i int) string {
	if i >= histBounds {
		return "+Inf"
	}
	return strconv.FormatFloat(float64(int64(1)<<(histMinExp+i))/1e9, 'g', -1, 64)
}

// WriteProm renders the family in the Prometheus text exposition format:
// one HELP/TYPE header, then per label value the cumulative _bucket series,
// _sum (seconds) and _count. Label values render sorted so scrapes are
// deterministic.
func (f *Family) WriteProm(w io.Writer) {
	if f == nil {
		return
	}
	f.mu.Lock()
	labels := make([]string, 0, len(f.hists))
	for lv := range f.hists {
		labels = append(labels, lv)
	}
	hists := make([]*Histogram, len(labels))
	sort.Strings(labels)
	for i, lv := range labels {
		hists[i] = f.hists[lv]
	}
	f.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", f.name)
	for i, lv := range labels {
		counts, total, sumNs := hists[i].snapshot()
		cum := uint64(0)
		for b := 0; b <= histBounds; b++ {
			cum += counts[b]
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", f.name, f.label, lv, leSeconds(b), cum)
		}
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", f.name, f.label, lv,
			strconv.FormatFloat(float64(sumNs)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", f.name, f.label, lv, total)
	}
}
