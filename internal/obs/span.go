package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of an operation. Spans form a tree: a root is
// opened by a Tracer (or NewRoot) and installed in a context; StartSpan
// then hangs children off whatever span the context carries. All methods
// are safe on a nil receiver — instrumentation sites never branch on
// whether tracing is live.
//
// Counters and labels are the span's annotations: counters are the
// existing deterministic work counters (gain evals, cache hits, guard
// steps, ...) copied in at span close; labels are low-cardinality strings
// (kernel=heap, mode=union).
type Span struct {
	kind  string
	start time.Time

	mu       sync.Mutex
	children []*Span
	counters map[string]int64
	labels   map[string]string
	outcome  string
	dur      time.Duration
	done     bool
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// NewRoot opens a root span and installs it in the returned context. When
// tracing is disabled it returns (ctx, nil) after one atomic load. The
// caller owns the root: Finish it (or hand it to Tracer.FinishRoot) when
// the operation completes.
func NewRoot(ctx context.Context, kind string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	sp := &Span{kind: kind, start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. Two cheap outs keep the library path free: tracing
// disabled (one atomic load) or no root installed (no span materializes
// without an explicit root, so plain core/eval callers never allocate).
func StartSpan(ctx context.Context, kind string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{kind: kind, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// SetInt records a counter annotation (last write wins).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[key] = v
	s.mu.Unlock()
}

// SetLabel records a low-cardinality string annotation.
func (s *Span) SetLabel(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 2)
	}
	s.labels[key] = v
	s.mu.Unlock()
}

// SetOutcome records the span's outcome (ok, degraded, canceled, shed,
// panic, error, unmergeable, ...).
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.outcome = outcome
	s.mu.Unlock()
}

// Finish freezes the span's duration. Idempotent; later calls keep the
// first reading.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Node is the immutable snapshot of a finished span tree: what the trace
// endpoint serves, the JSONL journal stores and the ring buffer retains.
// Snapshotting at root close means readers never share mutable state with
// in-flight instrumentation.
type Node struct {
	Kind        string            `json:"kind"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurationNs  int64             `json:"duration_ns"`
	Outcome     string            `json:"outcome,omitempty"`
	Counters    map[string]int64  `json:"counters,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Children    []*Node           `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree. A span still running snapshots with
// its duration-so-far.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &Node{
		Kind:        s.kind,
		StartUnixNs: s.start.UnixNano(),
		Outcome:     s.outcome,
	}
	if s.done {
		n.DurationNs = s.dur.Nanoseconds()
	} else {
		n.DurationNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.counters) > 0 {
		n.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			n.Counters[k] = v
		}
	}
	if len(s.labels) > 0 {
		n.Labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			n.Labels[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}

// Walk visits the node and every descendant, depth-first.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// WriteTree renders the snapshot as an indented text tree — the qpbench
// -trace output. Counters and labels print sorted so the rendering is
// deterministic.
func WriteTree(w io.Writer, n *Node) {
	writeTree(w, n, 0)
}

func writeTree(w io.Writer, n *Node, depth int) {
	if n == nil {
		return
	}
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s %s", n.Kind, time.Duration(n.DurationNs))
	if n.Outcome != "" {
		fmt.Fprintf(w, " outcome=%s", n.Outcome)
	}
	keys := make([]string, 0, len(n.Labels))
	for k := range n.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%s", k, n.Labels[k])
	}
	keys = keys[:0]
	for k := range n.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", k, n.Counters[k])
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		writeTree(w, c, depth+1)
	}
}
