package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of an operation. Spans form a tree: a root is
// opened by a Tracer (or NewRoot) and installed in a context; StartSpan
// then hangs children off whatever span the context carries. All methods
// are safe on a nil receiver — instrumentation sites never branch on
// whether tracing is live.
//
// Counters and labels are the span's annotations: counters are the
// existing deterministic work counters (gain evals, cache hits, guard
// steps, ...) copied in at span close; labels are low-cardinality strings
// (kernel=heap, mode=union).
type Span struct {
	kind  string
	id    string
	start time.Time

	mu           sync.Mutex
	children     []*Span
	counters     map[string]int64
	labels       map[string]string
	outcome      string
	remoteParent string
	dur          time.Duration
	done         bool
}

// Span ids are 16 lowercase hex chars, unique within (and across) processes:
// a per-process random salt mixed with an atomic counter through the
// splitmix64 finalizer. They exist so a span minted in one process (the
// qpgate gateway) can be referenced from a span tree assembled in another
// (a questprod backend root linking to its remote parent) — structural
// parent/child links inside one tree stay implicit in Node.Children.
var (
	spanIDCtr  atomic.Uint64
	spanIDSalt = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0x9e3779b97f4a7c15 // ids stay unique in-process either way
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

func newSpanID() string {
	x := spanIDSalt + spanIDCtr.Add(1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	const hexdig = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hexdig[x&0xf]
		x >>= 4
	}
	return string(out[:])
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// NewRoot opens a root span and installs it in the returned context. When
// tracing is disabled it returns (ctx, nil) after one atomic load. The
// caller owns the root: Finish it (or hand it to Tracer.FinishRoot) when
// the operation completes.
func NewRoot(ctx context.Context, kind string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	sp := &Span{kind: kind, id: newSpanID(), start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. Two cheap outs keep the library path free: tracing
// disabled (one atomic load) or no root installed (no span materializes
// without an explicit root, so plain core/eval callers never allocate).
func StartSpan(ctx context.Context, kind string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{kind: kind, id: newSpanID(), start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// ID returns the span's id ("" on a nil span). Ids are stable for the
// span's lifetime, so a caller may ship the id to another process (the
// X-Qp-Trace header) before the span finishes.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetRemoteParent links the span under a parent that lives in ANOTHER
// process's span tree (the cross-tier trace contract, DESIGN.md §14): the
// parent's span id is recorded verbatim and surfaces as the snapshot's
// ParentSpanID. Structural (same-process) children never call this.
func (s *Span) SetRemoteParent(spanID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.remoteParent = spanID
	s.mu.Unlock()
}

// SetInt records a counter annotation (last write wins).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[key] = v
	s.mu.Unlock()
}

// SetLabel records a low-cardinality string annotation.
func (s *Span) SetLabel(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 2)
	}
	s.labels[key] = v
	s.mu.Unlock()
}

// SetOutcome records the span's outcome (ok, degraded, canceled, shed,
// panic, error, unmergeable, ...).
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.outcome = outcome
	s.mu.Unlock()
}

// Finish freezes the span's duration. Idempotent; later calls keep the
// first reading.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Node is the immutable snapshot of a finished span tree: what the trace
// endpoint serves, the JSONL journal stores and the ring buffer retains.
// Snapshotting at root close means readers never share mutable state with
// in-flight instrumentation.
type Node struct {
	Kind string `json:"kind"`
	// SpanID identifies this span across process boundaries;
	// ParentSpanID, when set, names a span in ANOTHER process's tree
	// (set via SetRemoteParent — in-tree parentage stays structural).
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	StartUnixNs  int64             `json:"start_unix_ns"`
	DurationNs   int64             `json:"duration_ns"`
	Outcome      string            `json:"outcome,omitempty"`
	Counters     map[string]int64  `json:"counters,omitempty"`
	Labels       map[string]string `json:"labels,omitempty"`
	Children     []*Node           `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree. A span still running snapshots with
// its duration-so-far.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &Node{
		Kind:         s.kind,
		SpanID:       s.id,
		ParentSpanID: s.remoteParent,
		StartUnixNs:  s.start.UnixNano(),
		Outcome:      s.outcome,
	}
	if s.done {
		n.DurationNs = s.dur.Nanoseconds()
	} else {
		n.DurationNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.counters) > 0 {
		n.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			n.Counters[k] = v
		}
	}
	if len(s.labels) > 0 {
		n.Labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			n.Labels[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}

// Walk visits the node and every descendant, depth-first.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// WriteTree renders the snapshot as an indented text tree — the qpbench
// -trace output. Counters and labels print sorted so the rendering is
// deterministic.
func WriteTree(w io.Writer, n *Node) {
	writeTree(w, n, 0)
}

func writeTree(w io.Writer, n *Node, depth int) {
	if n == nil {
		return
	}
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s %s", n.Kind, time.Duration(n.DurationNs))
	if n.Outcome != "" {
		fmt.Fprintf(w, " outcome=%s", n.Outcome)
	}
	keys := make([]string, 0, len(n.Labels))
	for k := range n.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%s", k, n.Labels[k])
	}
	keys = keys[:0]
	for k := range n.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", k, n.Counters[k])
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		writeTree(w, c, depth+1)
	}
}
