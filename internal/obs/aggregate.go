package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Fleet metric aggregation: merge the parsed /metrics of N backends into
// one exposition document. The contract (DESIGN.md §14):
//
//   - counters and gauges: for every original label set, a fleet series
//     with the values summed across backends, plus the per-backend series
//     retained under an added `backend` label;
//   - histograms: per non-le label set, same-le cumulative bucket counts
//     summed across backends (every process shares the fixed log₂ grid, so
//     the le sets align; a mismatch is an error, not a guess), _sum and
//     _count summed; per-backend series retained under `backend` likewise;
//   - metadata: TYPE must agree across backends (conflict is an error);
//     HELP text is taken from the first backend that declares the family.
//
// `backend` is reserved: a scraped sample already carrying it is an error.

// Scrape is one backend's parsed /metrics.
type Scrape struct {
	Backend  string
	Families map[string]*MetricFamily
}

// Aggregate merges the scrapes into a sorted family list whose rendering
// (WriteFamilies) round-trips through ParsePromText. Scrapes merge in
// backend-name order, so output is independent of input order.
func Aggregate(scrapes []Scrape) ([]*MetricFamily, error) {
	scrapes = append([]Scrape(nil), scrapes...)
	sort.Slice(scrapes, func(i, j int) bool { return scrapes[i].Backend < scrapes[j].Backend })

	meta := make(map[string]*MetricFamily)
	names := []string{}
	for _, sc := range scrapes {
		for name, mf := range sc.Families {
			m := meta[name]
			if m == nil {
				meta[name] = &MetricFamily{Name: name, Type: mf.Type, Help: mf.Help}
				names = append(names, name)
				continue
			}
			if m.Type != mf.Type {
				return nil, fmt.Errorf("family %s: TYPE conflict (%s on one backend, %s on %s)",
					name, m.Type, mf.Type, sc.Backend)
			}
		}
	}
	sort.Strings(names)

	out := make([]*MetricFamily, 0, len(names))
	for _, name := range names {
		m := meta[name]
		var err error
		switch m.Type {
		case "counter", "gauge", "untyped":
			err = mergeScalar(m, scrapes)
		case "histogram":
			err = mergeHistogram(m, scrapes)
		default:
			err = fmt.Errorf("family %s: unsupported TYPE %s in fleet merge", name, m.Type)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// labelKey is the canonical identity of a label set (le excluded when
// skipLe), used to match series across backends.
func labelKey(labels map[string]string, skipLe bool) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if skipLe && k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func copyLabels(labels map[string]string, skipLe bool) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		if skipLe && k == "le" {
			continue
		}
		out[k] = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func withBackend(labels map[string]string, backend string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["backend"] = backend
	return out
}

func checkReserved(name string, s Sample, backend string) error {
	if _, ok := s.Labels["backend"]; ok {
		return fmt.Errorf("family %s: sample from %s already carries reserved label backend", name, backend)
	}
	return nil
}

func mergeScalar(m *MetricFamily, scrapes []Scrape) error {
	type acc struct {
		labels map[string]string
		sum    float64
	}
	sums := make(map[string]*acc)
	order := []string{}
	var perBackend []Sample
	for _, sc := range scrapes {
		mf := sc.Families[m.Name]
		if mf == nil {
			continue
		}
		for _, s := range mf.Samples {
			if err := checkReserved(m.Name, s, sc.Backend); err != nil {
				return err
			}
			k := labelKey(s.Labels, false)
			a := sums[k]
			if a == nil {
				a = &acc{labels: copyLabels(s.Labels, false)}
				sums[k] = a
				order = append(order, k)
			}
			a.sum += s.Value
			perBackend = append(perBackend, Sample{
				Name:   s.Name,
				Labels: withBackend(s.Labels, sc.Backend),
				Value:  s.Value,
			})
		}
	}
	sort.Strings(order)
	for _, k := range order {
		a := sums[k]
		m.Samples = append(m.Samples, Sample{Name: m.Name, Labels: a.labels, Value: a.sum})
	}
	m.Samples = append(m.Samples, perBackend...)
	return nil
}

func mergeHistogram(m *MetricFamily, scrapes []Scrape) error {
	type bucket struct {
		leText string
		le     float64
		sum    float64
	}
	type group struct {
		labels  map[string]string // without le
		buckets map[string]*bucket
		sum     float64
		count   float64
	}
	groups := make(map[string]*group)
	order := []string{}
	var perBackend []Sample
	for _, sc := range scrapes {
		mf := sc.Families[m.Name]
		if mf == nil {
			continue
		}
		seenLe := make(map[string]map[string]bool) // group key -> le set this backend supplied
		for _, s := range mf.Samples {
			if err := checkReserved(m.Name, s, sc.Backend); err != nil {
				return err
			}
			k := labelKey(s.Labels, true)
			g := groups[k]
			if g == nil {
				g = &group{labels: copyLabels(s.Labels, true), buckets: make(map[string]*bucket)}
				groups[k] = g
				order = append(order, k)
			}
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				leText := s.Labels["le"]
				le, err := parseValue(leText)
				if err != nil {
					return fmt.Errorf("family %s: bad le %q from %s: %w", m.Name, leText, sc.Backend, err)
				}
				b := g.buckets[leText]
				if b == nil {
					b = &bucket{leText: leText, le: le}
					g.buckets[leText] = b
				}
				b.sum += s.Value
				if seenLe[k] == nil {
					seenLe[k] = make(map[string]bool)
				}
				seenLe[k][leText] = true
			case strings.HasSuffix(s.Name, "_sum"):
				g.sum += s.Value
			case strings.HasSuffix(s.Name, "_count"):
				g.count += s.Value
			}
			perBackend = append(perBackend, Sample{
				Name:   s.Name,
				Labels: withBackend(s.Labels, sc.Backend),
				Value:  s.Value,
			})
		}
		// Every backend that contributed to a group must have supplied the
		// group's full le grid; otherwise summing same-le cumulative counts
		// would silently under-count the sparse backend's tail.
		for k, les := range seenLe {
			if len(les) != len(groups[k].buckets) {
				return fmt.Errorf("family %s: backend %s le grid mismatch (has %d bounds, fleet has %d)",
					m.Name, sc.Backend, len(les), len(groups[k].buckets))
			}
		}
	}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		bs := make([]*bucket, 0, len(g.buckets))
		for _, b := range g.buckets {
			bs = append(bs, b)
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for _, b := range bs {
			labels := make(map[string]string, len(g.labels)+1)
			for lk, lv := range g.labels {
				labels[lk] = lv
			}
			labels["le"] = b.leText
			m.Samples = append(m.Samples, Sample{Name: m.Name + "_bucket", Labels: labels, Value: b.sum})
		}
		m.Samples = append(m.Samples, Sample{Name: m.Name + "_sum", Labels: g.labels, Value: g.sum})
		m.Samples = append(m.Samples, Sample{Name: m.Name + "_count", Labels: g.labels, Value: g.count})
	}
	m.Samples = append(m.Samples, perBackend...)
	return nil
}
