package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer opens root spans and owns what happens when they finish: the
// tree is snapshotted (so readers never race in-flight spans), every
// span's duration feeds the per-kind histogram family, and the root is
// appended to the JSONL journal when one is configured. A nil Tracer is
// fully inert — the service uses that as its "tracing disabled" shape.
type Tracer struct {
	spanDur *Family // per-span-kind duration histograms (may be nil)

	mu      sync.Mutex
	journal io.Writer
}

// NewTracer builds a tracer. spanDur (optional) receives every finished
// span's duration keyed by kind; journal (optional) receives one JSON line
// per finished root span.
func NewTracer(spanDur *Family, journal io.Writer) *Tracer {
	return &Tracer{spanDur: spanDur, journal: journal}
}

// StartRoot opens a root span under the tracer and installs it in the
// returned context. Nil tracer or tracing disabled: (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, kind string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return NewRoot(ctx, kind)
}

// FinishRoot closes a root span with the given outcome and returns its
// immutable snapshot, after feeding the span-kind histograms and the
// journal. Safe on a nil tracer or nil span (returns nil).
func (t *Tracer) FinishRoot(sp *Span, outcome string) *Node {
	if t == nil || sp == nil {
		return nil
	}
	sp.SetOutcome(outcome)
	sp.Finish()
	n := sp.Snapshot()
	if t.spanDur != nil {
		n.Walk(func(c *Node) {
			t.spanDur.Observe(c.Kind, time.Duration(c.DurationNs))
		})
	}
	if t.journal != nil {
		if line, err := json.Marshal(n); err == nil {
			line = append(line, '\n')
			t.mu.Lock()
			_, _ = t.journal.Write(line)
			t.mu.Unlock()
		}
	}
	return n
}
