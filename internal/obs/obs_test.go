package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing flips the global gate on for one test and restores the
// previous state afterwards (the package default is off).
func withTracing(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestDisabledSpansAreNil(t *testing.T) {
	SetEnabled(false)
	ctx, root := NewRoot(context.Background(), "op")
	if root != nil {
		t.Fatalf("NewRoot with tracing disabled returned %v, want nil", root)
	}
	if _, sp := StartSpan(ctx, "child"); sp != nil {
		t.Fatalf("StartSpan with tracing disabled returned %v, want nil", sp)
	}
	// Every method must be a no-op on nil.
	var nilSpan *Span
	nilSpan.SetInt("k", 1)
	nilSpan.SetLabel("k", "v")
	nilSpan.SetOutcome("ok")
	nilSpan.Finish()
	if n := nilSpan.Snapshot(); n != nil {
		t.Fatalf("nil span snapshot = %v, want nil", n)
	}
	var nilTracer *Tracer
	if _, sp := nilTracer.StartRoot(context.Background(), "op"); sp != nil {
		t.Fatalf("nil tracer StartRoot returned a span")
	}
	if n := nilTracer.FinishRoot(nil, "ok"); n != nil {
		t.Fatalf("nil tracer FinishRoot returned %v", n)
	}
}

func TestSpanNeedsRootEvenWhenEnabled(t *testing.T) {
	withTracing(t)
	// No root installed: library code pays the gate checks but allocates
	// nothing.
	if _, sp := StartSpan(context.Background(), "child"); sp != nil {
		t.Fatalf("StartSpan without a root returned %v, want nil", sp)
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	withTracing(t)
	ctx, root := NewRoot(context.Background(), "op")
	if root == nil {
		t.Fatal("NewRoot returned nil with tracing enabled")
	}
	cctx, child := StartSpan(ctx, "phase")
	_, grand := StartSpan(cctx, "step")
	grand.SetLabel("kernel", "heap")
	grand.SetInt("gain_evals", 42)
	grand.Finish()
	child.SetOutcome("ok")
	child.Finish()
	root.SetInt("rounds", 3)
	root.SetOutcome("ok")
	root.Finish()

	n := root.Snapshot()
	if n.Kind != "op" || n.Outcome != "ok" || n.Counters["rounds"] != 3 {
		t.Fatalf("bad root snapshot: %+v", n)
	}
	if len(n.Children) != 1 || n.Children[0].Kind != "phase" {
		t.Fatalf("bad children: %+v", n.Children)
	}
	g := n.Children[0].Children[0]
	if g.Kind != "step" || g.Labels["kernel"] != "heap" || g.Counters["gain_evals"] != 42 {
		t.Fatalf("bad grandchild: %+v", g)
	}
	if n.DurationNs < g.DurationNs {
		t.Fatalf("root duration %d < descendant duration %d", n.DurationNs, g.DurationNs)
	}
	count := 0
	n.Walk(func(*Node) { count++ })
	if count != 3 {
		t.Fatalf("Walk visited %d nodes, want 3", count)
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	withTracing(t)
	_, root := NewRoot(context.Background(), "op")
	root.Finish()
	first := root.Snapshot().DurationNs
	time.Sleep(2 * time.Millisecond)
	root.Finish()
	if got := root.Snapshot().DurationNs; got != first {
		t.Fatalf("second Finish changed duration: %d -> %d", first, got)
	}
}

func TestConcurrentChildren(t *testing.T) {
	withTracing(t)
	ctx, root := NewRoot(context.Background(), "op")
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "pair")
			sp.SetInt("i", 1)
			sp.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(root.Snapshot().Children); got != n {
		t.Fatalf("got %d children, want %d", got, n)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{8192, 0},                 // exactly the first bound: le is inclusive
		{8193, 1},                 // one past it
		{16384, 1},                // exactly the second bound
		{1 << 36, histBounds - 1}, // exactly the last finite bound
		{1<<36 + 1, histBounds},   // beyond it: +Inf
		{math.MaxInt64, histBounds},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramRenderAndParse(t *testing.T) {
	f := NewFamily("test_duration_seconds", "kind", "Test latency.")
	f.Observe("merge", 10*time.Microsecond)
	f.Observe("merge", 100*time.Microsecond)
	f.Observe("merge", 2*time.Second)
	f.Observe("round", 5*time.Millisecond)

	var buf bytes.Buffer
	f.WriteProm(&buf)
	text := buf.String()
	for _, want := range []string{
		"# HELP test_duration_seconds Test latency.",
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{kind="merge",le="+Inf"} 3`,
		`test_duration_seconds_count{kind="merge"} 3`,
		`test_duration_seconds_count{kind="round"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}

	families, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePromText: %v\n%s", err, text)
	}
	mf := families["test_duration_seconds"]
	if mf == nil || mf.Type != "histogram" {
		t.Fatalf("family not parsed as histogram: %+v", mf)
	}
	// The sum must be the observations in seconds.
	wantSum := (10*time.Microsecond + 100*time.Microsecond + 2*time.Second).Seconds()
	for _, s := range mf.Samples {
		if s.Name == "test_duration_seconds_sum" && s.Labels["kind"] == "merge" {
			if math.Abs(s.Value-wantSum) > 1e-9 {
				t.Fatalf("merge sum = %v, want %v", s.Value, wantSum)
			}
		}
	}
}

func TestParserRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "foo_total 3\n",
		"TYPE without HELP": "# TYPE foo_total counter\nfoo_total 3\n",
		"HELP without TYPE": "# HELP foo_total text\nfoo_total 3\n",
		"histogram without +Inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"histogram count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 2\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"histogram without sum": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
	}
	for name, doc := range cases {
		if _, err := ParsePromText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted invalid document:\n%s", name, doc)
		}
	}
}

func TestParserAcceptsCounters(t *testing.T) {
	doc := "# HELP foo_total Things.\n# TYPE foo_total counter\nfoo_total 7\n"
	families, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := families["foo_total"].Value()
	if !ok || v != 7 {
		t.Fatalf("foo_total = %v (ok=%v), want 7", v, ok)
	}
}

func TestTracerJournalAndHistograms(t *testing.T) {
	withTracing(t)
	var journal bytes.Buffer
	spanDur := NewFamily("span_seconds", "kind", "Span latency.")
	tr := NewTracer(spanDur, &journal)

	ctx, root := tr.StartRoot(context.Background(), "session.infer")
	if root == nil {
		t.Fatal("StartRoot returned nil with tracing enabled")
	}
	_, child := StartSpan(ctx, "merge.round")
	child.Finish()
	n := tr.FinishRoot(root, "ok")
	if n == nil || n.Outcome != "ok" || len(n.Children) != 1 {
		t.Fatalf("bad snapshot: %+v", n)
	}

	// One JSONL line, holding the root with its child.
	lines := strings.Split(strings.TrimSpace(journal.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("journal has %d lines, want 1: %q", len(lines), journal.String())
	}
	var back Node
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatalf("journal line is not JSON: %v", err)
	}
	if back.Kind != "session.infer" || len(back.Children) != 1 || back.Children[0].Kind != "merge.round" {
		t.Fatalf("journal round-trip mismatch: %+v", back)
	}

	// Both span kinds fed the histogram family.
	for _, kind := range []string{"session.infer", "merge.round"} {
		h := spanDur.Get(kind)
		if h == nil {
			t.Fatalf("span kind %s: no histogram", kind)
		}
		if got := h.Count(); got != 1 {
			t.Fatalf("span kind %s: histogram count = %d, want 1", kind, got)
		}
	}
}

func TestWriteTree(t *testing.T) {
	n := &Node{
		Kind: "session.infer", DurationNs: int64(3 * time.Millisecond), Outcome: "ok",
		Counters: map[string]int64{"rounds": 2},
		Children: []*Node{{
			Kind: "merge.round", DurationNs: int64(time.Millisecond),
			Labels: map[string]string{"kernel": "heap"},
		}},
	}
	var buf bytes.Buffer
	WriteTree(&buf, n)
	got := buf.String()
	want := "session.infer 3ms outcome=ok rounds=2\n  merge.round 1ms kernel=heap\n"
	if got != want {
		t.Fatalf("WriteTree:\n got %q\nwant %q", got, want)
	}
}
