package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Edge cases the strict parser must handle (ISSUE 10 satellite): escaped
// label values, +Inf buckets, out-of-order families, duplicate series.

func TestParseEscapedLabelValues(t *testing.T) {
	doc := `# HELP q Q.
# TYPE q gauge
q{a="plain"} 1
q{a="has \"quotes\""} 2
q{a="back\\slash"} 3
q{a="new\nline"} 4
q{a="mixed \\ \" \n end"} 5
`
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"plain":              1,
		`has "quotes"`:       2,
		`back\slash`:         3,
		"new\nline":          4,
		"mixed \\ \" \n end": 5,
	}
	got := make(map[string]float64)
	for _, s := range fams["q"].Samples {
		got[s.Labels["a"]] = s.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("label %q: got %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

func TestParseRejectsBadEscapes(t *testing.T) {
	for _, doc := range []string{
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"bad \\t escape\"} 1\n",
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"trailing\\",
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"unterminated} 1\n",
	} {
		if _, err := ParsePromText(strings.NewReader(doc)); err == nil {
			t.Fatalf("accepted bad document %q", doc)
		}
	}
}

func TestParsePlusInfBucketValue(t *testing.T) {
	doc := `# HELP h H.
# TYPE h histogram
h_bucket{le="0.5"} 2
h_bucket{le="+Inf"} 3
h_sum 1.25
h_count 3
`
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range fams["h"].Samples {
		if s.Name == "h_bucket" && s.Labels["le"] == "+Inf" {
			found = true
			if s.Value != 3 {
				t.Fatalf("+Inf bucket = %v", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("no +Inf bucket sample")
	}
	// And a gauge whose *value* is +Inf parses to math.Inf.
	fams, err = ParsePromText(strings.NewReader("# HELP g G.\n# TYPE g gauge\ng +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams["g"].Value(); !ok || !math.IsInf(v, 1) {
		t.Fatalf("g = %v, %v", v, ok)
	}
}

// Families interleaved out of declaration order: HELP/TYPE for b appear
// after a's samples, then a gains more samples. The parser keys families by
// name, so this is legal as long as each sample's TYPE precedes it.
func TestParseOutOfOrderFamilies(t *testing.T) {
	doc := `# HELP a A.
# TYPE a counter
a 1
# HELP b B.
# TYPE b counter
b 2
a 3
`
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams["a"].Samples) != 2 {
		t.Fatalf("a has %d samples", len(fams["a"].Samples))
	}
	// But TYPE after a family's samples stays an error.
	bad := "# HELP a A.\na 1\n# TYPE a counter\n"
	if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted sample before TYPE")
	}
}

// Duplicate series (same name and labels twice) parse as two samples — the
// strict parser records, it does not dedupe; aggregation sums them.
func TestParseDuplicateSeries(t *testing.T) {
	doc := "# HELP d D.\n# TYPE d counter\nd{k=\"v\"} 1\nd{k=\"v\"} 2\n"
	fams, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams["d"].Samples) != 2 {
		t.Fatalf("got %d samples", len(fams["d"].Samples))
	}
	agg, err := Aggregate([]Scrape{{Backend: "b", Families: fams}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleValue(t, famByName(t, agg, "d"), "d", map[string]string{"k": "v"}); got != 3 {
		t.Fatalf("duplicate series fleet sum = %v, want 3", got)
	}
}

// FuzzParsePromText: the parser must never panic, and any document it
// accepts must survive a render → re-parse round trip (the renderer and
// parser agree on the dialect).
func FuzzParsePromText(f *testing.F) {
	seeds := []string{
		"# HELP a A.\n# TYPE a counter\na 1\n",
		"# HELP a A.\n# TYPE a gauge\na{k=\"v\"} 2.5\n",
		"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.1\nh_count 1\n",
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"has \\\"quotes\\\"\"} 2\n",
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"back\\\\slash\"} 3\n",
		"# HELP q Q.\n# TYPE q gauge\nq{a=\"new\\nline\"} 4\n",
		"# HELP g G.\n# TYPE g gauge\ng +Inf\n",
		"# HELP d D.\n# TYPE d counter\nd{k=\"v\"} 1\nd{k=\"v\"} 2\n",
		"# HELP a A.\n# TYPE a counter\na 1\n# HELP b B.\n# TYPE b counter\nb 2\na 3\n",
		"# plain comment\n# HELP a A.\n# TYPE a counter\na 0\n",
		"a 1\n",
		"# TYPE a counter\na 1\n",
		"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		fams, err := ParsePromText(strings.NewReader(doc))
		if err != nil {
			return
		}
		out := make([]*MetricFamily, 0, len(fams))
		for _, mf := range fams {
			out = append(out, mf)
		}
		SortFamilies(out)
		var buf bytes.Buffer
		WriteFamilies(&buf, out)
		if _, err := ParsePromText(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("accepted document fails round trip: %v\noriginal:\n%s\nrendered:\n%s", err, doc, buf.String())
		}
	})
}
