// Package obs is the repo's zero-dependency observability layer: trace
// spans carried through context.Context, fixed-bucket log-scale latency
// histograms, a Prometheus text-exposition renderer (and a strict parser
// for tests), and a Tracer that retains finished root spans for the
// service's per-session trace endpoint and -trace-log journal.
//
// Design constraints (DESIGN.md §9):
//
//   - Off by default on the library path. Span creation is gated by one
//     package-level atomic.Bool; when tracing is disabled StartSpan is a
//     single atomic load and every instrumentation site operates on a nil
//     *Span, whose methods are all no-ops. The benchmerge hot path must
//     show <2% ns/op delta with tracing disabled (make bench-obs-overhead
//     pins this).
//   - Even when tracing is enabled globally, spans only materialize under
//     an installed root: StartSpan with no parent span in the context
//     returns nil. Library code therefore never allocates spans unless a
//     caller (the service, qpbench -trace) explicitly opened a root.
//   - Spans must tolerate concurrent children: the merge engine fans
//     MergePair calls out across worker goroutines that share the round's
//     context, so child registration locks per span.
//
// Enabling is sticky: the service and qpbench turn tracing on and never
// off, so a disabled check is a plain atomic load with no ordering
// subtleties. (qpbench's overhead benchmark toggles it explicitly; it is
// the only caller that ever turns it off.)
package obs

import "sync/atomic"

// enabled is the global fast gate in front of all span creation.
var enabled atomic.Bool

// SetEnabled turns span collection on or off globally. The service enables
// it at registry construction; library code never touches it.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether span collection is on.
func Enabled() bool { return enabled.Load() }
