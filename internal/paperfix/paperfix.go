// Package paperfix reconstructs the paper's running example: the small
// publications ontology of Figure 1, its four explanations E1–E4, and the
// queries Q1–Q4 of Figures 2 and 4. The published figures are not included
// in the available text, so the graphs are reconstructed from the worked
// examples (2.3, 2.7, 3.3, 3.12, 3.14, 4.2–4.4, 5.1–5.5): the shapes below
// make every claim of those examples hold under our implementation
// (Q1 consistent with all four explanations, Q3 = merge(E1, E3) with two
// variables, Q4 = merge(E2, E4) with two variables, William a result of Q1
// but not of Union(Q3, Q4), ...).
//
// All edges are labeled "wb" (written by), oriented paper -> author.
package paperfix

import (
	"questpro/internal/graph"
	"questpro/internal/provenance"
	"questpro/internal/query"
)

// Predicate is the single edge label of the running example.
const Predicate = "wb"

// Ontology builds the publications ontology of Figure 1 (extended with the
// authors referenced by Section V's feedback walkthrough).
func Ontology() *graph.Graph {
	g := graph.New()
	triples := [][2]string{
		{"paper1", "Alice"}, {"paper1", "Bob"},
		{"paper2", "Bob"}, {"paper2", "Carol"},
		{"paper3", "Carol"}, {"paper3", "Erdos"},
		{"paper4", "Dave"},
		{"paper5", "Dave"}, {"paper5", "Greg"}, {"paper5", "Harry"},
		{"paper6", "Harry"},
		{"paper7", "Greg"}, {"paper7", "Erdos"},
		{"paper8", "William"}, {"paper8", "Xavier"},
		{"paper9", "Xavier"}, {"paper9", "Erdos"},
		{"paper10", "Felix"}, {"paper10", "Bob"},
		{"paper11", "Ivan"}, {"paper11", "Carol"},
		// Nina's Erdős-number-3 chain through Oscar and Peter: a strict
		// chain that avoids both the Bob/Carol and the Greg spines. It is
		// the witness the feedback loop of Example 5.5 needs — a result of
		// Q1 (even with all inferable disequalities) that is not a result
		// of Union(Q3, Q4).
		{"paper20", "Nina"}, {"paper20", "Oscar"},
		{"paper21", "Oscar"}, {"paper21", "Peter"},
		{"paper22", "Peter"}, {"paper22", "Erdos"},
	}
	for _, t := range triples {
		g.MustAddTriple(t[0], Predicate, t[1])
	}
	for _, n := range g.Nodes() {
		typ := "Author"
		if len(n.Value) > 5 && n.Value[:5] == "paper" {
			typ = "Paper"
		}
		if err := g.SetNodeType(n.ID, typ); err != nil {
			panic(err)
		}
	}
	return g
}

// explanation extracts the subgraph of o induced by the given
// (paper, author) pairs, with the distinguished node looked up by value.
func explanation(o *graph.Graph, pairs [][2]string, dis string) provenance.Explanation {
	var edges []graph.EdgeID
	for _, p := range pairs {
		from, _ := o.NodeByValue(p[0])
		to, _ := o.NodeByValue(p[1])
		e, ok := o.FindEdge(from.ID, to.ID, Predicate)
		if !ok {
			panic("paperfix: missing ontology edge " + p[0] + "->" + p[1])
		}
		edges = append(edges, e.ID)
	}
	sub, err := o.Subgraph(edges, nil)
	if err != nil {
		panic(err)
	}
	ex, err := provenance.NewByValue(sub, dis)
	if err != nil {
		panic(err)
	}
	return ex
}

// Explanations builds the example-set {E1, E2, E3, E4} of Figure 1 over the
// given ontology (which must be Ontology() or a supergraph of it).
//
//	E1: Alice's Erdős-number-3 chain through Bob and Carol (6 edges).
//	E2: Dave's sole-authored paper4 plus his Erdős-number-2 chain through
//	    Greg (5 edges).
//	E3: Felix's Erdős-number-3 chain sharing Bob/paper2/Carol/paper3 with
//	    E1 (6 edges).
//	E4: Harry's sole-authored paper6 plus his Erdős-number-2 chain through
//	    Greg, sharing paper5/Greg/paper7 with E2 (5 edges).
func Explanations(o *graph.Graph) provenance.ExampleSet {
	e1 := explanation(o, [][2]string{
		{"paper1", "Alice"}, {"paper1", "Bob"},
		{"paper2", "Bob"}, {"paper2", "Carol"},
		{"paper3", "Carol"}, {"paper3", "Erdos"},
	}, "Alice")
	e2 := explanation(o, [][2]string{
		{"paper4", "Dave"},
		{"paper5", "Dave"}, {"paper5", "Greg"},
		{"paper7", "Greg"}, {"paper7", "Erdos"},
	}, "Dave")
	e3 := explanation(o, [][2]string{
		{"paper10", "Felix"}, {"paper10", "Bob"},
		{"paper2", "Bob"}, {"paper2", "Carol"},
		{"paper3", "Carol"}, {"paper3", "Erdos"},
	}, "Felix")
	e4 := explanation(o, [][2]string{
		{"paper6", "Harry"},
		{"paper5", "Harry"}, {"paper5", "Greg"},
		{"paper7", "Greg"}, {"paper7", "Erdos"},
	}, "Harry")
	return provenance.ExampleSet{e1, e2, e3, e4}
}

// Q1 builds the chain query of Figure 2a — the "Erdős number (at most) 3"
// pattern with six variables and the constant Erdos:
//
//	?p1 wb ?a1*   ?p1 wb ?a2   ?p2 wb ?a2
//	?p2 wb ?a3    ?p3 wb ?a3   ?p3 wb Erdos
func Q1() *query.Simple {
	q := query.NewSimple()
	p1 := q.MustEnsureNode(query.Var("p1"), "Paper")
	p2 := q.MustEnsureNode(query.Var("p2"), "Paper")
	p3 := q.MustEnsureNode(query.Var("p3"), "Paper")
	a1 := q.MustEnsureNode(query.Var("a1"), "Author")
	a2 := q.MustEnsureNode(query.Var("a2"), "Author")
	a3 := q.MustEnsureNode(query.Var("a3"), "Author")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "Author")
	q.MustAddEdge(p1, a1, Predicate)
	q.MustAddEdge(p1, a2, Predicate)
	q.MustAddEdge(p2, a2, Predicate)
	q.MustAddEdge(p2, a3, Predicate)
	q.MustAddEdge(p3, a3, Predicate)
	q.MustAddEdge(p3, erdos, Predicate)
	if err := q.SetProjected(a1); err != nil {
		panic(err)
	}
	return q
}

// Q2 builds the disjoint-edges query of Figure 2b produced by the trivial
// construction of Proposition 3.1: six wb edges with all-fresh variables,
// one of the author-side variables projected (12 variables total).
func Q2() *query.Simple {
	q := query.NewSimple()
	var firstAuthor query.NodeID
	for i := 1; i <= 6; i++ {
		p := q.MustEnsureNode(query.Var("p"+itoa(i)), "")
		a := q.MustEnsureNode(query.Var("a"+itoa(i)), "")
		q.MustAddEdge(p, a, Predicate)
		if i == 1 {
			firstAuthor = a
		}
	}
	if err := q.SetProjected(firstAuthor); err != nil {
		panic(err)
	}
	return q
}

// Q3 builds the merge of E1 and E3 (Figure 4a): two variables, the shared
// Bob/paper2/Carol/paper3/Erdos spine as constants.
//
//	?pA wb ?aA*  ?pA wb Bob  paper2 wb Bob  paper2 wb Carol
//	paper3 wb Carol  paper3 wb Erdos
func Q3() *query.Simple {
	q := query.NewSimple()
	pA := q.MustEnsureNode(query.Var("pA"), "Paper")
	aA := q.MustEnsureNode(query.Var("aA"), "Author")
	bob := q.MustEnsureNode(query.Const("Bob"), "Author")
	p2 := q.MustEnsureNode(query.Const("paper2"), "Paper")
	carol := q.MustEnsureNode(query.Const("Carol"), "Author")
	p3 := q.MustEnsureNode(query.Const("paper3"), "Paper")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "Author")
	q.MustAddEdge(pA, aA, Predicate)
	q.MustAddEdge(pA, bob, Predicate)
	q.MustAddEdge(p2, bob, Predicate)
	q.MustAddEdge(p2, carol, Predicate)
	q.MustAddEdge(p3, carol, Predicate)
	q.MustAddEdge(p3, erdos, Predicate)
	if err := q.SetProjected(aA); err != nil {
		panic(err)
	}
	return q
}

// Q4 builds the merge of E2 and E4 (Figure 4b): two variables, the shared
// paper5/Greg/paper7/Erdos spine as constants.
//
//	?pB wb ?aB*  paper5 wb ?aB  paper5 wb Greg
//	paper7 wb Greg  paper7 wb Erdos
func Q4() *query.Simple {
	q := query.NewSimple()
	pB := q.MustEnsureNode(query.Var("pB"), "Paper")
	aB := q.MustEnsureNode(query.Var("aB"), "Author")
	p5 := q.MustEnsureNode(query.Const("paper5"), "Paper")
	greg := q.MustEnsureNode(query.Const("Greg"), "Author")
	p7 := q.MustEnsureNode(query.Const("paper7"), "Paper")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "Author")
	q.MustAddEdge(pB, aB, Predicate)
	q.MustAddEdge(p5, aB, Predicate)
	q.MustAddEdge(p5, greg, Predicate)
	q.MustAddEdge(p7, greg, Predicate)
	q.MustAddEdge(p7, erdos, Predicate)
	if err := q.SetProjected(aB); err != nil {
		panic(err)
	}
	return q
}

func itoa(i int) string {
	return string(rune('0' + i))
}
