// Package faults is the chaos-engineering seam of the inference stack: a
// registry of named injection points threaded through the hot paths of the
// matcher, the merge engine, provenance materialization, session management
// and the worker budget. In production no injector is installed and every
// Fire call is a single atomic load returning nil. Tests install an
// Injector (Activate) whose rules fire deterministically — on the nth hit,
// the first k hits, every kth hit, or with a seeded probability — and
// either return an error or panic, so the recovery boundaries of the
// layers above can be exercised systematically under -race.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Point names one injection site. The set is fixed; layers call Fire with
// their own point so an Injector can target them independently.
type Point string

// The registered injection points.
const (
	// MatcherStep fires inside the backtracking matcher's periodic poll
	// (internal/eval), alongside the cancellation check.
	MatcherStep Point = "matcher.step"

	// MergePair fires before each MergePair execution in the merge
	// engine's worker pool (internal/core).
	MergePair Point = "merge.pair"

	// ProvenanceIO fires when a provenance image subgraph is materialized
	// (internal/eval ProvenanceOf), standing in for storage-layer IO.
	ProvenanceIO Point = "provenance.io"

	// SessionSnapshot fires across the session-durability surface:
	// session-id generation at creation (internal/service), the snapshot
	// codec's encode path (so panic-in-codec is injectable inside the
	// session's recovery boundary), and the store's save/load/journal
	// operations (internal/store). One rule therefore drives save-fails,
	// load-fails and restore failures end to end.
	SessionSnapshot Point = "session.snapshot"

	// BudgetAcquire fires at worker-budget admission (internal/conc),
	// simulating a saturated pool.
	BudgetAcquire Point = "budget.acquire"
)

// Points lists every registered injection point, in a fixed order.
func Points() []Point {
	return []Point{MatcherStep, MergePair, ProvenanceIO, SessionSnapshot, BudgetAcquire}
}

// ErrInjected is the sentinel all injected (non-panic) failures wrap.
var ErrInjected = errors.New("faults: injected failure")

// PanicValue is the value an injected panic carries, so recovery boundaries
// (and their tests) can tell a chaos panic from a genuine one.
type PanicValue struct{ Point Point }

func (p PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic at %s", p.Point)
}

// Rule decides when a point fires and what happens. Trigger fields compose
// with OR: the rule fires on the OnNth-th hit, on each of the first FirstN
// hits, on every EveryN-th hit, and with probability Prob on any hit (drawn
// from the injector's seeded generator, so a fixed seed replays the same
// schedule). MaxFires caps how often this rule fires in total (0 = no cap).
type Rule struct {
	Point Point

	OnNth    int     // fire on exactly the nth hit of the point (1-based)
	FirstN   int     // fire on hits 1..FirstN
	EveryN   int     // fire on every EveryN-th hit
	Prob     float64 // fire with probability Prob per hit
	MaxFires int     // total firing cap for this rule (0 = unlimited)

	// Panic makes the rule panic with a PanicValue instead of returning an
	// error; Err overrides the returned error (nil selects ErrInjected
	// wrapped with the point name).
	Panic bool
	Err   error
}

// Injector evaluates rules against per-point hit counters. Safe for
// concurrent use; construct with NewInjector.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	fires []int // per-rule firing count, parallel to rules
	hits  map[Point]int
	fired map[Point]int
}

// NewInjector builds an injector over the rules with a seeded probability
// source. The same seed and call sequence reproduce the same firings.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
		fires: make([]int, len(rules)),
		hits:  make(map[Point]int),
		fired: make(map[Point]int),
	}
}

// Hits reports how many times the point has been evaluated.
func (in *Injector) Hits(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// Fired reports how many times the point has actually fired.
func (in *Injector) Fired(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// fire evaluates the rules for one hit of p.
func (in *Injector) fire(p Point) error {
	in.mu.Lock()
	in.hits[p]++
	n := in.hits[p]
	var hit *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != p {
			continue
		}
		if r.MaxFires > 0 && in.fires[i] >= r.MaxFires {
			continue
		}
		trig := (r.OnNth > 0 && n == r.OnNth) ||
			(r.FirstN > 0 && n <= r.FirstN) ||
			(r.EveryN > 0 && n%r.EveryN == 0) ||
			(r.Prob > 0 && in.rng.Float64() < r.Prob)
		if trig {
			in.fires[i]++
			hit = r
			break
		}
	}
	if hit == nil {
		in.mu.Unlock()
		return nil
	}
	in.fired[p]++
	doPanic, err := hit.Panic, hit.Err
	in.mu.Unlock()
	if doPanic {
		panic(PanicValue{Point: p})
	}
	if err == nil {
		err = fmt.Errorf("%s: %w", p, ErrInjected)
	}
	return err
}

// active is the installed injector; nil in production.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector and returns a restore
// function reinstating the previous one. Test-only; there is no way to
// activate an injector in a production build path.
func Activate(in *Injector) (restore func()) {
	old := active.Swap(in)
	return func() { active.Store(old) }
}

// Fire is the hook the instrumented layers call. With no injector active
// (production) it is a single atomic load returning nil. With one active it
// returns an injected error, panics with a PanicValue, or returns nil,
// according to the injector's rules.
func Fire(p Point) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.fire(p)
}
