package faults_test

import (
	"errors"
	"sync"
	"testing"

	"questpro/internal/faults"
)

func TestFireNoInjectorIsNil(t *testing.T) {
	for _, p := range faults.Points() {
		if err := faults.Fire(p); err != nil {
			t.Fatalf("Fire(%s) with no injector = %v, want nil", p, err)
		}
	}
}

func TestOnNthFiresExactlyOnce(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{Point: faults.MergePair, OnNth: 3})
	restore := faults.Activate(in)
	defer restore()
	for i := 1; i <= 10; i++ {
		err := faults.Fire(faults.MergePair)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("injected error %v does not match ErrInjected", err)
		}
	}
	if got := in.Fired(faults.MergePair); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := in.Hits(faults.MergePair); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
}

func TestFirstNAndEveryN(t *testing.T) {
	in := faults.NewInjector(1,
		faults.Rule{Point: faults.BudgetAcquire, FirstN: 2},
		faults.Rule{Point: faults.MatcherStep, EveryN: 4},
	)
	restore := faults.Activate(in)
	defer restore()
	for i := 1; i <= 5; i++ {
		err := faults.Fire(faults.BudgetAcquire)
		if (i <= 2) != (err != nil) {
			t.Fatalf("budget hit %d: err = %v", i, err)
		}
	}
	fired := 0
	for i := 1; i <= 12; i++ {
		if faults.Fire(faults.MatcherStep) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("EveryN=4 fired %d times over 12 hits, want 3", fired)
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	schedule := func() []bool {
		in := faults.NewInjector(42, faults.Rule{Point: faults.ProvenanceIO, Prob: 0.3})
		restore := faults.Activate(in)
		defer restore()
		out := make([]bool, 64)
		for i := range out {
			out[i] = faults.Fire(faults.ProvenanceIO) != nil
		}
		return out
	}
	a, b := schedule(), schedule()
	anyFired := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical seeds", i)
		}
		anyFired = anyFired || a[i]
	}
	if !anyFired {
		t.Fatal("Prob=0.3 never fired in 64 hits")
	}
}

func TestMaxFiresCapsRule(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{Point: faults.SessionSnapshot, FirstN: 100, MaxFires: 2})
	restore := faults.Activate(in)
	defer restore()
	fired := 0
	for i := 0; i < 10; i++ {
		if faults.Fire(faults.SessionSnapshot) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("MaxFires=2 let %d firings through", fired)
	}
}

func TestPanicRuleCarriesPanicValue(t *testing.T) {
	in := faults.NewInjector(1, faults.Rule{Point: faults.MergePair, OnNth: 1, Panic: true})
	restore := faults.Activate(in)
	defer restore()
	defer func() {
		p := recover()
		pv, ok := p.(faults.PanicValue)
		if !ok {
			t.Fatalf("recovered %v (%T), want PanicValue", p, p)
		}
		if pv.Point != faults.MergePair {
			t.Fatalf("panic at point %s, want merge.pair", pv.Point)
		}
	}()
	_ = faults.Fire(faults.MergePair)
	t.Fatal("panic rule did not panic")
}

func TestCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	in := faults.NewInjector(1, faults.Rule{Point: faults.ProvenanceIO, FirstN: 1, Err: custom})
	restore := faults.Activate(in)
	defer restore()
	if err := faults.Fire(faults.ProvenanceIO); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := faults.NewInjector(7, faults.Rule{Point: faults.MatcherStep, Prob: 0.5, MaxFires: 100})
	restore := faults.Activate(in)
	defer restore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = faults.Fire(faults.MatcherStep)
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(faults.MatcherStep); got != 1600 {
		t.Fatalf("Hits = %d, want 1600", got)
	}
	if got := in.Fired(faults.MatcherStep); got != 100 {
		t.Fatalf("Fired = %d, want 100 (MaxFires)", got)
	}
}

func TestRestoreReinstatesPrevious(t *testing.T) {
	a := faults.NewInjector(1, faults.Rule{Point: faults.MergePair, FirstN: 1000})
	b := faults.NewInjector(1)
	restoreA := faults.Activate(a)
	restoreB := faults.Activate(b)
	if err := faults.Fire(faults.MergePair); err != nil {
		t.Fatal("inner injector has no rules but fired")
	}
	restoreB()
	if err := faults.Fire(faults.MergePair); err == nil {
		t.Fatal("restore did not reinstate the outer injector")
	}
	restoreA()
	if err := faults.Fire(faults.MergePair); err != nil {
		t.Fatal("final restore did not clear the injector")
	}
}
