package gateway

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"questpro/internal/api"
	"questpro/internal/client"
	"questpro/internal/obs"
)

// DefaultNotReadyHold is how long a request owned by a restarting
// (NotReady) backend is held waiting for /readyz to flip before the
// gateway sheds it. Restores are usually sub-second; anything past the
// hold means a genuinely slow recovery and the client should back off.
const DefaultNotReadyHold = 10 * time.Second

// DefaultMaxBody caps a request body read for buffering/retry. 64 MiB
// comfortably covers the largest ontology+examples payloads questprod
// itself accepts while bounding what a misbehaving client can pin.
const DefaultMaxBody = 64 << 20

// maxMintsPerBackend bounds the create id-minting loop: with N backends
// the gateway tries at most N*maxMintsPerBackend ids before concluding
// that no Ready backend with capacity exists. With ~1/N odds of hitting
// any given backend per mint, 16 tries per member makes failing to reach
// an available one astronomically unlikely.
const maxMintsPerBackend = 16

// Config configures New. Zero values select the defaults.
type Config struct {
	// NotReadyHold bounds the wait for a NotReady owner (default
	// DefaultNotReadyHold; negative = shed immediately).
	NotReadyHold time.Duration
	// RetryAfter is the Retry-After hint on shed responses (default 1s).
	RetryAfter time.Duration
	// DialRetries is how many times a request is re-sent after a DIAL
	// failure (the only failure mode that is safe to retry for
	// non-idempotent POSTs: a dial error means no byte reached the
	// backend). Default 2.
	DialRetries int
	// MaxBody caps a buffered request body (default DefaultMaxBody).
	MaxBody int64
	// MaxConnsPerBackend sizes the proxy's per-backend idle-connection
	// pool (default client.DefaultMaxConnsPerHost).
	MaxConnsPerBackend int
	// Transport overrides the proxy transport (tests).
	Transport http.RoundTripper
	Logger    *slog.Logger
	// BackoffSeed seeds the dial-retry jitter (tests; 0 = time-free fixed
	// seed is fine, the jitter only staggers concurrent retries).
	BackoffSeed int64

	// DisableTracing keeps the process-wide span gate off: no gateway.proxy
	// spans, no X-Qp-Trace propagation, no per-session span retention
	// (qpgate -no-trace). Request ids still mint and propagate.
	DisableTracing bool
	// TraceRing is how many finished gateway.proxy spans are retained per
	// session (default 8, mirroring questprod's trace ring).
	TraceRing int
	// TraceSessions caps how many sessions the gateway retains spans for;
	// the least-recently-traced session is evicted past it (default 1024).
	TraceSessions int

	// ScrapeTimeout bounds one backend /metrics scrape on the
	// GET /metrics/fleet path (default DefaultScrapeTimeout).
	ScrapeTimeout time.Duration

	// SLO layer parameters (defaults: DefaultSLOWindow,
	// DefaultAvailabilityTarget, DefaultLatencyObjective).
	SLOWindow             time.Duration
	SLOAvailabilityTarget float64
	SLOLatencyObjective   time.Duration
}

// Gateway is the qpgate http.Handler: it owns the Fleet, the per-backend
// connection-pooled proxy, the create id-minting path and the metrics.
type Gateway struct {
	fleet   *Fleet
	metrics *Metrics
	traces  *traceStore
	mux     *http.ServeMux

	transport     http.RoundTripper
	backoff       *client.Backoff
	hold          time.Duration
	retryAfter    time.Duration
	retries       int
	maxBody       int64
	scrapeTimeout time.Duration
	logger        *slog.Logger
}

// New builds the gateway over an already-constructed fleet. The caller
// starts/stops the fleet's probers.
func New(fleet *Fleet, cfg Config) *Gateway {
	if cfg.NotReadyHold == 0 {
		cfg.NotReadyHold = DefaultNotReadyHold
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DialRetries == 0 {
		cfg.DialRetries = 2
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tr := cfg.Transport
	if tr == nil {
		tr = client.NewTransport(cfg.MaxConnsPerBackend)
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = DefaultScrapeTimeout
	}
	if !cfg.DisableTracing {
		// Same sticky gate questprod's registry flips: once on, stays on.
		obs.SetEnabled(true)
	}
	metrics := NewMetrics()
	metrics.slo = newSLOTracker(cfg.SLOWindow, cfg.SLOAvailabilityTarget, cfg.SLOLatencyObjective)
	g := &Gateway{
		fleet:         fleet,
		metrics:       metrics,
		traces:        newTraceStore(cfg.TraceRing, cfg.TraceSessions),
		mux:           http.NewServeMux(),
		transport:     tr,
		backoff:       client.NewBackoff(50*time.Millisecond, 2*time.Second, cfg.BackoffSeed),
		hold:          cfg.NotReadyHold,
		retryAfter:    cfg.RetryAfter,
		retries:       cfg.DialRetries,
		maxBody:       cfg.MaxBody,
		scrapeTimeout: cfg.ScrapeTimeout,
		logger:        cfg.Logger,
	}

	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		g.metrics.WriteProm(w, g.fleet)
	})
	g.mux.HandleFunc("GET /metrics/fleet", g.handleFleetMetrics)
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("/v1/sessions/{id}", g.handleSession)
	g.mux.HandleFunc("/v1/sessions/{id}/{rest...}", g.handleSession)
	return g
}

// Metrics exposes the gateway's counters (tests, qpbench).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Fleet exposes the gateway's fleet.
func (g *Gateway) Fleet() *Fleet { return g.fleet }

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// handleReadyz: the gateway serves the full session keyspace only when
// every ring member is Ready, so that is what readiness means here. The
// body names each backend's state either way.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder
	ready := true
	for _, b := range g.fleet.Backends() {
		st := b.State()
		if st != StateReady {
			ready = false
		}
		fmt.Fprintf(&sb, "%s %s\n", b.ID, st)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.Header().Set("Retry-After", strconv.Itoa(retrySecs(g.retryAfter)))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	io.WriteString(w, sb.String())
}

// startProxyCtx builds one request's trace state: the honored-or-minted
// request id and (tracing on) a gateway.proxy root span whose id ships
// downstream in X-Qp-Trace. The returned ResponseWriter commits the span
// on the first write, so handlers must classify the outcome before
// writing (see proxyCtx).
func (g *Gateway) startProxyCtx(w http.ResponseWriter, r *http.Request, session string) (http.ResponseWriter, *proxyCtx) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = mintRequestID()
	}
	pc := &proxyCtx{rid: rid, session: session}
	_, pc.sp = obs.NewRoot(r.Context(), "gateway.proxy")
	if pc.sp != nil {
		pc.sp.SetLabel("request_id", rid)
		if session != "" {
			pc.sp.SetLabel("session_id", session)
		}
	}
	return &spanWriter{ResponseWriter: w, g: g, pc: pc}, pc
}

// handleSession routes /v1/sessions/{id}[/...] to the id's ring owner.
// Down owner → immediate shed; NotReady owner → hold until Ready or the
// hold expires, then shed. The id itself is all the routing state there
// is: this handler is identical before and after a gateway restart.
//
// GET .../trace is special-cased: it opens no span (so consecutive trace
// fetches are byte-stable) and the backend's response is assembled with
// the session's retained gateway spans into one cross-tier forest.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b := g.fleet.Owner(id)

	if r.Method == http.MethodGet && r.PathValue("rest") == "trace" {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = mintRequestID()
		}
		pc := &proxyCtx{rid: rid, session: id, backend: b.ID, done: true}
		if !g.admit(w, r, b, pc) {
			return
		}
		g.handleTraceRead(w, r, b, pc)
		return
	}

	w, pc := g.startProxyCtx(w, r, id)
	pc.backend = b.ID
	if !g.admit(w, r, b, pc) {
		return
	}
	pc.outcome = "error" // readBody failures write through the spanWriter
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	pc.outcome = ""
	g.proxy(w, r, b, body, pc, nil)
}

// admit applies the owner's state to the request: true means proceed to
// proxy. Sheds (false) have already written the 503.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, b *Backend, pc *proxyCtx) bool {
	switch b.State() {
	case StateReady:
		return true
	case StateDown:
		g.shed(w, b, pc, "shed", fmt.Sprintf("gateway: backend %s is down", b.ID))
		return false
	default: // NotReady: the shard is restoring — hold, bounded.
		g.metrics.backend(b.ID).held.Add(1)
		heldStart := time.Now()
		ctx := r.Context()
		if g.hold > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.hold)
			defer cancel()
		} else {
			g.shed(w, b, pc, "shed", fmt.Sprintf("gateway: backend %s is restoring", b.ID))
			return false
		}
		if err := g.fleet.WaitReady(ctx, b); err != nil {
			pc.heldMs = time.Since(heldStart).Milliseconds()
			g.shed(w, b, pc, "held-timeout", fmt.Sprintf("gateway: backend %s still restoring after %s hold", b.ID, g.hold))
			return false
		}
		pc.heldMs = time.Since(heldStart).Milliseconds()
		return true
	}
}

// shed answers 503 + Retry-After with the uniform api.Error envelope.
// outcome classifies the span (shed | held-timeout).
func (g *Gateway) shed(w http.ResponseWriter, b *Backend, pc *proxyCtx, outcome, msg string) {
	g.metrics.backend(b.ID).shed.Add(1)
	pc.outcome = outcome
	secs := retrySecs(g.retryAfter)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Request-Id", pc.rid)
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(&api.Error{
		Code:          api.CodeUnavailable,
		Message:       msg,
		RetryAfterSec: secs,
	})
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code string, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&api.Error{Code: code, Message: msg})
}

// readBody buffers the request body (bounded) so a dial retry can replay
// it. false means the 413/400 has been written.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.writeError(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
				fmt.Sprintf("gateway: request body exceeds %d bytes", g.maxBody))
		} else {
			g.writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				"gateway: reading request body: "+err.Error())
		}
		return nil, false
	}
	return body, true
}

// hopByHop are the headers that belong to one TCP hop, never forwarded
// (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	drop := map[string]bool{}
	for _, h := range hopByHop {
		drop[h] = true
	}
	for _, v := range src.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			drop[http.CanonicalHeaderKey(strings.TrimSpace(name))] = true
		}
	}
	for k, vv := range src {
		if drop[k] {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// proxy forwards one buffered request to the backend and relays the
// response verbatim (headers and body untouched — wire parity with a
// direct backend call is a tested property). Dial failures are retried
// with backoff — a dial error is the one transport failure that
// guarantees the backend never saw the request, so replaying a
// non-idempotent POST is safe; any later failure is relayed as-is.
//
// capture, when non-nil, receives the response instead of the
// ResponseWriter (the create path inspects before relaying).
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, b *Backend, body []byte, pc *proxyCtx, capture func(*http.Response)) {
	c := g.metrics.backend(b.ID)
	c.requests.Add(1)
	pc.backend = b.ID
	start := time.Now()

	outURL := b.ID + r.URL.RequestURI()
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, outURL, bytes.NewReader(body))
		if err != nil {
			pc.outcome = "error"
			g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "gateway: building backend request: "+err.Error())
			return
		}
		copyHeaders(req.Header, r.Header)
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			req.Header.Set("X-Forwarded-For", host)
		}
		// The cross-tier trace contract: the request id rides to the
		// backend (which echoes it), and the gateway span's id becomes the
		// backend root span's remote parent.
		req.Header.Set("X-Request-Id", pc.rid)
		if pc.sp != nil {
			req.Header.Set("X-Qp-Trace", pc.sp.ID())
		}
		req.ContentLength = int64(len(body))

		resp, err = g.transport.RoundTrip(req)
		if err == nil {
			break
		}
		if !isDialError(err) || attempt >= g.retries || r.Context().Err() != nil {
			// The backend is unreachable (or the failure is ambiguous —
			// the request may have partially executed, so no replay).
			// A dial failure additionally means the process is gone:
			// mark it Down now rather than waiting out a probe period,
			// so the next requests shed instead of re-dialing.
			if isDialError(err) {
				if prev := b.setState(StateDown); prev != StateDown {
					g.logger.Warn("backend dial failed, marking down", "backend", b.ID, "err", err)
				}
				c.errors.Add(1)
				g.shed(w, b, pc, "shed", fmt.Sprintf("gateway: backend %s unreachable: %v", b.ID, err))
				return
			}
			c.errors.Add(1)
			g.metrics.proxyDur.Observe(b.ID, time.Since(start))
			pc.outcome = "error"
			g.writeError(w, http.StatusBadGateway, api.CodeUnavailable,
				fmt.Sprintf("gateway: proxying to %s: %v", b.ID, err))
			return
		}
		c.retries.Add(1)
		pc.retries++
		select {
		case <-time.After(g.backoff.Delay(attempt, 0)):
		case <-r.Context().Done():
			pc.outcome = "error"
			g.writeError(w, http.StatusBadGateway, api.CodeCanceled, "gateway: client went away during backend retry")
			return
		}
	}

	defer func() { g.metrics.proxyDur.Observe(b.ID, time.Since(start)) }()
	if capture != nil {
		capture(resp)
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	pc.outcome = "proxied"
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// Headers are gone; all we can do is log and sever.
		g.logger.Warn("relaying backend response", "backend", b.ID, "err", err)
	}
	if r.Method == http.MethodDelete && resp.StatusCode/100 == 2 && pc.session != "" {
		g.traces.drop(pc.session)
	}
}

// isDialError reports whether the request failed before any byte reached
// the backend: a *net.OpError whose Op is "dial" anywhere in the chain.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// MintSessionID returns a fresh 32-hex-char session id, the same shape
// questprod mints (service.ValidSessionID accepts it).
func MintSessionID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("gateway: crypto/rand failed: " + err.Error()) // no sane fallback
	}
	return hex.EncodeToString(buf[:])
}

// handleCreate places a new session: the gateway mints the session id and
// asks the id's ring owner to create under it, so affinity holds by
// construction. Minting repeats (bounded) while the drawn owner is not
// Ready, and — because a backend at its session cap sheds the create with
// 503/overloaded — while the owner is full, which pools the fleet's
// capacity: creates flow to the shards with free slots, and only when
// every member is full or unavailable does the client see the 503.
//
// A client-supplied session_id is honored by routing to ITS owner (the
// caller has pinned the placement, e.g. a test), with the usual
// hold/shed admission.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	w, pc := g.startProxyCtx(w, r, "")
	pc.outcome = "error"
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}

	// Decode into a generic map so every field — including ones this
	// gateway build predates — survives the re-marshal untouched.
	var req map[string]any
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "gateway: decoding create request: "+err.Error())
		return
	}
	pc.outcome = ""

	if id, _ := req["session_id"].(string); id != "" {
		b := g.fleet.Owner(id)
		pc.session = id
		pc.backend = b.ID
		if pc.sp != nil {
			pc.sp.SetLabel("session_id", id)
		}
		if !g.admit(w, r, b, pc) {
			return
		}
		g.metrics.createsTotal.Add(1)
		g.proxy(w, r, b, body, pc, nil)
		return
	}

	maxMints := maxMintsPerBackend * len(g.fleet.Backends())
	var lastFull *http.Response
	defer func() {
		if lastFull != nil {
			lastFull.Body.Close()
		}
	}()
	full := make(map[string]bool) // backends that answered 503/overloaded
	for mint := 0; mint < maxMints; mint++ {
		if mint > 0 {
			g.metrics.createRemints.Add(1)
		}
		id := MintSessionID()
		b := g.fleet.Owner(id)
		if b.State() != StateReady || full[b.ID] {
			continue
		}
		req["session_id"] = id
		outBody, err := json.Marshal(req)
		if err != nil {
			pc.outcome = "error"
			g.writeError(w, http.StatusInternalServerError, api.CodeInternal, "gateway: re-encoding create request: "+err.Error())
			return
		}

		var resp *http.Response
		g.proxy(w, r, b, outBody, pc, func(got *http.Response) { resp = got })
		if resp == nil {
			return // proxy already wrote the failure
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The owner is at its session cap — remember and re-mint
			// toward the rest of the fleet. Keep the response around: if
			// EVERY backend turns out full, the last one's answer (with
			// its Retry-After) is what the client should see.
			full[b.ID] = true
			if lastFull != nil {
				lastFull.Body.Close()
			}
			lastFull = resp
			if len(full) < len(g.fleet.Backends()) {
				continue
			}
			break
		}
		if lastFull != nil {
			lastFull.Body.Close()
			lastFull = nil
		}
		g.metrics.createsTotal.Add(1)
		// The session exists now: retain this request's span under it so
		// its trace starts with the placing create.
		pc.session = id
		if pc.sp != nil {
			pc.sp.SetLabel("session_id", id)
		}
		pc.outcome = "proxied"
		defer resp.Body.Close()
		copyHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}

	if lastFull != nil {
		pc.outcome = "proxied"
		copyHeaders(w.Header(), lastFull.Header)
		w.WriteHeader(lastFull.StatusCode)
		io.Copy(w, lastFull.Body)
		return
	}
	// No Ready backend ever came up in the draw — the fleet is (at least
	// mostly) unavailable.
	pc.outcome = "shed"
	secs := retrySecs(g.retryAfter)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(&api.Error{
		Code:          api.CodeUnavailable,
		Message:       "gateway: no ready backend to place the session on",
		RetryAfterSec: secs,
	})
}

// retrySecs rounds a Retry-After hint up to whole seconds, minimum 1.
func retrySecs(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
