package gateway

import (
	"context"
	"net/http"
	"sync"
	"time"

	"questpro/internal/api"
	"questpro/internal/obs"
)

// DefaultScrapeTimeout bounds one backend /metrics scrape during fleet
// aggregation. Scrapes run concurrently, so the endpoint's worst case is
// one timeout, not their sum.
const DefaultScrapeTimeout = 2 * time.Second

// handleFleetMetrics serves GET /metrics/fleet: the questprod fleet's
// metrics scraped concurrently from every Ready backend, merged by
// obs.Aggregate (summed fleet series + per-backend series under a
// `backend` label), followed by the gateway's own families (qpgate_* —
// names disjoint from questprod_*, so the whole document still parses
// strictly). A backend that fails to scrape is skipped and counted in
// qpgate_fleet_scrape_errors_total{backend=...}: partial results with a
// 200, never a 5xx — the operator's pane of glass must not go blank
// because one shard died.
func (g *Gateway) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	backends := g.fleet.Backends()
	scrapes := make([]obs.Scrape, len(backends))
	ok := make([]bool, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if b.State() != StateReady {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			fams, err := g.scrapeBackend(r.Context(), b)
			if err != nil {
				g.metrics.backend(b.ID).scrapeErrors.Add(1)
				g.logger.Warn("fleet metrics scrape failed", "backend", b.ID, "err", err)
				return
			}
			scrapes[i] = obs.Scrape{Backend: b.ID, Families: fams}
			ok[i] = true
		}(i, b)
	}
	wg.Wait()

	live := make([]obs.Scrape, 0, len(backends))
	for i := range scrapes {
		if ok[i] {
			live = append(live, scrapes[i])
		}
	}
	merged, err := obs.Aggregate(live)
	if err != nil {
		// Only a malformed fleet reaches here (TYPE conflicts between
		// backends, a reserved label) — a config bug, not a dead shard.
		g.writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"gateway: merging fleet metrics: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WriteFamilies(w, merged)
	g.metrics.WriteProm(w, g.fleet)
}

// scrapeBackend fetches and strictly parses one backend's /metrics.
func (g *Gateway) scrapeBackend(ctx context.Context, b *Backend) (map[string]*obs.MetricFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, g.scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.ID+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.transport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &scrapeStatusError{status: resp.Status}
	}
	return obs.ParsePromText(resp.Body)
}

type scrapeStatusError struct{ status string }

func (e *scrapeStatusError) Error() string { return "scrape returned " + e.status }
