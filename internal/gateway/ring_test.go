package gateway

import (
	"fmt"
	"testing"
)

// sampleIDs mints count deterministic 32-hex session-id-shaped keys.
func sampleIDs(count int) []string {
	ids := make([]string, count)
	for i := range ids {
		ids[i] = fmt.Sprintf("%032x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return ids
}

// TestRingDeterministicAcrossRebuilds pins the property qpgate's whole
// affinity story rests on: ownership is a pure function of the membership
// SET, so a ring rebuilt in a different order — a gateway restart, a
// second gateway instance — routes every key identically.
func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	members := []string{
		"http://10.0.0.1:8370", "http://10.0.0.2:8370",
		"http://10.0.0.3:8370", "http://10.0.0.4:8370",
	}
	r1, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{members[2], members[0], members[3], members[1]}
	r2, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sampleIDs(5000) {
		if a, b := r1.Owner(id), r2.Owner(id); a != b {
			t.Fatalf("key %s owned by %s in one build, %s in the reordered rebuild", id, a, b)
		}
	}
}

// TestRingRemapFraction pins consistent hashing's minimal-disruption
// property over a sampled keyspace: removing one member of N remaps
// exactly the keys that member owned (~1/N of them) and NO key owned by a
// surviving member, and adding a member moves keys only TO the newcomer.
func TestRingRemapFraction(t *testing.T) {
	members := []string{
		"http://10.0.0.1:8370", "http://10.0.0.2:8370",
		"http://10.0.0.3:8370", "http://10.0.0.4:8370",
	}
	ids := sampleIDs(20000)

	full, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}

	// Remove the last member: survivors' keys must not move.
	removed := members[3]
	reduced, err := NewRing(members[:3])
	if err != nil {
		t.Fatal(err)
	}
	remapped := 0
	for _, id := range ids {
		before, after := full.Owner(id), reduced.Owner(id)
		if before != removed {
			if after != before {
				t.Fatalf("key %s owned by surviving %s moved to %s on removal of %s", id, before, after, removed)
			}
			continue
		}
		remapped++
	}
	frac := float64(remapped) / float64(len(ids))
	// The removed member's share concentrates around 1/4 with 128 virtual
	// points; a share outside [0.15, 0.35] means the ring is unbalanced.
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("removing 1 of 4 backends remapped %.1f%% of keys, want ~25%%", 100*frac)
	}

	// Add a member to the 3-ring: every moved key must land on the newcomer.
	moved := 0
	for _, id := range ids {
		before, after := reduced.Owner(id), full.Owner(id)
		if after != before {
			if after != removed {
				t.Fatalf("key %s moved %s -> %s on ADDING %s (keys may only move to the newcomer)",
					id, before, after, removed)
			}
			moved++
		}
	}
	if frac := float64(moved) / float64(len(ids)); frac < 0.15 || frac > 0.35 {
		t.Fatalf("adding a 4th backend moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestRingRejectsDegenerateInput: an empty ring and duplicate identities
// are configuration errors, not silent misroutes.
func TestRingRejectsDegenerateInput(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring built without error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// TestNormalizeBackendURL pins the canonicalization two gateways must
// agree on for their rings to match.
func TestNormalizeBackendURL(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "http://127.0.0.1:8370", want: "http://127.0.0.1:8370"},
		{in: "127.0.0.1:8370", want: "http://127.0.0.1:8370"},
		{in: " HTTP://Host:8370/ ", want: "http://host:8370"},
		{in: "https://h:1", want: "https://h:1"},
		{in: "ftp://h:1", wantErr: true},
		{in: "http://h:1/path", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := NormalizeBackendURL(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("NormalizeBackendURL(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("NormalizeBackendURL(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}
