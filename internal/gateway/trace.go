package gateway

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"questpro/internal/api"
	"questpro/internal/obs"
)

// Cross-tier trace propagation (DESIGN.md §14). The gateway honors or
// mints X-Request-Id, opens one gateway.proxy span per session request,
// ships the span's id downstream in X-Qp-Trace so the backend's root span
// links under it, and retains finished proxy spans per session. A trace
// read served through the gateway then returns ONE forest: the session's
// gateway spans prepended (oldest first) to the backend's own roots.

// proxyCtx is one request's trace state, threaded through
// admit/shed/proxy. The span is finalized exactly once, at the moment the
// response's status is committed (see spanWriter) — before the client can
// possibly read the response body — so a dialogue's immediately following
// trace fetch always sees the prior request's span.
type proxyCtx struct {
	rid     string
	session string
	backend string
	sp      *obs.Span
	heldMs  int64
	retries int64
	outcome string // proxied | shed | held-timeout | error
	done    bool
}

// finalize freezes the span with its accumulated annotations and, when the
// request belongs to a session, records the snapshot. Idempotent.
func (pc *proxyCtx) finalize(g *Gateway) {
	if pc == nil || pc.done {
		return
	}
	pc.done = true
	if pc.sp == nil {
		return
	}
	pc.sp.SetLabel("backend", pc.backend)
	pc.sp.SetInt("retries", pc.retries)
	pc.sp.SetInt("held_ms", pc.heldMs)
	if pc.outcome == "" {
		pc.outcome = "proxied"
	}
	pc.sp.SetOutcome(pc.outcome)
	pc.sp.Finish()
	if pc.session != "" {
		g.traces.record(pc.session, pc.sp.Snapshot())
	}
}

// spanWriter commits the request's span on the first header/body write, so
// the recorded trace is visible before any response byte reaches the
// client. Handlers decide the outcome (pc.outcome) before writing.
type spanWriter struct {
	http.ResponseWriter
	g  *Gateway
	pc *proxyCtx
}

func (w *spanWriter) WriteHeader(code int) {
	w.commit()
	w.ResponseWriter.WriteHeader(code)
}

func (w *spanWriter) Write(b []byte) (int, error) {
	w.commit()
	return w.ResponseWriter.Write(b)
}

// commit stamps the response with the request id (a Set, collapsing the
// backend's echo of the same id into one header) and freezes the span.
func (w *spanWriter) commit() {
	if !w.pc.done {
		w.Header().Set("X-Request-Id", w.pc.rid)
	}
	w.pc.finalize(w.g)
}

// ridFallback numbers request ids minted after an entropy failure (the id
// is the cross-tier correlation key and must never be empty).
var ridFallback atomic.Int64

// mintRequestID mirrors questprod's request-id shape (16 hex chars).
func mintRequestID() string {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		return fmt.Sprintf("gw-req-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// traceStore retains finished gateway.proxy span snapshots per session: a
// bounded ring per session, a bounded number of sessions, LRU-evicted.
// This is droppable observability state — the gateway stays restart-
// stateless; losing it loses only the gateway half of old traces.
type traceStore struct {
	mu          sync.Mutex
	perSession  map[string]*sessionTrace
	ringSize    int
	maxSessions int
	clock       int64 // advances per record; orders LRU eviction
}

type sessionTrace struct {
	nodes []*obs.Node // ring, oldest at [start]
	start int
	touch int64
}

func newTraceStore(ringSize, maxSessions int) *traceStore {
	if ringSize <= 0 {
		ringSize = 8
	}
	if maxSessions <= 0 {
		maxSessions = 1024
	}
	return &traceStore{
		perSession:  make(map[string]*sessionTrace),
		ringSize:    ringSize,
		maxSessions: maxSessions,
	}
}

func (t *traceStore) record(session string, n *obs.Node) {
	if n == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	st := t.perSession[session]
	if st == nil {
		if len(t.perSession) >= t.maxSessions {
			var lruKey string
			lru := int64(1<<63 - 1)
			for k, s := range t.perSession {
				if s.touch < lru {
					lru, lruKey = s.touch, k
				}
			}
			delete(t.perSession, lruKey)
		}
		st = &sessionTrace{}
		t.perSession[session] = st
	}
	st.touch = t.clock
	if len(st.nodes) < t.ringSize {
		st.nodes = append(st.nodes, n)
		return
	}
	st.nodes[st.start] = n
	st.start = (st.start + 1) % t.ringSize
}

// get returns the session's retained spans, oldest first.
func (t *traceStore) get(session string) []*obs.Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.perSession[session]
	if st == nil {
		return nil
	}
	out := make([]*obs.Node, 0, len(st.nodes))
	for i := 0; i < len(st.nodes); i++ {
		out = append(out, st.nodes[(st.start+i)%len(st.nodes)])
	}
	return out
}

// drop forgets the session (called when a DELETE proxies through).
func (t *traceStore) drop(session string) {
	t.mu.Lock()
	delete(t.perSession, session)
	t.mu.Unlock()
}

// traceNodeJSON mirrors the service's obs.Node → api.TraceNode conversion,
// so gateway spans and backend spans serve in the same wire shape.
func traceNodeJSON(n *obs.Node) *api.TraceNode {
	if n == nil {
		return nil
	}
	out := &api.TraceNode{
		Kind:         n.Kind,
		SpanID:       n.SpanID,
		ParentSpanID: n.ParentSpanID,
		StartUnixNs:  n.StartUnixNs,
		DurationNs:   n.DurationNs,
		Outcome:      n.Outcome,
		Counters:     n.Counters,
		Labels:       n.Labels,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, traceNodeJSON(c))
	}
	return out
}

// handleTraceRead proxies GET /v1/sessions/{id}/trace and assembles the
// cross-tier forest: the session's retained gateway.proxy spans (oldest
// first) prepended to the backend's own roots. Trace reads open no span of
// their own — mirroring the backend, whose trace handler records nothing —
// which is what makes consecutive fetches byte-identical.
func (g *Gateway) handleTraceRead(w http.ResponseWriter, r *http.Request, b *Backend, pc *proxyCtx) {
	var resp *http.Response
	g.proxy(w, r, b, nil, pc, func(got *http.Response) { resp = got })
	if resp == nil {
		return // proxy already wrote the failure
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyHeaders(w.Header(), resp.Header)
		w.Header().Set("X-Request-Id", pc.rid)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	var backendResp api.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&backendResp); err != nil {
		g.writeError(w, http.StatusBadGateway, api.CodeUnavailable,
			"gateway: decoding backend trace response: "+err.Error())
		return
	}
	assembled := api.TraceResponse{Traces: make([]*api.TraceNode, 0, len(backendResp.Traces)+g.traces.ringSize)}
	for _, n := range g.traces.get(pc.session) {
		assembled.Traces = append(assembled.Traces, traceNodeJSON(n))
	}
	assembled.Traces = append(assembled.Traces, backendResp.Traces...)

	// Re-encode exactly as the service's writeJSON does (two-space indent),
	// so a gateway-served trace differs from a direct one only by the
	// prepended gateway spans.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(assembled); err != nil {
		g.writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"gateway: encoding assembled trace: "+err.Error())
		return
	}
	copyHeaders(w.Header(), resp.Header)
	w.Header().Del("Content-Length") // the body grew past the backend's
	w.Header().Set("X-Request-Id", pc.rid)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}
