// Package gateway is the horizontal scale-out layer of questprod: a thin
// HTTP gateway (served by cmd/qpgate) that routes every session-scoped
// request to the backend owning the session, where ownership is the
// consistent-hash ring position of the session id and nothing else. No
// routing table, no token-embedded backend id: the gateway derives the
// owner from the id on every request, so a gateway restart loses no state,
// and a backend restart recovers its own sessions from its own -data-dir
// (DESIGN.md §12) while the gateway sheds or holds traffic for it until
// its /readyz flips.
//
// The package splits into the Ring (pure hashing), the Fleet (backend
// registry + health/readiness probing), and the Gateway http.Handler
// (create id-minting, per-backend pooled proxying, shedding, /metrics).
// See DESIGN.md §13.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual points each backend contributes to
// the ring. More points smooth the key distribution (the share of each of
// N backends concentrates around 1/N) at a small lookup-table cost; 128 is
// plenty for single-digit fleets and still microseconds to build.
const ringReplicas = 128

// Ring maps keys (session ids) onto a fixed set of backend identities by
// consistent hashing: each backend is hashed onto ringReplicas points of a
// 64-bit circle, and a key is owned by the first point at or clockwise
// after the key's own hash. Ownership depends only on the membership SET —
// not on registration order, and not on any state accumulated between
// lookups — so two gateways (or one gateway across a restart) built from
// the same backend list route identically, and removing one backend of N
// remaps only the ~1/N of keys that backend owned.
//
// Immutable after New; safe for concurrent use.
type Ring struct {
	points []ringPoint
	ids    []string
}

type ringPoint struct {
	hash uint64
	idx  int // index into ids
}

// NewRing builds a ring over the backend identities (qpgate uses the
// normalized backend URLs). Duplicate ids are an error — two ring members
// with one identity would silently halve that member's share.
func NewRing(ids []string) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("gateway: ring needs at least one backend")
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{
		ids:    append([]string(nil), ids...),
		points: make([]ringPoint, 0, len(ids)*ringReplicas),
	}
	for i, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("gateway: duplicate backend %q in ring", id)
		}
		seen[id] = true
		for rep := 0; rep < ringReplicas; rep++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", id, rep)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// A 64-bit collision between two backends' points is vanishingly
		// rare but must still order deterministically, not by sort
		// happenstance: tie-break on the backend identity.
		return r.ids[pa.idx] < r.ids[pb.idx]
	})
	return r, nil
}

// ringHash is 64-bit FNV-1a: stable across processes, restarts and Go
// versions (unlike maphash), which is exactly what derived-from-the-id
// affinity requires.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the backend identity owning key.
func (r *Ring) Owner(key string) string { return r.ids[r.OwnerIndex(key)] }

// OwnerIndex returns the index (into the NewRing id list) of the backend
// owning key: binary search for the first ring point at or after the key's
// hash, wrapping to the first point past the top of the circle.
func (r *Ring) OwnerIndex(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// Members returns the ring's backend identities in registration order.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }
