package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"questpro/internal/api"
	qpclient "questpro/internal/client"
	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
	"questpro/internal/service"
)

// backendFixture is one in-process questprod backend: a real service
// registry behind a real HTTP listener, plus a readiness switch the tests
// flip to simulate a restoring or dead shard.
type backendFixture struct {
	ts    *httptest.Server
	reg   *service.Registry
	ready atomic.Bool
}

// newBackendFixture starts an in-process backend. maxSessions <= 0 means
// the service default.
func newBackendFixture(t *testing.T, maxSessions int) *backendFixture {
	t.Helper()
	f := &backendFixture{}
	f.reg = service.NewRegistry(service.Config{MaxSessions: maxSessions})
	t.Cleanup(f.reg.Close)
	real := service.NewServer(f.reg)
	f.ready.Store(true)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.ready.Load() {
			real.ServeHTTP(w, r)
			return
		}
		// Mimic a questprod mid-restore: ReadyGate semantics.
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(&api.Error{Code: api.CodeUnavailable, Message: "restoring", RetryAfterSec: 1})
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// newTestGateway assembles a fleet + gateway over the fixtures with fast
// probing, seeds the states synchronously, and serves the gateway on its
// own listener.
func newTestGateway(t *testing.T, cfg Config, fixtures ...*backendFixture) (*Gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(fixtures))
	for i, f := range fixtures {
		urls[i] = f.ts.URL
	}
	fleet, err := NewFleet(urls, FleetConfig{ProbeInterval: 20 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	fleet.ProbeAll(context.Background())
	fleet.Start()
	t.Cleanup(fleet.Close)
	gw := New(fleet, cfg)
	ts := httptest.NewServer(gw)
	t.Cleanup(ts.Close)
	return gw, ts
}

func gatewayClient(base string) *qpclient.Client {
	return qpclient.New(qpclient.Config{
		BaseURL:        base,
		MaxRetries:     3,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       200 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		Seed:           1,
	})
}

func mustGet(t *testing.T, base, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestGatewayCreateAffinityAndWireParity drives the full dialogue protocol
// through the gateway against a 3-backend fleet and pins the two load-
// bearing properties: (1) the session lands on the ring owner of its
// minted id — exactly one backend holds it, and it is the one the ring
// names; (2) proxied responses are byte-identical to asking the owning
// backend directly (wire parity: the gateway adds routing, not dialect).
func TestGatewayCreateAffinityAndWireParity(t *testing.T) {
	fixtures := []*backendFixture{
		newBackendFixture(t, 0), newBackendFixture(t, 0), newBackendFixture(t, 0),
	}
	gw, ts := newTestGateway(t, Config{}, fixtures...)
	cl := gatewayClient(ts.URL)
	ctx := context.Background()

	onto := ntriples.Format(paperfix.Ontology())
	id, err := cl.CreateSession(ctx, onto, nil)
	if err != nil {
		t.Fatalf("create via gateway: %v", err)
	}
	if !service.ValidSessionID(id) {
		t.Fatalf("gateway minted malformed session id %q", id)
	}

	// Exactly the ring owner holds the session.
	owner := gw.Fleet().Owner(id)
	for i, f := range fixtures {
		code, _, _ := mustGet(t, f.ts.URL, "/v1/sessions/"+id+"/stats")
		wantOwner := NormalizeBackendURL0(t, f.ts.URL) == owner.ID
		if wantOwner && code != http.StatusOK {
			t.Fatalf("ring owner (backend %d) answered %d for the session it should hold", i, code)
		}
		if !wantOwner && code != http.StatusNotFound {
			t.Fatalf("non-owner backend %d answered %d, want 404 (session must live on exactly one shard)", i, code)
		}
	}

	// Drive examples + inference + a feedback start through the gateway.
	if err := cl.SetExamples(ctx, id, wireExamples()); err != nil {
		t.Fatalf("examples via gateway: %v", err)
	}
	inf, err := cl.Infer(ctx, id, "topk", 0)
	if err != nil {
		t.Fatalf("infer via gateway: %v", err)
	}
	if inf.SPARQL == "" {
		t.Fatal("infer via gateway returned no query")
	}
	if _, err := cl.StartFeedback(ctx, id, 0); err != nil {
		t.Fatalf("feedback via gateway: %v", err)
	}

	// Wire parity on idempotent reads: stats and the pending question must
	// come back byte-identical whether asked via the gateway or directly.
	for _, path := range []string{
		"/v1/sessions/" + id + "/stats",
		"/v1/sessions/" + id + "/feedback/pending",
	} {
		viaCode, _, viaBody := mustGet(t, ts.URL, path)
		dirCode, _, dirBody := mustGet(t, owner.ID, path)
		if viaCode != dirCode || string(viaBody) != string(dirBody) {
			t.Fatalf("GET %s diverges via gateway:\n gateway (%d): %s\n direct  (%d): %s",
				path, viaCode, viaBody, dirCode, dirBody)
		}
	}
}

// NormalizeBackendURL0 is NormalizeBackendURL with the error turned into a
// test failure.
func NormalizeBackendURL0(t *testing.T, raw string) string {
	t.Helper()
	id, err := NormalizeBackendURL(raw)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func wireExamples() []api.Example {
	o := paperfix.Ontology()
	var exs []api.Example
	for _, e := range paperfix.Explanations(o) {
		exs = append(exs, api.Example{
			Triples:       ntriples.Format(e.Graph),
			Distinguished: e.DistinguishedValue(),
		})
	}
	return exs
}

// TestGatewayRoutingSurvivesGatewayRestart: a second gateway built from
// the same backend set (listed in a different order) routes every
// existing session to the backend that holds it — there is no routing
// table to lose.
func TestGatewayRoutingSurvivesGatewayRestart(t *testing.T) {
	fixtures := []*backendFixture{
		newBackendFixture(t, 0), newBackendFixture(t, 0), newBackendFixture(t, 0),
	}
	gw1, ts1 := newTestGateway(t, Config{}, fixtures...)
	cl := gatewayClient(ts1.URL)
	ctx := context.Background()

	onto := `<a> <p> <b> .`
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		id, err := cl.CreateSession(ctx, onto, nil)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	// "Restart": a brand-new fleet + gateway, backends listed reversed.
	reversed := []*backendFixture{fixtures[2], fixtures[1], fixtures[0]}
	gw2, ts2 := newTestGateway(t, Config{}, reversed...)

	for _, id := range ids {
		if a, b := gw1.Fleet().Owner(id).ID, gw2.Fleet().Owner(id).ID; a != b {
			t.Fatalf("session %s owned by %s before restart, %s after", id, a, b)
		}
		code, _, body := mustGet(t, ts2.URL, "/v1/sessions/"+id+"/stats")
		if code != http.StatusOK {
			t.Fatalf("restarted gateway lost session %s: %d %s", id, code, body)
		}
	}
}

// TestGatewayShedWhenBackendDown: a request owned by an unreachable shard
// is shed immediately with 503 + Retry-After and the uniform api.Error
// envelope; sessions owned by live shards keep working.
func TestGatewayShedWhenBackendDown(t *testing.T) {
	alive := newBackendFixture(t, 0)
	dead := newBackendFixture(t, 0)
	gw, ts := newTestGateway(t, Config{RetryAfter: 2 * time.Second}, alive, dead)

	// Sessions on the live shard first (while both are up).
	cl := gatewayClient(ts.URL)
	aliveID, deadID := "", ""
	for i := 0; aliveID == "" || deadID == ""; i++ {
		if i > 200 {
			t.Fatal("could not land sessions on both shards in 200 creates")
		}
		id, err := cl.CreateSession(context.Background(), `<a> <p> <b> .`, nil)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if gw.Fleet().Owner(id).ID == NormalizeBackendURL0(t, dead.ts.URL) {
			deadID = id
		} else {
			aliveID = id
		}
	}

	// Kill the shard. The prober (20ms interval) flips it to Down.
	dead.ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for gw.Fleet().Owner(deadID).State() != StateDown {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the killed backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, hdr, body := mustGet(t, ts.URL, "/v1/sessions/"+deadID+"/stats")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request for a down shard = %d, want 503; body %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeUnavailable || e.RetryAfterSec < 1 {
		t.Fatalf("shed envelope = %s (err %v), want code %q with a retry hint", body, err, api.CodeUnavailable)
	}

	if code, _, _ := mustGet(t, ts.URL, "/v1/sessions/"+aliveID+"/stats"); code != http.StatusOK {
		t.Fatalf("live shard's session answered %d while sibling was down", code)
	}
}

// TestGatewayHoldsForRestoringBackend: a NotReady shard (up, /readyz 503 —
// questprod replaying its WAL) holds its requests rather than shedding,
// and releases them the moment readiness flips.
func TestGatewayHoldsForRestoringBackend(t *testing.T) {
	f := newBackendFixture(t, 0)
	gw, ts := newTestGateway(t, Config{NotReadyHold: 10 * time.Second}, f)
	cl := gatewayClient(ts.URL)

	id, err := cl.CreateSession(context.Background(), `<a> <p> <b> .`, nil)
	if err != nil {
		t.Fatal(err)
	}

	f.ready.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for gw.Fleet().Owner(id).State() != StateNotReady {
		if time.Now().After(deadline) {
			t.Fatal("prober never saw the backend turn not-ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Release readiness shortly after the request starts holding.
	flipAt := 150 * time.Millisecond
	go func() {
		time.Sleep(flipAt)
		f.ready.Store(true)
	}()
	start := time.Now()
	code, _, body := mustGet(t, ts.URL, "/v1/sessions/"+id+"/stats")
	if code != http.StatusOK {
		t.Fatalf("held request = %d %s, want 200 after readiness flip", code, body)
	}
	if held := time.Since(start); held < flipAt-20*time.Millisecond {
		t.Fatalf("request answered in %v, before the backend could have become ready (~%v)", held, flipAt)
	}

	// And with a hold shorter than the outage, the gateway sheds instead.
	// (A separate gateway instance: the hold is fixed at construction.)
	gw2, ts2 := newTestGateway(t, Config{NotReadyHold: 100 * time.Millisecond}, f)
	f.ready.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for gw2.Fleet().Owner(id).State() != StateNotReady {
		if time.Now().After(deadline) {
			t.Fatal("second gateway's prober never saw the backend turn not-ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, hdr, body := mustGet(t, ts2.URL, "/v1/sessions/"+id+"/stats")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("overstayed hold = %d (Retry-After %q) %s, want 503 + Retry-After", code, hdr.Get("Retry-After"), body)
	}
	f.ready.Store(true)
}

// TestGatewayCreateOverloadRemint: the id-minting loop pools fleet
// capacity — when the first-drawn owner is at its session cap, the create
// re-mints toward shards with free slots, and only a fleet-wide full
// answers 503/overloaded to the client.
func TestGatewayCreateOverloadRemint(t *testing.T) {
	// Two tiny shards: 2 slots total.
	a := newBackendFixture(t, 1)
	b := newBackendFixture(t, 1)
	_, ts := newTestGateway(t, Config{}, a, b)

	onto := `<a> <p> <b> .`
	post := func() (int, []byte) {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
			strings.NewReader(`{"ontology":"`+onto+`"}`))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	for i := 0; i < 2; i++ {
		if code, body := post(); code != http.StatusCreated {
			t.Fatalf("create %d with fleet capacity free = %d %s", i, code, body)
		}
	}
	code, body := post()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create beyond fleet capacity = %d %s, want 503", code, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeOverloaded {
		t.Fatalf("fleet-full envelope = %s (err %v), want code %q (the backend's own shed, relayed)",
			body, err, api.CodeOverloaded)
	}
}

// TestSchemaGatewayErrorEnvelope is part of the `make api-check` gate: the
// gateway's OWN error responses (shed, oversized body) must speak the same
// versioned api.Error envelope as the backends, with documented codes —
// a client cannot tell which layer refused it, so both layers must refuse
// identically.
func TestSchemaGatewayErrorEnvelope(t *testing.T) {
	f := newBackendFixture(t, 0)
	gw, ts := newTestGateway(t, Config{MaxBody: 1024, RetryAfter: 3 * time.Second}, f)

	// Shed envelope (backend down).
	f.ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for gw.Fleet().Backends()[0].State() != StateDown {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, hdr, body := mustGet(t, ts.URL, "/v1/sessions/0123456789abcdef0123456789abcdef/stats")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("shed = %d, want 503", code)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("shed body is not JSON: %v\n%s", err, body)
	}
	// The envelope's wire shape: exactly the api.Error fields.
	for k := range raw {
		switch k {
		case "code", "error", "retry_after_sec":
		default:
			t.Fatalf("shed envelope carries undocumented field %q: %s", k, body)
		}
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeUnavailable {
		t.Fatalf("shed envelope = %s, want code %q", body, api.CodeUnavailable)
	}
	if hdr.Get("Retry-After") == "" || e.RetryAfterSec < 1 {
		t.Fatalf("shed envelope lacks retry hints: header %q, body %s", hdr.Get("Retry-After"), body)
	}

	// Oversized-body envelope.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"ontology":"`+strings.Repeat("x", 4096)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ = io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create = %d %s, want 413", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeTooLarge {
		t.Fatalf("413 envelope = %s (err %v), want code %q", body, err, api.CodeTooLarge)
	}
}
