package gateway

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"questpro/internal/obs"
)

// Metrics is the gateway's observability surface, rendered at /metrics in
// the Prometheus text exposition format. Every family is built as an
// obs.MetricFamily and rendered through obs.WriteFamilies — the same
// writer the fleet aggregator uses — so the gateway's exposition always
// round-trips through the strict obs.ParsePromText (a tested property).
// Request traffic is partitioned by backend — the question a fleet
// operator asks is "which shard", not "which endpoint"; the endpoint-level
// view lives on the backends.
type Metrics struct {
	proxyDur *obs.Family // qpgate_proxy_duration_seconds{backend=...}
	slo      *sloTracker

	mu         sync.Mutex
	perBackend map[string]*backendCounters

	// creates* track the id-minting loop: how many sessions the gateway
	// placed and how many extra mints it took to land them on a Ready,
	// non-full backend (a rising remint rate means shards are saturating).
	createsTotal  atomic.Int64
	createRemints atomic.Int64
}

// backendCounters is one backend's traffic ledger.
type backendCounters struct {
	requests     atomic.Int64 // proxied requests (any outcome)
	errors       atomic.Int64 // transport failures after retries
	retries      atomic.Int64 // dial retries performed
	shed         atomic.Int64 // requests answered 503 by the GATEWAY for this backend
	held         atomic.Int64 // requests that waited for a NotReady backend
	scrapeErrors atomic.Int64 // failed /metrics scrapes during fleet aggregation
}

// NewMetrics builds an empty metrics surface with default SLO parameters
// (New overrides them from Config).
func NewMetrics() *Metrics {
	return &Metrics{
		proxyDur: obs.NewFamily("qpgate_proxy_duration_seconds", "backend",
			"End-to-end proxied request latency by backend."),
		slo:        newSLOTracker(0, 0, 0),
		perBackend: make(map[string]*backendCounters),
	}
}

func (m *Metrics) backend(id string) *backendCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.perBackend[id]
	if c == nil {
		c = &backendCounters{}
		m.perBackend[id] = c
	}
	return c
}

// snapshotBackends returns the per-backend counters sorted by backend id.
func (m *Metrics) snapshotBackends() (ids []string, counters []*backendCounters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.perBackend {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		counters = append(counters, m.perBackend[id])
	}
	return ids, counters
}

// sloSnapshot reads the cumulative totals the SLO window diffs: every
// request the gateway answered (proxied or shed), the failed/shed subset,
// and the merged proxy latency distribution.
func (m *Metrics) sloSnapshot() sloSnap {
	_, counters := m.snapshotBackends()
	snap := sloSnap{}
	for _, c := range counters {
		snap.total += float64(c.requests.Load() + c.shed.Load())
		snap.bad += float64(c.errors.Load() + c.shed.Load())
	}
	counts, _, _ := m.proxyDur.MergedCounts()
	snap.counts = counts
	return snap
}

// Families builds the gateway's exposition document as parsed-form
// families, sorted by name. fleet supplies the backend-state gauge.
func (m *Metrics) Families(fleet *Fleet) []*obs.MetricFamily {
	ids, counters := m.snapshotBackends()
	perBackendCounter := func(name, help string, val func(*backendCounters) int64) *obs.MetricFamily {
		mf := &obs.MetricFamily{Name: name, Type: "counter", Help: help}
		for i, id := range ids {
			mf.Samples = append(mf.Samples, obs.Sample{
				Name:   name,
				Labels: map[string]string{"backend": id},
				Value:  float64(val(counters[i])),
			})
		}
		return mf
	}
	fams := []*obs.MetricFamily{
		perBackendCounter("qpgate_requests_total", "Requests proxied to the backend (any outcome).",
			func(c *backendCounters) int64 { return c.requests.Load() }),
		perBackendCounter("qpgate_proxy_errors_total", "Proxied requests that failed in transport after retries.",
			func(c *backendCounters) int64 { return c.errors.Load() }),
		perBackendCounter("qpgate_proxy_retries_total", "Dial retries performed against the backend.",
			func(c *backendCounters) int64 { return c.retries.Load() }),
		perBackendCounter("qpgate_shed_total", "Requests the gateway answered 503 for because the backend was down or not ready.",
			func(c *backendCounters) int64 { return c.shed.Load() }),
		perBackendCounter("qpgate_held_total", "Requests that waited for a restarting (not-ready) backend before proxying.",
			func(c *backendCounters) int64 { return c.held.Load() }),
		perBackendCounter("qpgate_fleet_scrape_errors_total", "Backend /metrics scrapes that failed during fleet aggregation.",
			func(c *backendCounters) int64 { return c.scrapeErrors.Load() }),
		{
			Name: "qpgate_creates_total", Type: "counter",
			Help:    "Sessions placed by the gateway's id-minting create path.",
			Samples: []obs.Sample{{Name: "qpgate_creates_total", Value: float64(m.createsTotal.Load())}},
		},
		{
			Name: "qpgate_create_remints_total", Type: "counter",
			Help:    "Extra id mints needed to land creates on a ready, non-full backend.",
			Samples: []obs.Sample{{Name: "qpgate_create_remints_total", Value: float64(m.createRemints.Load())}},
		},
	}

	if fleet != nil {
		mf := &obs.MetricFamily{
			Name: "qpgate_backend_state", Type: "gauge",
			Help: "Probed backend state (1 = the backend is in this state).",
		}
		for _, b := range fleet.Backends() {
			st := b.State()
			for _, s := range []State{StateDown, StateNotReady, StateReady} {
				v := 0.0
				if st == s {
					v = 1
				}
				mf.Samples = append(mf.Samples, obs.Sample{
					Name:   "qpgate_backend_state",
					Labels: map[string]string{"backend": b.ID, "state": s.String()},
					Value:  v,
				})
			}
		}
		fams = append(fams, mf)
	}

	fams = append(fams, m.slo.families(m.sloSnapshot())...)
	fams = append(fams, m.proxyDur.Family())
	obs.SortFamilies(fams)
	return fams
}

// WriteProm renders the gateway metrics.
func (m *Metrics) WriteProm(w io.Writer, fleet *Fleet) {
	obs.WriteFamilies(w, m.Families(fleet))
}
