package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"questpro/internal/obs"
)

// Metrics is the gateway's observability surface, rendered at /metrics in
// the Prometheus text exposition format (same hand-rolled conventions as
// questprod's: # HELP/# TYPE headers, *_total counters, label values
// sorted for deterministic scrapes). Request traffic is partitioned by
// backend — the question a fleet operator asks is "which shard", not
// "which endpoint"; the endpoint-level view lives on the backends.
type Metrics struct {
	proxyDur *obs.Family // qpgate_proxy_duration_seconds{backend=...}

	mu         sync.Mutex
	perBackend map[string]*backendCounters

	// creates* track the id-minting loop: how many sessions the gateway
	// placed and how many extra mints it took to land them on a Ready,
	// non-full backend (a rising remint rate means shards are saturating).
	createsTotal  atomic.Int64
	createRemints atomic.Int64
}

// backendCounters is one backend's traffic ledger.
type backendCounters struct {
	requests atomic.Int64 // proxied requests (any outcome)
	errors   atomic.Int64 // transport failures after retries
	retries  atomic.Int64 // dial retries performed
	shed     atomic.Int64 // requests answered 503 by the GATEWAY for this backend
	held     atomic.Int64 // requests that waited for a NotReady backend
}

// NewMetrics builds an empty metrics surface.
func NewMetrics() *Metrics {
	return &Metrics{
		proxyDur: obs.NewFamily("qpgate_proxy_duration_seconds", "backend",
			"End-to-end proxied request latency by backend."),
		perBackend: make(map[string]*backendCounters),
	}
}

func (m *Metrics) backend(id string) *backendCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.perBackend[id]
	if c == nil {
		c = &backendCounters{}
		m.perBackend[id] = c
	}
	return c
}

// snapshotBackends returns the per-backend counters sorted by backend id.
func (m *Metrics) snapshotBackends() (ids []string, counters []*backendCounters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.perBackend {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		counters = append(counters, m.perBackend[id])
	}
	return ids, counters
}

// WriteProm renders the gateway metrics. fleet supplies the backend-state
// gauge (1 for the backend's current state family, 0 otherwise).
func (m *Metrics) WriteProm(w io.Writer, fleet *Fleet) {
	writeCounter := func(name, help string, val func(*backendCounters) int64) {
		ids, counters := m.snapshotBackends()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, id := range ids {
			fmt.Fprintf(w, "%s{backend=%q} %d\n", name, id, val(counters[i]))
		}
	}
	writeCounter("qpgate_requests_total", "Requests proxied to the backend (any outcome).",
		func(c *backendCounters) int64 { return c.requests.Load() })
	writeCounter("qpgate_proxy_errors_total", "Proxied requests that failed in transport after retries.",
		func(c *backendCounters) int64 { return c.errors.Load() })
	writeCounter("qpgate_proxy_retries_total", "Dial retries performed against the backend.",
		func(c *backendCounters) int64 { return c.retries.Load() })
	writeCounter("qpgate_shed_total", "Requests the gateway answered 503 for because the backend was down or not ready.",
		func(c *backendCounters) int64 { return c.shed.Load() })
	writeCounter("qpgate_held_total", "Requests that waited for a restarting (not-ready) backend before proxying.",
		func(c *backendCounters) int64 { return c.held.Load() })

	for _, s := range []struct {
		name, help string
		val        int64
	}{
		{"qpgate_creates_total", "Sessions placed by the gateway's id-minting create path.", m.createsTotal.Load()},
		{"qpgate_create_remints_total", "Extra id mints needed to land creates on a ready, non-full backend.", m.createRemints.Load()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.val)
	}

	if fleet != nil {
		const name = "qpgate_backend_state"
		fmt.Fprintf(w, "# HELP %s Probed backend state (1 = the backend is in this state).\n# TYPE %s gauge\n", name, name)
		for _, b := range fleet.Backends() {
			st := b.State()
			for _, s := range []State{StateDown, StateNotReady, StateReady} {
				v := 0
				if st == s {
					v = 1
				}
				fmt.Fprintf(w, "%s{backend=%q,state=%q} %d\n", name, b.ID, s.String(), v)
			}
		}
	}

	m.proxyDur.WriteProm(w)
}
