package gateway

import (
	"sync"
	"time"

	"questpro/internal/obs"
)

// The gateway's SLO layer (DESIGN.md §14): rolling-window availability and
// p99-latency burn rates computed from the counters and the proxy latency
// histogram the gateway already keeps. No extra goroutine and no extra
// per-request work — the window is a ring of cumulative snapshots rotated
// lazily whenever /metrics is scraped, and a window value is simply
// (current cumulative) − (oldest slot's cumulative).

// SLO defaults.
const (
	DefaultSLOWindow           = 5 * time.Minute
	DefaultAvailabilityTarget  = 0.999
	DefaultLatencyObjective    = 500 * time.Millisecond
	sloSlots                   = 15 // window resolution: window/15 per slot
	latencyObjectiveQuantile   = 0.99
	latencyAllowedOverFraction = 1 - latencyObjectiveQuantile
)

// sloSnap is one cumulative reading of the gateway's request ledger.
type sloSnap struct {
	total  float64  // proxied + shed requests
	bad    float64  // transport errors + shed
	counts []uint64 // merged proxy histogram, non-cumulative per bucket
}

type sloTracker struct {
	window    time.Duration
	target    float64 // availability objective, e.g. 0.999
	objective time.Duration
	slotDur   time.Duration
	now       func() time.Time // injectable for tests

	mu     sync.Mutex
	ring   [sloSlots]sloSnap
	inited bool
	head   int       // slot currently accumulating
	headAt time.Time // when the head slot started
}

func newSLOTracker(window time.Duration, target float64, objective time.Duration) *sloTracker {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	if target <= 0 || target >= 1 {
		target = DefaultAvailabilityTarget
	}
	if objective <= 0 {
		objective = DefaultLatencyObjective
	}
	return &sloTracker{
		window:    window,
		target:    target,
		objective: objective,
		slotDur:   window / sloSlots,
		now:       time.Now,
	}
}

// observe rotates the ring up to date and returns the window's deltas.
func (t *sloTracker) observe(cur sloSnap) (total, bad float64, counts []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if !t.inited {
		t.inited = true
		t.headAt = now
		for i := range t.ring {
			t.ring[i] = cur
		}
	}
	// Advance the head one slot per elapsed slotDur, stamping skipped slots
	// with the current cumulative reading (traffic in an unobserved gap is
	// attributed to the newest slot — the lazy-rotation tradeoff).
	steps := int(now.Sub(t.headAt) / t.slotDur)
	if steps > sloSlots {
		steps = sloSlots
	}
	for i := 0; i < steps; i++ {
		t.head = (t.head + 1) % sloSlots
		t.ring[t.head] = cur
	}
	if steps > 0 {
		t.headAt = t.headAt.Add(time.Duration(steps) * t.slotDur)
		if now.Sub(t.headAt) > t.window {
			t.headAt = now
		}
	}
	oldest := t.ring[(t.head+1)%sloSlots]
	total = cur.total - oldest.total
	bad = cur.bad - oldest.bad
	counts = make([]uint64, len(cur.counts))
	for i := range counts {
		var old uint64
		if i < len(oldest.counts) {
			old = oldest.counts[i]
		}
		if cur.counts[i] >= old {
			counts[i] = cur.counts[i] - old
		}
	}
	return total, bad, counts
}

// families renders the SLO gauges from the current cumulative reading.
// Window quantities rise and fall, so every family is a gauge (obs-lint
// enforces that none end in _total).
func (t *sloTracker) families(cur sloSnap) []*obs.MetricFamily {
	total, bad, counts := t.observe(cur)

	badRatio := 0.0
	if total > 0 {
		badRatio = bad / total
	}
	availBurn := badRatio / (1 - t.target)

	var histTotal uint64
	for _, c := range counts {
		histTotal += c
	}
	// Observations over the latency objective: everything above the largest
	// bucket bound that still fits under the objective.
	var underObjective uint64
	for i, c := range counts {
		if obs.BucketUpperSeconds(i) <= t.objective.Seconds() {
			underObjective += c
		}
	}
	overFrac := 0.0
	if histTotal > 0 {
		overFrac = float64(histTotal-underObjective) / float64(histTotal)
	}
	latencyBurn := overFrac / latencyAllowedOverFraction

	p99 := 0.0
	if histTotal > 0 {
		need := uint64(float64(histTotal) * latencyObjectiveQuantile)
		if need == 0 {
			need = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= need {
				p99 = obs.BucketUpperSeconds(i)
				break
			}
		}
	}

	gauge := func(name, help string, v float64) *obs.MetricFamily {
		return &obs.MetricFamily{
			Name: name, Type: "gauge", Help: help,
			Samples: []obs.Sample{{Name: name, Value: v}},
		}
	}
	return []*obs.MetricFamily{
		gauge("qpgate_slo_window_seconds", "Length of the rolling SLO window.", t.window.Seconds()),
		gauge("qpgate_slo_window_requests", "Requests (proxied + shed) observed inside the window.", total),
		gauge("qpgate_slo_window_bad_requests", "Failed or shed requests inside the window.", bad),
		gauge("qpgate_slo_availability_ratio", "1 - bad/total over the window (1 when idle).", 1-badRatio),
		gauge("qpgate_slo_availability_target", "Configured availability objective.", t.target),
		gauge("qpgate_slo_availability_burn_rate", "Error-budget burn rate: (bad/total)/(1-target); 1.0 burns the budget exactly at window scale.", availBurn),
		gauge("qpgate_slo_p99_seconds", "p99 proxied latency over the window (log2 bucket upper bound).", p99),
		gauge("qpgate_slo_latency_objective_seconds", "Latency objective the p99 burn rate is measured against.", t.objective.Seconds()),
		gauge("qpgate_slo_latency_burn_rate", "Latency-budget burn rate: fraction of requests over the objective / allowed fraction (1%).", latencyBurn),
	}
}
