package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"questpro/internal/api"
	"questpro/internal/ntriples"
	"questpro/internal/obs"
	"questpro/internal/paperfix"
)

// TestGatewayCrossTierTrace pins the trace-propagation contract end to
// end (runs under -race via make race): a dialogue driven through the
// gateway leaves a gateway.proxy span retained per request, the backend
// root spans link under them (parent_span_id == the gateway span's
// span_id, same request_id label), the assembled forest is served by
// GET .../trace through the gateway, and two consecutive fetches are
// byte-identical.
func TestGatewayCrossTierTrace(t *testing.T) {
	fixtures := []*backendFixture{newBackendFixture(t, 0), newBackendFixture(t, 0)}
	_, ts := newTestGateway(t, Config{}, fixtures...)
	cl := gatewayClient(ts.URL)
	ctx := context.Background()

	onto := ntriples.Format(paperfix.Ontology())
	id, err := cl.CreateSession(ctx, onto, nil)
	if err != nil {
		t.Fatalf("create via gateway: %v", err)
	}
	if err := cl.SetExamples(ctx, id, wireExamples()); err != nil {
		t.Fatalf("examples via gateway: %v", err)
	}
	if _, err := cl.Infer(ctx, id, "union", 0); err != nil {
		t.Fatalf("infer via gateway: %v", err)
	}

	code1, _, body1 := mustGet(t, ts.URL, "/v1/sessions/"+id+"/trace")
	if code1 != http.StatusOK {
		t.Fatalf("trace via gateway: %d %s", code1, body1)
	}
	var forest api.TraceResponse
	if err := json.Unmarshal(body1, &forest); err != nil {
		t.Fatalf("decoding assembled trace: %v", err)
	}

	// The forest contains both tiers: gateway.proxy spans first, then the
	// backend session.* roots.
	var gatewaySpans, backendRoots []*api.TraceNode
	for _, n := range forest.Traces {
		switch {
		case n.Kind == "gateway.proxy":
			gatewaySpans = append(gatewaySpans, n)
		case strings.HasPrefix(n.Kind, "session."):
			backendRoots = append(backendRoots, n)
		default:
			t.Fatalf("unexpected root kind %q in assembled forest", n.Kind)
		}
	}
	if len(gatewaySpans) == 0 || len(backendRoots) == 0 {
		t.Fatalf("assembled forest missing a tier: %d gateway spans, %d backend roots",
			len(gatewaySpans), len(backendRoots))
	}
	if forest.Traces[0].Kind != "gateway.proxy" {
		t.Fatalf("gateway spans must be prepended; forest starts with %q", forest.Traces[0].Kind)
	}

	gatewayByID := make(map[string]*api.TraceNode)
	for _, n := range gatewaySpans {
		if n.SpanID == "" {
			t.Fatal("gateway span without span_id")
		}
		if n.Outcome != "proxied" {
			t.Fatalf("gateway span outcome %q, want proxied", n.Outcome)
		}
		if n.Labels["backend"] == "" {
			t.Fatal("gateway span without backend label")
		}
		if _, ok := n.Counters["held_ms"]; !ok {
			t.Fatal("gateway span without held_ms counter")
		}
		gatewayByID[n.SpanID] = n
	}

	// Every backend root must link to a retained gateway span with the
	// SAME request id — the cross-tier join key the issue demands.
	for _, root := range backendRoots {
		parent := gatewayByID[root.ParentSpanID]
		if parent == nil {
			t.Fatalf("backend root %s (request_id=%s) has parent_span_id=%q matching no gateway span",
				root.Kind, root.Labels["request_id"], root.ParentSpanID)
		}
		if parent.Labels["request_id"] == "" || parent.Labels["request_id"] != root.Labels["request_id"] {
			t.Fatalf("request id mismatch across tiers: gateway %q vs backend %q",
				parent.Labels["request_id"], root.Labels["request_id"])
		}
		if parent.Labels["session_id"] != id || root.Labels["session_id"] != id {
			t.Fatal("span session_id labels diverge from the session")
		}
	}

	// Byte-stable: a second fetch returns the identical document (trace
	// reads record no spans on either tier).
	code2, _, body2 := mustGet(t, ts.URL, "/v1/sessions/"+id+"/trace")
	if code2 != http.StatusOK {
		t.Fatalf("second trace fetch: %d", code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("trace fetches diverge:\nfirst:  %s\nsecond: %s", body1, body2)
	}
}

// TestGatewayTraceRequestIDPropagation pins the header half of the
// contract: a client-supplied X-Request-Id survives the gateway hop and is
// echoed exactly once (the gateway's Set collapses the backend's echo).
func TestGatewayTraceRequestIDPropagation(t *testing.T) {
	f := newBackendFixture(t, 0)
	_, ts := newTestGateway(t, Config{}, f)
	cl := gatewayClient(ts.URL)
	ctx := context.Background()

	id, err := cl.CreateSession(ctx, `<a> <p> <b> .`, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A client-supplied X-Request-Id survives the gateway hop, is echoed
	// exactly once, and lands in the backend span's request_id label.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+id+"/stats", nil)
	req.Header.Set("X-Request-Id", "rid-cross-tier-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Values("X-Request-Id"); len(got) != 1 || got[0] != "rid-cross-tier-1" {
		t.Fatalf("X-Request-Id echo = %v, want exactly [rid-cross-tier-1]", got)
	}
}

// metricsBrokenBackend wraps a fixture so /metrics fails while every other
// route (including the readiness probe) works: the shard looks Ready but
// cannot be scraped — the partial-result path of /metrics/fleet.
func metricsBrokenBackend(t *testing.T, f *backendFixture) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, "scrape me not")
			return
		}
		f.ts.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayFleetMetrics pins the merge contract of GET /metrics/fleet:
// strict parseability of the whole document, fleet sums equal to the sum
// of per-backend series, monotone merged histogram buckets, and — with one
// unscrapeable backend — partial results with a 200 and a raised
// qpgate_fleet_scrape_errors_total, never a 5xx.
func TestGatewayFleetMetrics(t *testing.T) {
	fixtures := []*backendFixture{newBackendFixture(t, 0), newBackendFixture(t, 0)}
	_, ts := newTestGateway(t, Config{}, fixtures...)
	cl := gatewayClient(ts.URL)
	ctx := context.Background()

	// Put traffic on both shards: create until both have ≥1 session.
	seen := map[string]bool{}
	for i := 0; i < 32 && len(seen) < 2; i++ {
		id, err := cl.CreateSession(ctx, `<a> <p> <b> .`, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fixtures {
			code, _, _ := mustGet(t, f.ts.URL, "/v1/sessions/"+id+"/stats")
			if code == http.StatusOK {
				seen[f.ts.URL] = true
			}
		}
	}
	if len(seen) < 2 {
		t.Skip("32 creates landed on one shard; hash draw too unlucky to assert the merge")
	}

	code, _, body := mustGet(t, ts.URL, "/metrics/fleet")
	if code != http.StatusOK {
		t.Fatalf("/metrics/fleet: %d %s", code, body)
	}
	fams, err := obs.ParsePromText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics/fleet does not parse strictly: %v", err)
	}

	// Fleet sum == Σ per-backend for the questprod session counter.
	created := fams["questprod_sessions_created_total"]
	if created == nil {
		t.Fatal("merged output missing questprod_sessions_created_total")
	}
	var fleetSum, backendSum float64
	var backendSeries int
	for _, s := range created.Samples {
		if s.Labels["backend"] == "" {
			fleetSum = s.Value
		} else {
			backendSum += s.Value
			backendSeries++
		}
	}
	if backendSeries != 2 {
		t.Fatalf("want 2 per-backend series, got %d", backendSeries)
	}
	if fleetSum != backendSum || fleetSum < 2 {
		t.Fatalf("fleet sum %v != per-backend sum %v (or too small)", fleetSum, backendSum)
	}

	// Merged histogram: monotone cumulative buckets on the fleet series
	// (the strict parser already validated every label set; assert the
	// aggregate group explicitly anyway).
	hist := fams["questprod_http_request_duration_seconds"]
	if hist == nil {
		t.Fatal("merged output missing questprod_http_request_duration_seconds")
	}
	prevByGroup := map[string]float64{}
	for _, s := range hist.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") || s.Labels["backend"] != "" {
			continue
		}
		key := s.Labels["endpoint"]
		if s.Value < prevByGroup[key] {
			t.Fatalf("fleet histogram not monotone for endpoint %q at le=%s", key, s.Labels["le"])
		}
		prevByGroup[key] = s.Value
	}

	// The gateway's own families ride in the same document.
	if fams["qpgate_requests_total"] == nil || fams["qpgate_slo_availability_burn_rate"] == nil {
		t.Fatal("merged output missing gateway families")
	}

	// One unscrapeable backend → 200, partial results, scrape errors > 0.
	broken := metricsBrokenBackend(t, fixtures[1])
	urls := []string{fixtures[0].ts.URL, broken.URL}
	fleet, err := NewFleet(urls, FleetConfig{ProbeInterval: time.Hour, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	fleet.ProbeAll(context.Background())
	gw2 := New(fleet, Config{})
	ts2 := httptest.NewServer(gw2)
	t.Cleanup(ts2.Close)

	code, _, body = mustGet(t, ts2.URL, "/metrics/fleet")
	if code != http.StatusOK {
		t.Fatalf("partial fleet scrape must stay 200, got %d: %s", code, body)
	}
	fams, err = obs.ParsePromText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("partial merged output does not parse: %v", err)
	}
	if fams["questprod_sessions_created_total"] == nil {
		t.Fatal("partial output lost the live backend's families")
	}
	var scrapeErrs float64
	if mf := fams["qpgate_fleet_scrape_errors_total"]; mf != nil {
		for _, s := range mf.Samples {
			scrapeErrs += s.Value
		}
	}
	if scrapeErrs < 1 {
		t.Fatalf("qpgate_fleet_scrape_errors_total = %v, want >= 1", scrapeErrs)
	}
	// Only the live backend appears under the questprod families.
	for _, s := range fams["questprod_sessions_created_total"].Samples {
		if b := s.Labels["backend"]; b != "" && b != NormalizeBackendURL0(t, fixtures[0].ts.URL) {
			t.Fatalf("dead backend %s leaked into the merge", b)
		}
	}
}

// TestGatewayMetricsRoundTrip: the gateway's own /metrics — now emitted
// through obs.WriteFamilies — must satisfy the strict parser: HELP/TYPE on
// every family, well-formed histograms (satellite task).
func TestGatewayMetricsRoundTrip(t *testing.T) {
	f := newBackendFixture(t, 0)
	_, ts := newTestGateway(t, Config{}, f)
	cl := gatewayClient(ts.URL)
	if _, err := cl.CreateSession(context.Background(), `<a> <p> <b> .`, nil); err != nil {
		t.Fatal(err)
	}
	code, _, body := mustGet(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	fams, err := obs.ParsePromText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("gateway /metrics does not parse strictly: %v\n%s", err, body)
	}
	for _, name := range []string{
		"qpgate_requests_total", "qpgate_shed_total", "qpgate_backend_state",
		"qpgate_proxy_duration_seconds", "qpgate_fleet_scrape_errors_total",
		"qpgate_slo_window_seconds", "qpgate_slo_availability_burn_rate",
		"qpgate_slo_p99_seconds", "qpgate_slo_latency_burn_rate",
	} {
		if fams[name] == nil {
			t.Fatalf("gateway /metrics missing family %s", name)
		}
	}
	// Counters end _total; gauges do not (the obs-lint rule, pinned here
	// for the gateway's own families).
	for name, mf := range fams {
		switch mf.Type {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Fatalf("counter %s does not end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				t.Fatalf("gauge %s ends in _total", name)
			}
		}
	}
}

// TestSLOWindowMath drives the tracker with a fake clock and pins the burn
// rate arithmetic.
func TestSLOWindowMath(t *testing.T) {
	tr := newSLOTracker(150*time.Second, 0.999, 100*time.Millisecond) // 15 slots of 10s
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }

	counts := func(fast, slow uint64) []uint64 {
		c := make([]uint64, obs.NumBuckets())
		c[0] = fast                  // ~8µs, under any objective
		c[obs.NumBuckets()-2] = slow // ~69s, over any objective
		return c
	}

	// t0: 100 requests, 0 bad, all fast. Establishes the baseline.
	fams := tr.families(sloSnap{total: 100, bad: 0, counts: counts(100, 0)})
	get := func(fams []*obs.MetricFamily, name string) float64 {
		for _, mf := range fams {
			if mf.Name == name {
				v, _ := mf.Value()
				return v
			}
		}
		t.Fatalf("no family %s", name)
		return 0
	}
	if v := get(fams, "qpgate_slo_window_requests"); v != 0 {
		t.Fatalf("baseline window requests = %v, want 0 (window starts now)", v)
	}

	// +10s: 100 more requests, 2 bad, 10 slow.
	now = now.Add(10 * time.Second)
	fams = tr.families(sloSnap{total: 200, bad: 2, counts: counts(190, 10)})
	if v := get(fams, "qpgate_slo_window_requests"); v != 100 {
		t.Fatalf("window requests = %v, want 100", v)
	}
	if v := get(fams, "qpgate_slo_window_bad_requests"); v != 2 {
		t.Fatalf("window bad = %v, want 2", v)
	}
	// availability burn = (2/200... no: 2/100)/(1-0.999) = 0.02/0.001 = 20.
	if v := get(fams, "qpgate_slo_availability_burn_rate"); v < 19.9 || v > 20.1 {
		t.Fatalf("availability burn = %v, want 20", v)
	}
	// latency: 10/100 over objective, allowed 1% → burn 10.
	if v := get(fams, "qpgate_slo_latency_burn_rate"); v < 9.9 || v > 10.1 {
		t.Fatalf("latency burn = %v, want 10", v)
	}
	if v := get(fams, "qpgate_slo_availability_ratio"); v < 0.979 || v > 0.981 {
		t.Fatalf("availability ratio = %v, want 0.98", v)
	}
	// p99 over the window: 90% fast + 10% at ~34s → p99 lands in the slow
	// bucket's bound.
	if v := get(fams, "qpgate_slo_p99_seconds"); v < 30 {
		t.Fatalf("p99 = %v, want the ~34s bucket bound", v)
	}

	// +150s (the whole window passes with no new traffic): everything ages
	// out; burn rates return to 0 and availability to 1.
	now = now.Add(150 * time.Second)
	fams = tr.families(sloSnap{total: 200, bad: 2, counts: counts(190, 10)})
	if v := get(fams, "qpgate_slo_window_requests"); v != 0 {
		t.Fatalf("after idle window, requests = %v, want 0", v)
	}
	if v := get(fams, "qpgate_slo_availability_ratio"); v != 1 {
		t.Fatalf("after idle window, availability = %v, want 1", v)
	}
}
