package gateway

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"questpro/internal/client"
)

// State is a backend's last probed condition.
type State int32

const (
	// StateDown: the probe could not reach the process at all (dial or
	// transport error). Requests owned by a Down backend are shed
	// immediately — there is nothing to wait for until a probe succeeds.
	StateDown State = iota
	// StateNotReady: the process answered but /readyz said 503 — it is up
	// and restoring its durable sessions. Requests are held briefly (the
	// restore is usually sub-second) and shed only if it overstays.
	StateNotReady
	// StateReady: /readyz answered 200; the backend serves traffic.
	StateReady
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateNotReady:
		return "not_ready"
	default:
		return "down"
	}
}

// Backend is one questprod process in the fleet: its normalized base URL
// (which is also its ring identity), its probed state, and a broadcast
// channel readers can block on until the state turns Ready.
type Backend struct {
	// ID is the normalized base URL, e.g. "http://127.0.0.1:8370". It is
	// the backend's ring identity: every gateway given the same -backends
	// list derives the same ring, which is what makes affinity survive
	// gateway restarts.
	ID string

	state atomic.Int32

	mu      sync.Mutex
	readyCh chan struct{} // closed while state == StateReady
}

func newBackend(id string) *Backend {
	b := &Backend{ID: id, readyCh: make(chan struct{})}
	b.state.Store(int32(StateDown))
	return b
}

// State returns the backend's last probed state.
func (b *Backend) State() State { return State(b.state.Load()) }

// setState records a probe result and wakes/parks waiters on the Ready
// transition. Returns the previous state so the caller can log changes.
func (b *Backend) setState(s State) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := State(b.state.Swap(int32(s)))
	if s == StateReady && prev != StateReady {
		close(b.readyCh) // release everyone holding for this backend
	}
	if s != StateReady && prev == StateReady {
		b.readyCh = make(chan struct{}) // future waiters park again
	}
	return prev
}

// readyChan returns the channel closed while the backend is Ready, plus
// whether it already is — callers select on the channel only when not.
func (b *Backend) readyChan() (<-chan struct{}, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readyCh, State(b.state.Load()) == StateReady
}

// Fleet is the gateway's view of the questprod backends: the consistent-
// hash ring over their identities plus one prober goroutine per backend
// keeping each State current against GET /readyz.
type Fleet struct {
	ring     *Ring
	backends []*Backend
	byID     map[string]*Backend

	httpc    *http.Client
	interval time.Duration
	logger   *slog.Logger

	stop chan struct{}
	wg   sync.WaitGroup
}

// FleetConfig configures NewFleet. Zero values select the defaults.
type FleetConfig struct {
	// ProbeInterval is the pause between /readyz probes of one backend
	// (default 250ms — a restarting shard flips to Ready within a probe
	// period of its restore finishing, which bounds how long held requests
	// wait beyond the restore itself).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// HTTPClient overrides the probe client (tests). The default rides the
	// package client's pooled transport.
	HTTPClient *http.Client
	Logger     *slog.Logger
}

// NewFleet builds the fleet over the backend URLs (scheme://host:port,
// scheme defaulting to http). The initial state of every backend is Down
// until a probe says otherwise — call ProbeAll for a synchronous first
// pass, Start for the background probers.
func NewFleet(urls []string, cfg FleetConfig) (*Fleet, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Transport: client.NewTransport(4), Timeout: cfg.ProbeTimeout}
	}

	ids := make([]string, 0, len(urls))
	byID := make(map[string]*Backend, len(urls))
	backends := make([]*Backend, 0, len(urls))
	for _, raw := range urls {
		id, err := NormalizeBackendURL(raw)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		b := newBackend(id)
		backends = append(backends, b)
		byID[id] = b
	}
	ring, err := NewRing(ids)
	if err != nil {
		return nil, err
	}
	return &Fleet{
		ring:     ring,
		backends: backends,
		byID:     byID,
		httpc:    httpc,
		interval: cfg.ProbeInterval,
		logger:   cfg.Logger,
		stop:     make(chan struct{}),
	}, nil
}

// NormalizeBackendURL canonicalizes one -backends entry into a ring
// identity: scheme://host[:port], lower-cased scheme/host, no path. Two
// gateways configured with cosmetically different spellings of the same
// backend must still agree on the ring.
func NormalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("gateway: empty backend URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("gateway: backend URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("gateway: backend URL %q: unsupported scheme %q", raw, u.Scheme)
	}
	if u.Host == "" || (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("gateway: backend URL %q must be scheme://host:port with no path", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host), nil
}

// Ring exposes the fleet's consistent-hash ring (routing tests).
func (f *Fleet) Ring() *Ring { return f.ring }

// Backends returns the fleet members in configuration order.
func (f *Fleet) Backends() []*Backend { return append([]*Backend(nil), f.backends...) }

// Owner returns the backend owning the session id.
func (f *Fleet) Owner(sessionID string) *Backend {
	return f.backends[f.ring.OwnerIndex(sessionID)]
}

// ProbeAll probes every backend once, synchronously (gateway startup: seed
// the states before serving rather than shedding the first interval).
func (f *Fleet) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range f.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			f.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// Start launches one prober goroutine per backend. Close stops them.
func (f *Fleet) Start() {
	for _, b := range f.backends {
		f.wg.Add(1)
		go func(b *Backend) {
			defer f.wg.Done()
			t := time.NewTicker(f.interval)
			defer t.Stop()
			for {
				select {
				case <-f.stop:
					return
				case <-t.C:
					f.probe(context.Background(), b)
				}
			}
		}(b)
	}
}

// Close stops the probers and releases the probe client's connections.
func (f *Fleet) Close() {
	close(f.stop)
	f.wg.Wait()
	f.httpc.CloseIdleConnections()
}

// probe asks one backend's /readyz and records the resulting state:
// 200 → Ready, any other response → NotReady (the process is up but
// restoring, or fronted by something unexpected), transport error → Down.
func (f *Fleet) probe(ctx context.Context, b *Backend) {
	ctx, cancel := context.WithTimeout(ctx, f.httpc.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.ID+"/readyz", nil)
	if err != nil {
		return
	}
	next := StateDown
	if resp, err := f.httpc.Do(req); err == nil {
		// Drain so the keep-alive connection returns to the pool.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			next = StateReady
		} else {
			next = StateNotReady
		}
	}
	if prev := b.setState(next); prev != next {
		f.logger.Info("backend state", "backend", b.ID, "from", prev.String(), "to", next.String())
	}
}

// WaitReady blocks until the backend is Ready or the context expires —
// the hold-until-ready path for requests owned by a restarting shard.
// Waiters ride the prober's state transitions; they do not probe
// themselves, so a thousand held requests cost one probe stream.
func (f *Fleet) WaitReady(ctx context.Context, b *Backend) error {
	ch, ready := b.readyChan()
	if ready {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
