package provenance_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
	"questpro/internal/query"
)

func TestExplanationConstruction(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	ex, err := provenance.NewByValue(g, "Alice")
	if err != nil {
		t.Fatal(err)
	}
	if ex.DistinguishedValue() != "Alice" {
		t.Fatalf("distinguished = %q", ex.DistinguishedValue())
	}
	if !strings.Contains(ex.String(), "dis=Alice") {
		t.Fatalf("String = %q", ex.String())
	}
	if _, err := provenance.NewByValue(g, "Bob"); err == nil {
		t.Fatal("missing distinguished value accepted")
	}
	if _, err := provenance.New(g, graph.NodeID(99)); err == nil {
		t.Fatal("invalid distinguished id accepted")
	}
	if err := (provenance.Explanation{}).Validate(); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestExampleSetValidate(t *testing.T) {
	if err := (provenance.ExampleSet{}).Validate(); err == nil {
		t.Fatal("empty example-set accepted")
	}
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	if err := exs.Validate(); err != nil {
		t.Fatal(err)
	}
	vals := exs.DistinguishedValues()
	want := []string{"Alice", "Dave", "Felix", "Harry"}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("distinguished values = %v", vals)
		}
	}
}

func TestIsomorphicSubgraphs(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	if !provenance.Isomorphic(exs[0].Graph, exs[0].Graph.Clone()) {
		t.Fatal("clone not isomorphic")
	}
	if provenance.Isomorphic(exs[0].Graph, exs[1].Graph) {
		t.Fatal("E1 and E2 reported isomorphic")
	}
}

// Example 2.7: Q1 is consistent with the whole example-set, and so is the
// trivial Q2.
func TestConsistencyRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	for name, q := range map[string]*query.Simple{"Q1": paperfix.Q1(), "Q2": paperfix.Q2()} {
		for i, ex := range exs {
			ok, err := provenance.ConsistentSimple(bg, q, ex)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s inconsistent with E%d", name, i+1)
			}
		}
	}
}

// Q3 covers E1/E3 only; Q4 covers E2/E4 only; their union covers everything.
func TestConsistencyUnionBranches(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	q3, q4 := paperfix.Q3(), paperfix.Q4()

	wantQ3 := []bool{true, false, true, false}
	wantQ4 := []bool{false, true, false, true}
	for i, ex := range exs {
		ok, err := provenance.ConsistentSimple(bg, q3, ex)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantQ3[i] {
			t.Errorf("Q3 vs E%d = %v, want %v", i+1, ok, wantQ3[i])
		}
		ok, err = provenance.ConsistentSimple(bg, q4, ex)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantQ4[i] {
			t.Errorf("Q4 vs E%d = %v, want %v", i+1, ok, wantQ4[i])
		}
	}
	ok, err := provenance.Consistent(bg, query.NewUnion(q3, q4), exs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Union(Q3, Q4) inconsistent with the example-set")
	}
	ok, err = provenance.Consistent(bg, query.NewUnion(q3), exs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Union(Q3) alone should be inconsistent")
	}
}

// Onto-ness matters: a sub-pattern of an explanation matches it but not onto.
func TestOntoRequirement(t *testing.T) {
	o := paperfix.Ontology()
	e1 := paperfix.Explanations(o)[0]
	// ?p wb ?a (projected ?a): matches E1 but never covers all 6 edges.
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "Paper")
	a := q.MustEnsureNode(query.Var("a"), "Author")
	q.MustAddEdge(p, a, "wb")
	q.SetProjected(a)
	ok, err := provenance.ConsistentSimple(bg, q, e1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-onto match accepted as consistent")
	}
}

// The projected node must land on the distinguished node.
func TestProjectionRequirement(t *testing.T) {
	o := paperfix.Ontology()
	e2 := paperfix.Explanations(o)[1] // dis = Dave
	// Q4 with the projected node moved to the paper variable.
	q := paperfix.Q4()
	pB, _ := q.NodeByTerm(query.Var("pB"))
	if err := q.SetProjected(pB.ID); err != nil {
		t.Fatal(err)
	}
	ok, err := provenance.ConsistentSimple(bg, q, e2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("projection onto paper accepted for author example")
	}
}

func TestGroundProjectedConsistency(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	// The explanation-as-query is consistent with its own explanation...
	q, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := provenance.ConsistentSimple(bg, q, exs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("explanation-as-query inconsistent with itself")
	}
	// ... and inconsistent with any other (different distinguished value).
	ok, err = provenance.ConsistentSimple(bg, q, exs[1])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ground query consistent with foreign explanation")
	}
}

func TestDiseqAwareConsistency(t *testing.T) {
	o := paperfix.Ontology()
	e1 := paperfix.Explanations(o)[0]
	q := paperfix.Q1()
	a1, _ := q.NodeByTerm(query.Var("a1"))
	a2, _ := q.NodeByTerm(query.Var("a2"))
	// a1 != a2 holds in E1 (Alice vs Bob): still consistent.
	if err := q.AddDiseqNodes(a1.ID, a2.ID); err != nil {
		t.Fatal(err)
	}
	ok, err := provenance.ConsistentSimple(bg, q, e1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid diseq broke consistency")
	}
	// a1 != Alice contradicts the distinguished node: inconsistent.
	q2 := paperfix.Q1()
	a1b, _ := q2.NodeByTerm(query.Var("a1"))
	if err := q2.AddDiseqValue(a1b.ID, "Alice"); err != nil {
		t.Fatal(err)
	}
	ok, err = provenance.ConsistentSimple(bg, q2, e1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("contradictory diseq kept consistency")
	}
}

func TestWitnessAssignments(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	q1 := paperfix.Q1()
	vals, missing, err := provenance.WitnessAssignments(bg, q1, exs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing witnesses for %v", missing)
	}
	a1, _ := q1.NodeByTerm(query.Var("a1"))
	// Example 5.1: L(?a1) = {Alice, Dave, Felix, Harry}.
	want := []string{"Alice", "Dave", "Felix", "Harry"}
	for i := range exs {
		if got := vals[i][a1.ID]; got != want[i] {
			t.Errorf("witness a1 in E%d = %q, want %q", i+1, got, want[i])
		}
	}
	// Q3 has no witness for E2/E4.
	_, missing, err = provenance.WitnessAssignments(bg, paperfix.Q3(), exs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 {
		t.Fatalf("Q3 missing = %v, want two entries", missing)
	}
}

// Property: a ground query built from a random explanation is always
// consistent with it, and stays consistent after generalizing the
// distinguished node to a variable.
func TestConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 14, Edges: 30, Labels: []string{"p", "q"},
		})
		sub, start := graph.RandomConnectedSubgraph(rng, o, 4)
		if sub == nil {
			return true
		}
		ex, err := provenance.New(sub, start)
		if err != nil {
			return false
		}
		q, err := query.FromExplanation(sub, start)
		if err != nil {
			return false
		}
		ok, err := provenance.ConsistentSimple(bg, q, ex)
		if err != nil || !ok {
			return false
		}
		// Generalize: replace the distinguished constant with a variable.
		gen := generalizeProjected(q)
		ok, err = provenance.ConsistentSimple(bg, gen, ex)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// generalizeProjected rebuilds q with the projected constant replaced by a
// fresh variable.
func generalizeProjected(q *query.Simple) *query.Simple {
	out := query.NewSimple()
	proj := q.Projected()
	mapTerm := func(n query.Node) query.Term {
		if n.ID == proj {
			return query.Var("proj")
		}
		return n.Term
	}
	ids := map[query.NodeID]query.NodeID{}
	for _, n := range q.Nodes() {
		id, err := out.EnsureNode(mapTerm(n), n.Type)
		if err != nil {
			panic(err)
		}
		ids[n.ID] = id
	}
	for _, e := range q.Edges() {
		if !out.HasEdgeTriple(ids[e.From], ids[e.To], e.Label) {
			out.MustAddEdge(ids[e.From], ids[e.To], e.Label)
		}
	}
	if err := out.SetProjected(ids[proj]); err != nil {
		panic(err)
	}
	return out
}

func TestOntoMatchRequiresProjected(t *testing.T) {
	o := paperfix.Ontology()
	e1 := paperfix.Explanations(o)[0]
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(x, y, "wb")
	// No projected node set.
	if _, _, err := provenance.OntoMatch(bg, q, e1); err == nil {
		t.Fatal("query without projected node accepted")
	}
}

func TestConsistentGroundProjectedMismatchShortCircuits(t *testing.T) {
	o := paperfix.Ontology()
	e1 := paperfix.Explanations(o)[0] // dis = Alice
	q := query.NewSimple()
	dave := q.MustEnsureNode(query.Const("Dave"), "")
	p := q.MustEnsureNode(query.Var("p"), "")
	q.MustAddEdge(p, dave, "wb")
	q.SetProjected(dave)
	ok, err := provenance.ConsistentSimple(bg, q, e1)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v, want false/nil", ok, err)
	}
}
