package provenance_test

import (
	"strings"
	"testing"

	"questpro/internal/paperfix"
	"questpro/internal/provenance"
)

func TestExampleSetRoundTrip(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	doc, err := provenance.FormatExampleSet(exs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := provenance.ParseExampleSet(doc)
	if err != nil {
		t.Fatalf("parsing %q: %v", doc, err)
	}
	if len(back) != len(exs) {
		t.Fatalf("round trip: %d explanations, want %d", len(back), len(exs))
	}
	for i := range exs {
		if back[i].DistinguishedValue() != exs[i].DistinguishedValue() {
			t.Fatalf("explanation %d distinguished %q, want %q",
				i, back[i].DistinguishedValue(), exs[i].DistinguishedValue())
		}
		if !back[i].Graph.EqualSets(exs[i].Graph) {
			t.Fatalf("explanation %d graph changed", i)
		}
		// Types survive through the embedded ntriples format.
		for _, n := range exs[i].Graph.Nodes() {
			bn, ok := back[i].Graph.NodeByValue(n.Value)
			if !ok || bn.Type != n.Type {
				t.Fatalf("explanation %d: node %q type %q -> %q", i, n.Value, n.Type, bn.Type)
			}
		}
	}
}

func TestExampleSetQuotedDistinguished(t *testing.T) {
	doc := "@explanation \"New York\"\n\"New York\" \"located in\" USA .\n@end\n"
	exs, err := provenance.ParseExampleSet(doc)
	if err != nil {
		t.Fatal(err)
	}
	if exs[0].DistinguishedValue() != "New York" {
		t.Fatalf("distinguished = %q", exs[0].DistinguishedValue())
	}
}

func TestExampleSetParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"statement outside": "a b c .\n",
		"nested":            "@explanation x\n@explanation y\n@end\n",
		"end without start": "@end\n",
		"unterminated":      "@explanation x\na b x .\n",
		"missing dis":       "@explanation\na b c .\n@end\n",
		"dis not in graph":  "@explanation ghost\na b c .\n@end\n",
		"bad quoted dis":    "@explanation \"open\na b c .\n@end\n",
		"bad inner triple":  "@explanation x\nonly two\n@end\n",
		"comments only":     "# nothing\n",
	}
	for name, doc := range cases {
		if _, err := provenance.ParseExampleSet(doc); err == nil {
			t.Errorf("%s: parse succeeded for %q", name, doc)
		}
	}
}

func TestExampleSetCommentsBetweenSections(t *testing.T) {
	doc := strings.Join([]string{
		"# saved session",
		"",
		"@explanation Alice",
		"paper1 wb Alice .",
		"@end",
		"# second",
		"@explanation Bob",
		"paper2 wb Bob .",
		"@end",
	}, "\n") + "\n"
	exs, err := provenance.ParseExampleSet(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 2 {
		t.Fatalf("parsed %d explanations", len(exs))
	}
}
