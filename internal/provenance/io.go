package provenance

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"questpro/internal/ntriples"
)

// Example-set serialization: a line-oriented container around the ntriples
// format, so users can save the explanations they formulated and reload
// them in later sessions.
//
//	@explanation <distinguished-value>
//	<ntriples statements...>
//	@end
//
// The distinguished value token is bare or Go-quoted, like ntriples tokens.

// WriteExampleSet serializes the example-set.
func WriteExampleSet(w io.Writer, ex ExampleSet) error {
	if err := ex.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, e := range ex {
		if _, err := fmt.Fprintf(bw, "@explanation %s\n", quoteToken(e.DistinguishedValue())); err != nil {
			return err
		}
		if err := ntriples.Write(bw, e.Graph); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, "@end"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatExampleSet renders the example-set as a string document.
func FormatExampleSet(ex ExampleSet) (string, error) {
	var sb strings.Builder
	if err := WriteExampleSet(&sb, ex); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ReadExampleSet parses a document written by WriteExampleSet.
func ReadExampleSet(r io.Reader) (ExampleSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		out     ExampleSet
		current *strings.Builder
		dis     string
		lineNo  int
	)
	finish := func() error {
		g, err := ntriples.ParseString(current.String())
		if err != nil {
			return err
		}
		ex, err := NewByValue(g, dis)
		if err != nil {
			return err
		}
		out = append(out, ex)
		current = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "@explanation"):
			if current != nil {
				return nil, fmt.Errorf("provenance: line %d: nested @explanation", lineNo)
			}
			token := strings.TrimSpace(strings.TrimPrefix(line, "@explanation"))
			var err error
			dis, err = unquoteToken(token)
			if err != nil {
				return nil, fmt.Errorf("provenance: line %d: %w", lineNo, err)
			}
			current = &strings.Builder{}
		case line == "@end":
			if current == nil {
				return nil, fmt.Errorf("provenance: line %d: @end without @explanation", lineNo)
			}
			if err := finish(); err != nil {
				return nil, fmt.Errorf("provenance: line %d: %w", lineNo, err)
			}
		case current != nil:
			current.WriteString(sc.Text())
			current.WriteString("\n")
		case line == "" || strings.HasPrefix(line, "#"):
			// Blank lines and comments between sections.
		default:
			return nil, fmt.Errorf("provenance: line %d: statement outside @explanation", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if current != nil {
		return nil, fmt.Errorf("provenance: unterminated @explanation")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("provenance: empty example-set document")
	}
	return out, nil
}

// ParseExampleSet is ReadExampleSet over an in-memory document.
func ParseExampleSet(s string) (ExampleSet, error) {
	return ReadExampleSet(strings.NewReader(s))
}

func quoteToken(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"\\") {
		return strconv.Quote(s)
	}
	return s
}

func unquoteToken(s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		return strconv.Unquote(s)
	}
	if s == "" {
		return "", fmt.Errorf("missing distinguished value")
	}
	return s, nil
}
