package provenance

import (
	"fmt"
	"strings"

	"questpro/internal/graph"
)

// This file implements partial explanations — the input mode of Gilad &
// Moskovitch, "Towards Inferring Queries from Simple and Partial Provenance
// Examples" (PAPERS.md). A partial explanation is a fragment of a real
// provenance subgraph: the user remembers some of the entities and some of
// the connections, and marks what they forgot in three ways:
//
//   - a forgotten predicate: an edge carrying the Wildcard label "*";
//   - a forgotten entity: a node whose value starts with the placeholder
//     prefix "*" ("*1", "*x", ...) — it stands for some ontology node,
//     constrained only by its incident fragment edges;
//   - forgotten edges: the MissingEdges hint ("I left out about n edges"),
//     or simply nodes the fragment leaves disconnected.
//
// The completion engine (internal/core) resolves all three against the
// ontology; this file only represents and validates fragments.

// Wildcard is the edge label standing for a forgotten predicate.
const Wildcard = "*"

// PlaceholderPrefix marks node values that stand for forgotten entities.
const PlaceholderPrefix = "*"

// IsWildcardLabel reports whether an edge label is the forgotten-predicate
// wildcard.
func IsWildcardLabel(label string) bool { return label == Wildcard }

// IsPlaceholder reports whether a node value is a forgotten-entity
// placeholder rather than an ontology value.
func IsPlaceholder(value string) bool { return strings.HasPrefix(value, PlaceholderPrefix) }

// PartialExplanation is a fragment of an explanation: a subgraph that may
// use wildcard labels and placeholder values, plus the distinguished node
// (which must be a concrete ontology value — it is the output row the user
// is explaining) and the missing-edge hint.
type PartialExplanation struct {
	Graph         *graph.Graph
	Distinguished graph.NodeID

	// MissingEdges is the user's estimate of how many edges the fragment
	// is missing (0 = no estimate). The completion engine treats it as a
	// hint, never a hard requirement.
	MissingEdges int
}

// NewPartial builds a partial explanation, validating the fragment.
func NewPartial(g *graph.Graph, distinguished graph.NodeID, missingEdges int) (PartialExplanation, error) {
	p := PartialExplanation{Graph: g, Distinguished: distinguished, MissingEdges: missingEdges}
	if err := p.Validate(); err != nil {
		return PartialExplanation{}, err
	}
	return p, nil
}

// NewPartialByValue is NewPartial with the distinguished node looked up by
// value.
func NewPartialByValue(g *graph.Graph, value string, missingEdges int) (PartialExplanation, error) {
	n, ok := g.NodeByValue(value)
	if !ok {
		return PartialExplanation{}, fmt.Errorf("provenance: distinguished value %q not in fragment", value)
	}
	return NewPartial(g, n.ID, missingEdges)
}

// FromExplanation wraps a complete explanation as a (trivially complete)
// partial one.
func FromExplanation(e Explanation) PartialExplanation {
	return PartialExplanation{Graph: e.Graph, Distinguished: e.Distinguished}
}

// Validate checks the fragment's internal consistency. Beyond the checks
// of Explanation.Validate it rejects the under-constrained cases the
// completion engine cannot anchor: a placeholder distinguished node, and a
// wildcard-labeled edge both of whose endpoints are placeholders.
func (p PartialExplanation) Validate() error {
	if p.Graph == nil {
		return fmt.Errorf("provenance: partial explanation without graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return err
	}
	if p.Distinguished < 0 || int(p.Distinguished) >= p.Graph.NumNodes() {
		return fmt.Errorf("provenance: invalid distinguished node %d", p.Distinguished)
	}
	if p.MissingEdges < 0 {
		return fmt.Errorf("provenance: negative missing-edge hint %d", p.MissingEdges)
	}
	if IsPlaceholder(p.Graph.Node(p.Distinguished).Value) {
		return fmt.Errorf("provenance: distinguished node %q is a placeholder; the output value must be concrete",
			p.Graph.Node(p.Distinguished).Value)
	}
	for i := 0; i < p.Graph.NumEdges(); i++ {
		e := p.Graph.Edge(graph.EdgeID(i))
		if IsWildcardLabel(e.Label) &&
			IsPlaceholder(p.Graph.Node(e.From).Value) && IsPlaceholder(p.Graph.Node(e.To).Value) {
			return fmt.Errorf("provenance: edge %s -*-> %s connects two placeholders with a wildcard label; "+
				"at least one endpoint or the predicate must be concrete",
				p.Graph.Node(e.From).Value, p.Graph.Node(e.To).Value)
		}
	}
	return nil
}

// DistinguishedValue returns the value of the distinguished node.
func (p PartialExplanation) DistinguishedValue() string {
	return p.Graph.Node(p.Distinguished).Value
}

// WildcardEdges returns the ids of edges carrying the wildcard label, in
// ascending order.
func (p PartialExplanation) WildcardEdges() []graph.EdgeID {
	var out []graph.EdgeID
	for i := 0; i < p.Graph.NumEdges(); i++ {
		if IsWildcardLabel(p.Graph.Edge(graph.EdgeID(i)).Label) {
			out = append(out, graph.EdgeID(i))
		}
	}
	return out
}

// PlaceholderNodes returns the ids of placeholder nodes, in ascending
// order.
func (p PartialExplanation) PlaceholderNodes() []graph.NodeID {
	var out []graph.NodeID
	for i := 0; i < p.Graph.NumNodes(); i++ {
		if IsPlaceholder(p.Graph.Node(graph.NodeID(i)).Value) {
			out = append(out, graph.NodeID(i))
		}
	}
	return out
}

// IsolatedNodes returns the ids of degree-zero nodes — remembered entities
// the fragment leaves unconnected — excluding the trivial case of a
// single-node fragment, where the lone distinguished node is a legitimate
// complete explanation.
func (p PartialExplanation) IsolatedNodes() []graph.NodeID {
	if p.Graph.NumNodes() <= 1 {
		return nil
	}
	var out []graph.NodeID
	for i := 0; i < p.Graph.NumNodes(); i++ {
		if p.Graph.Degree(graph.NodeID(i)) == 0 {
			out = append(out, graph.NodeID(i))
		}
	}
	return out
}

// IsComplete reports whether the fragment is already a complete
// explanation: no missing-edge hint, no wildcard labels, no placeholders,
// no stranded nodes. Complete fragments pass through the completion engine
// untouched (the identity completion), which is what makes the partial
// pipeline a strict no-op on full provenance.
func (p PartialExplanation) IsComplete() bool {
	return p.MissingEdges == 0 &&
		len(p.WildcardEdges()) == 0 &&
		len(p.PlaceholderNodes()) == 0 &&
		len(p.IsolatedNodes()) == 0
}

// Explanation converts a complete fragment into an Explanation; it fails
// if the fragment still has holes.
func (p PartialExplanation) Explanation() (Explanation, error) {
	if !p.IsComplete() {
		return Explanation{}, fmt.Errorf("provenance: fragment %s is not complete", p.DistinguishedValue())
	}
	return New(p.Graph, p.Distinguished)
}

// String renders the fragment with its holes summarized.
func (p PartialExplanation) String() string {
	return fmt.Sprintf("partial[dis=%s missing=%d wildcards=%d placeholders=%d] %s",
		p.DistinguishedValue(), p.MissingEdges, len(p.WildcardEdges()), len(p.PlaceholderNodes()), p.Graph)
}

// PartialExampleSet is a set of fragments, one per output example.
type PartialExampleSet []PartialExplanation

// Validate checks every fragment.
func (ps PartialExampleSet) Validate() error {
	if len(ps) == 0 {
		return fmt.Errorf("provenance: empty partial example-set")
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("fragment %d: %w", i, err)
		}
	}
	return nil
}

// AnyIncomplete reports whether any fragment still has holes.
func (ps PartialExampleSet) AnyIncomplete() bool {
	for _, p := range ps {
		if !p.IsComplete() {
			return true
		}
	}
	return false
}
