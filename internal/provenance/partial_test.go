package provenance_test

import (
	"strings"
	"testing"

	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
)

func TestPartialConstructionAndHoles(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("paper1", "*", "Alice") // forgotten predicate
	g.MustAddTriple("paper1", "pub", "*1")  // forgotten entity
	if _, err := g.AddNode("conf1", ""); err != nil {
		t.Fatal(err)
	} // stranded node
	p, err := provenance.NewPartialByValue(g, "Alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.DistinguishedValue() != "Alice" {
		t.Fatalf("distinguished = %q", p.DistinguishedValue())
	}
	if got := p.WildcardEdges(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("WildcardEdges = %v", got)
	}
	if got := p.PlaceholderNodes(); len(got) != 1 || g.Node(got[0]).Value != "*1" {
		t.Fatalf("PlaceholderNodes = %v", got)
	}
	if got := p.IsolatedNodes(); len(got) != 1 || g.Node(got[0]).Value != "conf1" {
		t.Fatalf("IsolatedNodes = %v", got)
	}
	if p.IsComplete() {
		t.Fatal("fragment with three kinds of holes reported complete")
	}
	if _, err := p.Explanation(); err == nil {
		t.Fatal("incomplete fragment converted to Explanation")
	}
	if s := p.String(); !strings.Contains(s, "missing=2") || !strings.Contains(s, "wildcards=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestPartialValidateRejections(t *testing.T) {
	// Placeholder distinguished node: the output value must be concrete.
	g := graph.New()
	g.MustAddTriple("*1", "wb", "Alice")
	if _, err := provenance.NewPartialByValue(g, "*1", 0); err == nil {
		t.Fatal("placeholder distinguished node accepted")
	}
	// Wildcard edge between two placeholders: nothing anchors it.
	g2 := graph.New()
	g2.MustAddTriple("*1", "*", "*2")
	g2.MustAddTriple("paper1", "wb", "*1")
	if _, err := provenance.NewPartialByValue(g2, "paper1", 0); err == nil {
		t.Fatal("wildcard edge between two placeholders accepted")
	}
	// Negative missing-edge hint.
	g3 := graph.New()
	g3.MustAddTriple("paper1", "wb", "Alice")
	if _, err := provenance.NewPartialByValue(g3, "Alice", -1); err == nil {
		t.Fatal("negative missing-edge hint accepted")
	}
	// Distinguished value absent from the fragment.
	if _, err := provenance.NewPartialByValue(g3, "Bob", 0); err == nil {
		t.Fatal("absent distinguished value accepted")
	}
	if err := (provenance.PartialExplanation{}).Validate(); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// A complete explanation wrapped as a fragment is trivially complete and
// round-trips back to the same explanation — the invariant behind the
// full-provenance no-op path.
func TestPartialFromExplanationRoundTrip(t *testing.T) {
	o := paperfix.Ontology()
	for i, ex := range paperfix.Explanations(o) {
		p := provenance.FromExplanation(ex)
		if err := p.Validate(); err != nil {
			t.Fatalf("E%d: %v", i+1, err)
		}
		if !p.IsComplete() {
			t.Fatalf("E%d: complete explanation reported incomplete", i+1)
		}
		back, err := p.Explanation()
		if err != nil {
			t.Fatalf("E%d: %v", i+1, err)
		}
		if back.Distinguished != ex.Distinguished || back.Graph != ex.Graph {
			t.Fatalf("E%d: round trip changed the explanation", i+1)
		}
	}
}

func TestPartialSingleNodeFragmentNotIsolated(t *testing.T) {
	g := graph.New()
	if _, err := g.AddNode("Alice", ""); err != nil {
		t.Fatal(err)
	}
	p, err := provenance.NewPartialByValue(g, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.IsolatedNodes(); got != nil {
		t.Fatalf("lone distinguished node reported isolated: %v", got)
	}
	if !p.IsComplete() {
		t.Fatal("single-node fragment reported incomplete")
	}
}

func TestPartialExampleSetValidate(t *testing.T) {
	if err := (provenance.PartialExampleSet{}).Validate(); err == nil {
		t.Fatal("empty partial example-set accepted")
	}
	g := graph.New()
	g.MustAddTriple("paper1", "*", "Alice")
	p, err := provenance.NewPartialByValue(g, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	set := provenance.PartialExampleSet{p}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if !set.AnyIncomplete() {
		t.Fatal("set with a wildcard edge reported complete")
	}
	o := paperfix.Ontology()
	var full provenance.PartialExampleSet
	for _, ex := range paperfix.Explanations(o) {
		full = append(full, provenance.FromExplanation(ex))
	}
	if full.AnyIncomplete() {
		t.Fatal("set of complete fragments reported incomplete")
	}
	bad := provenance.PartialExampleSet{p, {}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "fragment 1") {
		t.Fatalf("invalid fragment not located: %v", err)
	}
}
