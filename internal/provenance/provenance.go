// Package provenance implements the paper's provenance model (Section II-B):
// explanations — ontology subgraphs with a distinguished node — example-sets,
// and the consistency relation between queries and example-sets (Definition
// 2.6). Consistency of a simple query with an explanation amounts to an
// *onto* homomorphism from the query onto the explanation that maps the
// projected node to the distinguished node (Section III).
package provenance

import (
	"context"
	"fmt"
	"strings"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/query"
)

// Explanation is a subgraph of the ontology together with a distinguished
// node: the output example plus the user's rationale (Definition 2.5).
type Explanation struct {
	Graph         *graph.Graph
	Distinguished graph.NodeID
}

// New builds an explanation, validating that the distinguished node exists.
func New(g *graph.Graph, distinguished graph.NodeID) (Explanation, error) {
	e := Explanation{Graph: g, Distinguished: distinguished}
	if err := e.Validate(); err != nil {
		return Explanation{}, err
	}
	return e, nil
}

// NewByValue builds an explanation whose distinguished node is looked up by
// value.
func NewByValue(g *graph.Graph, value string) (Explanation, error) {
	n, ok := g.NodeByValue(value)
	if !ok {
		return Explanation{}, fmt.Errorf("provenance: distinguished value %q not in explanation", value)
	}
	return New(g, n.ID)
}

// Validate checks the explanation's internal consistency.
func (e Explanation) Validate() error {
	if e.Graph == nil {
		return fmt.Errorf("provenance: explanation without graph")
	}
	if err := e.Graph.Validate(); err != nil {
		return err
	}
	if e.Distinguished < 0 || int(e.Distinguished) >= e.Graph.NumNodes() {
		return fmt.Errorf("provenance: invalid distinguished node %d", e.Distinguished)
	}
	return nil
}

// DistinguishedValue returns the value of the distinguished node.
func (e Explanation) DistinguishedValue() string {
	return e.Graph.Node(e.Distinguished).Value
}

// String renders the explanation with the distinguished node marked.
func (e Explanation) String() string {
	return fmt.Sprintf("explanation[dis=%s] %s", e.DistinguishedValue(), e.Graph)
}

// ExampleSet is a set of explanations (Definition 2.5). The same
// distinguished node may appear in several explanations.
type ExampleSet []Explanation

// Validate checks every explanation.
func (ex ExampleSet) Validate() error {
	if len(ex) == 0 {
		return fmt.Errorf("provenance: empty example-set")
	}
	for i, e := range ex {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("explanation %d: %w", i, err)
		}
	}
	return nil
}

// DistinguishedValues returns the distinguished values in order.
func (ex ExampleSet) DistinguishedValues() []string {
	out := make([]string, len(ex))
	for i, e := range ex {
		out[i] = e.DistinguishedValue()
	}
	return out
}

// String lists the explanations.
func (ex ExampleSet) String() string {
	parts := make([]string, len(ex))
	for i, e := range ex {
		parts[i] = e.String()
	}
	return strings.Join(parts, "\n")
}

// Isomorphic reports isomorphism between two subgraphs of a common ontology.
// Because ontology node values are unique, a label-preserving isomorphism
// must map each node to the node with the same value, so isomorphism
// coincides with node/edge set equality.
func Isomorphic(a, b *graph.Graph) bool { return a.EqualSets(b) }

// OntoMatch reports whether q has a match *onto* the explanation — every
// node and edge of the explanation is covered by the image — with the
// projected node mapped to the distinguished node. When it exists, the
// witness match is returned. The query's disequality constraints are
// enforced by the underlying evaluator.
func OntoMatch(ctx context.Context, q *query.Simple, ex Explanation) (*eval.Match, bool, error) {
	proj := q.Projected()
	if proj == query.NoNode {
		return nil, false, fmt.Errorf("provenance: query has no projected node")
	}
	ev := eval.New(ex.Graph)
	pn := q.Node(proj)
	var pre map[query.NodeID]graph.NodeID
	if pn.Term.IsVar {
		pre = map[query.NodeID]graph.NodeID{proj: ex.Distinguished}
	} else if pn.Term.Value != ex.DistinguishedValue() {
		return nil, false, nil
	}

	needEdges := ex.Graph.NumEdges()
	needNodes := ex.Graph.NumNodes()
	var witness *eval.Match
	err := ev.MatchesInto(ctx, q, pre, func(m *eval.Match) bool {
		if !coversAll(ex.Graph, m, needEdges, needNodes) {
			return true // keep searching
		}
		witness = m.Clone()
		return false
	})
	if witness != nil {
		return witness, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	return nil, false, nil
}

// coversAll reports whether the match image covers all nodes and edges of g.
func coversAll(g *graph.Graph, m *eval.Match, needEdges, needNodes int) bool {
	edgeSeen := make([]bool, needEdges)
	edgeCount := 0
	for _, oe := range m.Edges {
		if oe == graph.NoEdge {
			return false
		}
		if !edgeSeen[oe] {
			edgeSeen[oe] = true
			edgeCount++
		}
	}
	if edgeCount != needEdges {
		return false
	}
	nodeSeen := make([]bool, needNodes)
	nodeCount := 0
	mark := func(n graph.NodeID) {
		if n != graph.NoNode && !nodeSeen[n] {
			nodeSeen[n] = true
			nodeCount++
		}
	}
	for _, on := range m.Nodes {
		mark(on)
	}
	return nodeCount == needNodes
}

// ConsistentSimple reports whether the simple query is consistent with the
// single explanation (Definition 2.6 restricted to one branch).
func ConsistentSimple(ctx context.Context, q *query.Simple, ex Explanation) (bool, error) {
	_, ok, err := OntoMatch(ctx, q, ex)
	return ok, err
}

// Consistent reports whether the union query is consistent with the
// example-set: for every explanation E there is a branch whose provenance
// for dis(E) contains a graph isomorphic to E (Definition 2.6). Since
// provenance graphs and explanations live in the same ontology, this reduces
// to an onto match of some branch onto E.
func Consistent(ctx context.Context, u *query.Union, ex ExampleSet) (bool, error) {
	for _, e := range ex {
		found := false
		for _, b := range u.Branches() {
			ok, err := ConsistentSimple(ctx, b, e)
			if err != nil {
				return false, err
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// WitnessAssignments returns, for each explanation, the values assigned to
// every query node by some onto match (the L(?x) sets of Example 5.1). The
// second return lists explanations with no onto match (by index); callers
// treat a non-empty list as inconsistency.
func WitnessAssignments(ctx context.Context, q *query.Simple, ex ExampleSet) ([][]string, []int, error) {
	out := make([][]string, len(ex))
	var missing []int
	for i, e := range ex {
		m, ok, err := OntoMatch(ctx, q, e)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			missing = append(missing, i)
			continue
		}
		vals := make([]string, len(m.Nodes))
		for nid, on := range m.Nodes {
			if on != graph.NoNode {
				vals[nid] = e.Graph.Node(on).Value
			}
		}
		out[i] = vals
	}
	return out, missing, nil
}
