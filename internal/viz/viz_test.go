package viz_test

import (
	"strings"
	"testing"

	"questpro/internal/paperfix"
	"questpro/internal/query"
	"questpro/internal/viz"
)

func TestGraphDOT(t *testing.T) {
	o := paperfix.Ontology()
	dot := viz.Graph(o, viz.Options{Name: "pubs", Highlight: map[string]bool{"Alice": true}})
	for _, want := range []string{
		`digraph "pubs" {`,
		`rankdir=LR;`,
		`"Alice" [label="Alice", tooltip="Author", style=filled, fillcolor=gold, penwidth=2];`,
		`"paper1" -> "Alice" [label="wb"];`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("DOT not closed")
	}
}

func TestGraphDOTDeterministic(t *testing.T) {
	o := paperfix.Ontology()
	a := viz.Graph(o, viz.Options{})
	b := viz.Graph(o, viz.Options{})
	if a != b {
		t.Fatal("DOT rendering not deterministic")
	}
}

func TestExplanationDOTHighlightsDistinguished(t *testing.T) {
	o := paperfix.Ontology()
	ex := paperfix.Explanations(o)[0]
	dot := viz.Explanation(ex, viz.Options{})
	if !strings.Contains(dot, `"Alice" [label="Alice", tooltip="Author", style=filled, fillcolor=gold, penwidth=2];`) {
		t.Fatalf("distinguished node not highlighted:\n%s", dot)
	}
}

func TestQueryDOT(t *testing.T) {
	q := paperfix.Q1()
	a1, _ := q.NodeByTerm(query.Var("a1"))
	if err := q.AddDiseqValue(a1.ID, "Bob"); err != nil {
		t.Fatal(err)
	}
	dot := viz.Query(q, viz.Options{RankDir: "TB"})
	for _, want := range []string{
		"rankdir=TB;",
		`"?a1" [label="?a1", shape=box, peripheries=2, style=filled, fillcolor=lightblue, tooltip="Author"];`,
		`"Erdos" [label="Erdos", shape=ellipse, tooltip="Author"];`,
		`"?p3" -> "Erdos" [label="wb"];`,
		`"lit:Bob" [label="Bob", shape=plaintext];`,
		`"?a1" -> "lit:Bob" [label="≠", style=dotted, dir=none, constraint=false];`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("query DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestQueryDOTOptionalDashed(t *testing.T) {
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	h := q.MustEnsureNode(query.Var("h"), "")
	e := q.MustAddEdge(a, h, "homepage")
	q.SetOptional(e, true)
	q.SetProjected(a)
	dot := viz.Query(q, viz.Options{})
	if !strings.Contains(dot, `style=dashed`) {
		t.Fatalf("optional edge not dashed:\n%s", dot)
	}
}

func TestUnionDOTClusters(t *testing.T) {
	u := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	dot := viz.Union(u, viz.Options{})
	for _, want := range []string{
		`subgraph "cluster_0" {`,
		`subgraph "cluster_1" {`,
		`label="branch 1";`,
		`label="branch 2";`,
		`"b0/?aA"`,
		`"b1/?aB"`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("union DOT missing %q:\n%s", want, dot)
		}
	}
	// Shared constants stay distinct per branch (prefixing).
	if strings.Count(dot, `"b0/Erdos"`) == 0 || strings.Count(dot, `"b1/Erdos"`) == 0 {
		t.Fatalf("constants not prefixed per branch:\n%s", dot)
	}
}

func TestEscaping(t *testing.T) {
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Const(`weird "value"`), "")
	b := q.MustEnsureNode(query.Var("x"), "")
	q.MustAddEdge(a, b, `la"bel`)
	q.SetProjected(b)
	dot := viz.Query(q, viz.Options{})
	if !strings.Contains(dot, `label="weird \"value\""`) {
		t.Fatalf("value not escaped:\n%s", dot)
	}
	if !strings.Contains(dot, `label="la\"bel"`) {
		t.Fatalf("edge label not escaped:\n%s", dot)
	}
}

func TestGraphDOTRankDirAndUntyped(t *testing.T) {
	g := paperfix.Ontology()
	dot := viz.Graph(g, viz.Options{RankDir: "TB"})
	if !strings.Contains(dot, "rankdir=TB;") {
		t.Fatalf("rankdir not honored:\n%s", dot[:100])
	}
	// Default name "G" when unset.
	if !strings.Contains(dot, `digraph "G" {`) {
		t.Fatalf("default name missing:\n%s", dot[:60])
	}
}
