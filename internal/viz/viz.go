// Package viz renders ontologies, explanations, queries and provenance
// graphs as Graphviz DOT documents. It is the offline stand-in for the
// paper's web UI (Section VI-A), which displays node neighborhoods during
// explanation formulation and provenance graphs during feedback.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"questpro/internal/graph"
	"questpro/internal/provenance"
	"questpro/internal/query"
)

// escape quotes a DOT string literal.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

// Options controls rendering.
type Options struct {
	// Name is the DOT graph name; "G" when empty.
	Name string
	// Highlight contains node values drawn with a distinct style (the
	// distinguished node of an explanation, the result of a provenance
	// question).
	Highlight map[string]bool
	// RankDir is Graphviz rankdir ("LR" when empty).
	RankDir string
}

func (o Options) name() string {
	if o.Name == "" {
		return "G"
	}
	return o.Name
}

func (o Options) rankDir() string {
	if o.RankDir == "" {
		return "LR"
	}
	return o.RankDir
}

// Graph renders an ontology (sub)graph. Node types become tooltips; nodes
// listed in Highlight are filled.
func Graph(g *graph.Graph, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=%s;\n  node [shape=ellipse];\n",
		opts.name(), opts.rankDir())
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Value < nodes[j].Value })
	for _, n := range nodes {
		attrs := []string{fmt.Sprintf("label=\"%s\"", escape(n.Value))}
		if n.Type != "" {
			attrs = append(attrs, fmt.Sprintf("tooltip=\"%s\"", escape(n.Type)))
		}
		if opts.Highlight[n.Value] {
			attrs = append(attrs, `style=filled`, `fillcolor=gold`, `penwidth=2`)
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", n.Value, strings.Join(attrs, ", "))
	}
	lines := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		lines = append(lines, fmt.Sprintf("  %q -> %q [label=\"%s\"];",
			g.Node(e.From).Value, g.Node(e.To).Value, escape(e.Label)))
	}
	sort.Strings(lines)
	sb.WriteString(strings.Join(lines, "\n"))
	sb.WriteString("\n}\n")
	return sb.String()
}

// Explanation renders an explanation with its distinguished node
// highlighted — the provenance view the feedback loop shows users.
func Explanation(ex provenance.Explanation, opts Options) string {
	if opts.Highlight == nil {
		opts.Highlight = map[string]bool{}
	}
	opts.Highlight[ex.DistinguishedValue()] = true
	return Graph(ex.Graph, opts)
}

// queryBody writes the node and edge statements of one simple query with
// the given indentation; node ids are prefixed so that several branches can
// coexist in one document without colliding.
func queryBody(sb *strings.Builder, q *query.Simple, indent, prefix string) {
	id := func(n query.Node) string { return prefix + n.Term.String() }
	nodes := q.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return id(nodes[i]) < id(nodes[j]) })
	for _, n := range nodes {
		attrs := []string{fmt.Sprintf("label=\"%s\"", escape(n.Term.String()))}
		if n.Term.IsVar {
			attrs = append(attrs, "shape=box")
		} else {
			attrs = append(attrs, "shape=ellipse")
		}
		if n.ID == q.Projected() {
			attrs = append(attrs, "peripheries=2", "style=filled", "fillcolor=lightblue")
		}
		if n.Type != "" {
			attrs = append(attrs, fmt.Sprintf("tooltip=\"%s\"", escape(n.Type)))
		}
		fmt.Fprintf(sb, "%s%q [%s];\n", indent, id(n), strings.Join(attrs, ", "))
	}
	var lines []string
	for _, e := range q.Edges() {
		style := ""
		if q.IsOptional(e.ID) {
			style = ", style=dashed"
		}
		lines = append(lines, fmt.Sprintf("%s%q -> %q [label=\"%s\"%s];",
			indent, id(q.Node(e.From)), id(q.Node(e.To)), escape(e.Label), style))
	}
	for _, d := range q.Diseqs() {
		x := id(q.Node(d.X))
		var y string
		if d.YIsNode {
			y = id(q.Node(d.Y))
		} else {
			y = prefix + "lit:" + d.YValue
			lines = append(lines, fmt.Sprintf("%s%q [label=\"%s\", shape=plaintext];",
				indent, y, escape(d.YValue)))
		}
		lines = append(lines, fmt.Sprintf("%s%q -> %q [label=\"≠\", style=dotted, dir=none, constraint=false];",
			indent, x, y))
	}
	sort.Strings(lines)
	sb.WriteString(strings.Join(lines, "\n"))
	sb.WriteString("\n")
}

// Query renders a simple query: variables as boxes, constants as ellipses,
// the projected node doubled, optional edges dashed, and disequalities as
// dotted constraint edges.
func Query(q *query.Simple, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=%s;\n", opts.name(), opts.rankDir())
	queryBody(&sb, q, "  ", "")
	sb.WriteString("}\n")
	return sb.String()
}

// Union renders a union query as one DOT document with a cluster per
// branch.
func Union(u *query.Union, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=%s;\n  compound=true;\n", opts.name(), opts.rankDir())
	for i, b := range u.Branches() {
		fmt.Fprintf(&sb, "  subgraph \"cluster_%d\" {\n    label=\"branch %d\";\n", i, i+1)
		queryBody(&sb, b, "    ", fmt.Sprintf("b%d/", i))
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
