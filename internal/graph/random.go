package graph

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls RandomOntology.
type RandomConfig struct {
	Nodes  int      // number of nodes to create
	Edges  int      // number of distinct edges to attempt (duplicates are retried)
	Labels []string // predicate vocabulary; must be non-empty when Edges > 0
	Types  []string // optional node-type vocabulary; nodes cycle through it
}

// RandomOntology generates a pseudo-random ontology graph from the given
// source. It is deterministic for a fixed seed and configuration, which the
// property-based tests rely on. Node values are "n0", "n1", ...
func RandomOntology(rng *rand.Rand, cfg RandomConfig) *Graph {
	g := New()
	for i := 0; i < cfg.Nodes; i++ {
		typ := ""
		if len(cfg.Types) > 0 {
			typ = cfg.Types[i%len(cfg.Types)]
		}
		if _, err := g.AddNode(fmt.Sprintf("n%d", i), typ); err != nil {
			panic(err) // unreachable: generated values are unique
		}
	}
	if cfg.Nodes == 0 {
		return g
	}
	added := 0
	// Cap attempts so that dense configurations (more requested edges than
	// distinct triples) terminate.
	for attempts := 0; added < cfg.Edges && attempts < cfg.Edges*20+100; attempts++ {
		from := NodeID(rng.Intn(cfg.Nodes))
		to := NodeID(rng.Intn(cfg.Nodes))
		label := cfg.Labels[rng.Intn(len(cfg.Labels))]
		if g.HasEdgeTriple(from, to, label) {
			continue
		}
		if _, err := g.AddEdge(from, to, label); err != nil {
			panic(err)
		}
		added++
	}
	return g
}

// RandomConnectedSubgraph walks rng-random undirected steps from a random
// start node and returns the subgraph induced by the visited edges (at most
// maxEdges of them) together with the start node. It returns nil when the
// graph has no edges reachable from the chosen start.
func RandomConnectedSubgraph(rng *rand.Rand, g *Graph, maxEdges int) (*Graph, NodeID) {
	if g.NumNodes() == 0 || maxEdges <= 0 {
		return nil, NoNode
	}
	start := NodeID(rng.Intn(g.NumNodes()))
	visited := map[EdgeID]bool{}
	var picked []EdgeID
	frontier := []NodeID{start}
	for len(picked) < maxEdges {
		// Collect candidate edges incident to the frontier.
		var candidates []EdgeID
		for _, n := range frontier {
			for _, e := range g.OutEdges(n) {
				if !visited[e] {
					candidates = append(candidates, e)
				}
			}
			for _, e := range g.InEdges(n) {
				if !visited[e] {
					candidates = append(candidates, e)
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		e := candidates[rng.Intn(len(candidates))]
		visited[e] = true
		picked = append(picked, e)
		edge := g.Edge(e)
		frontier = append(frontier, edge.From, edge.To)
	}
	if len(picked) == 0 {
		return nil, NoNode
	}
	sub, err := g.Subgraph(picked, []NodeID{start})
	if err != nil {
		panic(err) // unreachable: ids come from g itself
	}
	startNode, _ := sub.NodeByValue(g.Node(start).Value)
	return sub, startNode.ID
}
