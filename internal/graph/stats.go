package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph for inspection tooling (ontgen -stats, the REPL).
type Stats struct {
	Nodes, Edges int
	// Labels maps each predicate to its edge count.
	Labels map[string]int
	// Types maps each node type (including "") to its node count.
	Types map[string]int
	// MaxOutDegree and MaxInDegree are the largest fan-outs/fan-ins.
	MaxOutDegree, MaxInDegree int
	// IsolatedNodes counts nodes with no incident edges.
	IsolatedNodes int
}

// ComputeStats walks the graph once and tallies the summary.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		Labels: map[string]int{},
		Types:  map[string]int{},
	}
	for _, l := range g.Labels() {
		s.Labels[l] = g.LabelCount(l)
	}
	c := g.freeze()
	for _, n := range g.nodes {
		s.Types[n.Type]++
		out := len(c.out(n.ID))
		in := len(c.in(n.ID))
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out+in == 0 {
			s.IsolatedNodes++
		}
	}
	return s
}

// String renders the stats as a compact multi-line report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d nodes, %d edges, %d isolated, max out-degree %d, max in-degree %d\n",
		s.Nodes, s.Edges, s.IsolatedNodes, s.MaxOutDegree, s.MaxInDegree)
	labels := make([]string, 0, len(s.Labels))
	for l := range s.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Fprintf(&sb, "predicates:")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %s=%d", l, s.Labels[l])
	}
	sb.WriteString("\ntypes:")
	types := make([]string, 0, len(s.Types))
	for t := range s.Types {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		name := t
		if name == "" {
			name = "(untyped)"
		}
		fmt.Fprintf(&sb, " %s=%d", name, s.Types[t])
	}
	return sb.String()
}
