package graph

import "sort"

// csrIndex is the frozen, flat-slice adjacency form of a Graph (DESIGN.md
// §10): five compressed-sparse-row views over the edge list, replacing the
// former out/in/byLabel/bySrcLabel/byTgtLabel maps. All buckets list edge
// ids in ascending (insertion) order — exactly the order the map-based
// indexes appended them in — so every enumeration the matcher performs over
// a frozen graph is byte-identical to the pre-CSR engine's.
//
// A csrIndex is immutable after construction and safe for concurrent reads;
// any graph mutation discards it (see Graph.invalidate) and the next
// adjacency query rebuilds it.
type csrIndex struct {
	// edgeLab aliases the graph's per-edge interned label array at freeze
	// time (append-only, so sharing is safe while the index is valid).
	edgeLab []LabelID

	// outAdj[outOff[n]:outOff[n+1]] = ids of edges with From == n, ascending.
	outOff []int32
	outAdj []EdgeID
	// inAdj[inOff[n]:inOff[n+1]] = ids of edges with To == n, ascending.
	inOff []int32
	inAdj []EdgeID
	// labAdj[labOff[l]:labOff[l+1]] = ids of edges labeled l, ascending.
	labOff []int32
	labAdj []EdgeID
	// srcAdj[srcOff[n]:srcOff[n+1]] = ids of edges with From == n, sorted by
	// (label id, edge id); the (src, label) run is found by binary search.
	srcOff []int32
	srcAdj []EdgeID
	// tgtAdj is the symmetric (tgt, label) view.
	tgtOff []int32
	tgtAdj []EdgeID

	// byDegree lists every node id ordered by total degree descending (ties
	// by id ascending) — the degree-ordered candidate list planners consult
	// to anchor searches on the most-connected nodes first.
	byDegree []NodeID
	// maxDegree is the largest total (in + out) degree.
	maxDegree int
}

// bucketize builds one CSR view: off[k+1]-off[k] run sizes from keyOf over
// the ids visited in order, then fills adj so each bucket preserves the
// visit order. buckets is the number of distinct keys.
func bucketize(buckets int, n int, keyOf func(i int) int32, idOf func(i int) EdgeID) (off []int32, adj []EdgeID) {
	off = make([]int32, buckets+1)
	for i := 0; i < n; i++ {
		off[keyOf(i)+1]++
	}
	for k := 0; k < buckets; k++ {
		off[k+1] += off[k]
	}
	adj = make([]EdgeID, n)
	cursor := make([]int32, buckets)
	copy(cursor, off[:buckets])
	for i := 0; i < n; i++ {
		k := keyOf(i)
		adj[cursor[k]] = idOf(i)
		cursor[k]++
	}
	return off, adj
}

// buildCSR freezes the graph's current edge list into its flat form.
func buildCSR(g *Graph) *csrIndex {
	n := len(g.nodes)
	m := len(g.edges)
	labels := g.labels.Len()
	c := &csrIndex{edgeLab: g.edgeLab}

	edgeAt := func(i int) EdgeID { return EdgeID(i) }
	c.outOff, c.outAdj = bucketize(n, m,
		func(i int) int32 { return int32(g.edges[i].From) }, edgeAt)
	c.inOff, c.inAdj = bucketize(n, m,
		func(i int) int32 { return int32(g.edges[i].To) }, edgeAt)
	c.labOff, c.labAdj = bucketize(labels, m,
		func(i int) int32 { return int32(g.edgeLab[i]) }, edgeAt)

	// Bucketing the label-ordered edge list by endpoint yields, within each
	// endpoint's run, (label id, edge id) ascending order — the (endpoint,
	// label) runs binary-searched by EdgesByLabelIDFrom/To.
	c.srcOff, c.srcAdj = bucketize(n, m,
		func(i int) int32 { return int32(g.edges[c.labAdj[i]].From) },
		func(i int) EdgeID { return c.labAdj[i] })
	c.tgtOff, c.tgtAdj = bucketize(n, m,
		func(i int) int32 { return int32(g.edges[c.labAdj[i]].To) },
		func(i int) EdgeID { return c.labAdj[i] })

	c.byDegree = make([]NodeID, n)
	for i := range c.byDegree {
		c.byDegree[i] = NodeID(i)
	}
	deg := func(id NodeID) int {
		return int(c.outOff[id+1]-c.outOff[id]) + int(c.inOff[id+1]-c.inOff[id])
	}
	sort.Slice(c.byDegree, func(i, j int) bool {
		di, dj := deg(c.byDegree[i]), deg(c.byDegree[j])
		if di != dj {
			return di > dj
		}
		return c.byDegree[i] < c.byDegree[j]
	})
	if n > 0 {
		c.maxDegree = deg(c.byDegree[0])
	}
	return c
}

// labelRun binary-searches the (endpoint, label) run inside one endpoint's
// srcAdj/tgtAdj bucket: the bucket is sorted by (label id, edge id), so the
// run is a contiguous half-open interval. Hand-rolled (rather than
// sort.Search) to keep the matcher's hot path free of closure allocations.
func (c *csrIndex) labelRun(adj []EdgeID, lo, hi int32, lid LabelID) []EdgeID {
	first, last := lo, hi
	for first < last {
		mid := (first + last) / 2
		if c.edgeLab[adj[mid]] < lid {
			first = mid + 1
		} else {
			last = mid
		}
	}
	start := first
	last = hi
	for first < last {
		mid := (first + last) / 2
		if c.edgeLab[adj[mid]] <= lid {
			first = mid + 1
		} else {
			last = mid
		}
	}
	return adj[start:first]
}

func (c *csrIndex) out(n NodeID) []EdgeID { return c.outAdj[c.outOff[n]:c.outOff[n+1]] }
func (c *csrIndex) in(n NodeID) []EdgeID  { return c.inAdj[c.inOff[n]:c.inOff[n+1]] }
func (c *csrIndex) label(l LabelID) []EdgeID {
	return c.labAdj[c.labOff[l]:c.labOff[l+1]]
}
func (c *csrIndex) srcLabel(n NodeID, l LabelID) []EdgeID {
	return c.labelRun(c.srcAdj, c.srcOff[n], c.srcOff[n+1], l)
}
func (c *csrIndex) tgtLabel(n NodeID, l LabelID) []EdgeID {
	return c.labelRun(c.tgtAdj, c.tgtOff[n], c.tgtOff[n+1], l)
}
