package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeUniqueValues(t *testing.T) {
	g := New()
	id, err := g.AddNode("Alice", "Author")
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if id != 0 {
		t.Fatalf("first node id = %d, want 0", id)
	}
	if _, err := g.AddNode("Alice", "Author"); err == nil {
		t.Fatal("duplicate AddNode succeeded, want error")
	}
	n, ok := g.NodeByValue("Alice")
	if !ok || n.Type != "Author" {
		t.Fatalf("NodeByValue = %+v, %v", n, ok)
	}
}

func TestEnsureNodeTypeFill(t *testing.T) {
	g := New()
	if _, err := g.EnsureNode("x", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := g.EnsureNode("x", "T"); err != nil {
		t.Fatalf("filling empty type: %v", err)
	}
	if n, _ := g.NodeByValue("x"); n.Type != "T" {
		t.Fatalf("type = %q, want T", n.Type)
	}
	if _, err := g.EnsureNode("x", "U"); err == nil {
		t.Fatal("conflicting type accepted, want error")
	}
	// Re-ensuring with empty or matching type succeeds.
	if _, err := g.EnsureNode("x", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := g.EnsureNode("x", "T"); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRules(t *testing.T) {
	g := New()
	a, _ := g.AddNode("a", "")
	b, _ := g.AddNode("b", "")
	if _, err := g.AddEdge(a, b, "p"); err != nil {
		t.Fatal(err)
	}
	// Parallel edge with same label is rejected.
	if _, err := g.AddEdge(a, b, "p"); err == nil {
		t.Fatal("duplicate (from,to,label) accepted")
	}
	// Parallel edge with a distinct label is allowed.
	if _, err := g.AddEdge(a, b, "q"); err != nil {
		t.Fatalf("distinct-label parallel edge rejected: %v", err)
	}
	// Self loops are allowed.
	if _, err := g.AddEdge(a, a, "p"); err != nil {
		t.Fatalf("self loop rejected: %v", err)
	}
	if _, err := g.AddEdge(a, NodeID(99), "p"); err == nil {
		t.Fatal("invalid target accepted")
	}
	if _, err := g.AddEdge(NodeID(-1), b, "p"); err == nil {
		t.Fatal("invalid source accepted")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestIndexes(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "wb", "b")
	g.MustAddTriple("a", "wb", "c")
	g.MustAddTriple("b", "cites", "c")
	a, _ := g.NodeByValue("a")
	b, _ := g.NodeByValue("b")
	c, _ := g.NodeByValue("c")

	if got := len(g.EdgesByLabel("wb")); got != 2 {
		t.Fatalf("EdgesByLabel(wb) = %d, want 2", got)
	}
	if got := len(g.EdgesByLabelFrom("wb", a.ID)); got != 2 {
		t.Fatalf("EdgesByLabelFrom(wb,a) = %d, want 2", got)
	}
	if got := len(g.EdgesByLabelTo("wb", c.ID)); got != 1 {
		t.Fatalf("EdgesByLabelTo(wb,c) = %d, want 1", got)
	}
	if got := len(g.OutEdges(a.ID)); got != 2 {
		t.Fatalf("OutEdges(a) = %d, want 2", got)
	}
	if got := len(g.InEdges(c.ID)); got != 2 {
		t.Fatalf("InEdges(c) = %d, want 2", got)
	}
	if got := g.Degree(b.ID); got != 2 {
		t.Fatalf("Degree(b) = %d, want 2", got)
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "cites" || labels[1] != "wb" {
		t.Fatalf("Labels = %v", labels)
	}
	if g.LabelCount("wb") != 2 || g.LabelCount("missing") != 0 {
		t.Fatal("LabelCount mismatch")
	}
}

func TestFindEdge(t *testing.T) {
	g := New()
	eid := g.MustAddTriple("a", "p", "b")
	a, _ := g.NodeByValue("a")
	b, _ := g.NodeByValue("b")
	e, ok := g.FindEdge(a.ID, b.ID, "p")
	if !ok || e.ID != eid {
		t.Fatalf("FindEdge = %+v, %v", e, ok)
	}
	if _, ok := g.FindEdge(b.ID, a.ID, "p"); ok {
		t.Fatal("reverse edge found")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	c := g.Clone()
	c.MustAddTriple("b", "p", "a")
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("edges: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsSubgraphOf(c) || c.IsSubgraphOf(g) {
		t.Fatal("subgraph relation wrong after clone mutation")
	}
}

func TestSubgraphExtraction(t *testing.T) {
	g := New()
	e1 := g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("b", "q", "c")
	g.MustAddTriple("c", "p", "a")
	d, _ := g.AddNode("d", "T")

	sub, err := g.Subgraph([]EdgeID{e1, e1}, []NodeID{d})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph has %d nodes, %d edges", sub.NumNodes(), sub.NumEdges())
	}
	if n, ok := sub.NodeByValue("d"); !ok || n.Type != "T" {
		t.Fatalf("extra node not preserved: %+v %v", n, ok)
	}
	if !sub.IsSubgraphOf(g) {
		t.Fatal("subgraph not contained in parent")
	}
	if g.IsSubgraphOf(sub) {
		t.Fatal("parent contained in proper subgraph")
	}
	if _, err := g.Subgraph([]EdgeID{EdgeID(42)}, nil); err == nil {
		t.Fatal("invalid edge id accepted")
	}
	if _, err := g.Subgraph(nil, []NodeID{NodeID(42)}); err == nil {
		t.Fatal("invalid node id accepted")
	}
}

func TestEqualSetsAndSignature(t *testing.T) {
	build := func(order []int) *Graph {
		g := New()
		triples := [][3]string{{"a", "p", "b"}, {"b", "q", "c"}, {"a", "q", "c"}}
		for _, i := range order {
			tr := triples[i]
			g.MustAddTriple(tr[0], tr[1], tr[2])
		}
		return g
	}
	g1 := build([]int{0, 1, 2})
	g2 := build([]int{2, 0, 1})
	if !g1.EqualSets(g2) {
		t.Fatal("same triples in different order not EqualSets")
	}
	if g1.Signature() != g2.Signature() {
		t.Fatal("signatures differ for equal graphs")
	}
	g3 := build([]int{0, 1})
	if g1.EqualSets(g3) || g1.Signature() == g3.Signature() {
		t.Fatal("different graphs compare equal")
	}
}

func TestMerge(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	h := New()
	h.MustAddTriple("a", "p", "b")
	h.MustAddTriple("b", "p", "c")
	if err := g.Merge(h); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("merged graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTypeConflict(t *testing.T) {
	g := New()
	if _, err := g.AddNode("x", "A"); err != nil {
		t.Fatal(err)
	}
	h := New()
	if _, err := h.AddNode("x", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.Merge(h); err == nil {
		t.Fatal("type conflict not reported")
	}
}

func TestConnectivity(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("c", "p", "d")
	if g.IsConnected() {
		t.Fatal("two components reported connected")
	}
	a, _ := g.NodeByValue("a")
	comp := g.ConnectedComponent(a.ID)
	if len(comp) != 2 {
		t.Fatalf("component size = %d, want 2", len(comp))
	}
	g.MustAddTriple("b", "p", "c")
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New().IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestNeighborhood(t *testing.T) {
	// a -> b -> c -> d, radius 2 around a covers edges (a,b),(b,c).
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("b", "p", "c")
	g.MustAddTriple("c", "p", "d")
	a, _ := g.NodeByValue("a")
	nb, err := g.Neighborhood(a.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nb.NumEdges() != 2 || nb.NumNodes() != 3 {
		t.Fatalf("2-neighborhood: %d nodes %d edges", nb.NumNodes(), nb.NumEdges())
	}
	if _, ok := nb.NodeByValue("d"); ok {
		t.Fatal("radius-2 neighborhood should not reach d")
	}
	// Radius 1 on an isolated node yields just that node.
	iso, _ := g.AddNode("iso", "")
	nb1, err := g.Neighborhood(iso, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nb1.NumNodes() != 1 || nb1.NumEdges() != 0 {
		t.Fatalf("isolated neighborhood: %d nodes %d edges", nb1.NumNodes(), nb1.NumEdges())
	}
	if _, err := g.Neighborhood(NodeID(99), 1); err == nil {
		t.Fatal("invalid start accepted")
	}
}

func TestStringStable(t *testing.T) {
	g := New()
	g.MustAddTriple("b", "p", "c")
	g.MustAddTriple("a", "p", "b")
	g.AddNode("lonely", "")
	s := g.String()
	if !strings.Contains(s, "graph{4 nodes, 2 edges}") {
		t.Fatalf("header missing in %q", s)
	}
	if !strings.Contains(s, "a -p-> b") || !strings.Contains(s, "(lonely)") {
		t.Fatalf("listing missing entries: %q", s)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.nodes[1].Value = "a" // corrupt: duplicate value
	if err := g.Validate(); err == nil {
		t.Fatal("corrupted graph validated")
	}
}

// Property: random ontologies always validate, and any random connected
// subgraph is contained in its parent and is weakly connected.
func TestRandomOntologyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomOntology(rng, RandomConfig{
			Nodes:  20 + rng.Intn(30),
			Edges:  40 + rng.Intn(60),
			Labels: []string{"p", "q", "r"},
			Types:  []string{"A", "B"},
		})
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		sub, start := RandomConnectedSubgraph(rng, g, 5)
		if sub == nil {
			return true // start node had no incident edges
		}
		if start == NoNode {
			return false
		}
		return sub.IsSubgraphOf(g) && sub.IsConnected() && sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subgraph of all edges reproduces an EqualSets-identical graph.
func TestSubgraphOfEverythingIsEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomOntology(rng, RandomConfig{
			Nodes: 10, Edges: 25, Labels: []string{"p", "q"},
		})
		all := make([]EdgeID, g.NumEdges())
		for i := range all {
			all[i] = EdgeID(i)
		}
		var nodes []NodeID
		for i := 0; i < g.NumNodes(); i++ {
			nodes = append(nodes, NodeID(i))
		}
		sub, err := g.Subgraph(all, nodes)
		if err != nil {
			return false
		}
		return sub.EqualSets(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("a", "p", "c")
	g.MustAddTriple("a", "q", "b")
	g.AddNode("iso", "T")
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 3 || s.IsolatedNodes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Labels["p"] != 2 || s.Labels["q"] != 1 {
		t.Fatalf("labels = %v", s.Labels)
	}
	if s.MaxOutDegree != 3 || s.MaxInDegree != 2 {
		t.Fatalf("degrees = %d/%d", s.MaxOutDegree, s.MaxInDegree)
	}
	if s.Types["T"] != 1 || s.Types[""] != 3 {
		t.Fatalf("types = %v", s.Types)
	}
	rep := s.String()
	for _, want := range []string{"4 nodes, 3 edges", "p=2", "q=1", "(untyped)=3", "T=1"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
