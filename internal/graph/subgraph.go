package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Subgraph materializes the subgraph of g induced by the given edge ids plus
// any extra isolated nodes. Node values and types are preserved; ids are
// re-assigned densely in the new graph. Duplicate edge ids are tolerated.
func (g *Graph) Subgraph(edgeIDs []EdgeID, extraNodes []NodeID) (*Graph, error) {
	sub := New()
	translate := func(id NodeID) (NodeID, error) {
		n := g.Node(id)
		return sub.EnsureNode(n.Value, n.Type)
	}
	seen := make(map[EdgeID]bool, len(edgeIDs))
	for _, eid := range edgeIDs {
		if seen[eid] {
			continue
		}
		seen[eid] = true
		if !g.validEdge(eid) {
			return nil, fmt.Errorf("graph: invalid edge id %d in subgraph", eid)
		}
		e := g.edges[eid]
		from, err := translate(e.From)
		if err != nil {
			return nil, err
		}
		to, err := translate(e.To)
		if err != nil {
			return nil, err
		}
		if _, err := sub.AddEdge(from, to, e.Label); err != nil {
			return nil, err
		}
	}
	for _, nid := range extraNodes {
		if !g.validNode(nid) {
			return nil, fmt.Errorf("graph: invalid node id %d in subgraph", nid)
		}
		if _, err := translate(nid); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// IsSubgraphOf reports whether every node value and every (value, label,
// value) edge triple of g also occurs in other. Because ontology node values
// are unique, this is subgraph containment up to the canonical value-based
// identification.
func (g *Graph) IsSubgraphOf(other *Graph) bool {
	for _, n := range g.nodes {
		if _, ok := other.NodeByValue(n.Value); !ok {
			return false
		}
	}
	for _, e := range g.edges {
		fromVal := g.nodes[e.From].Value
		toVal := g.nodes[e.To].Value
		of, ok := other.NodeByValue(fromVal)
		if !ok {
			return false
		}
		ot, ok := other.NodeByValue(toVal)
		if !ok {
			return false
		}
		if !other.HasEdgeTriple(of.ID, ot.ID, e.Label) {
			return false
		}
	}
	return true
}

// EqualSets reports whether two graphs have identical node-value sets and
// edge-triple sets. For subgraphs of a common ontology (whose values are
// unique), EqualSets coincides with graph isomorphism.
func (g *Graph) EqualSets(other *Graph) bool {
	if g.NumNodes() != other.NumNodes() || g.NumEdges() != other.NumEdges() {
		return false
	}
	return g.IsSubgraphOf(other) && other.IsSubgraphOf(g)
}

// Signature returns a canonical string identifying the graph's node-value set
// and edge-triple set. Two graphs have equal signatures iff EqualSets holds.
func (g *Graph) Signature() string {
	parts := make([]string, 0, len(g.nodes)+len(g.edges))
	for _, n := range g.nodes {
		parts = append(parts, "n\x00"+n.Value)
	}
	for _, e := range g.edges {
		parts = append(parts, "e\x00"+g.nodes[e.From].Value+"\x00"+e.Label+"\x00"+g.nodes[e.To].Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// Merge adds every node and edge of other into g (matching by value),
// skipping triples already present. It returns an error only on type
// conflicts between same-valued nodes.
func (g *Graph) Merge(other *Graph) error {
	ids := make([]NodeID, other.NumNodes())
	for _, n := range other.nodes {
		id, err := g.EnsureNode(n.Value, n.Type)
		if err != nil {
			return err
		}
		ids[n.ID] = id
	}
	for _, e := range other.edges {
		from, to := ids[e.From], ids[e.To]
		if g.HasEdgeTriple(from, to, e.Label) {
			continue
		}
		if _, err := g.AddEdge(from, to, e.Label); err != nil {
			return err
		}
	}
	return nil
}

// ConnectedComponent returns the set of node ids reachable from start
// ignoring edge direction.
func (g *Graph) ConnectedComponent(start NodeID) map[NodeID]bool {
	c := g.freeze()
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range c.out(n) {
			if t := g.edges[eid].To; !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
		for _, eid := range c.in(n) {
			if f := g.edges[eid].From; !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return seen
}

// IsConnected reports whether the graph is weakly connected (or empty).
func (g *Graph) IsConnected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	return len(g.ConnectedComponent(0)) == len(g.nodes)
}

// Neighborhood returns the subgraph induced by all edges within the given
// number of undirected hops of start. A radius of 1 yields the paper's
// "1-neighborhood" shown by the ontology visualizer.
func (g *Graph) Neighborhood(start NodeID, radius int) (*Graph, error) {
	if !g.validNode(start) {
		return nil, fmt.Errorf("graph: invalid node id %d", start)
	}
	c := g.freeze()
	dist := map[NodeID]int{start: 0}
	frontier := []NodeID{start}
	var edgeIDs []EdgeID
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, n := range frontier {
			for _, eid := range c.out(n) {
				edgeIDs = append(edgeIDs, eid)
				t := g.edges[eid].To
				if _, ok := dist[t]; !ok {
					dist[t] = hop + 1
					next = append(next, t)
				}
			}
			for _, eid := range c.in(n) {
				edgeIDs = append(edgeIDs, eid)
				f := g.edges[eid].From
				if _, ok := dist[f]; !ok {
					dist[f] = hop + 1
					next = append(next, f)
				}
			}
		}
		frontier = next
	}
	return g.Subgraph(edgeIDs, []NodeID{start})
}
