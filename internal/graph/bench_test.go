package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, nodes, edges int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	return RandomOntology(rng, RandomConfig{
		Nodes:  nodes,
		Edges:  edges,
		Labels: []string{"p", "q", "r"},
		Types:  []string{"A", "B"},
	})
}

func BenchmarkAddTriple(b *testing.B) {
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i++ {
		from := fmt.Sprintf("n%d", i)
		to := fmt.Sprintf("n%d", i+1)
		if _, err := g.AddTriple(from, "p", to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgesByLabelFrom(b *testing.B) {
	g := benchGraph(b, 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.EdgesByLabelFrom("p", NodeID(i%g.NumNodes()))
	}
}

func BenchmarkSubgraph(b *testing.B) {
	g := benchGraph(b, 2000, 10000)
	edges := make([]EdgeID, 50)
	for i := range edges {
		edges[i] = EdgeID(i * 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Subgraph(edges, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignature(b *testing.B) {
	g := benchGraph(b, 200, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Signature()
	}
}

func BenchmarkNeighborhood(b *testing.B) {
	g := benchGraph(b, 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Neighborhood(NodeID(i%g.NumNodes()), 2); err != nil {
			b.Fatal(err)
		}
	}
}
