package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// bruteAdjacency recomputes every adjacency answer straight from the edge
// list, mimicking the pre-CSR map-based builder: buckets accumulate edge ids
// in insertion (= ascending id) order.
type bruteAdjacency struct {
	out, in    map[NodeID][]EdgeID
	byLabel    map[string][]EdgeID
	bySrcLabel map[string][]EdgeID // key "src/label"
	byTgtLabel map[string][]EdgeID
}

func bruteForce(g *Graph) *bruteAdjacency {
	b := &bruteAdjacency{
		out: map[NodeID][]EdgeID{}, in: map[NodeID][]EdgeID{},
		byLabel:    map[string][]EdgeID{},
		bySrcLabel: map[string][]EdgeID{}, byTgtLabel: map[string][]EdgeID{},
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		b.out[e.From] = append(b.out[e.From], e.ID)
		b.in[e.To] = append(b.in[e.To], e.ID)
		b.byLabel[e.Label] = append(b.byLabel[e.Label], e.ID)
		sk := fmt.Sprintf("%d/%s", e.From, e.Label)
		tk := fmt.Sprintf("%d/%s", e.To, e.Label)
		b.bySrcLabel[sk] = append(b.bySrcLabel[sk], e.ID)
		b.byTgtLabel[tk] = append(b.byTgtLabel[tk], e.ID)
	}
	return b
}

func sameIDs(t *testing.T, what string, got, want []EdgeID) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
}

// assertParity checks every accessor of g against the brute-force recompute.
func assertParity(t *testing.T, g *Graph) {
	t.Helper()
	b := bruteForce(g)
	labels := g.Labels()
	maxDeg := 0
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		sameIDs(t, fmt.Sprintf("OutEdges(%d)", n), g.OutEdges(id), b.out[id])
		sameIDs(t, fmt.Sprintf("InEdges(%d)", n), g.InEdges(id), b.in[id])
		wantDeg := len(b.out[id]) + len(b.in[id])
		if got := g.Degree(id); got != wantDeg {
			t.Fatalf("Degree(%d) = %d, want %d", n, got, wantDeg)
		}
		if wantDeg > maxDeg {
			maxDeg = wantDeg
		}
		for _, l := range labels {
			sameIDs(t, fmt.Sprintf("EdgesByLabelFrom(%q, %d)", l, n),
				g.EdgesByLabelFrom(l, id), b.bySrcLabel[fmt.Sprintf("%d/%s", n, l)])
			sameIDs(t, fmt.Sprintf("EdgesByLabelTo(%q, %d)", l, n),
				g.EdgesByLabelTo(l, id), b.byTgtLabel[fmt.Sprintf("%d/%s", n, l)])
			lid := g.LabelID(l)
			sameIDs(t, fmt.Sprintf("EdgesByLabelIDFrom(%q, %d)", l, n),
				g.EdgesByLabelIDFrom(lid, id), b.bySrcLabel[fmt.Sprintf("%d/%s", n, l)])
			sameIDs(t, fmt.Sprintf("EdgesByLabelIDTo(%q, %d)", l, n),
				g.EdgesByLabelIDTo(lid, id), b.byTgtLabel[fmt.Sprintf("%d/%s", n, l)])
		}
	}
	if got := g.MaxDegree(); got != maxDeg {
		t.Fatalf("MaxDegree = %d, want %d", got, maxDeg)
	}
	for _, l := range labels {
		sameIDs(t, fmt.Sprintf("EdgesByLabel(%q)", l), g.EdgesByLabel(l), b.byLabel[l])
		sameIDs(t, fmt.Sprintf("EdgesByLabelID(%q)", l), g.EdgesByLabelID(g.LabelID(l)), b.byLabel[l])
		if got := g.LabelCount(l); got != len(b.byLabel[l]) {
			t.Fatalf("LabelCount(%q) = %d, want %d", l, got, len(b.byLabel[l]))
		}
	}
	// FindEdge / HasEdgeTriple parity: every edge found, and a sample of
	// absent triples rejected.
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if got, ok := g.FindEdge(e.From, e.To, e.Label); !ok || got.ID != e.ID {
			t.Fatalf("FindEdge(%d, %d, %q) = (%v, %v), want edge %d", e.From, e.To, e.Label, got, ok, e.ID)
		}
		if !g.HasEdgeTriple(e.From, e.To, e.Label) {
			t.Fatalf("HasEdgeTriple(%d, %d, %q) = false", e.From, e.To, e.Label)
		}
		if _, ok := g.FindEdge(e.From, e.To, e.Label+"\x00absent"); ok {
			t.Fatalf("FindEdge found edge with nonexistent label")
		}
	}
	// NodesByDegree: a permutation of all nodes, degree-descending, id-ascending ties.
	order := g.NodesByDegree()
	if len(order) != g.NumNodes() {
		t.Fatalf("NodesByDegree has %d entries, want %d", len(order), g.NumNodes())
	}
	seen := make(map[NodeID]bool, len(order))
	for i, n := range order {
		if seen[n] {
			t.Fatalf("NodesByDegree repeats node %d", n)
		}
		seen[n] = true
		if i > 0 {
			p := order[i-1]
			dp, dn := g.Degree(p), g.Degree(n)
			if dp < dn || (dp == dn && p > n) {
				t.Fatalf("NodesByDegree out of order at %d: node %d (deg %d) before node %d (deg %d)",
					i, p, dp, n, dn)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCSRParityRandomized(t *testing.T) {
	labels := []string{"a", "b", "c", "creator", "partOf"}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig{
			Nodes:  1 + rng.Intn(60),
			Labels: labels[:1+rng.Intn(len(labels))],
			Types:  []string{"", "T1", "T2"},
		}
		cfg.Edges = rng.Intn(cfg.Nodes * 3)
		g := RandomOntology(rng, cfg)
		assertParity(t, g)
	}
}

func TestCSRParityAfterMutation(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("b", "q", "c")
	assertParity(t, g) // freezes

	// Mutation after a freeze must invalidate and re-answer correctly.
	g.MustAddTriple("c", "p", "a")
	g.MustAddTriple("a", "q", "c")
	assertParity(t, g)

	if _, err := g.AddNode("isolated", "T"); err != nil {
		t.Fatal(err)
	}
	assertParity(t, g)
}

func TestCSRParityEmptyAndEdgeless(t *testing.T) {
	assertParity(t, New())

	g := New()
	for i := 0; i < 5; i++ {
		if _, err := g.AddNode(fmt.Sprintf("v%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	assertParity(t, g)
	if g.LabelID("anything") != NoLabel {
		t.Fatal("edgeless graph interned a label")
	}
}

func TestCSRSharedSlicesAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomOntology(rng, RandomConfig{Nodes: 40, Edges: 120, Labels: []string{"x", "y", "z"}})
	g.Freeze()
	for n := 0; n < g.NumNodes(); n++ {
		for _, run := range [][]EdgeID{g.OutEdges(NodeID(n)), g.InEdges(NodeID(n))} {
			if !sort.SliceIsSorted(run, func(i, j int) bool { return run[i] < run[j] }) {
				t.Fatalf("adjacency run for node %d not ascending: %v", n, run)
			}
		}
	}
}

func TestCloneIndependentInterner(t *testing.T) {
	g := New()
	g.MustAddTriple("a", "p", "b")
	g.MustAddTriple("b", "p", "c")
	c := g.Clone()
	c.MustAddTriple("c", "q", "a")
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatalf("clone not independent: g=%d c=%d edges", g.NumEdges(), c.NumEdges())
	}
	if g.LabelID("q") != NoLabel {
		t.Fatal("clone mutation leaked a label into the original interner")
	}
	assertParity(t, g)
	assertParity(t, c)
}

func TestConcurrentLazyFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomOntology(rng, RandomConfig{Nodes: 200, Edges: 600, Labels: []string{"a", "b"}})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			total := 0
			for n := 0; n < g.NumNodes(); n++ {
				total += len(g.OutEdges(NodeID(n))) + len(g.InEdges(NodeID(n)))
			}
			if total != 2*g.NumEdges() {
				t.Errorf("concurrent adjacency sum %d, want %d", total, 2*g.NumEdges())
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
