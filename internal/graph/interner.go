package graph

// LabelID is the interned identifier of an edge label (predicate) within one
// Interner. Labels are interned in first-appearance order; ids are dense and
// start at 0. NoLabel is returned for strings the interner has never seen.
type LabelID int32

// NoLabel is the sentinel for "label not interned".
const NoLabel LabelID = -1

// Interner maps strings to dense int32 ids and back. It is the string-
// interning half of the CSR ontology substrate (DESIGN.md §10): hot loops
// compare and index by LabelID so the backtracking matcher performs no
// string hashing. The zero value is ready to use. An Interner is not safe
// for concurrent mutation; once fully populated it is safe for concurrent
// reads (the ontology build/freeze lifecycle guarantees this).
type Interner struct {
	ids  map[string]LabelID
	strs []string
}

// Intern returns the id for s, assigning the next dense id on first sight.
func (in *Interner) Intern(s string) LabelID {
	if id, ok := in.ids[s]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[string]LabelID)
	}
	id := LabelID(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the id for s, or NoLabel when s was never interned.
func (in *Interner) Lookup(s string) LabelID {
	if id, ok := in.ids[s]; ok {
		return id
	}
	return NoLabel
}

// Value returns the string with the given id. It panics on invalid ids.
func (in *Interner) Value(id LabelID) string { return in.strs[id] }

// Len reports the number of interned strings.
func (in *Interner) Len() int { return len(in.strs) }

// Clone returns an independent deep copy.
func (in *Interner) Clone() *Interner {
	c := &Interner{strs: append([]string(nil), in.strs...)}
	if len(in.ids) > 0 {
		c.ids = make(map[string]LabelID, len(in.ids))
		for s, id := range in.ids {
			c.ids[s] = id
		}
	}
	return c
}
