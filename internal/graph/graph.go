// Package graph implements the labeled-multigraph data model underlying
// ontology databases (Section II-A of the paper): a directed graph whose
// nodes carry unique values (and an optional type used for disequality
// inference) and whose edges carry predicate labels. Between any two nodes
// there may be several edges, but their labels must be distinct.
//
// A Graph is append-only: nodes and edges can be added but never removed.
// Subgraphs (used to represent explanations and provenance) are materialized
// as fresh Graph values sharing node values with the original.
//
// Storage follows a builder/freeze split (DESIGN.md §10). The append phase
// keeps only flat node/edge slices, a value index, an interned-label table
// and an integer-keyed triple index; adjacency is served from a frozen
// compressed-sparse-row index (csr.go) built by Freeze — or lazily by the
// first adjacency query — and discarded on mutation. Evaluation hot paths
// use the LabelID-keyed accessors so the backtracking matcher touches no
// strings and no string-keyed maps.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node within a single Graph.
type NodeID int32

// EdgeID identifies an edge within a single Graph.
type EdgeID int32

// NoNode is the zero-ish sentinel for "no node".
const NoNode NodeID = -1

// NoEdge is the sentinel for "no edge".
const NoEdge EdgeID = -1

// Node is a vertex of an ontology graph. Value is the node's unique value
// (the function L_V of the paper, required to be one-to-one). Type is an
// optional ontology-level type annotation ("Author", "Paper", ...) used when
// inferring disequalities between nodes of the same type.
type Node struct {
	ID    NodeID
	Value string
	Type  string
}

// Edge is a directed, labeled edge. Label is the predicate (the function L_E
// of the paper).
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Label    string
}

// Graph is a directed labeled multigraph with unique node values.
// The zero value is not usable; call New.
type Graph struct {
	nodes []Node
	edges []Edge

	byValue map[string]NodeID

	// labels interns edge labels at AddEdge time; edgeLab holds each edge's
	// interned label, aligned with edges.
	labels  Interner
	edgeLab []LabelID

	// triples indexes every (from, to, label-id) triple for duplicate
	// rejection and FindEdge — integer-keyed, so lookups hash no strings.
	triples map[itriple]EdgeID

	// csr is the frozen adjacency index; nil while dirty. Freezing is
	// guarded by freezeMu so concurrent readers of a static graph race-
	// safely share one build.
	csr      atomic.Pointer[csrIndex]
	freezeMu sync.Mutex
}

type itriple struct {
	from, to NodeID
	label    LabelID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byValue: make(map[string]NodeID),
		triples: make(map[itriple]EdgeID),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Freeze builds the CSR adjacency index for the graph's current contents.
// Calling it is optional — any adjacency accessor freezes on demand — but
// long-lived static graphs (ontologies handed to an evaluator) should be
// frozen once up front so no query pays the build. Further mutation is
// allowed: it discards the index, and the next freeze rebuilds it.
func (g *Graph) Freeze() { g.freeze() }

// freeze returns the current CSR index, building it if the graph is dirty.
func (g *Graph) freeze() *csrIndex {
	if c := g.csr.Load(); c != nil {
		return c
	}
	g.freezeMu.Lock()
	defer g.freezeMu.Unlock()
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.Store(c)
	return c
}

// invalidate discards the frozen index after a mutation.
func (g *Graph) invalidate() { g.csr.Store(nil) }

// AddNode inserts a node with the given unique value and optional type.
// It fails if a node with the same value already exists.
func (g *Graph) AddNode(value, typ string) (NodeID, error) {
	if _, ok := g.byValue[value]; ok {
		return NoNode, fmt.Errorf("graph: duplicate node value %q", value)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Value: value, Type: typ})
	g.byValue[value] = id
	g.invalidate()
	return id, nil
}

// EnsureNode returns the node with the given value, creating it (with the
// given type) if absent. If the node exists with an empty type and typ is
// non-empty, the type is filled in; a conflicting non-empty type is an error.
func (g *Graph) EnsureNode(value, typ string) (NodeID, error) {
	if id, ok := g.byValue[value]; ok {
		n := &g.nodes[id]
		if typ != "" && n.Type == "" {
			n.Type = typ
		} else if typ != "" && n.Type != typ {
			return NoNode, fmt.Errorf("graph: node %q has type %q, conflicting type %q", value, n.Type, typ)
		}
		return id, nil
	}
	return g.AddNode(value, typ)
}

// SetNodeType sets the type of an existing node, overwriting any previous type.
func (g *Graph) SetNodeType(id NodeID, typ string) error {
	if !g.validNode(id) {
		return fmt.Errorf("graph: invalid node id %d", id)
	}
	g.nodes[id].Type = typ
	return nil
}

// AddEdge inserts a directed edge. It fails if either endpoint is invalid or
// if an edge with the same endpoints and label already exists (the model
// allows parallel edges only with distinct predicates).
func (g *Graph) AddEdge(from, to NodeID, label string) (EdgeID, error) {
	if !g.validNode(from) {
		return NoEdge, fmt.Errorf("graph: invalid source node id %d", from)
	}
	if !g.validNode(to) {
		return NoEdge, fmt.Errorf("graph: invalid target node id %d", to)
	}
	lid := g.labels.Intern(label)
	key := itriple{from: from, to: to, label: lid}
	if _, ok := g.triples[key]; ok {
		return NoEdge, fmt.Errorf("graph: duplicate edge %s -%s-> %s",
			g.nodes[from].Value, label, g.nodes[to].Value)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Label: label})
	g.edgeLab = append(g.edgeLab, lid)
	g.triples[key] = id
	g.invalidate()
	return id, nil
}

// AddTriple inserts the edge fromValue -label-> toValue, creating endpoint
// nodes (with empty types) as needed. Existing duplicate triples are an error.
func (g *Graph) AddTriple(fromValue, label, toValue string) (EdgeID, error) {
	from, err := g.EnsureNode(fromValue, "")
	if err != nil {
		return NoEdge, err
	}
	to, err := g.EnsureNode(toValue, "")
	if err != nil {
		return NoEdge, err
	}
	return g.AddEdge(from, to, label)
}

// MustAddTriple is AddTriple that panics on error; intended for tests and
// hand-built fixture graphs.
func (g *Graph) MustAddTriple(fromValue, label, toValue string) EdgeID {
	id, err := g.AddTriple(fromValue, label, toValue)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

func (g *Graph) validEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Node returns the node with the given id. It panics on invalid ids.
func (g *Graph) Node(id NodeID) Node {
	if !g.validNode(id) {
		panic(fmt.Sprintf("graph: invalid node id %d", id))
	}
	return g.nodes[id]
}

// Edge returns the edge with the given id. It panics on invalid ids.
func (g *Graph) Edge(id EdgeID) Edge {
	if !g.validEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", id))
	}
	return g.edges[id]
}

// NodeByValue looks a node up by its unique value.
func (g *Graph) NodeByValue(value string) (Node, bool) {
	id, ok := g.byValue[value]
	if !ok {
		return Node{}, false
	}
	return g.nodes[id], true
}

// LabelID returns the interned id of an edge label, or NoLabel when no edge
// carries it. Hot loops resolve a label once and use the *ID accessors.
func (g *Graph) LabelID(label string) LabelID { return g.labels.Lookup(label) }

// LabelValue returns the label string with the given interned id.
func (g *Graph) LabelValue(id LabelID) string { return g.labels.Value(id) }

// NumLabels reports the number of distinct edge labels.
func (g *Graph) NumLabels() int { return g.labels.Len() }

// EdgeLabelID returns the interned label id of an edge.
func (g *Graph) EdgeLabelID(id EdgeID) LabelID {
	if !g.validEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", id))
	}
	return g.edgeLab[id]
}

// HasEdgeTriple reports whether the edge from -label-> to exists, by node ids.
func (g *Graph) HasEdgeTriple(from, to NodeID, label string) bool {
	lid := g.labels.Lookup(label)
	if lid == NoLabel {
		return false
	}
	_, ok := g.triples[itriple{from: from, to: to, label: lid}]
	return ok
}

// FindEdge returns the edge from -label-> to if it exists.
func (g *Graph) FindEdge(from, to NodeID, label string) (Edge, bool) {
	lid := g.labels.Lookup(label)
	if lid == NoLabel {
		return Edge{}, false
	}
	return g.FindEdgeID(from, to, lid)
}

// FindEdgeID is FindEdge by interned label id.
func (g *Graph) FindEdgeID(from, to NodeID, lid LabelID) (Edge, bool) {
	id, ok := g.triples[itriple{from: from, to: to, label: lid}]
	if !ok {
		return Edge{}, false
	}
	return g.edges[id], true
}

// Nodes returns a copy of all nodes in id order. Hot loops should iterate
// ids with NumNodes/Node instead of paying the copy.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all edges in id order. Hot loops should iterate
// ids with NumEdges/Edge instead of paying the copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdges returns the ids of edges whose source is n, in ascending edge-id
// order. The returned slice is shared with the graph's frozen index and
// must not be modified.
func (g *Graph) OutEdges(n NodeID) []EdgeID { return g.freeze().out(n) }

// InEdges returns the ids of edges whose target is n, in ascending edge-id
// order. The returned slice is shared with the graph's frozen index and
// must not be modified.
func (g *Graph) InEdges(n NodeID) []EdgeID { return g.freeze().in(n) }

// EdgesByLabel returns the ids of all edges carrying the given label, in
// ascending edge-id order. The returned slice is shared with the graph's
// frozen index and must not be modified.
func (g *Graph) EdgesByLabel(label string) []EdgeID {
	lid := g.labels.Lookup(label)
	if lid == NoLabel {
		return nil
	}
	return g.freeze().label(lid)
}

// EdgesByLabelID is EdgesByLabel by interned label id.
func (g *Graph) EdgesByLabelID(lid LabelID) []EdgeID {
	if lid == NoLabel {
		return nil
	}
	return g.freeze().label(lid)
}

// EdgesByLabelFrom returns the ids of edges with the given label and source,
// in ascending edge-id order; shared slice, read-only.
func (g *Graph) EdgesByLabelFrom(label string, from NodeID) []EdgeID {
	lid := g.labels.Lookup(label)
	if lid == NoLabel {
		return nil
	}
	return g.freeze().srcLabel(from, lid)
}

// EdgesByLabelIDFrom is EdgesByLabelFrom by interned label id.
func (g *Graph) EdgesByLabelIDFrom(lid LabelID, from NodeID) []EdgeID {
	if lid == NoLabel {
		return nil
	}
	return g.freeze().srcLabel(from, lid)
}

// EdgesByLabelTo returns the ids of edges with the given label and target,
// in ascending edge-id order; shared slice, read-only.
func (g *Graph) EdgesByLabelTo(label string, to NodeID) []EdgeID {
	lid := g.labels.Lookup(label)
	if lid == NoLabel {
		return nil
	}
	return g.freeze().tgtLabel(to, lid)
}

// EdgesByLabelIDTo is EdgesByLabelTo by interned label id.
func (g *Graph) EdgesByLabelIDTo(lid LabelID, to NodeID) []EdgeID {
	if lid == NoLabel {
		return nil
	}
	return g.freeze().tgtLabel(to, lid)
}

// Labels returns the set of edge labels in sorted order.
func (g *Graph) Labels() []string {
	labels := make([]string, 0, g.labels.Len())
	for i := 0; i < g.labels.Len(); i++ {
		labels = append(labels, g.labels.Value(LabelID(i)))
	}
	sort.Strings(labels)
	return labels
}

// LabelCount reports how many edges carry the given label.
func (g *Graph) LabelCount(label string) int { return len(g.EdgesByLabel(label)) }

// Degree reports the total (in + out) degree of a node.
func (g *Graph) Degree(n NodeID) int {
	c := g.freeze()
	return len(c.out(n)) + len(c.in(n))
}

// MaxDegree reports the largest total degree over all nodes (0 when empty).
func (g *Graph) MaxDegree() int { return g.freeze().maxDegree }

// NodesByDegree returns all node ids ordered by total degree descending
// (ties by id ascending) — the degree-ordered candidate list used to anchor
// searches on the most-connected nodes first. Shared slice, read-only.
func (g *Graph) NodesByDegree() []NodeID { return g.freeze().byDegree }

// Clone returns a deep copy of the graph with identical ids.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nodes = append([]Node(nil), g.nodes...)
	c.edges = append([]Edge(nil), g.edges...)
	for v, id := range g.byValue {
		c.byValue[v] = id
	}
	c.labels = *g.labels.Clone()
	c.edgeLab = append([]LabelID(nil), g.edgeLab...)
	for k, id := range g.triples {
		c.triples[k] = id
	}
	return c
}

// Validate checks internal invariants: unique values, valid endpoints, no
// duplicate (from, to, label) triples, interner/triple-index consistency,
// and — after freezing — that every CSR adjacency view (out, in, byLabel,
// (src, label), (tgt, label)) covers exactly the edge list with correctly
// bucketed, correctly ordered runs, so index corruption is caught instead of
// silently mis-matching.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.nodes))
	for i, n := range g.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("graph: node %d has id %d", i, n.ID)
		}
		if seen[n.Value] {
			return fmt.Errorf("graph: duplicate node value %q", n.Value)
		}
		seen[n.Value] = true
		if got := g.byValue[n.Value]; got != n.ID {
			return fmt.Errorf("graph: byValue[%q]=%d, want %d", n.Value, got, n.ID)
		}
	}
	if len(g.edgeLab) != len(g.edges) {
		return fmt.Errorf("graph: edgeLab covers %d edges, want %d", len(g.edgeLab), len(g.edges))
	}
	if len(g.triples) != len(g.edges) {
		return fmt.Errorf("graph: triple index has %d entries, want %d", len(g.triples), len(g.edges))
	}
	for i, e := range g.edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("graph: edge %d has id %d", i, e.ID)
		}
		if !g.validNode(e.From) || !g.validNode(e.To) {
			return fmt.Errorf("graph: edge %d has invalid endpoints (%d, %d)", i, e.From, e.To)
		}
		lid := g.edgeLab[i]
		if lid < 0 || int(lid) >= g.labels.Len() || g.labels.Value(lid) != e.Label {
			return fmt.Errorf("graph: edge %d label %q not interned as %d", i, e.Label, lid)
		}
		if got, ok := g.triples[itriple{from: e.From, to: e.To, label: lid}]; !ok || got != e.ID {
			return fmt.Errorf("graph: triple index missing edge %d (%s -%s-> %s)",
				i, g.nodes[e.From].Value, e.Label, g.nodes[e.To].Value)
		}
	}
	return g.validateCSR(g.freeze())
}

// validateCSR cross-checks every frozen adjacency view against the edge list.
func (g *Graph) validateCSR(c *csrIndex) error {
	type view struct {
		name    string
		off     []int32
		adj     []EdgeID
		buckets int
		// keyOf returns the bucket an edge must be filed under.
		keyOf func(e Edge) int32
		// ordered reports whether adj[i] may follow adj[i-1] within a bucket.
		ordered func(prev, cur EdgeID) bool
	}
	idOrder := func(prev, cur EdgeID) bool { return prev < cur }
	labelIDOrder := func(prev, cur EdgeID) bool {
		lp, lc := g.edgeLab[prev], g.edgeLab[cur]
		return lp < lc || (lp == lc && prev < cur)
	}
	views := []view{
		{"out", c.outOff, c.outAdj, len(g.nodes), func(e Edge) int32 { return int32(e.From) }, idOrder},
		{"in", c.inOff, c.inAdj, len(g.nodes), func(e Edge) int32 { return int32(e.To) }, idOrder},
		{"byLabel", c.labOff, c.labAdj, g.labels.Len(), func(e Edge) int32 { return int32(g.edgeLab[e.ID]) }, idOrder},
		{"srcLabel", c.srcOff, c.srcAdj, len(g.nodes), func(e Edge) int32 { return int32(e.From) }, labelIDOrder},
		{"tgtLabel", c.tgtOff, c.tgtAdj, len(g.nodes), func(e Edge) int32 { return int32(e.To) }, labelIDOrder},
	}
	for _, v := range views {
		if len(v.off) != v.buckets+1 {
			return fmt.Errorf("graph: %s offsets have %d entries, want %d", v.name, len(v.off), v.buckets+1)
		}
		if len(v.adj) != len(g.edges) {
			return fmt.Errorf("graph: %s index covers %d edges, want %d", v.name, len(v.adj), len(g.edges))
		}
		if v.buckets > 0 && (v.off[0] != 0 || int(v.off[v.buckets]) != len(g.edges)) {
			return fmt.Errorf("graph: %s offsets span [%d, %d], want [0, %d]",
				v.name, v.off[0], v.off[v.buckets], len(g.edges))
		}
		for b := 0; b < v.buckets; b++ {
			if v.off[b] > v.off[b+1] {
				return fmt.Errorf("graph: %s offsets not monotone at bucket %d", v.name, b)
			}
			for i := v.off[b]; i < v.off[b+1]; i++ {
				eid := v.adj[i]
				if !g.validEdge(eid) {
					return fmt.Errorf("graph: %s bucket %d holds invalid edge id %d", v.name, b, eid)
				}
				if got := v.keyOf(g.edges[eid]); got != int32(b) {
					return fmt.Errorf("graph: %s bucket %d holds edge %d keyed %d", v.name, b, eid, got)
				}
				if i > v.off[b] && !v.ordered(v.adj[i-1], eid) {
					return fmt.Errorf("graph: %s bucket %d out of order at %d", v.name, b, i)
				}
			}
		}
	}
	return nil
}

// String renders a compact human-readable listing, stable across runs.
func (g *Graph) String() string {
	lines := make([]string, 0, len(g.edges)+1)
	for _, e := range g.edges {
		lines = append(lines, fmt.Sprintf("%s -%s-> %s",
			g.nodes[e.From].Value, e.Label, g.nodes[e.To].Value))
	}
	sort.Strings(lines)
	isolated := make([]string, 0)
	for _, n := range g.nodes {
		if g.Degree(n.ID) == 0 {
			isolated = append(isolated, n.Value)
		}
	}
	sort.Strings(isolated)
	out := fmt.Sprintf("graph{%d nodes, %d edges}", len(g.nodes), len(g.edges))
	for _, l := range lines {
		out += "\n  " + l
	}
	for _, v := range isolated {
		out += "\n  (" + v + ")"
	}
	return out
}
