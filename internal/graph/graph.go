// Package graph implements the labeled-multigraph data model underlying
// ontology databases (Section II-A of the paper): a directed graph whose
// nodes carry unique values (and an optional type used for disequality
// inference) and whose edges carry predicate labels. Between any two nodes
// there may be several edges, but their labels must be distinct.
//
// A Graph is append-only: nodes and edges can be added but never removed.
// Subgraphs (used to represent explanations and provenance) are materialized
// as fresh Graph values sharing node values with the original.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a single Graph.
type NodeID int32

// EdgeID identifies an edge within a single Graph.
type EdgeID int32

// NoNode is the zero-ish sentinel for "no node".
const NoNode NodeID = -1

// NoEdge is the sentinel for "no edge".
const NoEdge EdgeID = -1

// Node is a vertex of an ontology graph. Value is the node's unique value
// (the function L_V of the paper, required to be one-to-one). Type is an
// optional ontology-level type annotation ("Author", "Paper", ...) used when
// inferring disequalities between nodes of the same type.
type Node struct {
	ID    NodeID
	Value string
	Type  string
}

// Edge is a directed, labeled edge. Label is the predicate (the function L_E
// of the paper).
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Label    string
}

type endpointLabel struct {
	node  NodeID
	label string
}

// Graph is a directed labeled multigraph with unique node values.
// The zero value is not usable; call New.
type Graph struct {
	nodes []Node
	edges []Edge

	byValue map[string]NodeID
	out     map[NodeID][]EdgeID
	in      map[NodeID][]EdgeID

	byLabel     map[string][]EdgeID
	bySrcLabel  map[endpointLabel][]EdgeID
	byTgtLabel  map[endpointLabel][]EdgeID
	edgeTriples map[tripleKey]EdgeID
}

type tripleKey struct {
	from, to NodeID
	label    string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byValue:     make(map[string]NodeID),
		out:         make(map[NodeID][]EdgeID),
		in:          make(map[NodeID][]EdgeID),
		byLabel:     make(map[string][]EdgeID),
		bySrcLabel:  make(map[endpointLabel][]EdgeID),
		byTgtLabel:  make(map[endpointLabel][]EdgeID),
		edgeTriples: make(map[tripleKey]EdgeID),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode inserts a node with the given unique value and optional type.
// It fails if a node with the same value already exists.
func (g *Graph) AddNode(value, typ string) (NodeID, error) {
	if _, ok := g.byValue[value]; ok {
		return NoNode, fmt.Errorf("graph: duplicate node value %q", value)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Value: value, Type: typ})
	g.byValue[value] = id
	return id, nil
}

// EnsureNode returns the node with the given value, creating it (with the
// given type) if absent. If the node exists with an empty type and typ is
// non-empty, the type is filled in; a conflicting non-empty type is an error.
func (g *Graph) EnsureNode(value, typ string) (NodeID, error) {
	if id, ok := g.byValue[value]; ok {
		n := &g.nodes[id]
		if typ != "" && n.Type == "" {
			n.Type = typ
		} else if typ != "" && n.Type != typ {
			return NoNode, fmt.Errorf("graph: node %q has type %q, conflicting type %q", value, n.Type, typ)
		}
		return id, nil
	}
	return g.AddNode(value, typ)
}

// SetNodeType sets the type of an existing node, overwriting any previous type.
func (g *Graph) SetNodeType(id NodeID, typ string) error {
	if !g.validNode(id) {
		return fmt.Errorf("graph: invalid node id %d", id)
	}
	g.nodes[id].Type = typ
	return nil
}

// AddEdge inserts a directed edge. It fails if either endpoint is invalid or
// if an edge with the same endpoints and label already exists (the model
// allows parallel edges only with distinct predicates).
func (g *Graph) AddEdge(from, to NodeID, label string) (EdgeID, error) {
	if !g.validNode(from) {
		return NoEdge, fmt.Errorf("graph: invalid source node id %d", from)
	}
	if !g.validNode(to) {
		return NoEdge, fmt.Errorf("graph: invalid target node id %d", to)
	}
	key := tripleKey{from: from, to: to, label: label}
	if _, ok := g.edgeTriples[key]; ok {
		return NoEdge, fmt.Errorf("graph: duplicate edge %s -%s-> %s",
			g.nodes[from].Value, label, g.nodes[to].Value)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Label: label})
	g.edgeTriples[key] = id
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byLabel[label] = append(g.byLabel[label], id)
	g.bySrcLabel[endpointLabel{from, label}] = append(g.bySrcLabel[endpointLabel{from, label}], id)
	g.byTgtLabel[endpointLabel{to, label}] = append(g.byTgtLabel[endpointLabel{to, label}], id)
	return id, nil
}

// AddTriple inserts the edge fromValue -label-> toValue, creating endpoint
// nodes (with empty types) as needed. Existing duplicate triples are an error.
func (g *Graph) AddTriple(fromValue, label, toValue string) (EdgeID, error) {
	from, err := g.EnsureNode(fromValue, "")
	if err != nil {
		return NoEdge, err
	}
	to, err := g.EnsureNode(toValue, "")
	if err != nil {
		return NoEdge, err
	}
	return g.AddEdge(from, to, label)
}

// MustAddTriple is AddTriple that panics on error; intended for tests and
// hand-built fixture graphs.
func (g *Graph) MustAddTriple(fromValue, label, toValue string) EdgeID {
	id, err := g.AddTriple(fromValue, label, toValue)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

func (g *Graph) validEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Node returns the node with the given id. It panics on invalid ids.
func (g *Graph) Node(id NodeID) Node {
	if !g.validNode(id) {
		panic(fmt.Sprintf("graph: invalid node id %d", id))
	}
	return g.nodes[id]
}

// Edge returns the edge with the given id. It panics on invalid ids.
func (g *Graph) Edge(id EdgeID) Edge {
	if !g.validEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", id))
	}
	return g.edges[id]
}

// NodeByValue looks a node up by its unique value.
func (g *Graph) NodeByValue(value string) (Node, bool) {
	id, ok := g.byValue[value]
	if !ok {
		return Node{}, false
	}
	return g.nodes[id], true
}

// HasEdgeTriple reports whether the edge from -label-> to exists, by node ids.
func (g *Graph) HasEdgeTriple(from, to NodeID, label string) bool {
	_, ok := g.edgeTriples[tripleKey{from: from, to: to, label: label}]
	return ok
}

// FindEdge returns the edge from -label-> to if it exists.
func (g *Graph) FindEdge(from, to NodeID, label string) (Edge, bool) {
	id, ok := g.edgeTriples[tripleKey{from: from, to: to, label: label}]
	if !ok {
		return Edge{}, false
	}
	return g.edges[id], true
}

// Nodes returns a copy of all nodes in id order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all edges in id order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdges returns the ids of edges whose source is n. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) OutEdges(n NodeID) []EdgeID { return g.out[n] }

// InEdges returns the ids of edges whose target is n. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) InEdges(n NodeID) []EdgeID { return g.in[n] }

// EdgesByLabel returns the ids of all edges carrying the given label.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) EdgesByLabel(label string) []EdgeID { return g.byLabel[label] }

// EdgesByLabelFrom returns the ids of edges with the given label and source.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) EdgesByLabelFrom(label string, from NodeID) []EdgeID {
	return g.bySrcLabel[endpointLabel{from, label}]
}

// EdgesByLabelTo returns the ids of edges with the given label and target.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) EdgesByLabelTo(label string, to NodeID) []EdgeID {
	return g.byTgtLabel[endpointLabel{to, label}]
}

// Labels returns the set of edge labels in sorted order.
func (g *Graph) Labels() []string {
	labels := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// LabelCount reports how many edges carry the given label.
func (g *Graph) LabelCount(label string) int { return len(g.byLabel[label]) }

// Degree reports the total (in + out) degree of a node.
func (g *Graph) Degree(n NodeID) int { return len(g.out[n]) + len(g.in[n]) }

// Clone returns a deep copy of the graph with identical ids.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nodes = append([]Node(nil), g.nodes...)
	c.edges = append([]Edge(nil), g.edges...)
	for v, id := range g.byValue {
		c.byValue[v] = id
	}
	for n, es := range g.out {
		c.out[n] = append([]EdgeID(nil), es...)
	}
	for n, es := range g.in {
		c.in[n] = append([]EdgeID(nil), es...)
	}
	for l, es := range g.byLabel {
		c.byLabel[l] = append([]EdgeID(nil), es...)
	}
	for k, es := range g.bySrcLabel {
		c.bySrcLabel[k] = append([]EdgeID(nil), es...)
	}
	for k, es := range g.byTgtLabel {
		c.byTgtLabel[k] = append([]EdgeID(nil), es...)
	}
	for k, id := range g.edgeTriples {
		c.edgeTriples[k] = id
	}
	return c
}

// Validate checks internal invariants: unique values, valid endpoints, no
// duplicate (from, to, label) triples, consistent indexes.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.nodes))
	for i, n := range g.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("graph: node %d has id %d", i, n.ID)
		}
		if seen[n.Value] {
			return fmt.Errorf("graph: duplicate node value %q", n.Value)
		}
		seen[n.Value] = true
		if got := g.byValue[n.Value]; got != n.ID {
			return fmt.Errorf("graph: byValue[%q]=%d, want %d", n.Value, got, n.ID)
		}
	}
	triples := make(map[tripleKey]bool, len(g.edges))
	for i, e := range g.edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("graph: edge %d has id %d", i, e.ID)
		}
		if !g.validNode(e.From) || !g.validNode(e.To) {
			return fmt.Errorf("graph: edge %d has invalid endpoints (%d, %d)", i, e.From, e.To)
		}
		key := tripleKey{from: e.From, to: e.To, label: e.Label}
		if triples[key] {
			return fmt.Errorf("graph: duplicate triple %s -%s-> %s",
				g.nodes[e.From].Value, e.Label, g.nodes[e.To].Value)
		}
		triples[key] = true
	}
	var indexed int
	for _, es := range g.byLabel {
		indexed += len(es)
	}
	if indexed != len(g.edges) {
		return fmt.Errorf("graph: label index covers %d edges, want %d", indexed, len(g.edges))
	}
	return nil
}

// String renders a compact human-readable listing, stable across runs.
func (g *Graph) String() string {
	lines := make([]string, 0, len(g.edges)+1)
	for _, e := range g.edges {
		lines = append(lines, fmt.Sprintf("%s -%s-> %s",
			g.nodes[e.From].Value, e.Label, g.nodes[e.To].Value))
	}
	sort.Strings(lines)
	isolated := make([]string, 0)
	for _, n := range g.nodes {
		if g.Degree(n.ID) == 0 {
			isolated = append(isolated, n.Value)
		}
	}
	sort.Strings(isolated)
	out := fmt.Sprintf("graph{%d nodes, %d edges}", len(g.nodes), len(g.edges))
	for _, l := range lines {
		out += "\n  " + l
	}
	for _, v := range isolated {
		out += "\n  (" + v + ")"
	}
	return out
}
