package feedback_test

import (
	"math/rand"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/feedback"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// twoDiseqProbe is "authors of paper5" with ?x != Greg and ?x != Harry.
func twoDiseqProbe(t *testing.T) *query.Simple {
	t.Helper()
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Const("paper5"), "Paper")
	x := q.MustEnsureNode(query.Var("x"), "Author")
	q.MustAddEdge(p, x, "wb")
	if err := q.SetProjected(x); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(x, "Greg"); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(x, "Harry"); err != nil {
		t.Fatal(err)
	}
	return q
}

// The user wants exactly one of the two constraints lifted.
func TestRefineDiseqsPartialRelaxation(t *testing.T) {
	// Intended: authors of paper5 except Harry (so Greg is wanted back).
	intended := query.NewSimple()
	p := intended.MustEnsureNode(query.Const("paper5"), "Paper")
	x := intended.MustEnsureNode(query.Var("x"), "Author")
	intended.MustAddEdge(p, x, "wb")
	intended.SetProjected(x)
	if err := intended.AddDiseqValue(x, "Harry"); err != nil {
		t.Fatal(err)
	}

	s, ev := session(t, query.NewUnion(intended))
	out, tr, err := s.RefineDiseqs(bg, twoDiseqProbe(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDiseqs() != 1 {
		t.Fatalf("kept %d diseqs, want 1 (%v)", out.NumDiseqs(), out.Diseqs())
	}
	if out.Diseqs()[0].YValue != "Harry" {
		t.Fatalf("kept %v, want the Harry constraint", out.Diseqs())
	}
	if len(tr.Questions) == 0 {
		t.Fatal("no questions asked")
	}
	got, err := ev.Results(bg, query.NewUnion(out))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Results(bg, query.NewUnion(intended))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("refined results %v, want %v", got, want)
	}
}

// When single removals are invisible, the multi-removal fallback fires.
func TestRefineDiseqsMultiRemoval(t *testing.T) {
	// Ontology where two diseqs only matter jointly: one paper with authors
	// a and b; ?x != a and ?x != b leave nothing, and removing only one
	// still excludes... actually removing one single constraint is visible
	// here, so build the invisible case: constraints on values that are not
	// authors of the paper at all — removing any subset changes nothing.
	o := graph.New()
	o.MustAddTriple("paper", "wb", "a")
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Const("paper"), "")
	x := q.MustEnsureNode(query.Var("x"), "")
	q.MustAddEdge(p, x, "wb")
	q.SetProjected(x)
	if err := q.AddDiseqValue(x, "ghost1"); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(x, "ghost2"); err != nil {
		t.Fatal(err)
	}
	s := &feedback.Session{
		Ev:     ev,
		Oracle: &feedback.ExactOracle{Ev: ev, Target: query.NewUnion(q)},
	}
	out, tr, err := s.RefineDiseqs(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// Every relaxation is extensionally invisible; no questions are asked
	// and the constraints stay as given.
	if len(tr.Questions) != 0 {
		t.Fatalf("asked %d questions about invisible constraints", len(tr.Questions))
	}
	if out.NumDiseqs() != 2 {
		t.Fatalf("constraints changed: %v", out.Diseqs())
	}
}

func TestRefineDiseqsMaxQuestions(t *testing.T) {
	wantAll := query.NewSimple()
	p := wantAll.MustEnsureNode(query.Const("paper5"), "Paper")
	x := wantAll.MustEnsureNode(query.Var("x"), "Author")
	wantAll.MustAddEdge(p, x, "wb")
	wantAll.SetProjected(x)

	s, _ := session(t, query.NewUnion(wantAll))
	s.MaxQuestions = 1
	_, tr, err := s.RefineDiseqs(bg, twoDiseqProbe(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Questions) > 1 {
		t.Fatalf("asked %d questions despite MaxQuestions=1", len(tr.Questions))
	}
}

func TestRefineDiseqsNilQuery(t *testing.T) {
	s, _ := session(t, query.NewUnion(paperfix.Q1()))
	if _, _, err := s.RefineDiseqs(bg, nil); err == nil {
		t.Fatal("nil query accepted")
	}
}

// Confused users flip answers with the configured probability.
func TestSimulatedUserConfusion(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q3())
	u := &feedback.SimulatedUser{Ev: ev, Target: target, Rng: rand.New(rand.NewSource(4)), Confusion: 1}
	rp, err := ev.BindAndExplain(bg, target, "Alice")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := u.ShouldInclude(bg, rp)
	if err != nil {
		t.Fatal(err)
	}
	if ans {
		t.Fatal("fully confused user answered correctly")
	}
	u.Confusion = 0
	ans, err = u.ShouldInclude(bg, rp)
	if err != nil || !ans {
		t.Fatalf("careful user wrong: %v %v", ans, err)
	}
}
