package feedback_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/feedback"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// session builds a feedback session over the running example with an exact
// oracle for the given target.
func session(t *testing.T, target *query.Union) (*feedback.Session, *eval.Evaluator) {
	t.Helper()
	o := paperfix.Ontology()
	ev := eval.New(o)
	return &feedback.Session{
		Ev:     ev,
		Oracle: &feedback.ExactOracle{Ev: ev, Target: target},
		Ex:     paperfix.Explanations(o),
	}, ev
}

// Example 5.5: with the intended query Union(Q3, Q4), the feedback loop
// must discard Q1 (its extra results, e.g. William, are refused) and keep
// the union.
func TestChooseQueryPrefersTarget(t *testing.T) {
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	s, _ := session(t, target)
	cands := []*query.Union{
		query.NewUnion(paperfix.Q1()),
		target,
	}
	idx, tr, err := s.ChooseQuery(bg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("chose candidate %d, want 1 (the target)", idx)
	}
	if len(tr.Questions) == 0 {
		t.Fatal("no questions were asked")
	}
	q := tr.Questions[0]
	if q.Answer {
		t.Fatalf("oracle accepted %q, which is not a target result", q.Result)
	}
	if q.Dropped != 0 {
		t.Fatalf("question dropped candidate %d, want 0", q.Dropped)
	}
}

// With the intended query Q1, the same candidate pair resolves the other way.
func TestChooseQueryOtherDirection(t *testing.T) {
	target := query.NewUnion(paperfix.Q1())
	s, _ := session(t, target)
	cands := []*query.Union{
		query.NewUnion(paperfix.Q1()),
		query.NewUnion(paperfix.Q3(), paperfix.Q4()),
	}
	idx, tr, err := s.ChooseQuery(bg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("chose candidate %d, want 0", idx)
	}
	if len(tr.Questions) != 1 || !tr.Questions[0].Answer {
		t.Fatalf("transcript = %+v", tr)
	}
}

// Three candidates shrink to one with at most two questions.
func TestChooseQueryThreeCandidates(t *testing.T) {
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	s, _ := session(t, target)
	ge := func(i int) *query.Simple {
		exs := s.Ex
		q, err := query.FromExplanation(exs[i].Graph, exs[i].Distinguished)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cands := []*query.Union{
		query.NewUnion(paperfix.Q1()),
		query.NewUnion(paperfix.Q3(), paperfix.Q4()),
		query.NewUnion(paperfix.Q4(), ge(0), ge(2)),
	}
	idx, tr, err := s.ChooseQuery(bg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Questions) > 2 {
		t.Fatalf("asked %d questions for 3 candidates", len(tr.Questions))
	}
	// The chosen query must be extensionally correct.
	got, err := s.Ev.Results(bg, cands[idx])
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Ev.Results(bg, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chosen candidate %d returns %v, target returns %v", idx, got, want)
	}
}

// Indistinguishable candidates (equal result sets in both directions) are
// collapsed without questions.
func TestChooseQueryUndistinguished(t *testing.T) {
	target := query.NewUnion(paperfix.Q1())
	s, _ := session(t, target)
	cands := []*query.Union{
		query.NewUnion(paperfix.Q1()),
		query.NewUnion(paperfix.Q1().Clone()),
	}
	idx, tr, err := s.ChooseQuery(bg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || len(tr.Questions) != 0 || len(tr.Undistinguished) != 1 {
		t.Fatalf("idx=%d transcript=%+v", idx, tr)
	}
}

func TestChooseQueryEmpty(t *testing.T) {
	s, _ := session(t, query.NewUnion(paperfix.Q1()))
	if _, _, err := s.ChooseQuery(bg, nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

func TestChooseQueryMaxQuestions(t *testing.T) {
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	s, _ := session(t, target)
	s.MaxQuestions = 1
	cands := []*query.Union{
		query.NewUnion(paperfix.Q1()),
		query.NewUnion(paperfix.Q3()),
		query.NewUnion(paperfix.Q4()),
	}
	idx, tr, err := s.ChooseQuery(bg, cands)
	if !errors.Is(err, qerr.ErrMaxQuestions) {
		t.Fatalf("want ErrMaxQuestions, got %v", err)
	}
	if idx < 0 || idx >= len(cands) {
		t.Fatalf("leading candidate index %d out of range", idx)
	}
	if len(tr.Questions) > 1 {
		t.Fatalf("asked %d questions despite MaxQuestions=1", len(tr.Questions))
	}
}

// buildDiseqProbe returns "authors of paper1" with the diseq ?x != Bob.
func buildDiseqProbe(t *testing.T) *query.Simple {
	t.Helper()
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Const("paper1"), "Paper")
	x := q.MustEnsureNode(query.Var("x"), "Author")
	q.MustAddEdge(p, x, "wb")
	if err := q.SetProjected(x); err != nil {
		t.Fatal(err)
	}
	if err := q.AddDiseqValue(x, "Bob"); err != nil {
		t.Fatal(err)
	}
	return q
}

// If the user wants Bob among the results, the relaxation dialogue drops
// the diseq; if not, the diseq is approved and kept.
func TestRefineDiseqs(t *testing.T) {
	// Target includes Bob: authors of paper1 without constraints.
	wantBob := query.NewSimple()
	p := wantBob.MustEnsureNode(query.Const("paper1"), "Paper")
	x := wantBob.MustEnsureNode(query.Var("x"), "Author")
	wantBob.MustAddEdge(p, x, "wb")
	wantBob.SetProjected(x)

	s, _ := session(t, query.NewUnion(wantBob))
	out, tr, err := s.RefineDiseqs(bg, buildDiseqProbe(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDiseqs() != 0 {
		t.Fatalf("diseq kept against user intent: %v", out.Diseqs())
	}
	if len(tr.Questions) != 1 || !tr.Questions[0].Answer || tr.Questions[0].Result != "Bob" {
		t.Fatalf("transcript = %+v", tr)
	}

	// Target excludes Bob: the probe itself.
	s2, _ := session(t, query.NewUnion(buildDiseqProbe(t)))
	out2, tr2, err := s2.RefineDiseqs(bg, buildDiseqProbe(t))
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumDiseqs() != 1 {
		t.Fatalf("diseq dropped against user intent: %v", out2.Diseqs())
	}
	if len(tr2.Questions) != 1 || tr2.Questions[0].Answer {
		t.Fatalf("transcript = %+v", tr2)
	}
}

func TestRefineDiseqsNoConstraints(t *testing.T) {
	s, _ := session(t, query.NewUnion(paperfix.Q1()))
	out, tr, err := s.RefineDiseqs(bg, paperfix.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDiseqs() != 0 || len(tr.Questions) != 0 {
		t.Fatalf("out=%v tr=%+v", out.Diseqs(), tr)
	}
}

func TestSimulatedUserModes(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q3())
	for _, mode := range []feedback.ErrorMode{
		feedback.NoError, feedback.IncompleteExplanation, feedback.WrongRelation,
		feedback.ForgottenExplanation, feedback.OverSpecific, feedback.UIConfusion,
	} {
		u := &feedback.SimulatedUser{Ev: ev, Target: target, Rng: rand.New(rand.NewSource(11))}
		exs, err := u.FormulateExamples(bg, 3, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := exs.Validate(); err != nil {
			t.Fatalf("%s produced invalid example-set: %v", mode, err)
		}
		switch mode {
		case feedback.ForgottenExplanation:
			if len(exs) != 2 {
				t.Fatalf("forgotten mode gave %d explanations", len(exs))
			}
		default:
			if len(exs) != 3 {
				t.Fatalf("%s gave %d explanations", mode, len(exs))
			}
		}
		if mode.String() == "" {
			t.Fatal("empty mode name")
		}
	}
	if feedback.ErrorMode(99).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}

// End-to-end pipeline on the running example: a correct simulated user
// formulating explanations for Q3, inference producing top-k candidates,
// and the feedback loop choosing a query extensionally equivalent to the
// target — the paper's headline workflow.
func TestEndToEndPipeline(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q3())
	u := &feedback.SimulatedUser{Ev: ev, Target: target, Rng: rand.New(rand.NewSource(3))}

	exs, err := u.FormulateExamples(bg, 2, feedback.NoError)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	cands, _, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates inferred")
	}
	unions := make([]*query.Union, len(cands))
	for i, c := range cands {
		unions[i] = c.Query
	}
	s := &feedback.Session{Ev: ev, Oracle: u, Ex: exs}
	idx, _, err := s.ChooseQuery(bg, unions)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Results(bg, unions[idx])
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Results(bg, target)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen query must at least reproduce the examples; with the small
	// running example the full result set should match.
	for _, e := range exs {
		if !containsStr(got, e.DistinguishedValue()) {
			t.Fatalf("chosen query misses example %s", e.DistinguishedValue())
		}
	}
	t.Logf("target results: %v", want)
	t.Logf("chosen results: %v", got)
	t.Logf("chosen query:\n%s", unions[idx].SPARQL())
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// The feedback loop must never eliminate the target when the oracle is
// exact: whatever it returns has the target's result set.
func TestFeedbackNeverEliminatesTarget(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	exs := paperfix.Explanations(o)
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	for seed := int64(0); seed < 5; seed++ {
		// Candidate order shuffled per seed.
		cands := []*query.Union{
			query.NewUnion(paperfix.Q1()),
			query.NewUnion(paperfix.Q2()),
			target,
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		s := &feedback.Session{Ev: ev, Oracle: &feedback.ExactOracle{Ev: ev, Target: target}, Ex: exs}
		idx, _, err := s.ChooseQuery(bg, cands)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Results(bg, cands[idx])
		if err != nil {
			t.Fatal(err)
		}
		want, err := ev.Results(bg, target)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: chose %v, want %v", seed, got, want)
		}
	}
}
