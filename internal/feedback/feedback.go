// Package feedback implements Section V of the paper: choosing a single
// query out of a set of candidates by asking a user about results of
// difference queries together with their provenance (Algorithm 3), and the
// follow-up interactive relaxation of disequality constraints.
package feedback

import (
	"context"
	"errors"
	"fmt"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/obs"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// Oracle abstracts the user: given a result of a difference query and its
// provenance with respect to the candidate that produced it, should the
// result (with that rationale) be part of the intended query's output? The
// context covers one question; oracles backed by a remote user (the service)
// block on it and must return its error when it is canceled.
type Oracle interface {
	ShouldInclude(ctx context.Context, res *eval.ResultWithProvenance) (bool, error)
}

// ExactOracle answers membership questions according to a known target
// query — the synthetic stand-in for the paper's proficient users.
type ExactOracle struct {
	Ev     *eval.Evaluator
	Target *query.Union
}

// ShouldInclude reports whether the value is a result of the target query.
func (o *ExactOracle) ShouldInclude(ctx context.Context, res *eval.ResultWithProvenance) (bool, error) {
	return o.Ev.HasResultValue(ctx, o.Target, res.Value)
}

// Question records one interaction of the feedback loop.
type Question struct {
	Kept, Dropped int // candidate indexes (into the original slice)
	Result        string
	Answer        bool
}

// Transcript is the full record of a feedback session.
type Transcript struct {
	Questions []Question
	// Undistinguished lists candidate index pairs whose difference queries
	// were empty in both directions (extensionally equivalent candidates).
	Undistinguished [][2]int
}

// Session drives the feedback loop over a fixed ontology.
type Session struct {
	Ev     *eval.Evaluator
	Oracle Oracle
	// Ex is the example-set used to derive each candidate's Q^all form.
	Ex provenance.ExampleSet
	// MaxQuestions bounds the number of oracle questions (0 = no bound).
	MaxQuestions int
}

// ChooseQuery implements Algorithm 3: it repeatedly takes a pair of
// remaining candidates, evaluates the difference Q_i^all − Q_j^no (the
// disequality-asymmetric form of Section V that lets one answer disqualify
// every form of the losing query), shows the oracle a sample result bound
// to Q_i^all with its provenance, and eliminates the refuted candidate.
// Pairs that cannot be distinguished in either direction leave the
// lower-indexed candidate in place. The returned index refers to the input
// slice.
//
// When MaxQuestions questions have been asked and more than one candidate
// remains, the leading candidate's index and the transcript are returned
// together with an error matching qerr.ErrMaxQuestions, so callers can
// distinguish a converged answer from a budget-truncated one.
func (s *Session) ChooseQuery(ctx context.Context, cands []*query.Union) (int, *Transcript, error) {
	if len(cands) == 0 {
		return -1, nil, fmt.Errorf("feedback: no candidates")
	}
	tr := &Transcript{}
	remaining := make([]int, len(cands))
	for i := range cands {
		remaining[i] = i
	}
	// Precompute the Q^all form of every candidate.
	all := make([]*query.Union, len(cands))
	for i, c := range cands {
		a, err := core.WithDiseqsUnion(ctx, c, s.Ex)
		if err != nil {
			return -1, nil, err
		}
		all[i] = a
	}

	for len(remaining) > 1 {
		if s.MaxQuestions > 0 && len(tr.Questions) >= s.MaxQuestions {
			return remaining[0], tr, fmt.Errorf(
				"feedback: %d candidates undecided after %d questions: %w",
				len(remaining), len(tr.Questions), qerr.ErrMaxQuestions)
		}
		i, j := remaining[0], remaining[1]
		// One question turn, spanning both difference directions and the
		// oracle round-trip (a remote user's think time is part of the turn).
		qctx, qsp := obs.StartSpan(ctx, "feedback.question")
		qsp.SetInt("remaining", int64(len(remaining)))
		verdict, q, err := s.distinguish(qctx, all[i], cands[j].WithoutDiseqs(), i, j)
		if err == nil && verdict == verdictUndecided {
			// Try the reversed difference (Example 5.5's second step).
			verdict, q, err = s.distinguish(qctx, all[j], cands[i].WithoutDiseqs(), j, i)
		}
		if err != nil {
			qsp.SetOutcome("error")
			qsp.Finish()
			return -1, nil, err
		}
		switch verdict {
		case verdictUndecided:
			// Extensionally equivalent: keep the first, drop the second.
			tr.Undistinguished = append(tr.Undistinguished, [2]int{i, j})
			remaining = removeValue(remaining, j)
			qsp.SetOutcome("undistinguished")
		default:
			tr.Questions = append(tr.Questions, *q)
			remaining = removeValue(remaining, q.Dropped)
			qsp.SetInt("kept", int64(q.Kept))
			qsp.SetInt("dropped", int64(q.Dropped))
			qsp.SetOutcome("answered")
		}
		qsp.Finish()
	}
	return remaining[0], tr, nil
}

type verdict int

const (
	verdictUndecided verdict = iota
	verdictDecided
)

// distinguish runs one difference question: candidate `keep` (its Q^all
// form) against candidate `drop` (its Q^no form). It returns
// verdictUndecided when the difference is empty, or when evaluating it
// exhausts the search budget (a hopelessly unselective candidate cannot be
// used to pose a question).
func (s *Session) distinguish(ctx context.Context, keepAll, dropNo *query.Union, keepIdx, dropIdx int) (verdict, *Question, error) {
	diff, err := s.Ev.Difference(ctx, keepAll, dropNo)
	if errors.Is(err, eval.ErrBudget) {
		return verdictUndecided, nil, nil
	}
	if err != nil {
		return verdictUndecided, nil, err
	}
	if len(diff) == 0 {
		return verdictUndecided, nil, nil
	}
	// SampleRand of Algorithm 3, made deterministic: take the first result.
	res, err := s.Ev.BindAndExplain(ctx, keepAll, diff[0])
	if err != nil {
		return verdictUndecided, nil, err
	}
	ans, err := s.Oracle.ShouldInclude(ctx, res)
	if err != nil {
		return verdictUndecided, nil, err
	}
	q := &Question{Result: res.Value, Answer: ans}
	if ans {
		q.Kept, q.Dropped = keepIdx, dropIdx
	} else {
		q.Kept, q.Dropped = dropIdx, keepIdx
	}
	return verdictDecided, q, nil
}

func removeValue(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
