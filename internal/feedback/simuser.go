package feedback

import (
	"context"
	"fmt"
	"math/rand"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/provenance"
	"questpro/internal/query"
	"questpro/internal/workload/sampling"
)

// ErrorMode enumerates the user mistakes observed in the paper's user study
// (Section VI-C, Figure 8 discussion).
type ErrorMode int

const (
	// NoError: the user formulates correct examples and explanations.
	NoError ErrorMode = iota
	// IncompleteExplanation: the user forgets part of an explanation (the
	// query-9 failure: an edge of the rationale is missing).
	IncompleteExplanation
	// WrongRelation: the user confuses the direction/relation in the
	// ontology and selects a different edge than intended (the query-9
	// arrow-direction failure).
	WrongRelation
	// ForgottenExplanation: the user forgets to input one explanation
	// entirely (the query-6 failure).
	ForgottenExplanation
	// OverSpecific: every explanation shares identical parts, so the
	// inferred query carries an extra constant (the Tarantino example).
	OverSpecific
	// UIConfusion: the user does not understand the UI and restarts (the
	// query-3 redo).
	UIConfusion
)

// String names the error mode.
func (m ErrorMode) String() string {
	switch m {
	case NoError:
		return "none"
	case IncompleteExplanation:
		return "incomplete-explanation"
	case WrongRelation:
		return "wrong-relation"
	case ForgottenExplanation:
		return "forgotten-explanation"
	case OverSpecific:
		return "over-specific"
	case UIConfusion:
		return "ui-confusion"
	default:
		return fmt.Sprintf("ErrorMode(%d)", int(m))
	}
}

// SimulatedUser stands in for the paper's nine SPARQL-proficient users: it
// formulates example-sets for a known target query — possibly committing
// one of the observed error modes — and answers feedback questions by
// target membership, except that a confused user (one who "did not fully
// understand the query", the paper's query-6 failure) sometimes answers
// wrongly.
type SimulatedUser struct {
	Ev     *eval.Evaluator
	Target *query.Union
	Rng    *rand.Rand
	// Confusion is the probability of answering a feedback question
	// incorrectly. Zero for a careful user.
	Confusion float64
}

// ShouldInclude answers feedback questions by target membership, flipped
// with probability Confusion.
func (u *SimulatedUser) ShouldInclude(ctx context.Context, res *eval.ResultWithProvenance) (bool, error) {
	ans, err := u.Ev.HasResultValue(ctx, u.Target, res.Value)
	if err != nil {
		return false, err
	}
	if u.Confusion > 0 && u.Rng.Float64() < u.Confusion {
		return !ans, nil
	}
	return ans, nil
}

// FormulateExamples samples n explanations for the target query, injecting
// the given error mode. UIConfusion yields a valid example-set (the error
// shows up as a restarted interaction, not as bad data).
func (u *SimulatedUser) FormulateExamples(ctx context.Context, n int, mode ErrorMode) (provenance.ExampleSet, error) {
	s := sampling.New(u.Ev, u.Target, u.Rng)
	switch mode {
	case ForgottenExplanation:
		if n > 2 {
			n--
		}
		return s.ExampleSet(ctx, n)
	case OverSpecific:
		return u.overSpecificExamples(ctx, s, n)
	case IncompleteExplanation, WrongRelation:
		exs, err := s.ExampleSet(ctx, n)
		if err != nil {
			return nil, err
		}
		idx := u.Rng.Intn(len(exs))
		broken, err := u.breakExplanation(exs[idx], mode)
		if err != nil {
			return nil, err
		}
		exs[idx] = broken
		return exs, nil
	default:
		return s.ExampleSet(ctx, n)
	}
}

// overSpecificExamples biases every explanation toward the first one's
// provenance, maximizing shared constants.
func (u *SimulatedUser) overSpecificExamples(ctx context.Context, s *sampling.Sampler, n int) (provenance.ExampleSet, error) {
	rs, err := s.Results(ctx)
	if err != nil {
		return nil, err
	}
	if len(rs) < n {
		return nil, fmt.Errorf("feedback: target has %d results, need %d", len(rs), n)
	}
	picks := u.Rng.Perm(len(rs))[:n]
	first, err := s.Explain(ctx, rs[picks[0]])
	if err != nil {
		return nil, err
	}
	out := provenance.ExampleSet{first}
	for _, idx := range picks[1:] {
		ex, err := s.ExplainSharing(ctx, rs[idx], first.Graph)
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	return out, nil
}

// breakExplanation injects a structural mistake into one explanation.
func (u *SimulatedUser) breakExplanation(ex provenance.Explanation, mode ErrorMode) (provenance.Explanation, error) {
	g := ex.Graph
	if g.NumEdges() < 2 {
		return ex, nil // too small to break while keeping the example usable
	}
	switch mode {
	case IncompleteExplanation:
		// Drop one random edge (not the last remaining one).
		drop := graph.EdgeID(u.Rng.Intn(g.NumEdges()))
		var keep []graph.EdgeID
		for _, e := range g.Edges() {
			if e.ID != drop {
				keep = append(keep, e.ID)
			}
		}
		sub, err := g.Subgraph(keep, []graph.NodeID{ex.Distinguished})
		if err != nil {
			return provenance.Explanation{}, err
		}
		return provenance.NewByValue(sub, ex.DistinguishedValue())
	case WrongRelation:
		// Replace one random edge with a different ontology edge incident
		// to the same endpoint — the user picked a neighboring relation.
		o := u.Ev.Ontology()
		victim := g.Edge(graph.EdgeID(u.Rng.Intn(g.NumEdges())))
		fromVal := g.Node(victim.From).Value
		oFrom, ok := o.NodeByValue(fromVal)
		if !ok {
			return ex, nil
		}
		var alternatives []graph.EdgeID
		for _, eid := range o.OutEdges(oFrom.ID) {
			oe := o.Edge(eid)
			toVal := o.Node(oe.To).Value
			if gn, ok := g.NodeByValue(toVal); ok && gn.ID == victim.To && oe.Label == victim.Label {
				continue // the original edge
			}
			alternatives = append(alternatives, eid)
		}
		for _, eid := range o.InEdges(oFrom.ID) {
			alternatives = append(alternatives, eid)
		}
		if len(alternatives) == 0 {
			return ex, nil
		}
		alt := o.Edge(alternatives[u.Rng.Intn(len(alternatives))])
		rebuilt := graph.New()
		for _, e := range g.Edges() {
			if e.ID == victim.ID {
				continue
			}
			if _, err := rebuilt.AddTriple(g.Node(e.From).Value, e.Label, g.Node(e.To).Value); err != nil {
				return provenance.Explanation{}, err
			}
		}
		fv := o.Node(alt.From).Value
		tv := o.Node(alt.To).Value
		if f, okF := rebuilt.NodeByValue(fv); okF {
			if t, okT := rebuilt.NodeByValue(tv); okT && rebuilt.HasEdgeTriple(f.ID, t.ID, alt.Label) {
				return provenance.NewByValue(rebuilt, ex.DistinguishedValue())
			}
		}
		if _, err := rebuilt.AddTriple(fv, alt.Label, tv); err != nil {
			return provenance.Explanation{}, err
		}
		if _, ok := rebuilt.NodeByValue(ex.DistinguishedValue()); !ok {
			if _, err := rebuilt.EnsureNode(ex.DistinguishedValue(), ""); err != nil {
				return provenance.Explanation{}, err
			}
		}
		return provenance.NewByValue(rebuilt, ex.DistinguishedValue())
	default:
		return ex, nil
	}
}
