package feedback

import (
	"context"
	"fmt"

	"questpro/internal/query"
)

// RefineDiseqs implements the disequality-relaxation dialogue at the end of
// Section V. Starting from the chosen pattern with all d inferred
// disequalities, it repeatedly offers to drop constraints: Q_j carries the
// current constraint set, Q_i the set with some non-approved constraints
// removed, and the user is shown a result of Q_i − Q_j. A "yes" (the extra
// results are wanted) commits the removal; a "no" marks every removed
// constraint as approved — it stays in the final query and is never asked
// about again (the paper's memoization). When single removals cannot be
// distinguished, pairs are tried, then triples, and so on. Exhausting
// MaxQuestions here is not an error: the current constraint set is a valid
// final query, just less relaxed than an unbounded dialogue might reach.
func (s *Session) RefineDiseqs(ctx context.Context, q *query.Simple) (*query.Simple, *Transcript, error) {
	if q == nil {
		return nil, nil, fmt.Errorf("feedback: nil query")
	}
	tr := &Transcript{}
	current := append([]query.Diseq(nil), q.Diseqs()...)
	approved := map[query.Diseq]bool{}

	for {
		if s.MaxQuestions > 0 && len(tr.Questions) >= s.MaxQuestions {
			break
		}
		removable := removableDiseqs(current, approved)
		if len(removable) == 0 {
			break
		}
		progressed := false
		// Try dropping 1, 2, ... constraints at a time.
	sizes:
		for size := 1; size <= len(removable); size++ {
			for _, drop := range combinations(removable, size) {
				if s.MaxQuestions > 0 && len(tr.Questions) >= s.MaxQuestions {
					break sizes
				}
				relaxed := without(current, drop)
				qi := query.NewUnion(q.WithDiseqs(relaxed))
				qj := query.NewUnion(q.WithDiseqs(current))
				diff, err := s.Ev.Difference(ctx, qi, qj)
				if err != nil {
					return nil, nil, err
				}
				if len(diff) == 0 {
					continue
				}
				res, err := s.Ev.BindAndExplain(ctx, qi, diff[0])
				if err != nil {
					return nil, nil, err
				}
				ans, err := s.Oracle.ShouldInclude(ctx, res)
				if err != nil {
					return nil, nil, err
				}
				tr.Questions = append(tr.Questions, Question{Result: res.Value, Answer: ans})
				if ans {
					current = relaxed
				} else {
					for _, d := range drop {
						approved[d] = true
					}
				}
				progressed = true
				break sizes
			}
		}
		if !progressed {
			break // every relaxation is extensionally invisible
		}
	}
	return q.WithDiseqs(current), tr, nil
}

// removableDiseqs lists the constraints that are still up for relaxation.
func removableDiseqs(current []query.Diseq, approved map[query.Diseq]bool) []query.Diseq {
	var out []query.Diseq
	for _, d := range current {
		if !approved[d] {
			out = append(out, d)
		}
	}
	return out
}

// without returns current minus the dropped constraints.
func without(current, drop []query.Diseq) []query.Diseq {
	skip := map[query.Diseq]bool{}
	for _, d := range drop {
		skip[d] = true
	}
	var out []query.Diseq
	for _, d := range current {
		if !skip[d] {
			out = append(out, d)
		}
	}
	return out
}

// combinations enumerates all size-k subsets in deterministic order.
func combinations(xs []query.Diseq, k int) [][]query.Diseq {
	var out [][]query.Diseq
	var rec func(start int, acc []query.Diseq)
	rec = func(start int, acc []query.Diseq) {
		if len(acc) == k {
			out = append(out, append([]query.Diseq(nil), acc...))
			return
		}
		for i := start; i < len(xs); i++ {
			rec(i+1, append(acc, xs[i]))
		}
	}
	rec(0, nil)
	return out
}
