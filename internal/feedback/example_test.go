package feedback_test

import (
	"fmt"
	"log"

	"questpro/internal/eval"
	"questpro/internal/feedback"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// ExampleSession_ChooseQuery replays the elimination step of Example 5.5:
// between the broad chain query Q1 and the intended Union(Q3, Q4), one
// provenance question settles it.
func ExampleSession_ChooseQuery() {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q3(), paperfix.Q4())

	session := &feedback.Session{
		Ev:     ev,
		Oracle: &feedback.ExactOracle{Ev: ev, Target: target},
		Ex:     paperfix.Explanations(o),
	}
	candidates := []*query.Union{
		query.NewUnion(paperfix.Q1()), // broader: any Erdős-number-3-ish chain
		target,
	}
	idx, tr, err := session.ChooseQuery(bg, candidates)
	if err != nil {
		log.Fatal(err)
	}
	q := tr.Questions[0]
	fmt.Printf("asked about %s, answer %v\n", q.Result, q.Answer)
	fmt.Printf("chose candidate %d after %d question(s)\n", idx, len(tr.Questions))
	// Output:
	// asked about Nina, answer false
	// chose candidate 1 after 1 question(s)
}
