package eval

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"questpro/internal/conc"
	"questpro/internal/graph"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// Graph reads are safe for concurrent use (the ontology is append-only and
// the evaluator never mutates it), so the per-result existence probes of
// ResultsSimple parallelize embarrassingly. ResultsParallel exploits that
// for large candidate sets; results are identical to ResultsSimple.

// parallelThreshold is the candidate-count below which the sequential path
// is used (goroutine overhead dominates tiny probe sets).
const parallelThreshold = 64

// ResultsParallel is ResultsSimple with the per-candidate existence probes
// fanned out over workers goroutines (resolved through conc.Workers: <= 0
// selects GOMAXPROCS, the default shared with core.Options.Workers). The
// first error (budget exhaustion or cancellation) wins; partial results are
// discarded on error. Workers also poll the context between probes so a
// canceled request stops enqueueing work.
func (ev *Evaluator) ResultsParallel(ctx context.Context, q *query.Simple, workers int) ([]string, error) {
	proj := q.Projected()
	if proj == query.NoNode {
		return nil, errNoProjected
	}
	pn := q.Node(proj)
	if !pn.Term.IsVar {
		return ev.ResultsSimple(ctx, q)
	}
	candidates := ev.projectedCandidates(q)
	if len(candidates) < parallelThreshold {
		return ev.ResultsSimple(ctx, q)
	}
	workers = conc.Workers(workers)
	if workers > len(candidates) {
		workers = len(candidates)
	}

	var (
		mu       sync.Mutex
		firstErr error
		out      []string
		next     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(candidates) {
					mu.Unlock()
					return
				}
				c := candidates[next]
				next++
				mu.Unlock()

				var ok bool
				err := ctx.Err()
				if err != nil {
					err = qerr.Canceled(err)
				} else {
					ok, err = ev.hasAnyMatch(ctx, q, map[query.NodeID]graph.NodeID{proj: c})
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil && ok {
					out = append(out, ev.o.Node(c).Value)
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if errors.Is(firstErr, qerr.ErrBudgetExhausted) {
			// Degraded: keep the values probed before exhaustion. The
			// subset is scheduling-dependent, unlike the sequential path —
			// degraded output is best-effort by definition.
			sort.Strings(out)
			return out, firstErr
		}
		return nil, firstErr
	}
	sort.Strings(out)
	return out, nil
}

// ResultsUnionParallel evaluates a union with the branches fanned out over
// workers goroutines (resolved through conc.Workers; <= 0 selects
// GOMAXPROCS) and each branch evaluated with ResultsParallel, so a union of
// many small branches — each below parallelThreshold — still uses the pool.
// Per-branch result lists are deduplicated into the union afterwards in
// branch order; output (sorted, deduplicated) and error behavior (the error
// of the earliest failing branch wins, later results are discarded) are
// identical to evaluating the branches sequentially.
func (ev *Evaluator) ResultsUnionParallel(ctx context.Context, u *query.Union, workers int) ([]string, error) {
	branches := u.Branches()
	workers = conc.Workers(workers)
	pool := workers
	if pool > len(branches) {
		pool = len(branches)
	}

	perBranch := make([][]string, len(branches))
	errs := make([]error, len(branches))
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(branches) {
					return
				}
				perBranch[i], errs[i] = ev.ResultsParallel(ctx, branches[i], workers)
			}
		}()
	}
	wg.Wait()
	var budgetErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, qerr.ErrBudgetExhausted) {
			if budgetErr == nil {
				budgetErr = err
			}
			continue
		}
		return nil, err
	}
	seen := map[string]bool{}
	for _, rs := range perBranch {
		for _, r := range rs {
			seen[r] = true
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out, budgetErr
}
