package eval

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"questpro/internal/conc"
	"questpro/internal/graph"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// Graph reads are safe for concurrent use (the ontology is append-only and
// the evaluator never mutates it), so the per-result existence probes of
// ResultsSimple parallelize embarrassingly. probeSharded exploits that for
// large candidate sets: each worker owns a prober (its own Match buffers),
// verdicts are recorded per candidate index, and the merge replays the
// candidate list in order — so output and error choice are identical to
// the sequential loop regardless of scheduling.

// parallelThreshold is the candidate-count below which the sequential path
// is used (goroutine overhead dominates tiny probe sets).
const parallelThreshold = 64

// probeSharded fans the per-candidate existence probes out over workers
// goroutines. hit/err verdicts are indexed by candidate, and the merge
// scans candidates in index order, so the returned values — and, on
// failure, the chosen error — are exactly the sequential loop's: the
// earliest-candidate error wins, because the index counter hands
// candidates out in order and a pulled probe always completes, so every
// candidate before the earliest error has a recorded verdict. On a
// qerr.ErrBudgetExhausted error the hits before the failing candidate are
// returned (the sequential degraded prefix); other errors discard results.
func (ev *Evaluator) probeSharded(ctx context.Context, q *query.Simple, proj query.NodeID, candidates []graph.NodeID, workers int) ([]string, error) {
	if workers > len(candidates) {
		workers = len(candidates)
	}
	hits := make([]bool, len(candidates))
	errs := make([]error, len(candidates))
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := newProber(ev, q, proj)
			for {
				// The failure check precedes the pull so a pulled index is
				// always probed — the merge's in-order replay relies on every
				// candidate before the earliest error having a verdict.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(candidates) {
					return
				}
				ok, err := p.probe(ctx, candidates[i])
				hits[i], errs[i] = ok, err
				if err != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	var out []string
	for i, c := range candidates {
		if err := errs[i]; err != nil {
			if errors.Is(err, qerr.ErrBudgetExhausted) {
				sort.Strings(out)
				return out, err
			}
			return nil, err
		}
		if hits[i] {
			out = append(out, ev.o.Node(c).Value)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ResultsParallel is ResultsSimple with the per-candidate existence probes
// fanned out over workers goroutines (resolved through conc.Workers: <= 0
// selects GOMAXPROCS, the default shared with core.Options.Workers),
// regardless of the evaluator's own Workers setting. Output and error
// behavior are identical to ResultsSimple — the sharded merge replays the
// candidate list in order — except that under a shared guard meter the
// candidate whose probe observes the exhaustion is scheduling-dependent,
// so the degraded prefix returned alongside a budget error may differ
// between runs (degraded output is best-effort by definition).
func (ev *Evaluator) ResultsParallel(ctx context.Context, q *query.Simple, workers int) ([]string, error) {
	proj := q.Projected()
	if proj == query.NoNode {
		return nil, errNoProjected
	}
	pn := q.Node(proj)
	if !pn.Term.IsVar {
		return ev.ResultsSimple(ctx, q)
	}
	candidates := ev.projectedCandidates(q)
	workers = conc.Workers(workers)
	if len(candidates) < parallelThreshold || workers <= 1 {
		return ev.probeSeq(ctx, q, proj, candidates)
	}
	return ev.probeSharded(ctx, q, proj, candidates, workers)
}

// ResultsUnionParallel evaluates a union with the branches fanned out over
// workers goroutines (resolved through conc.Workers; <= 0 selects
// GOMAXPROCS) and each branch evaluated with ResultsParallel, so a union of
// many small branches — each below parallelThreshold — still uses the pool.
// Per-branch result lists are deduplicated into the union afterwards in
// branch order; output (sorted, deduplicated) and error behavior (the error
// of the earliest failing branch wins, later results are discarded) are
// identical to evaluating the branches sequentially.
func (ev *Evaluator) ResultsUnionParallel(ctx context.Context, u *query.Union, workers int) ([]string, error) {
	branches := u.Branches()
	workers = conc.Workers(workers)
	pool := workers
	if pool > len(branches) {
		pool = len(branches)
	}

	perBranch := make([][]string, len(branches))
	errs := make([]error, len(branches))
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(branches) {
					return
				}
				perBranch[i], errs[i] = ev.ResultsParallel(ctx, branches[i], workers)
			}
		}()
	}
	wg.Wait()
	var budgetErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, qerr.ErrBudgetExhausted) {
			if budgetErr == nil {
				budgetErr = err
			}
			continue
		}
		return nil, err
	}
	seen := map[string]bool{}
	for _, rs := range perBranch {
		for _, r := range rs {
			seen[r] = true
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out, budgetErr
}
