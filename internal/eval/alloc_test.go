//go:build !race

package eval_test

import (
	"testing"

	"questpro/internal/eval"
)

// The sequential probe loop reuses one prober across all candidates, so the
// allocation count of a ResultsSimple call is dominated by the per-call
// setup (candidate derivation, the prober, the output slice) and stays far
// below one allocation per candidate. The fixture probes a few hundred
// candidates; the pre-prober implementation allocated a fresh search state,
// match buffers, and a pre-binding map for every one of them (thousands of
// allocations per call).
func TestResultsSimpleAllocationDiet(t *testing.T) {
	o, q := shardedFixture()
	ev := eval.New(o)
	ev.Workers = 1
	if _, err := ev.ResultsSimple(bg, q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ev.ResultsSimple(bg, q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Fatalf("ResultsSimple allocated %.0f objects per call; the probe loop is allocating per candidate again", allocs)
	}
}
