package eval_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"questpro/internal/eval"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// These tests pin the exact-cap contract of ProvenanceOf/ProvenanceOfUnion
// with limit > 0 — the cap counts DISTINCT provenance graphs and a capped run
// is a clean success (nil error) — and the partial-plus-error contract when
// the enumeration is cancelled mid-flight.

// fanQuery projects ?h over ?h -p-> ?y, so "hub" is the single result of a
// hubGraph and every leaf contributes one distinct provenance graph.
func fanQuery() *query.Simple {
	q := query.NewSimple()
	h := q.MustEnsureNode(query.Var("h"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(h, y, "p")
	q.SetProjected(h)
	return q
}

func TestProvenanceOfExactCap(t *testing.T) {
	g := hubGraph(t, 12)
	ev := eval.New(g)
	q := fanQuery()

	all, err := ev.ProvenanceOf(bg, q, "hub", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("limit=0 returned %d graphs, want all 12", len(all))
	}

	for _, limit := range []int{1, 2, 5, 12, 40} {
		gs, err := ev.ProvenanceOf(bg, q, "hub", limit)
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		want := limit
		if want > 12 {
			want = 12
		}
		if len(gs) != want {
			t.Fatalf("limit=%d returned %d graphs, want exactly %d", limit, len(gs), want)
		}
	}
}

func TestProvenanceOfUnionExactCapAcrossBranches(t *testing.T) {
	g := hubGraph(t, 6)
	// A second branch reaches the same leaves through a different label, so
	// its provenance graphs are distinct from the first branch's.
	for i := 0; i < 6; i++ {
		if _, err := g.AddTriple("hub", "q", fmt.Sprintf("leaf%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	b2 := query.NewSimple()
	h := b2.MustEnsureNode(query.Var("h"), "")
	y := b2.MustEnsureNode(query.Var("y"), "")
	b2.MustAddEdge(h, y, "q")
	b2.SetProjected(h)
	u := query.NewUnion(fanQuery(), b2)
	ev := eval.New(g)

	all, err := ev.ProvenanceOfUnion(bg, u, "hub", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("limit=0 returned %d graphs, want 12 (6 per branch)", len(all))
	}
	// A limit inside the first branch stops there; a limit past it spills
	// into the second branch for exactly the remainder.
	for _, limit := range []int{1, 4, 6, 9, 12, 99} {
		gs, err := ev.ProvenanceOfUnion(bg, u, "hub", limit)
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		want := limit
		if want > 12 {
			want = 12
		}
		if len(gs) != want {
			t.Fatalf("limit=%d returned %d graphs, want exactly %d", limit, len(gs), want)
		}
	}
}

// flipCtx reports nil from Err() for the first n calls, then a cancellation —
// a deterministic stand-in for "the deadline fires mid-enumeration". The
// matcher polls once on entry and then every 1024 steps, so the flip count
// selects how deep into the search the cut lands.
type flipCtx struct {
	context.Context
	remaining atomic.Int64
}

func newFlipCtx(n int64) *flipCtx {
	c := &flipCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *flipCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *flipCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestProvenanceOfCancellationMidEnumeration(t *testing.T) {
	// 3000 leaves: the matcher crosses its polling quantum several times, so
	// a context flipping to Canceled partway is observed in-search. Flip on
	// the second in-search poll (entry poll + 2), well before the 3000th
	// match.
	g := hubGraph(t, 3000)
	ev := eval.New(g)

	ctx := newFlipCtx(2)
	gs, err := ev.ProvenanceOf(ctx, fanQuery(), "hub", 0)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(gs) == 0 {
		t.Fatal("mid-enumeration cancellation discarded the graphs gathered so far")
	}
	if len(gs) >= 3000 {
		t.Fatalf("cancellation mid-enumeration still returned all %d graphs", len(gs))
	}
}

func TestProvenanceOfUnionCancellationKeepsEarlierBranches(t *testing.T) {
	g := hubGraph(t, 3000)
	for i := 0; i < 3000; i++ {
		if _, err := g.AddTriple("hub", "q", fmt.Sprintf("leaf%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	b2 := query.NewSimple()
	h := b2.MustEnsureNode(query.Var("h"), "")
	y := b2.MustEnsureNode(query.Var("y"), "")
	b2.MustAddEdge(h, y, "q")
	b2.SetProjected(h)
	u := query.NewUnion(fanQuery(), b2)

	// The first branch finishes within 3 Err polls; a budget of 5 lets it
	// complete and cancels the second branch mid-enumeration.
	ctx := newFlipCtx(5)
	gs, err := eval.New(g).ProvenanceOfUnion(ctx, u, "hub", 0)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(gs) < 3000 {
		t.Fatalf("cancellation in the second branch lost the first branch's graphs (%d < 3000)", len(gs))
	}
	if len(gs) >= 6000 {
		t.Fatalf("cancellation still returned all graphs (%d)", len(gs))
	}
}

// An already-cancelled context yields no graphs and the canonical error.
func TestProvenanceOfAlreadyCancelled(t *testing.T) {
	g := hubGraph(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gs, err := eval.New(g).ProvenanceOf(ctx, fanQuery(), "hub", 0)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(gs) != 0 {
		t.Fatalf("pre-cancelled enumeration produced %d graphs", len(gs))
	}
}
