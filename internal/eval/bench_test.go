package eval_test

import (
	"math/rand"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// benchOntology is a mid-sized random labeled graph for matcher benchmarks.
func benchOntology() *graph.Graph {
	rng := rand.New(rand.NewSource(17))
	return graph.RandomOntology(rng, graph.RandomConfig{
		Nodes:  3000,
		Edges:  12000,
		Labels: []string{"p", "q", "r", "s"},
		Types:  []string{"A", "B", "C"},
	})
}

// chain builds a length-n variable chain query anchored on a constant.
func chain(o *graph.Graph, n int) *query.Simple {
	q := query.NewSimple()
	anchor := q.MustEnsureNode(query.Const(o.Node(0).Value), "")
	prev := anchor
	for i := 0; i < n; i++ {
		next := q.FreshVar("")
		q.MustAddEdge(prev, next, "p")
		prev = next
	}
	if err := q.SetProjected(prev); err != nil {
		panic(err)
	}
	return q
}

func BenchmarkResultsChain3(b *testing.B) {
	o := benchOntology()
	ev := eval.New(o)
	q := chain(o, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ResultsSimple(bg, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResultsStar(b *testing.B) {
	o := benchOntology()
	ev := eval.New(o)
	q := query.NewSimple()
	center := q.FreshVar("")
	for _, label := range []string{"p", "q", "r"} {
		leaf := q.FreshVar("")
		q.MustAddEdge(center, leaf, label)
	}
	if err := q.SetProjected(center); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ResultsSimple(bg, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResultsErdosChain(b *testing.B) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := paperfix.Q1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ResultsSimple(bg, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProvenanceOf(b *testing.B) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := paperfix.Q1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ProvenanceOf(bg, q, "Alice", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDifference(b *testing.B) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	a := query.NewUnion(paperfix.Q1())
	c := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Difference(bg, a, c); err != nil {
			b.Fatal(err)
		}
	}
}
