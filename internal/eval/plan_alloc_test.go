//go:build !race

package eval

import (
	"context"
	"testing"

	"questpro/internal/graph"
	"questpro/internal/query"
)

// planAllocFixture builds a star-join query over a small ontology; enough
// edges that a per-iteration q.Edges() copy inside the selection loop would
// show up immediately in the allocation count.
func planAllocFixture() (*graph.Graph, *query.Simple) {
	o := graph.New()
	o.MustAddTriple("hub", "p0", "s0")
	for i := 0; i < 7; i++ {
		o.MustAddTriple("hub", "p"+string(rune('1'+i)), "t"+string(rune('0'+i)))
	}
	q := query.NewSimple()
	hub := q.MustEnsureNode(query.Var("h"), "")
	for i := 0; i < 8; i++ {
		leaf := q.MustEnsureNode(query.Var("l"+string(rune('0'+i))), "")
		q.MustAddEdge(hub, leaf, "p"+string(rune('0'+i)))
	}
	if err := q.SetProjected(hub); err != nil {
		panic(err)
	}
	return o, q
}

// planEdges formerly re-invoked the copying q.Edges() accessor inside its
// selection loop — O(E²) allocations per plan. The id-indexed rewrite
// allocates exactly its three output/mark buffers regardless of query size.
func TestPlanEdgesAllocations(t *testing.T) {
	_, q := planAllocFixture()
	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}
	initial[q.Projected()] = 0
	allocs := testing.AllocsPerRun(100, func() {
		if p := planEdges(q, initial); len(p) != q.NumEdges() {
			t.Fatalf("plan covers %d edges, want %d", len(p), q.NumEdges())
		}
	})
	if allocs > 3 {
		t.Fatalf("planEdges allocated %.0f objects per call, want <= 3 (plan, used, bound); the selection loop is copying accessors again", allocs)
	}
}

// With the sync.Pool scratch arena, a warm MatchesInto performs no steady-
// state allocation beyond what the visit callback itself does. The bound is
// loose only because a GC between runs may flush the pool.
func TestMatchesIntoPooledAllocs(t *testing.T) {
	o, q := planAllocFixture()
	ev := New(o)
	ctx := context.Background()
	count := 0
	visit := func(*Match) bool { count++; return true }
	if err := ev.MatchesInto(ctx, q, nil, visit); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := ev.MatchesInto(ctx, q, nil, visit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("warm MatchesInto allocated %.1f objects per call; the scratch pool is not being reused", allocs)
	}
}
