package eval

import (
	"context"
	"fmt"

	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// prober runs the per-candidate existence probes behind ResultsSimple with
// the per-query work hoisted out of the loop: the query's constants are
// resolved against the ontology once, the backtracking plan is computed
// once (planEdges depends only on which nodes are bound, and every probe
// binds exactly the constants plus the projected node), and the match
// buffers are reused across probes — after construction a probe performs
// no allocation. A prober serves one goroutine at a time; the parallel
// paths build one per worker.
type prober struct {
	ev      *Evaluator
	q       *query.Simple
	proj    query.NodeID
	missing bool           // a query constant is absent from the ontology: no matches, ever
	base    []graph.NodeID // constant bindings; graph.NoNode elsewhere
	st      state
	found   bool
}

// newProber hoists the probe-invariant setup of MatchesInto for query q
// with the projected node as the sole pre-binding.
func newProber(ev *Evaluator, q *query.Simple, proj query.NodeID) *prober {
	p := &prober{ev: ev, q: q, proj: proj}
	n := q.NumNodes()
	p.base = make([]graph.NodeID, n)
	for i := range p.base {
		p.base[i] = graph.NoNode
	}
	for i := 0; i < n; i++ {
		qn := q.Node(query.NodeID(i))
		if qn.Term.IsVar {
			continue
		}
		on, ok := ev.o.NodeByValue(qn.Term.Value)
		if !ok {
			p.missing = true
			return p
		}
		p.base[qn.ID] = on.ID
	}
	planNodes := append([]graph.NodeID(nil), p.base...)
	planNodes[proj] = 0 // any bound value: planEdges only tests != NoNode
	plan := planEdges(q, planNodes)
	p.st = state{
		ev:      ev,
		q:       q,
		plan:    plan,
		planLab: resolvePlanLabels(nil, ev.o, q, plan),
		match:   Match{Nodes: make([]graph.NodeID, n), Edges: make([]graph.EdgeID, q.NumEdges())},
		max:     ev.MaxSteps,
		visit:   func(*Match) bool { p.found = true; return false },
	}
	if p.st.max <= 0 {
		p.st.max = DefaultMaxSteps
	}
	return p
}

// probe reports whether q has a match with the projected node bound to c.
// It replicates the entry protocol and error mapping of MatchesInto /
// hasAnyMatch exactly — up-front context poll, per-probe guard charge,
// fault point, missing-constant and type-compatibility short-circuits, and
// a found match overriding any budget or cancellation error — so swapping
// the probe loop over to a prober changes no observable behavior.
func (p *prober) probe(ctx context.Context, c graph.NodeID) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, qerr.Canceled(err)
	}
	if !p.ev.meter.ChargeSteps(1) {
		return false, p.ev.meter.Err()
	}
	if err := faults.Fire(faults.MatcherStep); err != nil {
		return false, fmt.Errorf("eval: matcher: %w", err)
	}
	if p.missing {
		return false, nil
	}
	if !p.ev.nodeCompatible(p.q.Node(p.proj), c) {
		return false, nil
	}
	st := &p.st
	copy(st.match.Nodes, p.base)
	st.match.Nodes[p.proj] = c
	for i := range st.match.Edges {
		st.match.Edges[i] = graph.NoEdge
	}
	st.ctx = ctx
	st.steps = 0
	st.done, st.canceled, st.exhausted = false, false, false
	st.fault = nil
	st.found = 0
	p.found = false
	st.rec(0)
	if p.found {
		return true, nil // budget/cancel errors after a find are irrelevant
	}
	switch {
	case st.canceled:
		return false, qerr.Canceled(ctx.Err())
	case st.fault != nil:
		return false, fmt.Errorf("eval: matcher: %w", st.fault)
	case st.exhausted:
		return false, p.ev.meter.Err()
	case st.steps >= st.max:
		return false, ErrBudget
	}
	return false, nil
}
