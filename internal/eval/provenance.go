package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/obs"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// MatchImage materializes the image μ(Q) of a match — the provenance graph
// of Definition 2.4 — as a fresh subgraph of the ontology. Unbound (isolated)
// query nodes and unmatched OPTIONAL edges are omitted.
func (ev *Evaluator) MatchImage(q *query.Simple, m *Match) (*graph.Graph, error) {
	var edges []graph.EdgeID
	for qe, oe := range m.Edges {
		if oe == graph.NoEdge {
			if q.IsOptional(query.EdgeID(qe)) {
				continue // unmatched OPTIONAL edge: absent from the image
			}
			return nil, fmt.Errorf("eval: incomplete match (unbound edge)")
		}
		edges = append(edges, oe)
	}
	var nodes []graph.NodeID
	for _, on := range m.Nodes {
		if on != graph.NoNode {
			nodes = append(nodes, on)
		}
	}
	return ev.o.Subgraph(edges, nodes)
}

// ProvenanceOf computes prov(res) with respect to a simple query: the
// distinct image subgraphs over all matches yielding the result value
// (Definition 2.4). limit > 0 caps the number of distinct graphs returned;
// once the cap is reached the enumeration stops cleanly (nil error). If the
// search is cut short — cancellation, budget/guard exhaustion — the graphs
// gathered so far are returned alongside the error, so callers can degrade
// instead of discarding partial provenance. The graphs are returned in a
// deterministic order (sorted by signature).
func (ev *Evaluator) ProvenanceOf(ctx context.Context, q *query.Simple, value string, limit int) (_ []*graph.Graph, err error) {
	ctx, sp := obs.StartSpan(ctx, "eval.provenance")
	var out []*graph.Graph
	if sp != nil {
		defer func() {
			sp.SetInt("graphs", int64(len(out)))
			if err != nil {
				sp.SetOutcome("error")
			} else {
				sp.SetOutcome("ok")
			}
			sp.Finish()
		}()
	}
	proj := q.Projected()
	if proj == query.NoNode {
		return nil, errNoProjected
	}
	pn := q.Node(proj)
	var pre map[query.NodeID]graph.NodeID
	if pn.Term.IsVar {
		on, ok := ev.o.NodeByValue(value)
		if !ok {
			return nil, nil
		}
		if !ev.nodeCompatible(pn, on.ID) {
			return nil, nil
		}
		pre = map[query.NodeID]graph.NodeID{proj: on.ID}
	} else if pn.Term.Value != value {
		return nil, nil
	}

	type entry struct {
		sig string
		g   *graph.Graph
	}
	var entries []entry
	seen := map[string]bool{}
	var imgErr error
	err = ev.MatchesInto(ctx, q, pre, func(m *Match) bool {
		if e := faults.Fire(faults.ProvenanceIO); e != nil {
			imgErr = fmt.Errorf("eval: provenance image: %w", e)
			return false
		}
		img, e := ev.MatchImage(q, m)
		if e != nil {
			imgErr = e
			return false
		}
		sig := img.Signature()
		if !seen[sig] {
			if !ev.meter.ChargeBytes(int64(img.NumNodes()+img.NumEdges()) * graphBytes) {
				imgErr = ev.meter.Err()
				return false
			}
			seen[sig] = true
			entries = append(entries, entry{sig, img})
		}
		return limit <= 0 || len(entries) < limit
	})
	if imgErr != nil {
		err = imgErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].sig < entries[j].sig })
	out = make([]*graph.Graph, len(entries))
	for i, e := range entries {
		out[i] = e.g
	}
	if len(out) == 0 {
		out = nil
	}
	return out, err
}

// ProvenanceOfUnion computes prov(res) for a union query: the union of the
// branch provenances (Section II-B). limit > 0 caps the total count. Like
// ProvenanceOf, a cut-short enumeration returns the graphs gathered so far
// alongside the error.
func (ev *Evaluator) ProvenanceOfUnion(ctx context.Context, u *query.Union, value string, limit int) ([]*graph.Graph, error) {
	var out []*graph.Graph
	seen := map[string]bool{}
	for _, b := range u.Branches() {
		rem := 0
		if limit > 0 {
			rem = limit - len(out)
			if rem <= 0 {
				break
			}
		}
		gs, err := ev.ProvenanceOf(ctx, b, value, rem)
		for _, g := range gs {
			sig := g.Signature()
			if !seen[sig] {
				seen[sig] = true
				out = append(out, g)
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ResultWithProvenance pairs a query result with one of its provenance
// graphs; the "bind then explain" step of Algorithm 3 (lines 7-8).
type ResultWithProvenance struct {
	Value      string
	Provenance *graph.Graph
}

// BindAndExplain binds a result value to the union query (the bind(Q, res)
// of Algorithm 3) and returns the value with its first provenance graph. A
// guard-exhausted enumeration that still produced a graph is served as a
// normal answer (one explanation is all this needs).
func (ev *Evaluator) BindAndExplain(ctx context.Context, u *query.Union, value string) (*ResultWithProvenance, error) {
	gs, err := ev.ProvenanceOfUnion(ctx, u, value, 1)
	if len(gs) == 0 {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("eval: %q is not a result of the query", value)
	}
	if err != nil && !errors.Is(err, qerr.ErrBudgetExhausted) {
		return nil, err
	}
	return &ResultWithProvenance{Value: value, Provenance: gs[0]}, nil
}
