package eval_test

import (
	"fmt"
	"log"

	"questpro/internal/eval"
	"questpro/internal/ntriples"
	"questpro/internal/query"
)

// ExampleEvaluator_Results evaluates a small union query.
func ExampleEvaluator_Results() {
	o, err := ntriples.ParseString(`
paper1 wb Alice .
paper1 wb Bob .
paper2 wb Bob .
paper2 wb Erdos .
`)
	if err != nil {
		log.Fatal(err)
	}
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(p, a, "wb")
	q.MustAddEdge(p, erdos, "wb")
	if err := q.SetProjected(a); err != nil {
		log.Fatal(err)
	}

	ev := eval.New(o)
	results, err := ev.Results(bg, query.NewUnion(q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(results)
	// Output:
	// [Bob Erdos]
}

// ExampleEvaluator_ProvenanceOf shows the graph provenance of a result —
// the structure QuestPro displays during feedback.
func ExampleEvaluator_ProvenanceOf() {
	o, err := ntriples.ParseString(`
paper2 wb Bob .
paper2 wb Erdos .
`)
	if err != nil {
		log.Fatal(err)
	}
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(p, a, "wb")
	q.MustAddEdge(p, erdos, "wb")
	if err := q.SetProjected(a); err != nil {
		log.Fatal(err)
	}

	ev := eval.New(o)
	provs, err := ev.ProvenanceOf(bg, q, "Bob", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(provs[0])
	// Output:
	// graph{3 nodes, 2 edges}
	//   paper2 -wb-> Bob
	//   paper2 -wb-> Erdos
}

// ExampleEvaluator_HowProvenance annotates a result with its derivation
// polynomial (the semiring-provenance extension).
func ExampleEvaluator_HowProvenance() {
	o, err := ntriples.ParseString(`
paper2 wb Bob .
paper2 wb Erdos .
paper5 wb Bob .
paper5 wb Erdos .
`)
	if err != nil {
		log.Fatal(err)
	}
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(p, a, "wb")
	q.MustAddEdge(p, erdos, "wb")
	if err := q.SetProjected(a); err != nil {
		log.Fatal(err)
	}

	ev := eval.New(o)
	poly, err := ev.HowProvenance(bg, q, "Bob", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d derivations: %s\n", poly.NumDerivations(), poly.StringOver(o))
	// Output:
	// 2 derivations: (paper2-wb->Bob)·(paper2-wb->Erdos) + (paper5-wb->Bob)·(paper5-wb->Erdos)
}
