package eval_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// ResultsParallel agrees with ResultsSimple on the running example.
func TestResultsParallelSmall(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	for _, q := range []*query.Simple{paperfix.Q1(), paperfix.Q3(), paperfix.Q4()} {
		seq, err := ev.ResultsSimple(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ev.ResultsParallel(bg, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel %v != sequential %v", par, seq)
		}
	}
}

// Ground projected node takes the sequential path.
func TestResultsParallelGround(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	exs := paperfix.Explanations(o)
	ground, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.ResultsParallel(bg, ground, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice"}) {
		t.Fatalf("ground parallel results = %v", res)
	}
}

// Property: parallel and sequential evaluation agree on random queries over
// graphs large enough to cross the parallel threshold.
func TestResultsParallelAgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 300, Edges: 1200, Labels: []string{"p", "q"},
		})
		// A 2-edge variable pattern: plenty of candidates.
		q := query.NewSimple()
		a := q.MustEnsureNode(query.Var("a"), "")
		b := q.MustEnsureNode(query.Var("b"), "")
		c := q.MustEnsureNode(query.Var("c"), "")
		q.MustAddEdge(a, b, "p")
		q.MustAddEdge(b, c, "q")
		q.SetProjected(b)

		ev := eval.New(o)
		seq, err := ev.ResultsSimple(bg, q)
		if err != nil {
			return false
		}
		par, err := ev.ResultsParallel(bg, q, 3)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestResultsUnionParallel(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	seq, err := ev.Results(bg, u)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ev.ResultsUnionParallel(bg, u, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel union %v != sequential %v", par, seq)
	}
}

// A union of many branches that are each below parallelThreshold still uses
// the pool (branch-level fan-out) and agrees exactly with the sequential
// union evaluation.
func TestResultsUnionParallelManySmallBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 120, Edges: 400, Labels: []string{"p", "q"},
	})
	var branches []*query.Simple
	for _, n := range o.Nodes() {
		if len(branches) == 40 {
			break
		}
		q := query.NewSimple()
		x := q.MustEnsureNode(query.Var("x"), "")
		k := q.MustEnsureNode(query.Const(n.Value), "")
		q.MustAddEdge(x, k, "p")
		q.SetProjected(x)
		branches = append(branches, q)
	}
	u := query.NewUnion(branches...)
	ev := eval.New(o)
	seq, err := ev.Results(bg, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		par, err := ev.ResultsUnionParallel(bg, u, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel union %v != sequential %v", workers, par, seq)
		}
	}
}

// Budget exhaustion in a branch surfaces the same error the sequential path
// reports, with no partial results.
func TestResultsUnionParallelBudgetError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 200, Edges: 900, Labels: []string{"p"},
	})
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	b := q.MustEnsureNode(query.Var("b"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	q.MustAddEdge(a, b, "p")
	q.MustAddEdge(b, c, "p")
	q.SetProjected(a)
	u := query.NewUnion(q, q.Clone())

	ev := eval.New(o)
	ev.MaxSteps = 3
	if _, err := ev.Results(bg, u); !errors.Is(err, eval.ErrBudget) {
		t.Fatalf("sequential union error = %v, want budget exhaustion", err)
	}
	rs, err := ev.ResultsUnionParallel(bg, u, 4)
	if !errors.Is(err, eval.ErrBudget) {
		t.Fatalf("parallel union error = %v, want budget exhaustion", err)
	}
	if rs != nil {
		t.Fatalf("partial results returned alongside error: %v", rs)
	}
}

func TestResultsParallelNoProjected(t *testing.T) {
	ev := eval.New(paperfix.Ontology())
	q := query.NewSimple()
	q.MustEnsureNode(query.Var("x"), "")
	if _, err := ev.ResultsParallel(bg, q, 2); err == nil {
		t.Fatal("missing projected node not reported")
	}
}

func BenchmarkResultsParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 2000, Edges: 9000, Labels: []string{"p", "q"},
	})
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	m := q.MustEnsureNode(query.Var("m"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	q.MustAddEdge(a, m, "p")
	q.MustAddEdge(m, c, "q")
	q.SetProjected(m)
	ev := eval.New(o)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.ResultsSimple(bg, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.ResultsParallel(bg, q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
