package eval_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// ResultsParallel agrees with ResultsSimple on the running example.
func TestResultsParallelSmall(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	for _, q := range []*query.Simple{paperfix.Q1(), paperfix.Q3(), paperfix.Q4()} {
		seq, err := ev.ResultsSimple(q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ev.ResultsParallel(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel %v != sequential %v", par, seq)
		}
	}
}

// Ground projected node takes the sequential path.
func TestResultsParallelGround(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	exs := paperfix.Explanations(o)
	ground, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.ResultsParallel(ground, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice"}) {
		t.Fatalf("ground parallel results = %v", res)
	}
}

// Property: parallel and sequential evaluation agree on random queries over
// graphs large enough to cross the parallel threshold.
func TestResultsParallelAgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 300, Edges: 1200, Labels: []string{"p", "q"},
		})
		// A 2-edge variable pattern: plenty of candidates.
		q := query.NewSimple()
		a := q.MustEnsureNode(query.Var("a"), "")
		b := q.MustEnsureNode(query.Var("b"), "")
		c := q.MustEnsureNode(query.Var("c"), "")
		q.MustAddEdge(a, b, "p")
		q.MustAddEdge(b, c, "q")
		q.SetProjected(b)

		ev := eval.New(o)
		seq, err := ev.ResultsSimple(q)
		if err != nil {
			return false
		}
		par, err := ev.ResultsParallel(q, 3)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestResultsUnionParallel(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	seq, err := ev.Results(u)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ev.ResultsUnionParallel(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel union %v != sequential %v", par, seq)
	}
}

func TestResultsParallelNoProjected(t *testing.T) {
	ev := eval.New(paperfix.Ontology())
	q := query.NewSimple()
	q.MustEnsureNode(query.Var("x"), "")
	if _, err := ev.ResultsParallel(q, 2); err == nil {
		t.Fatal("missing projected node not reported")
	}
}

func BenchmarkResultsParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 2000, Edges: 9000, Labels: []string{"p", "q"},
	})
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	m := q.MustEnsureNode(query.Var("m"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	q.MustAddEdge(a, m, "p")
	q.MustAddEdge(m, c, "q")
	q.SetProjected(m)
	ev := eval.New(o)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.ResultsSimple(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.ResultsParallel(q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
