package eval_test

import (
	"reflect"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/query"
)

// These tests pin the isolated-variable semantics of disequality filtering:
// a disequality whose variable is unbound on a complete match (an isolated
// query node, or a node only reachable through an unmatched OPTIONAL edge)
// is skipped, never a failure. They guard the diseqsHold refactor that
// hoisted the ontology value lookup into the value-disequality branch.

func diseqOntology() *graph.Graph {
	g := graph.New()
	g.MustAddTriple("A", "p", "B")
	g.MustAddTriple("C", "p", "D")
	return g
}

// An unbound X in a value-disequality is skipped, not a failure.
func TestDiseqIsolatedVarValueSkipped(t *testing.T) {
	o := diseqOntology()
	ev := eval.New(o)

	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	z := q.MustEnsureNode(query.Var("z"), "") // isolated: never bound
	q.MustAddEdge(x, y, "p")
	q.SetProjected(x)
	if err := q.AddDiseqValue(z, "A"); err != nil {
		t.Fatal(err)
	}

	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"A", "C"}) {
		t.Fatalf("isolated-variable value diseq filtered results: %v", res)
	}
}

// An unbound endpoint of a node–node disequality is skipped, whichever side
// it is on.
func TestDiseqIsolatedVarNodeSkipped(t *testing.T) {
	o := diseqOntology()
	ev := eval.New(o)

	// z gets the lowest id so AddDiseqNodes keeps it on the X side.
	q := query.NewSimple()
	z := q.MustEnsureNode(query.Var("z"), "")
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(x, y, "p")
	q.SetProjected(x)
	if err := q.AddDiseqNodes(z, x); err != nil {
		t.Fatal(err) // stored as ?z != ?x: X side unbound
	}
	if err := q.AddDiseqNodes(x, z); err != nil {
		t.Fatal(err) // canonicalized duplicate; exercises dedup too
	}

	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"A", "C"}) {
		t.Fatalf("node diseq with unbound side filtered results: %v", res)
	}

	// Y side unbound: ?x != ?w with w isolated (w has the higher id, so it
	// stays on the Y side).
	q2 := query.NewSimple()
	x2 := q2.MustEnsureNode(query.Var("x"), "")
	y2 := q2.MustEnsureNode(query.Var("y"), "")
	w2 := q2.MustEnsureNode(query.Var("w"), "")
	q2.MustAddEdge(x2, y2, "p")
	q2.SetProjected(x2)
	if err := q2.AddDiseqNodes(x2, w2); err != nil {
		t.Fatal(err)
	}
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"A", "C"}) {
		t.Fatalf("node diseq with unbound Y filtered results: %v", res)
	}
}

// A variable left unbound by an unmatched OPTIONAL edge is skipped by its
// disequalities. Per the documented OPTIONAL semantics (SetOptional:
// "optional edges never restrict the result set"), a bound optional variant
// that fails a disequality falls back to the unbound variant, so the result
// is never filtered out.
func TestDiseqOptionalUnboundSkipped(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("A", "p", "B")
	g.MustAddTriple("B", "q", "E")
	g.MustAddTriple("C", "p", "D")
	// D has no outgoing q edge: the optional edge stays unmatched there.
	ev := eval.New(g)

	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	w := q.MustEnsureNode(query.Var("w"), "")
	q.MustAddEdge(x, y, "p")
	opt := q.MustAddEdge(y, w, "q")
	if err := q.SetOptional(opt, true); err != nil {
		t.Fatal(err)
	}
	q.SetProjected(x)
	if err := q.AddDiseqValue(w, "E"); err != nil {
		t.Fatal(err)
	}

	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// A's bound variant (w=E) fails the disequality, so the evaluator falls
	// back to the unbound optional variant, where the disequality is
	// skipped; C's match leaves w unbound outright. Both survive.
	if !reflect.DeepEqual(res, []string{"A", "C"}) {
		t.Fatalf("optional-unbound diseq semantics broken: %v", res)
	}
}
