package eval_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

func TestMeterNilIsNoop(t *testing.T) {
	var m *eval.Meter
	if !m.ChargeSteps(1_000_000) || !m.ChargeResults(1) || !m.ChargeBytes(1<<40) {
		t.Fatal("nil meter must accept every charge")
	}
	if m.Exhausted() {
		t.Fatal("nil meter exhausted")
	}
	if m.Err() != nil {
		t.Fatal("nil meter has an error")
	}
	if m.Snapshot() != (eval.Usage{}) {
		t.Fatal("nil meter snapshot not zero")
	}
	if (eval.Guard{}).NewMeter() != nil {
		t.Fatal("disabled guard must yield a nil meter")
	}
}

func TestMeterExhaustsAndSticks(t *testing.T) {
	m := eval.Guard{MaxSteps: 10}.NewMeter()
	if !m.ChargeSteps(10) {
		t.Fatal("charge within budget rejected")
	}
	if m.ChargeSteps(1) {
		t.Fatal("charge over budget accepted")
	}
	if !m.Exhausted() {
		t.Fatal("meter not exhausted after overrun")
	}
	if m.ChargeResults(1) || m.ChargeBytes(1) {
		t.Fatal("exhaustion must be sticky across every dimension")
	}
	if !errors.Is(m.Err(), qerr.ErrBudgetExhausted) {
		t.Fatalf("meter error %v does not match ErrBudgetExhausted", m.Err())
	}
}

func TestGuardValidate(t *testing.T) {
	if err := (eval.Guard{MaxSteps: -1}).Validate(); err == nil {
		t.Fatal("negative MaxSteps accepted")
	}
	if err := (eval.Guard{MaxSteps: 5, MaxResults: 2, MaxBytes: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// hubGraph is a star of n out-edges — a search wide enough to cross the
// matcher's polling quantum, with one distinct match (and provenance graph)
// per leaf.
func hubGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		if _, err := g.AddTriple("hub", "p", fmt.Sprintf("leaf%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func hubQuery() *query.Simple {
	q := query.NewSimple()
	h := q.MustEnsureNode(query.Const("hub"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(h, y, "p")
	q.SetProjected(y)
	return q
}

// A result budget stops the enumeration with the values found so far plus
// the typed error: partial, never empty-with-nil-error.
func TestResultsSimpleDegradesOnResultBudget(t *testing.T) {
	g := hubGraph(t, 200)
	m := eval.Guard{MaxResults: 50}.NewMeter()
	ev := eval.New(g).Guarded(m)
	res, err := ev.ResultsSimple(bg, hubQuery())
	if !errors.Is(err, qerr.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if len(res) == 0 {
		t.Fatal("degraded enumeration returned no partial results")
	}
	if len(res) > 50 {
		t.Fatalf("result budget 50 let %d results through", len(res))
	}
	if !sort.StringsAreSorted(res) {
		t.Fatal("partial results not sorted")
	}
}

// A step budget cuts a wide search short the same way.
func TestResultsSimpleDegradesOnStepBudget(t *testing.T) {
	g := hubGraph(t, 2000)
	m := eval.Guard{MaxSteps: 64}.NewMeter()
	ev := eval.New(g).Guarded(m)
	res, err := ev.ResultsSimple(bg, hubQuery())
	if !errors.Is(err, qerr.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	_ = res // partial set may be empty on a step budget this tight; no hang is the point
}

// An ungoverned evaluator must behave exactly as before: same results, nil
// error, regardless of the guard plumbing.
func TestUngovernedEvaluatorUnchanged(t *testing.T) {
	o := paperfix.Ontology()
	plain := eval.New(o)
	guarded := eval.New(o).Guarded(nil)
	a, errA := plain.ResultsSimple(bg, paperfix.Q1())
	b, errB := guarded.ResultsSimple(bg, paperfix.Q1())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("Guarded(nil) changed results: %v vs %v", a, b)
	}
}

// A byte budget bounds provenance materialization: the graphs gathered
// before exhaustion come back with the typed error.
func TestProvenanceOfDegradesOnByteBudget(t *testing.T) {
	g := hubGraph(t, 64)
	q := query.NewSimple()
	h := q.MustEnsureNode(query.Var("h"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(h, y, "p")
	q.SetProjected(h)
	m := eval.Guard{MaxBytes: 500}.NewMeter()
	ev := eval.New(g).Guarded(m)
	gs, err := ev.ProvenanceOf(bg, q, "hub", 0)
	if !errors.Is(err, qerr.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if len(gs) == 0 {
		t.Fatal("no partial provenance graphs before byte exhaustion")
	}
	if len(gs) >= 64 {
		t.Fatalf("byte budget 500 did not bound the %d graphs", len(gs))
	}
}

// The matcher.step injection point converts to a clean error from
// MatchesInto, not a hang or a panic.
func TestMatcherStepFaultSurfacesAsError(t *testing.T) {
	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.MatcherStep, FirstN: 1}))
	defer restore()
	g := hubGraph(t, 2000)
	ev := eval.New(g)
	err := ev.MatchesInto(bg, hubQuery(), nil, func(*eval.Match) bool { return true })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// The provenance.io injection point aborts image materialization with the
// injected error while keeping earlier images.
func TestProvenanceIOFault(t *testing.T) {
	restore := faults.Activate(faults.NewInjector(1,
		faults.Rule{Point: faults.ProvenanceIO, OnNth: 3}))
	defer restore()
	g := hubGraph(t, 8)
	q := query.NewSimple()
	h := q.MustEnsureNode(query.Var("h"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	q.MustAddEdge(h, y, "p")
	q.SetProjected(h)
	gs, err := eval.New(g).ProvenanceOf(bg, q, "hub", 0)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if len(gs) != 2 {
		t.Fatalf("expected the 2 images before the fault, got %d", len(gs))
	}
}
