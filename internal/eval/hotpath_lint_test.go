package eval_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The copying accessors query.Simple.Nodes()/Edges() and
// graph.Graph.Nodes()/Edges() allocate a full slice copy per call; inside
// evaluation or merge-kernel loops that turns into O(N) or O(N²) garbage per
// operation (the planEdges regression this PR fixed). This lint pins the hot
// files to the id-indexed iteration style: any reintroduced call to a
// copying accessor in one of these files fails the test and must either be
// converted (NumNodes/NumEdges + Node(id)/Edge(id)) or consciously
// exempted here with a justification.
func TestHotPathsAvoidCopyingAccessors(t *testing.T) {
	hotFiles := []string{
		"eval.go",
		"plan.go",
		"probe.go",
		"results.go",
		"provenance.go",
		"parallel.go",
		"../core/kernel.go",
		"../core/algorithm1.go",
		"../core/relation.go",
		"../core/trivial.go",
		"../core/diseq.go",
		"../query/simple.go",
	}
	// Matches method calls of the copying accessors; field accesses like
	// m.Edges[i] and methods like u.Branches() do not match.
	re := regexp.MustCompile(`\.(Nodes|Edges)\(\)`)
	for _, f := range hotFiles {
		src, err := os.ReadFile(filepath.FromSlash(f))
		if err != nil {
			t.Fatalf("hot file %s unreadable: %v", f, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			code := line
			if idx := strings.Index(code, "//"); idx >= 0 {
				code = code[:idx] // comments may mention the accessors
			}
			if m := re.FindString(code); m != "" {
				t.Errorf("%s:%d: hot path calls copying accessor %q — iterate ids via NumNodes/NumEdges instead", f, i+1, m)
			}
		}
	}
}
