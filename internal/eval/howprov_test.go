package eval_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// A single-derivation result yields one monomial with coefficient 1.
func TestHowProvenanceSingleDerivation(t *testing.T) {
	o := graph.New()
	o.MustAddTriple("paper1", "wb", "Alice")
	o.MustAddTriple("paper1", "wb", "Erdos")
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(p, a, "wb")
	q.MustAddEdge(p, erdos, "wb")
	q.SetProjected(a)

	poly, err := ev.HowProvenance(bg, q, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(poly.Terms) != 1 || poly.Terms[0].Coefficient != 1 {
		t.Fatalf("polynomial = %+v", poly)
	}
	if poly.Terms[0].Monomial.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", poly.Terms[0].Monomial.Degree())
	}
	s := poly.StringOver(o)
	if !strings.Contains(s, "(paper1-wb->Alice)") || !strings.Contains(s, "(paper1-wb->Erdos)") {
		t.Fatalf("rendering = %q", s)
	}
	// The collapsed a=Erdos match contributes to Erdos' polynomial with a
	// squared factor (edge used for both query edges).
	poly, err = ev.HowProvenance(bg, q, "Erdos", 0)
	if err != nil {
		t.Fatal(err)
	}
	s = poly.StringOver(o)
	if !strings.Contains(s, "^2") {
		t.Fatalf("collapsed match should square the edge: %q", s)
	}
}

// Multiple derivations become multiple terms (or coefficients).
func TestHowProvenanceMultipleDerivations(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	poly, err := ev.HowProvenance(bg, paperfix.Q1(), "Dave", 0)
	if err != nil {
		t.Fatal(err)
	}
	if poly.NumDerivations() < 2 {
		t.Fatalf("Dave has %d derivations, expected several", poly.NumDerivations())
	}
	// The support of the polynomial corresponds to the graph provenance.
	provs, err := ev.ProvenanceOf(bg, paperfix.Q1(), "Dave", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(poly.Terms) < len(provs) {
		t.Fatalf("%d terms but %d provenance graphs", len(poly.Terms), len(provs))
	}
}

func TestHowProvenanceNonResult(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	poly, err := ev.HowProvenance(bg, paperfix.Q3(), "William", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(poly.Terms) != 0 || poly.NumDerivations() != 0 {
		t.Fatalf("non-result has polynomial %+v", poly)
	}
	if got := poly.StringOver(o); got != "0" {
		t.Fatalf("empty polynomial renders %q", got)
	}
	if _, err := ev.HowProvenance(bg, paperfix.Q3(), "NoSuchNode", 0); err != nil {
		t.Fatal(err)
	}
}

func TestHowProvenanceUnionSums(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q3().Clone())
	single, err := ev.HowProvenance(bg, paperfix.Q3(), "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	double, err := ev.HowProvenanceUnion(bg, u, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if double.NumDerivations() != 2*single.NumDerivations() {
		t.Fatalf("duplicated branch: %d vs 2x%d derivations",
			double.NumDerivations(), single.NumDerivations())
	}
}

func TestHowProvenanceMaxMatches(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	capped, err := ev.HowProvenance(bg, paperfix.Q1(), "Alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped.NumDerivations() != 1 {
		t.Fatalf("cap ignored: %d derivations", capped.NumDerivations())
	}
}

// Property: the number of derivations equals the number of matches the
// evaluator reports, and every monomial's degree equals the number of
// mandatory query edges.
func TestHowProvenanceCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 10, Edges: 24, Labels: []string{"p", "q"},
		})
		sub, start := graph.RandomConnectedSubgraph(rng, o, 2)
		if sub == nil {
			return true
		}
		q, err := query.FromExplanation(sub, start)
		if err != nil {
			return false
		}
		ev := eval.New(o)
		value := sub.Node(start).Value
		poly, err := ev.HowProvenance(bg, q, value, 0)
		if err != nil {
			return false
		}
		count := 0
		pn, _ := o.NodeByValue(value)
		err = ev.MatchesInto(bg, q, map[query.NodeID]graph.NodeID{q.Projected(): pn.ID}, func(*eval.Match) bool {
			count++
			return true
		})
		if err != nil {
			return false
		}
		if poly.NumDerivations() != count {
			t.Logf("seed %d: %d derivations vs %d matches", seed, poly.NumDerivations(), count)
			return false
		}
		for _, term := range poly.Terms {
			if term.Monomial.Degree() != q.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
