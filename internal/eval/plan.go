package eval

import (
	"questpro/internal/graph"
	"questpro/internal/query"
)

// planEdges orders the query edges for backtracking: greedily prefer edges
// with the most already-bound endpoints (constants, pre-bindings, and nodes
// covered by earlier plan entries), so the search stays anchored and join
// candidates are enumerated through the (label, endpoint) indexes rather
// than full label scans. Optional edges are always placed after every
// mandatory edge (the left-join semantics of the OPTIONAL extension binds
// them against a complete mandatory match).
func planEdges(q *query.Simple, initial []graph.NodeID) []query.EdgeID {
	nEdges := q.NumEdges()
	plan := make([]query.EdgeID, 0, nEdges)
	used := make([]bool, nEdges)
	bound := make([]bool, q.NumNodes())
	for i, b := range initial {
		bound[i] = b != graph.NoNode
	}
	mandatoryLeft := 0
	for _, e := range q.Edges() {
		if !q.IsOptional(e.ID) {
			mandatoryLeft++
		}
	}
	for len(plan) < nEdges {
		best := query.EdgeID(-1)
		bestScore := -1
		for _, e := range q.Edges() {
			if used[e.ID] {
				continue
			}
			if mandatoryLeft > 0 && q.IsOptional(e.ID) {
				continue
			}
			score := 0
			if bound[e.From] {
				score += 2
			}
			if bound[e.To] {
				score += 2
			}
			// Prefer lower-degree expansion slightly: edges touching the
			// most-connected unbound node first, to fail early.
			if !bound[e.From] {
				score += min(q.Degree(e.From), 1)
			}
			if !bound[e.To] {
				score += min(q.Degree(e.To), 1)
			}
			if score > bestScore {
				bestScore = score
				best = e.ID
			}
		}
		e := q.Edge(best)
		used[best] = true
		bound[e.From] = true
		bound[e.To] = true
		if !q.IsOptional(best) {
			mandatoryLeft--
		}
		plan = append(plan, best)
	}
	return plan
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
