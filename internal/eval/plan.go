package eval

import (
	"questpro/internal/graph"
	"questpro/internal/query"
)

// planEdges orders the query edges for backtracking: greedily prefer edges
// with the most already-bound endpoints (constants, pre-bindings, and nodes
// covered by earlier plan entries), so the search stays anchored and join
// candidates are enumerated through the (label, endpoint) indexes rather
// than full label scans. Optional edges are always placed after every
// mandatory edge (the left-join semantics of the OPTIONAL extension binds
// them against a complete mandatory match).
func planEdges(q *query.Simple, initial []graph.NodeID) []query.EdgeID {
	nEdges, nNodes := q.NumEdges(), q.NumNodes()
	return planEdgesInto(make([]query.EdgeID, 0, nEdges),
		make([]bool, nEdges), make([]bool, nNodes), q, initial)
}

// planEdgesInto is planEdges over caller-owned buffers: plan is truncated
// and refilled (grown only if its capacity is short), used must hold at
// least NumEdges entries and bound at least NumNodes, both all-false on
// entry. Selection iterates edge and node ids directly — the one pass over
// ids replaces the former copying q.Edges()/q.Nodes() calls inside the
// selection loop, so planning is O(E²) comparisons but O(1) allocations on
// a warm buffer set.
func planEdgesInto(plan []query.EdgeID, used, bound []bool, q *query.Simple, initial []graph.NodeID) []query.EdgeID {
	nEdges := q.NumEdges()
	nNodes := q.NumNodes()
	if cap(plan) < nEdges {
		plan = make([]query.EdgeID, 0, nEdges)
	} else {
		plan = plan[:0]
	}
	for i, b := range initial {
		bound[i] = b != graph.NoNode
	}
	mandatoryLeft := 0
	// Each bound endpoint must outweigh any achievable degree sum, so that
	// anchoring always dominates and the degree term only breaks ties.
	boundWeight := 1
	for n := 0; n < nNodes; n++ {
		if d := q.Degree(query.NodeID(n)); d >= boundWeight {
			boundWeight = d + 1
		}
	}
	boundWeight *= 2
	for ei := 0; ei < nEdges; ei++ {
		if !q.IsOptional(query.EdgeID(ei)) {
			mandatoryLeft++
		}
	}
	for len(plan) < nEdges {
		best := query.EdgeID(-1)
		bestScore := -1
		for ei := 0; ei < nEdges; ei++ {
			id := query.EdgeID(ei)
			if used[ei] {
				continue
			}
			if mandatoryLeft > 0 && q.IsOptional(id) {
				continue
			}
			e := q.Edge(id)
			score := 0
			if bound[e.From] {
				score += boundWeight
			}
			if bound[e.To] {
				score += boundWeight
			}
			// Tie-break among equally anchored edges by the actual degree of
			// the unbound endpoints: edges touching the most-connected
			// unbound node first, so star joins expand through their hub and
			// fail early.
			if !bound[e.From] {
				score += q.Degree(e.From)
			}
			if !bound[e.To] {
				score += q.Degree(e.To)
			}
			if score > bestScore {
				bestScore = score
				best = id
			}
		}
		e := q.Edge(best)
		used[best] = true
		bound[e.From] = true
		bound[e.To] = true
		if !q.IsOptional(best) {
			mandatoryLeft--
		}
		plan = append(plan, best)
	}
	return plan
}

// resolvePlanLabels fills labs (resized from buf) with the ontology-interned
// label id of each plan edge, so the matcher's inner loop selects adjacency
// runs by integer id instead of hashing the label string at every step. A
// label absent from the ontology resolves to graph.NoLabel, for which every
// id-keyed accessor returns the empty run.
func resolvePlanLabels(buf []graph.LabelID, o *graph.Graph, q *query.Simple, plan []query.EdgeID) []graph.LabelID {
	if cap(buf) < len(plan) {
		buf = make([]graph.LabelID, len(plan))
	} else {
		buf = buf[:len(plan)]
	}
	for i, eid := range plan {
		buf[i] = o.LabelID(q.Edge(eid).Label)
	}
	return buf
}
