package eval

import (
	"questpro/internal/graph"
	"questpro/internal/query"
)

// planEdges orders the query edges for backtracking: greedily prefer edges
// with the most already-bound endpoints (constants, pre-bindings, and nodes
// covered by earlier plan entries), so the search stays anchored and join
// candidates are enumerated through the (label, endpoint) indexes rather
// than full label scans. Optional edges are always placed after every
// mandatory edge (the left-join semantics of the OPTIONAL extension binds
// them against a complete mandatory match).
func planEdges(q *query.Simple, initial []graph.NodeID) []query.EdgeID {
	nEdges := q.NumEdges()
	plan := make([]query.EdgeID, 0, nEdges)
	used := make([]bool, nEdges)
	bound := make([]bool, q.NumNodes())
	for i, b := range initial {
		bound[i] = b != graph.NoNode
	}
	mandatoryLeft := 0
	// Each bound endpoint must outweigh any achievable degree sum, so that
	// anchoring always dominates and the degree term only breaks ties.
	boundWeight := 1
	for _, n := range q.Nodes() {
		if d := q.Degree(n.ID); d >= boundWeight {
			boundWeight = d + 1
		}
	}
	boundWeight *= 2
	for _, e := range q.Edges() {
		if !q.IsOptional(e.ID) {
			mandatoryLeft++
		}
	}
	for len(plan) < nEdges {
		best := query.EdgeID(-1)
		bestScore := -1
		for _, e := range q.Edges() {
			if used[e.ID] {
				continue
			}
			if mandatoryLeft > 0 && q.IsOptional(e.ID) {
				continue
			}
			score := 0
			if bound[e.From] {
				score += boundWeight
			}
			if bound[e.To] {
				score += boundWeight
			}
			// Tie-break among equally anchored edges by the actual degree of
			// the unbound endpoints: edges touching the most-connected
			// unbound node first, so star joins expand through their hub and
			// fail early.
			if !bound[e.From] {
				score += q.Degree(e.From)
			}
			if !bound[e.To] {
				score += q.Degree(e.To)
			}
			if score > bestScore {
				bestScore = score
				best = e.ID
			}
		}
		e := q.Edge(best)
		used[best] = true
		bound[e.From] = true
		bound[e.To] = true
		if !q.IsOptional(best) {
			mandatoryLeft--
		}
		plan = append(plan, best)
	}
	return plan
}
