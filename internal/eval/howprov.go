package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"questpro/internal/graph"
	"questpro/internal/query"
)

// The paper's related work points to an (unpublished) companion line on
// semiring provenance [32]. This file implements the classical
// how-provenance reading for our query class: each result is annotated with
// a polynomial over edge identifiers — one monomial per match (the
// ⊕ of alternative derivations), each monomial the product of the ontology
// edges the match uses (the ⊗ of joint use). The graph provenance of
// Definition 2.4 is the support of this polynomial; the polynomial
// additionally records multiplicities (how many matches share an image and
// how often each edge is used within a match).

// Monomial is a multiset of ontology edges used jointly by one match.
type Monomial struct {
	// Edges maps each edge id to its multiplicity within the match (a
	// non-injective homomorphism can use one ontology edge for several
	// query edges).
	Edges map[graph.EdgeID]int
}

// key is a canonical form for deduplication.
func (m Monomial) key() string {
	ids := make([]graph.EdgeID, 0, len(m.Edges))
	for id := range m.Edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d^%d", id, m.Edges[id])
	}
	return strings.Join(parts, "*")
}

// Degree is the total multiplicity (the number of query edges).
func (m Monomial) Degree() int {
	d := 0
	for _, c := range m.Edges {
		d += c
	}
	return d
}

// Term is a monomial with its coefficient: how many distinct matches use
// exactly this multiset of edges.
type Term struct {
	Coefficient int
	Monomial    Monomial
}

// Polynomial is the how-provenance annotation of one result.
type Polynomial struct {
	Terms []Term
}

// NumDerivations is the total number of matches (sum of coefficients).
func (p Polynomial) NumDerivations() int {
	n := 0
	for _, t := range p.Terms {
		n += t.Coefficient
	}
	return n
}

// render writes the polynomial over human-readable edge descriptions.
func (p Polynomial) render(describe func(graph.EdgeID) string) string {
	if len(p.Terms) == 0 {
		return "0"
	}
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		ids := make([]graph.EdgeID, 0, len(t.Monomial.Edges))
		for id := range t.Monomial.Edges {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return describe(ids[a]) < describe(ids[b]) })
		factors := make([]string, 0, len(ids))
		for _, id := range ids {
			f := describe(id)
			if c := t.Monomial.Edges[id]; c > 1 {
				f = fmt.Sprintf("%s^%d", f, c)
			}
			factors = append(factors, f)
		}
		term := strings.Join(factors, "·")
		if t.Coefficient > 1 {
			term = fmt.Sprintf("%d·%s", t.Coefficient, term)
		}
		parts[i] = term
	}
	return strings.Join(parts, " + ")
}

// StringOver renders the polynomial using (from -label-> to) edge names of
// the given ontology.
func (p Polynomial) StringOver(o *graph.Graph) string {
	return p.render(func(id graph.EdgeID) string {
		e := o.Edge(id)
		return fmt.Sprintf("(%s-%s->%s)", o.Node(e.From).Value, e.Label, o.Node(e.To).Value)
	})
}

// HowProvenance computes the how-provenance polynomial of a result value
// with respect to a simple query: one term per distinct edge multiset, the
// coefficient counting the matches that use it. maxMatches > 0 bounds the
// enumeration (0 = unbounded up to the evaluator budget).
func (ev *Evaluator) HowProvenance(ctx context.Context, q *query.Simple, value string, maxMatches int) (Polynomial, error) {
	proj := q.Projected()
	if proj == query.NoNode {
		return Polynomial{}, errNoProjected
	}
	pn := q.Node(proj)
	var pre map[query.NodeID]graph.NodeID
	if pn.Term.IsVar {
		on, ok := ev.o.NodeByValue(value)
		if !ok {
			return Polynomial{}, nil
		}
		if !ev.nodeCompatible(pn, on.ID) {
			return Polynomial{}, nil
		}
		pre = map[query.NodeID]graph.NodeID{proj: on.ID}
	} else if pn.Term.Value != value {
		return Polynomial{}, nil
	}

	coeff := map[string]*Term{}
	var order []string
	matches := 0
	err := ev.MatchesInto(ctx, q, pre, func(m *Match) bool {
		mono := Monomial{Edges: map[graph.EdgeID]int{}}
		for qe, oe := range m.Edges {
			if oe == graph.NoEdge {
				if q.IsOptional(query.EdgeID(qe)) {
					continue
				}
				return true // incomplete non-optional match: skip defensively
			}
			mono.Edges[oe]++
		}
		k := mono.key()
		if t, ok := coeff[k]; ok {
			t.Coefficient++
		} else {
			coeff[k] = &Term{Coefficient: 1, Monomial: mono}
			order = append(order, k)
		}
		matches++
		return maxMatches <= 0 || matches < maxMatches
	})
	if err != nil && matches == 0 {
		return Polynomial{}, err
	}
	sort.Strings(order)
	p := Polynomial{Terms: make([]Term, 0, len(order))}
	for _, k := range order {
		p.Terms = append(p.Terms, *coeff[k])
	}
	return p, nil
}

// HowProvenanceUnion sums the branch polynomials (union is ⊕).
func (ev *Evaluator) HowProvenanceUnion(ctx context.Context, u *query.Union, value string, maxMatches int) (Polynomial, error) {
	merged := map[string]*Term{}
	var order []string
	for _, b := range u.Branches() {
		p, err := ev.HowProvenance(ctx, b, value, maxMatches)
		if err != nil {
			return Polynomial{}, err
		}
		for _, t := range p.Terms {
			k := t.Monomial.key()
			if existing, ok := merged[k]; ok {
				existing.Coefficient += t.Coefficient
			} else {
				cp := t
				merged[k] = &cp
				order = append(order, k)
			}
		}
	}
	sort.Strings(order)
	out := Polynomial{Terms: make([]Term, 0, len(order))}
	for _, k := range order {
		out.Terms = append(out.Terms, *merged[k])
	}
	return out, nil
}
