package eval_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// optOntology: papers by authors, some with homepages.
func optOntology() *graph.Graph {
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	g.MustAddTriple("paper2", "wb", "Bob")
	g.MustAddTriple("Alice", "homepage", "http://alice")
	return g
}

// authorsWithOptionalHomepage: ?p wb ?a with OPTIONAL { ?a homepage ?h }.
func authorsWithOptionalHomepage(t *testing.T) *query.Simple {
	t.Helper()
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	h := q.MustEnsureNode(query.Var("h"), "")
	q.MustAddEdge(p, a, "wb")
	opt := q.MustAddEdge(a, h, "homepage")
	if err := q.SetOptional(opt, true); err != nil {
		t.Fatal(err)
	}
	if err := q.SetProjected(a); err != nil {
		t.Fatal(err)
	}
	return q
}

// OPTIONAL never restricts the result set.
func TestOptionalDoesNotFilter(t *testing.T) {
	o := optOntology()
	ev := eval.New(o)
	q := authorsWithOptionalHomepage(t)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice", "Bob"}) {
		t.Fatalf("results = %v, want both authors", res)
	}
	// The mandatory version of the same edge filters Bob out.
	q2 := q.Clone()
	for _, e := range q2.Edges() {
		q2.SetOptional(e.ID, false)
	}
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice"}) {
		t.Fatalf("mandatory results = %v, want only Alice", res)
	}
}

// Provenance includes the optional context when it exists and omits it
// otherwise (left-join maximality).
func TestOptionalProvenance(t *testing.T) {
	o := optOntology()
	ev := eval.New(o)
	q := authorsWithOptionalHomepage(t)

	alice, err := ev.ProvenanceOf(bg, q, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alice) != 1 {
		t.Fatalf("Alice has %d provenance graphs", len(alice))
	}
	if _, ok := alice[0].NodeByValue("http://alice"); !ok {
		t.Fatalf("optional homepage missing from provenance:\n%s", alice[0])
	}

	bob, err := ev.ProvenanceOf(bg, q, "Bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bob) != 1 {
		t.Fatalf("Bob has %d provenance graphs", len(bob))
	}
	if bob[0].NumEdges() != 1 {
		t.Fatalf("Bob's provenance should be just his paper:\n%s", bob[0])
	}
}

// Chained optional edges: the second depends on a node bound by the first.
func TestOptionalChained(t *testing.T) {
	g := graph.New()
	g.MustAddTriple("paper1", "wb", "Alice")
	g.MustAddTriple("Alice", "homepage", "http://alice")
	g.MustAddTriple("http://alice", "host", "example.org")
	g.MustAddTriple("paper2", "wb", "Bob")
	g.MustAddTriple("Bob", "homepage", "http://bob") // no host
	ev := eval.New(g)

	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	h := q.MustEnsureNode(query.Var("h"), "")
	s := q.MustEnsureNode(query.Var("s"), "")
	q.MustAddEdge(p, a, "wb")
	e1 := q.MustAddEdge(a, h, "homepage")
	e2 := q.MustAddEdge(h, s, "host")
	q.SetOptional(e1, true)
	q.SetOptional(e2, true)
	q.SetProjected(a)

	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice", "Bob"}) {
		t.Fatalf("results = %v", res)
	}
	alice, err := ev.ProvenanceOf(bg, q, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := alice[0].NodeByValue("example.org"); !ok {
		t.Fatalf("chained optional missing:\n%s", alice[0])
	}
	bob, err := ev.ProvenanceOf(bg, q, "Bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bob[0].NodeByValue("http://bob"); !ok {
		t.Fatalf("first optional should bind for Bob:\n%s", bob[0])
	}
	if _, ok := bob[0].NodeByValue("example.org"); ok {
		t.Fatalf("second optional must not bind for Bob:\n%s", bob[0])
	}
}

// SPARQL round trip preserves OPTIONAL blocks.
func TestOptionalSPARQLRoundTrip(t *testing.T) {
	q := authorsWithOptionalHomepage(t)
	text := q.SPARQL()
	if !strings.Contains(text, "OPTIONAL { ?a <homepage> ?h . }") {
		t.Fatalf("render missing OPTIONAL:\n%s", text)
	}
	back, err := query.ParseSPARQL(text)
	if err != nil {
		t.Fatal(err)
	}
	if !query.Isomorphic(q, back.Branch(0)) {
		t.Fatalf("round trip broke OPTIONAL:\n%s\nvs\n%s", text, back.Branch(0).SPARQL())
	}
	// Optionality participates in isomorphism.
	mand := q.Clone()
	for _, e := range mand.Edges() {
		mand.SetOptional(e.ID, false)
	}
	if query.Isomorphic(q, mand) {
		t.Fatal("optional and mandatory variants considered isomorphic")
	}
	if q.Fingerprint() == mand.Fingerprint() {
		t.Fatal("fingerprints ignore optionality")
	}
	if _, err := query.ParseSPARQL("SELECT ?x WHERE { ?x <p> ?y . OPTIONAL { } }"); err == nil {
		t.Fatal("empty OPTIONAL accepted")
	}
}

// Property: adding optional edges to a random query never changes its
// result set.
func TestOptionalNeverFiltersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 12, Edges: 30, Labels: []string{"p", "q"},
		})
		sub, start := graph.RandomConnectedSubgraph(rng, o, 2)
		if sub == nil {
			return true
		}
		q, err := query.FromExplanation(sub, start)
		if err != nil {
			return false
		}
		ev := eval.New(o)
		base, err := ev.ResultsSimple(bg, q)
		if err != nil {
			return false
		}
		// Attach a random optional edge from the projected node.
		withOpt := q.Clone()
		x := withOpt.FreshVar("")
		e, err := withOpt.AddEdge(withOpt.Projected(), x, "q")
		if err != nil {
			return false
		}
		if err := withOpt.SetOptional(e, true); err != nil {
			return false
		}
		got, err := ev.ResultsSimple(bg, withOpt)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(base, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Optional edges stay out of the mandatory consistency machinery: the
// running example still behaves identically.
func TestOptionalLeavesPaperExampleIntact(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	res, err := ev.ResultsSimple(bg, paperfix.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("running example broke")
	}
}

// A projected variable whose only edges are optional behaves like an
// isolated projected variable for candidate generation (optional edges
// never constrain the result set).
func TestOptionalOnlyProjectedVar(t *testing.T) {
	o := optOntology()
	ev := eval.New(o)
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	h := q.MustEnsureNode(query.Var("h"), "")
	e := q.MustAddEdge(a, h, "homepage")
	q.SetOptional(e, true)
	q.SetProjected(a)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != o.NumNodes() {
		t.Fatalf("optional-only projected var matched %d of %d nodes", len(res), o.NumNodes())
	}
}
