package eval

import (
	"context"
	"errors"
	"sort"

	"questpro/internal/conc"
	"questpro/internal/graph"
	"questpro/internal/obs"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// ResultsSimple evaluates a simple query and returns the distinct result
// values in sorted order (Q(O) of Section II-A). When a guard meter runs
// out mid-enumeration, the values found so far are returned (sorted)
// alongside the qerr.ErrBudgetExhausted-matching error — a degraded but
// consistent partial answer. Large candidate sets on an unguarded
// evaluator are probed in parallel when Evaluator.Workers allows; output
// is identical to the sequential loop.
func (ev *Evaluator) ResultsSimple(ctx context.Context, q *query.Simple) (_ []string, err error) {
	ctx, sp := obs.StartSpan(ctx, "eval.results")
	if sp != nil {
		defer func() {
			if err != nil {
				sp.SetOutcome("error")
			} else {
				sp.SetOutcome("ok")
			}
			sp.Finish()
		}()
	}
	proj := q.Projected()
	if proj == query.NoNode {
		return nil, errNoProjected
	}
	pn := q.Node(proj)
	if !pn.Term.IsVar {
		ok, err := ev.hasAnyMatch(ctx, q, nil)
		if err != nil {
			return nil, err
		}
		if ok {
			return []string{pn.Term.Value}, nil
		}
		return nil, nil
	}
	candidates := ev.projectedCandidates(q)
	sp.SetInt("candidates", int64(len(candidates)))
	var out []string
	if ev.meter == nil && len(candidates) >= parallelThreshold {
		if w := conc.Workers(ev.Workers); w > 1 {
			sp.SetLabel("probe", "sharded")
			out, err = ev.probeSharded(ctx, q, proj, candidates, w)
			sp.SetInt("results", int64(len(out)))
			return out, err
		}
	}
	sp.SetLabel("probe", "seq")
	out, err = ev.probeSeq(ctx, q, proj, candidates)
	sp.SetInt("results", int64(len(out)))
	return out, err
}

// probeSeq is the sequential candidate-probe loop: one prober, reused
// across all candidates, with the degraded-prefix budget semantics the
// guarded paths rely on (exhaustion returns the values found so far).
func (ev *Evaluator) probeSeq(ctx context.Context, q *query.Simple, proj query.NodeID, candidates []graph.NodeID) ([]string, error) {
	p := newProber(ev, q, proj)
	var out []string
	for _, c := range candidates {
		ok, err := p.probe(ctx, c)
		if err != nil {
			if errors.Is(err, qerr.ErrBudgetExhausted) {
				sort.Strings(out)
				return out, err
			}
			return nil, err
		}
		if ok {
			out = append(out, ev.o.Node(c).Value)
		}
	}
	sort.Strings(out)
	return out, nil
}

var errNoProjected = errorString("eval: query has no projected node")

type errorString string

func (e errorString) Error() string { return string(e) }

// hasAnyMatch reports whether at least one match exists from the given
// pre-binding.
func (ev *Evaluator) hasAnyMatch(ctx context.Context, q *query.Simple, pre map[query.NodeID]graph.NodeID) (bool, error) {
	found := false
	err := ev.MatchesInto(ctx, q, pre, func(*Match) bool {
		found = true
		return false
	})
	if found {
		return true, nil // budget/cancel errors after a find are irrelevant
	}
	return false, err
}

// projectedCandidates computes a superset of the ontology nodes the
// projected variable can map to, using the most selective adjacent edge,
// falling back to all type-compatible nodes for an isolated projected
// variable. Constant endpoints are resolved against the ontology once per
// distinct value (merged patterns routinely repeat a constant across many
// edges); a constant absent from the ontology — on an out-edge or an
// in-edge alike — short-circuits to zero candidates, since the query then
// has no matches at all.
func (ev *Evaluator) projectedCandidates(q *query.Simple) []graph.NodeID {
	proj := q.Projected()
	pn := q.Node(proj)
	var resolved map[string]graph.NodeID
	resolve := func(value string) (graph.NodeID, bool) {
		if id, ok := resolved[value]; ok {
			return id, true
		}
		on, ok := ev.o.NodeByValue(value)
		if !ok {
			return graph.NoNode, false
		}
		if resolved == nil {
			resolved = make(map[string]graph.NodeID)
		}
		resolved[value] = on.ID
		return on.ID, true
	}
	best := []graph.NodeID(nil)
	bestSize := -1
	consider := func(cands []graph.NodeID) {
		if bestSize < 0 || len(cands) < bestSize {
			best, bestSize = cands, len(cands)
		}
	}
	for _, eid := range q.OutEdges(proj) {
		if q.IsOptional(eid) {
			continue // optional edges never constrain the projected node
		}
		e := q.Edge(eid)
		other := q.Node(e.To)
		var edges []graph.EdgeID
		if !other.Term.IsVar {
			on, ok := resolve(other.Term.Value)
			if !ok {
				return nil
			}
			edges = ev.o.EdgesByLabelTo(e.Label, on)
		} else {
			edges = ev.o.EdgesByLabel(e.Label)
		}
		consider(dedupEndpoints(ev.o, edges, true))
	}
	for _, eid := range q.InEdges(proj) {
		if q.IsOptional(eid) {
			continue
		}
		e := q.Edge(eid)
		other := q.Node(e.From)
		var edges []graph.EdgeID
		if !other.Term.IsVar {
			on, ok := resolve(other.Term.Value)
			if !ok {
				return nil
			}
			edges = ev.o.EdgesByLabelFrom(e.Label, on)
		} else {
			edges = ev.o.EdgesByLabel(e.Label)
		}
		consider(dedupEndpoints(ev.o, edges, false))
	}
	if bestSize >= 0 {
		out := best[:0:0]
		for _, c := range best {
			if ev.nodeCompatible(pn, c) {
				out = append(out, c)
			}
		}
		return out
	}
	// Isolated projected variable: every type-compatible node qualifies.
	all := make([]graph.NodeID, 0, ev.o.NumNodes())
	for i, n := 0, ev.o.NumNodes(); i < n; i++ {
		id := graph.NodeID(i)
		if ev.nodeCompatible(pn, id) {
			all = append(all, id)
		}
	}
	return all
}

// dedupEndpoints extracts the set of From (or To) endpoints of the edges.
func dedupEndpoints(o *graph.Graph, edges []graph.EdgeID, from bool) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(edges))
	out := make([]graph.NodeID, 0, len(edges))
	for _, eid := range edges {
		e := o.Edge(eid)
		n := e.To
		if from {
			n = e.From
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Results evaluates a union query: the union of its branches' result sets,
// sorted (Section II-A). Guard exhaustion mid-union returns the values
// accumulated so far with the qerr.ErrBudgetExhausted-matching error.
func (ev *Evaluator) Results(ctx context.Context, u *query.Union) ([]string, error) {
	seen := map[string]bool{}
	flatten := func() []string {
		out := make([]string, 0, len(seen))
		for r := range seen {
			out = append(out, r)
		}
		sort.Strings(out)
		return out
	}
	for _, b := range u.Branches() {
		rs, err := ev.ResultsSimple(ctx, b)
		for _, r := range rs {
			seen[r] = true
		}
		if err != nil {
			if errors.Is(err, qerr.ErrBudgetExhausted) {
				return flatten(), err
			}
			return nil, err
		}
	}
	return flatten(), nil
}

// HasResultValue reports whether value is a result of the union query; it
// avoids enumerating the full result set.
func (ev *Evaluator) HasResultValue(ctx context.Context, u *query.Union, value string) (bool, error) {
	on, ok := ev.o.NodeByValue(value)
	if !ok {
		return false, nil
	}
	for _, b := range u.Branches() {
		proj := b.Projected()
		if proj == query.NoNode {
			return false, errNoProjected
		}
		pn := b.Node(proj)
		if !pn.Term.IsVar {
			if pn.Term.Value != value {
				continue
			}
			found, err := ev.hasAnyMatch(ctx, b, nil)
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
			continue
		}
		if !ev.nodeCompatible(pn, on.ID) {
			continue
		}
		found, err := ev.hasAnyMatch(ctx, b, map[query.NodeID]graph.NodeID{proj: on.ID})
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// Difference evaluates the difference query a − b over result values
// (Section V, "Difference Queries"): results of a that are not results of b.
// Following the paper, the difference is computed without provenance
// tracking; use ProvenanceOfUnion afterwards to bind a chosen result.
func (ev *Evaluator) Difference(ctx context.Context, a, b *query.Union) ([]string, error) {
	ra, err := ev.Results(ctx, a)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range ra {
		in, err := ev.HasResultValue(ctx, b, r)
		if err != nil {
			return nil, err
		}
		if !in {
			out = append(out, r)
		}
	}
	return out, nil
}
