// Package eval implements evaluation of the paper's query class over
// ontology graphs: a backtracking graph-homomorphism matcher (Definition
// 2.2) with provenance tracking (Definition 2.4), disequality filters,
// difference queries and result binding (Section V). It plays the role of
// the ARQ/Jena engine used by the paper's implementation.
package eval

import (
	"context"
	"errors"
	"fmt"

	"questpro/internal/faults"
	"questpro/internal/graph"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// ErrBudget is returned when a search exceeds the evaluator's step budget.
var ErrBudget = errors.New("eval: search budget exhausted")

// cancelCheckMask controls how often the backtracking recursion polls the
// context: every (mask+1) steps. A power-of-two mask keeps the check a
// single AND on the hot path.
const cancelCheckMask = 0x3ff

// DefaultMaxSteps bounds the number of backtracking steps per evaluation.
const DefaultMaxSteps = 50_000_000

// Evaluator evaluates queries against a fixed ontology graph.
type Evaluator struct {
	o *graph.Graph

	// MaxSteps bounds backtracking work per call; <= 0 means DefaultMaxSteps.
	MaxSteps int

	// CheckTypes, when true, rejects mappings of a typed query variable to
	// an ontology node with a different non-empty type. Query constants are
	// matched by value regardless.
	CheckTypes bool

	// Workers bounds the goroutine pool ResultsSimple (and everything built
	// on it: Results, Difference) uses to shard large projected-candidate
	// probe sets, resolved through conc.Workers — the one default shared
	// with core.Options.Workers: <= 0 selects GOMAXPROCS, 1 forces the
	// sequential probe loop. Output is identical either way (the sharded
	// path merges per-candidate verdicts in candidate order). Guarded
	// evaluators always probe sequentially so a budget exhaustion degrades
	// to the same deterministic prefix the sequential loop produces.
	Workers int

	// meter, when non-nil, charges the operation's resource guard (see
	// Guard); install one per operation with Guarded.
	meter *Meter
}

// New returns an evaluator over the given ontology. The ontology is frozen
// up front (graph.Graph.Freeze) so no query pays the CSR build; later
// mutations of the graph remain legal and simply re-freeze on next access.
func New(o *graph.Graph) *Evaluator {
	o.Freeze()
	return &Evaluator{o: o, CheckTypes: true}
}

// Guarded returns a shallow copy of the evaluator whose searches charge m.
// A nil meter returns the receiver unchanged, so callers can pass their
// (possibly nil) meter unconditionally. The ontology is shared; the copy is
// cheap and per-operation.
func (ev *Evaluator) Guarded(m *Meter) *Evaluator {
	if m == nil {
		return ev
	}
	g := *ev
	g.meter = m
	return &g
}

// Ontology returns the ontology graph being evaluated against.
func (ev *Evaluator) Ontology() *graph.Graph { return ev.o }

// Match is a homomorphism from a query into the ontology: Nodes is indexed
// by query.NodeID and Edges by query.EdgeID.
type Match struct {
	Nodes []graph.NodeID
	Edges []graph.EdgeID
}

// Clone deep-copies the match (visit callbacks receive a reused buffer).
func (m *Match) Clone() *Match {
	return &Match{
		Nodes: append([]graph.NodeID(nil), m.Nodes...),
		Edges: append([]graph.EdgeID(nil), m.Edges...),
	}
}

// state carries one in-flight backtracking search.
type state struct {
	ev   *Evaluator
	ctx  context.Context
	q    *query.Simple
	plan []query.EdgeID
	// planLab holds, aligned with plan, each edge's label resolved to the
	// ontology's interned id (graph.NoLabel when absent), so the recursion
	// never hashes a label string.
	planLab   []graph.LabelID
	match     Match
	steps     int
	max       int
	visit     func(*Match) bool
	done      bool
	found     int // complete matches emitted so far
	canceled  bool
	exhausted bool  // the guard meter ran out mid-search
	fault     error // injected fault (faults.MatcherStep)
}

// MatchesInto enumerates matches of q into the ontology, starting from the
// given pre-binding (query node -> ontology node; may be nil). The visit
// callback receives a shared *Match that must be cloned if retained;
// returning false stops the enumeration. Disequality constraints of q are
// enforced. The error is non-nil only if the step budget is exhausted, the
// guard meter runs out (a qerr.ErrBudgetExhausted-wrapped error; matches
// emitted before exhaustion were already delivered to visit), an injected
// fault fires, the context is canceled mid-search (a qerr.ErrCanceled-
// wrapped error), or the pre-binding is inconsistent with a constant node.
func (ev *Evaluator) MatchesInto(ctx context.Context, q *query.Simple, pre map[query.NodeID]graph.NodeID, visit func(*Match) bool) error {
	// Poll once up front: searches smaller than the in-search polling
	// interval must still notice an already-canceled context.
	if err := ctx.Err(); err != nil {
		return qerr.Canceled(err)
	}
	// Charge the invocation so per-candidate probe loops (each probe far
	// below the in-search quantum) still drain an exhausted guard promptly;
	// poll the fault point for the same reason — a search smaller than the
	// in-search quantum would otherwise never reach an injection site.
	if !ev.meter.ChargeSteps(1) {
		return ev.meter.Err()
	}
	if err := faults.Fire(faults.MatcherStep); err != nil {
		return fmt.Errorf("eval: matcher: %w", err)
	}
	n := q.NumNodes()
	sc := getScratch()
	defer putScratch(sc)
	st := &sc.st
	st.ev = ev
	st.ctx = ctx
	st.q = q
	st.match.Nodes = nodeBuf(st.match.Nodes, n)
	st.match.Edges = edgeBuf(st.match.Edges, q.NumEdges())
	st.steps = 0
	st.max = ev.MaxSteps
	st.visit = visit
	st.done = false
	st.found = 0
	st.canceled, st.exhausted = false, false
	st.fault = nil
	if st.max <= 0 {
		st.max = DefaultMaxSteps
	}
	// Bind constants up front; a missing constant means no matches.
	for i := 0; i < n; i++ {
		qn := q.Node(query.NodeID(i))
		if qn.Term.IsVar {
			continue
		}
		on, ok := ev.o.NodeByValue(qn.Term.Value)
		if !ok {
			return nil
		}
		st.match.Nodes[qn.ID] = on.ID
	}
	for qid, oid := range pre {
		qn := q.Node(qid)
		if !qn.Term.IsVar {
			if st.match.Nodes[qid] != oid {
				return fmt.Errorf("eval: pre-binding of constant node %s to %q conflicts",
					qn.Term, ev.o.Node(oid).Value)
			}
			continue
		}
		if !ev.nodeCompatible(qn, oid) {
			return nil
		}
		st.match.Nodes[qid] = oid
	}
	sc.used = boolBuf(sc.used, q.NumEdges())
	sc.bound = boolBuf(sc.bound, n)
	st.plan = planEdgesInto(st.plan, sc.used, sc.bound, q, st.match.Nodes)
	st.planLab = resolvePlanLabels(st.planLab, ev.o, q, st.plan)
	st.rec(0)
	if st.canceled {
		return qerr.Canceled(ctx.Err())
	}
	if st.fault != nil {
		return fmt.Errorf("eval: matcher: %w", st.fault)
	}
	if st.exhausted {
		return ev.meter.Err()
	}
	if st.steps >= st.max {
		return ErrBudget
	}
	return nil
}

// nodeCompatible applies the optional type check for variable nodes.
func (ev *Evaluator) nodeCompatible(qn query.Node, oid graph.NodeID) bool {
	if !ev.CheckTypes || qn.Type == "" {
		return true
	}
	ot := ev.o.Node(oid).Type
	return ot == "" || ot == qn.Type
}

// rec extends the match over plan[k:]. It returns false when the visit
// callback has requested a stop, a budget (MaxSteps or the guard meter) is
// exhausted, an injected fault fired, or the context is canceled (all
// polled every cancelCheckMask+1 steps so a request deadline actually
// aborts a runaway search).
func (st *state) rec(k int) bool {
	if st.steps >= st.max {
		return false
	}
	st.steps++
	if st.steps&cancelCheckMask == 0 {
		if st.ctx.Err() != nil {
			st.canceled = true
			return false
		}
		if err := faults.Fire(faults.MatcherStep); err != nil {
			st.fault = err
			return false
		}
		if !st.ev.meter.ChargeSteps(cancelCheckMask + 1) {
			st.exhausted = true
			return false
		}
	}
	if k == len(st.plan) {
		if !st.diseqsHold() {
			return true
		}
		if !st.ev.meter.ChargeResults(1) {
			st.exhausted = true
			return false
		}
		st.found++
		if !st.visit(&st.match) {
			st.done = true
			return false
		}
		return true
	}
	qe := st.q.Edge(st.plan[k])
	lid := st.planLab[k]
	optional := st.q.IsOptional(qe.ID)
	foundBefore := st.found
	from, to := st.match.Nodes[qe.From], st.match.Nodes[qe.To]
	try := func(oe graph.Edge) bool {
		bindFrom := from == graph.NoNode
		bindTo := to == graph.NoNode && !(bindFrom && qe.From == qe.To)
		if bindFrom {
			if !st.ev.nodeCompatible(st.q.Node(qe.From), oe.From) {
				return true
			}
			st.match.Nodes[qe.From] = oe.From
		}
		if qe.From == qe.To && oe.From != oe.To {
			if bindFrom {
				st.match.Nodes[qe.From] = graph.NoNode
			}
			return true
		}
		if bindTo {
			if !st.ev.nodeCompatible(st.q.Node(qe.To), oe.To) {
				if bindFrom {
					st.match.Nodes[qe.From] = graph.NoNode
				}
				return true
			}
			st.match.Nodes[qe.To] = oe.To
		}
		ok := st.match.Nodes[qe.From] == oe.From && st.match.Nodes[qe.To] == oe.To
		if ok {
			st.match.Edges[qe.ID] = oe.ID
			if !st.rec(k + 1) {
				return false
			}
			st.match.Edges[qe.ID] = graph.NoEdge
		}
		if bindFrom {
			st.match.Nodes[qe.From] = graph.NoNode
		}
		if bindTo {
			st.match.Nodes[qe.To] = graph.NoNode
		}
		return true
	}

	o := st.ev.o
	switch {
	case from != graph.NoNode && to != graph.NoNode:
		if e, ok := o.FindEdgeID(from, to, lid); ok {
			if !try(e) {
				return false
			}
		}
	case from != graph.NoNode:
		for _, eid := range o.EdgesByLabelIDFrom(lid, from) {
			if !try(o.Edge(eid)) {
				return false
			}
		}
	case to != graph.NoNode:
		for _, eid := range o.EdgesByLabelIDTo(lid, to) {
			if !try(o.Edge(eid)) {
				return false
			}
		}
	default:
		for _, eid := range o.EdgesByLabelID(lid) {
			if !try(o.Edge(eid)) {
				return false
			}
		}
	}
	if optional && !st.stopped() && st.found == foundBefore {
		// OPTIONAL left-join: no ontology edge fits, so the edge stays
		// unbound and the rest of the pattern proceeds without it.
		if !st.rec(k + 1) {
			return false
		}
	}
	return !st.stopped()
}

// stopped reports whether the search must unwind (visit stop, cancellation,
// fault, or any budget exhaustion).
func (st *state) stopped() bool {
	return st.done || st.canceled || st.exhausted || st.fault != nil || st.steps >= st.max
}

// diseqsHold checks the query's disequality constraints on a complete match.
func (st *state) diseqsHold() bool {
	for _, d := range st.q.Diseqs() {
		x := st.match.Nodes[d.X]
		if x == graph.NoNode {
			continue // unconstrained isolated variable
		}
		if d.YIsNode {
			// Node–node disequalities compare ids only (ontology node values
			// are unique); no value lookup needed.
			y := st.match.Nodes[d.Y]
			if y == graph.NoNode {
				continue
			}
			if x == y {
				return false
			}
			continue
		}
		if st.ev.o.Node(x).Value == d.YValue {
			return false
		}
	}
	return true
}
