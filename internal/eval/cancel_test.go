package eval_test

import (
	"context"
	"errors"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/paperfix"
	"questpro/internal/qerr"
)

// A canceled context aborts the backtracking search and surfaces as both
// the typed sentinel and the underlying context error.
func TestMatchesIntoCanceled(t *testing.T) {
	ev := eval.New(paperfix.Ontology())
	ctx, cancel := context.WithCancel(bg)
	cancel()
	err := ev.MatchesInto(ctx, paperfix.Q1(), nil, func(*eval.Match) bool { return true })
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("underlying context.Canceled not preserved: %v", err)
	}
}

func TestResultsCanceled(t *testing.T) {
	ev := eval.New(paperfix.Ontology())
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := ev.ResultsSimple(ctx, paperfix.Q1()); !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
