package eval_test

import (
	"math/rand"
	"reflect"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/query"
)

// shardedFixture builds an ontology and query whose projected-candidate set
// comfortably crosses parallelThreshold, so Evaluator.Workers > 1 actually
// takes the sharded probe path.
func shardedFixture() (*graph.Graph, *query.Simple) {
	rng := rand.New(rand.NewSource(23))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 400, Edges: 1600, Labels: []string{"p", "q"},
	})
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	b := q.MustEnsureNode(query.Var("b"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	q.MustAddEdge(a, b, "p")
	q.MustAddEdge(b, c, "q")
	q.SetProjected(b)
	return o, q
}

// ResultsSimple output is identical whether the candidate probes run on the
// sequential loop or the sharded pool, for every worker setting.
func TestResultsSimpleShardedAgrees(t *testing.T) {
	o, q := shardedFixture()
	ref := eval.New(o)
	ref.Workers = 1
	want, err := ref.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no results; the comparison is vacuous")
	}
	for _, workers := range []int{2, 4, 16} {
		ev := eval.New(o)
		ev.Workers = workers
		got, err := ev.ResultsSimple(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d: sharded %v != sequential %v", workers, got, want)
		}
	}
}

// A constant endpoint absent from the ontology short-circuits to zero
// candidates — for an in-edge into the projected node just like for an
// out-edge (the candidate derivation walks both edge lists).
func TestProjectedCandidatesAbsentConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 50, Edges: 200, Labels: []string{"p"},
	})
	build := func(incoming bool) *query.Simple {
		q := query.NewSimple()
		x := q.MustEnsureNode(query.Var("x"), "")
		k := q.MustEnsureNode(query.Const("no-such-value"), "")
		if incoming {
			q.MustAddEdge(k, x, "p")
		} else {
			q.MustAddEdge(x, k, "p")
		}
		q.SetProjected(x)
		return q
	}
	ev := eval.New(o)
	for _, tc := range []struct {
		name     string
		incoming bool
	}{{"out-edge", false}, {"in-edge", true}} {
		rs, err := ev.ResultsSimple(bg, build(tc.incoming))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(rs) != 0 {
			t.Fatalf("%s: absent constant endpoint yielded results %v", tc.name, rs)
		}
	}
}

// The same, for a multi-edge query where the absent constant sits on an
// in-edge while an out-edge would have produced candidates: the
// short-circuit must win over the other edge's index.
func TestProjectedCandidatesAbsentConstantMixedEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 50, Edges: 200, Labels: []string{"p", "q"},
	})
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	k := q.MustEnsureNode(query.Const("no-such-value"), "")
	q.MustAddEdge(x, y, "p")
	q.MustAddEdge(k, x, "q")
	q.SetProjected(x)
	ev := eval.New(o)
	rs, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("absent in-edge constant yielded results %v", rs)
	}
}
