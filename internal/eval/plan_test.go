package eval

import (
	"testing"

	"questpro/internal/graph"
	"questpro/internal/query"
)

// Plan ordering starts from bound (constant) endpoints and stays connected.
func TestPlanEdgesAnchorsOnConstants(t *testing.T) {
	q := query.NewSimple()
	// chain: ?a -p-> ?b -p-> ?c -p-> Const
	a := q.MustEnsureNode(query.Var("a"), "")
	b := q.MustEnsureNode(query.Var("b"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	k := q.MustEnsureNode(query.Const("k"), "")
	e1 := q.MustAddEdge(a, b, "p")
	e2 := q.MustAddEdge(b, c, "p")
	e3 := q.MustAddEdge(c, k, "p")
	q.SetProjected(a)

	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}
	initial[k] = 0 // the constant is pre-bound by MatchesInto

	plan := planEdges(q, initial)
	if len(plan) != 3 {
		t.Fatalf("plan has %d edges", len(plan))
	}
	if plan[0] != e3 {
		t.Fatalf("plan starts at %d, want the constant-anchored edge %d", plan[0], e3)
	}
	if plan[1] != e2 || plan[2] != e1 {
		t.Fatalf("plan not connected outward: %v", plan)
	}
}

// Optional edges always come after every mandatory edge, regardless of how
// well anchored they are.
func TestPlanEdgesOptionalLast(t *testing.T) {
	q := query.NewSimple()
	a := q.MustEnsureNode(query.Var("a"), "")
	b := q.MustEnsureNode(query.Var("b"), "")
	k1 := q.MustEnsureNode(query.Const("k1"), "")
	k2 := q.MustEnsureNode(query.Const("k2"), "")
	// Optional edge with two constant endpoints (maximally anchored)...
	opt := q.MustAddEdge(k1, k2, "p")
	q.SetOptional(opt, true)
	// ...and a barely-anchored mandatory edge.
	mand := q.MustAddEdge(a, b, "p")
	q.SetProjected(a)

	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}
	initial[k1], initial[k2] = 0, 1

	plan := planEdges(q, initial)
	if plan[0] != mand || plan[1] != opt {
		t.Fatalf("optional edge not planned last: %v", plan)
	}
}

// Regression: the degree tie-break must use the actual node degree, not a
// binary cap. With nothing pre-bound, a star join must anchor on an edge
// through its hub (the most-connected unbound node), not on whichever
// low-degree periphery edge happens to have the lowest id.
func TestPlanEdgesAnchorsOnHighestDegreeNode(t *testing.T) {
	q := query.NewSimple()
	// Periphery pair first so it gets the lowest edge id...
	p1 := q.MustEnsureNode(query.Var("p1"), "")
	p2 := q.MustEnsureNode(query.Var("p2"), "")
	side := q.MustAddEdge(p1, p2, "p")
	// ...then a 3-edge star around hub ?h.
	h := q.MustEnsureNode(query.Var("h"), "")
	a := q.MustEnsureNode(query.Var("a"), "")
	b := q.MustEnsureNode(query.Var("b"), "")
	c := q.MustEnsureNode(query.Var("c"), "")
	hub1 := q.MustAddEdge(h, a, "p")
	hub2 := q.MustAddEdge(h, b, "p")
	hub3 := q.MustAddEdge(h, c, "p")
	q.SetProjected(h)

	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}

	plan := planEdges(q, initial)
	if plan[0] != hub1 {
		t.Fatalf("plan starts at edge %d, want hub edge %d (binary degree cap regression)", plan[0], hub1)
	}
	// The whole star is expanded (anchored on the now-bound hub) before the
	// disconnected periphery edge.
	if plan[1] != hub2 || plan[2] != hub3 || plan[3] != side {
		t.Fatalf("star not expanded before periphery: %v", plan)
	}
}

// Boundness still dominates the degree tie-break: a constant-anchored chain
// edge beats a higher-degree fully-unbound edge.
func TestPlanEdgesBoundnessDominatesDegree(t *testing.T) {
	q := query.NewSimple()
	// High-degree hub, fully unbound.
	h := q.MustEnsureNode(query.Var("h"), "")
	for i := 0; i < 4; i++ {
		leaf := q.FreshVar("")
		q.MustAddEdge(h, leaf, "p")
	}
	// Low-degree edge touching a constant.
	x := q.MustEnsureNode(query.Var("x"), "")
	k := q.MustEnsureNode(query.Const("k"), "")
	anchored := q.MustAddEdge(x, k, "p")
	q.SetProjected(h)

	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}
	initial[k] = 0 // constants are pre-bound by MatchesInto

	plan := planEdges(q, initial)
	if plan[0] != anchored {
		t.Fatalf("plan starts at %d, want the constant-anchored edge %d", plan[0], anchored)
	}
}

// The plan covers every edge exactly once.
func TestPlanEdgesCoversAll(t *testing.T) {
	q := query.NewSimple()
	var prev query.NodeID = query.NoNode
	for i := 0; i < 6; i++ {
		cur := q.FreshVar("")
		if prev != query.NoNode {
			q.MustAddEdge(prev, cur, "p")
		}
		prev = cur
	}
	q.SetProjected(prev)
	initial := make([]graph.NodeID, q.NumNodes())
	for i := range initial {
		initial[i] = graph.NoNode
	}
	plan := planEdges(q, initial)
	seen := map[query.EdgeID]bool{}
	for _, e := range plan {
		if seen[e] {
			t.Fatalf("edge %d planned twice", e)
		}
		seen[e] = true
	}
	if len(seen) != q.NumEdges() {
		t.Fatalf("plan covers %d of %d edges", len(seen), q.NumEdges())
	}
}
