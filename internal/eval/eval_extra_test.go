package eval_test

import (
	"reflect"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

// An isolated projected variable matches every (type-compatible) node.
func TestIsolatedProjectedVariable(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	q.SetProjected(x)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != o.NumNodes() {
		t.Fatalf("isolated var matched %d of %d nodes", len(res), o.NumNodes())
	}
	// With a type, only same-typed nodes match.
	q2 := query.NewSimple()
	y := q2.MustEnsureNode(query.Var("y"), "Author")
	q2.SetProjected(y)
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res {
		n, _ := o.NodeByValue(v)
		if n.Type != "Author" {
			t.Fatalf("typed isolated var matched %s (%s)", v, n.Type)
		}
	}
}

// Unions where one branch has a constant projected node.
func TestHasResultValueGroundBranch(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	exs := paperfix.Explanations(o)
	ground, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	u := query.NewUnion(ground)
	ok, err := ev.HasResultValue(bg, u, "Alice")
	if err != nil || !ok {
		t.Fatalf("Alice: ok=%v err=%v", ok, err)
	}
	// The ground branch never yields another value.
	ok, err = ev.HasResultValue(bg, u, "Dave")
	if err != nil || ok {
		t.Fatalf("Dave: ok=%v err=%v", ok, err)
	}
}

func TestProvenanceOfGroundProjected(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	exs := paperfix.Explanations(o)
	ground, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	provs, err := ev.ProvenanceOf(bg, ground, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 1 || !provs[0].EqualSets(exs[0].Graph) {
		t.Fatalf("ground provenance = %v", provs)
	}
	// Wrong value short-circuits.
	provs, err = ev.ProvenanceOf(bg, ground, "Dave", 0)
	if err != nil || provs != nil {
		t.Fatalf("foreign value: %v %v", provs, err)
	}
	// Value absent from the ontology.
	provs, err = ev.ProvenanceOf(bg, paperfix.Q1(), "NoSuch", 0)
	if err != nil || provs != nil {
		t.Fatalf("missing value: %v %v", provs, err)
	}
}

func TestProvenanceOfUnionLimit(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q1(), paperfix.Q3())
	all, err := ev.ProvenanceOfUnion(bg, u, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("need >= 2 provenance graphs, have %d", len(all))
	}
	one, err := ev.ProvenanceOfUnion(bg, u, "Alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("limit 1 -> %d graphs", len(one))
	}
	capped, err := ev.ProvenanceOfUnion(bg, u, "Alice", len(all)-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != len(all)-1 {
		t.Fatalf("limit %d -> %d graphs", len(all)-1, len(capped))
	}
}

func TestMatchImageIncomplete(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := paperfix.Q1()
	m := &eval.Match{
		Nodes: make([]graph.NodeID, q.NumNodes()),
		Edges: make([]graph.EdgeID, q.NumEdges()),
	}
	for i := range m.Edges {
		m.Edges[i] = graph.NoEdge
	}
	if _, err := ev.MatchImage(q, m); err == nil {
		t.Fatal("incomplete match accepted")
	}
}

// Diseq between two variables that map to the same node must reject the
// match even when the values are checked by node identity.
func TestDiseqVarVarSameNode(t *testing.T) {
	o := graph.New()
	o.MustAddTriple("p", "wb", "a")
	ev := eval.New(o)
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	y := q.MustEnsureNode(query.Var("y"), "")
	p := q.MustEnsureNode(query.Var("p"), "")
	q.MustAddEdge(p, x, "wb")
	q.MustAddEdge(p, y, "wb")
	q.SetProjected(x)
	if err := q.AddDiseqNodes(x, y); err != nil {
		t.Fatal(err)
	}
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("x != y violated: %v", res)
	}
}

// Difference with an empty left side and with equal sides.
func TestDifferenceEdgeCases(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q1 := query.NewUnion(paperfix.Q1())
	diff, err := ev.Difference(bg, q1, q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("Q1 - Q1 = %v", diff)
	}
	empty := query.NewSimple()
	p := empty.MustEnsureNode(query.Const("paper1"), "")
	x := empty.MustEnsureNode(query.Var("x"), "")
	empty.MustAddEdge(x, p, "nosuchlabel")
	empty.SetProjected(x)
	diff, err = ev.Difference(bg, query.NewUnion(empty), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("empty - Q1 = %v", diff)
	}
}

// Results on a union with duplicate branches dedups.
func TestUnionResultsDedup(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q3().Clone())
	res, err := ev.Results(bg, u)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range res {
		if seen[v] {
			t.Fatalf("duplicate %s in %v", v, res)
		}
		seen[v] = true
	}
	single, err := ev.Results(bg, query.NewUnion(paperfix.Q3()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, single) {
		t.Fatalf("dup union %v != single %v", res, single)
	}
}
