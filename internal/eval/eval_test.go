package eval_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/query"
)

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestResultsSimpleRunningExample(t *testing.T) {
	// Example 2.3: evaluating Q1 on the ontology yields Alice (among other
	// authors with a collapsed chain to Erdos).
	o := paperfix.Ontology()
	ev := eval.New(o)
	res, err := ev.ResultsSimple(bg, paperfix.Q1())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Alice", "Dave", "Felix", "Harry", "William", "Bob"} {
		if !contains(res, want) {
			t.Errorf("Q1 results missing %s: %v", want, res)
		}
	}
	if contains(res, "paper1") {
		t.Errorf("Q1 returned a paper: %v", res)
	}
	if !sort.StringsAreSorted(res) {
		t.Error("results not sorted")
	}
}

func TestResultsGroundProjected(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Const("paper1"), "Paper")
	a := q.MustEnsureNode(query.Const("Alice"), "Author")
	q.MustAddEdge(p, a, "wb")
	q.SetProjected(a)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice"}) {
		t.Fatalf("ground query results = %v", res)
	}
	// A ground query whose triple is absent yields nothing.
	q2 := query.NewSimple()
	p2 := q2.MustEnsureNode(query.Const("paper1"), "Paper")
	e2 := q2.MustEnsureNode(query.Const("Erdos"), "Author")
	q2.MustAddEdge(p2, e2, "wb")
	q2.SetProjected(e2)
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("absent ground query returned %v", res)
	}
}

func TestMissingConstantYieldsNoResults(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "")
	x := q.MustEnsureNode(query.Const("NoSuchValue"), "")
	q.MustAddEdge(p, x, "wb")
	q.SetProjected(p)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestNoProjectedNodeError(t *testing.T) {
	ev := eval.New(paperfix.Ontology())
	q := query.NewSimple()
	q.MustEnsureNode(query.Var("x"), "")
	if _, err := ev.ResultsSimple(bg, q); err == nil {
		t.Fatal("missing projected node not reported")
	}
}

func TestHomomorphismNotInjective(t *testing.T) {
	// ?p wb ?a1, ?p wb ?a2 with projected ?a1 must also return authors of
	// single-author papers (a1 = a2 collapse).
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "Paper")
	a1 := q.MustEnsureNode(query.Var("a1"), "Author")
	a2 := q.MustEnsureNode(query.Var("a2"), "Author")
	q.MustAddEdge(p, a1, "wb")
	q.MustAddEdge(p, a2, "wb")
	q.SetProjected(a1)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// paper4 wb Dave is Dave's sole-author edge; collapse makes Dave a result.
	if !contains(res, "Dave") {
		t.Fatalf("collapsed match missing: %v", res)
	}
}

func TestDiseqFiltering(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	p := q.MustEnsureNode(query.Var("p"), "Paper")
	a1 := q.MustEnsureNode(query.Var("a1"), "Author")
	a2 := q.MustEnsureNode(query.Var("a2"), "Author")
	q.MustAddEdge(p, a1, "wb")
	q.MustAddEdge(p, a2, "wb")
	q.SetProjected(a1)
	if err := q.AddDiseqNodes(a1, a2); err != nil {
		t.Fatal(err)
	}
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// With a1 != a2 only co-authored papers qualify; Dave's only co-author
	// edge is paper5 with Greg/Harry, so Dave still qualifies, but authors
	// of sole-authored papers only do through co-authored ones.
	if !contains(res, "Alice") || !contains(res, "Bob") {
		t.Fatalf("diseq dropped valid results: %v", res)
	}

	// Var != literal value.
	q2 := query.NewSimple()
	p2 := q2.MustEnsureNode(query.Const("paper1"), "Paper")
	x := q2.MustEnsureNode(query.Var("x"), "Author")
	q2.MustAddEdge(p2, x, "wb")
	q2.SetProjected(x)
	if err := q2.AddDiseqValue(x, "Bob"); err != nil {
		t.Fatal(err)
	}
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"Alice"}) {
		t.Fatalf("value diseq results = %v", res)
	}
}

func TestSelfLoopMatching(t *testing.T) {
	o := graph.New()
	o.MustAddTriple("a", "self", "a")
	o.MustAddTriple("a", "p", "b")
	ev := eval.New(o)
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "")
	q.MustAddEdge(x, x, "self")
	q.SetProjected(x)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, []string{"a"}) {
		t.Fatalf("self loop results = %v", res)
	}
	// A non-loop pattern must not match the loop edge incorrectly.
	q2 := query.NewSimple()
	u := q2.MustEnsureNode(query.Var("u"), "")
	v := q2.MustEnsureNode(query.Var("v"), "")
	q2.MustAddEdge(u, v, "self")
	q2.SetProjected(v)
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	// u and v may both map to a (homomorphism), so a is still a result.
	if !reflect.DeepEqual(res, []string{"a"}) {
		t.Fatalf("loop-compatible pattern results = %v", res)
	}
}

func TestTypeChecking(t *testing.T) {
	o := paperfix.Ontology()
	q := query.NewSimple()
	x := q.MustEnsureNode(query.Var("x"), "Paper") // typed Paper
	erdos := q.MustEnsureNode(query.Const("Erdos"), "")
	q.MustAddEdge(x, erdos, "wb")
	q.SetProjected(x)

	ev := eval.New(o)
	res, err := ev.ResultsSimple(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("typed query found nothing")
	}

	// Mis-typed variable finds nothing when CheckTypes is on...
	q2 := query.NewSimple()
	y := q2.MustEnsureNode(query.Var("y"), "Author") // wrong: sources are papers
	erdos2 := q2.MustEnsureNode(query.Const("Erdos"), "")
	q2.MustAddEdge(y, erdos2, "wb")
	q2.SetProjected(y)
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("mis-typed query found %v", res)
	}
	// ... but matches when CheckTypes is off.
	ev.CheckTypes = false
	res, err = ev.ResultsSimple(bg, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("type check not disabled")
	}
}

func TestUnionResults(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	res, err := ev.Results(bg, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Alice", "Felix", "Dave", "Harry"} {
		if !contains(res, want) {
			t.Errorf("union results missing %s: %v", want, res)
		}
	}
	// William's chain avoids both spines: not a result of the union.
	if contains(res, "William") {
		t.Errorf("union results should not include William: %v", res)
	}
}

func TestHasResultValue(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q1())
	ok, err := ev.HasResultValue(bg, u, "William")
	if err != nil || !ok {
		t.Fatalf("William: ok=%v err=%v", ok, err)
	}
	ok, err = ev.HasResultValue(bg, u, "paper1")
	if err != nil || ok {
		t.Fatalf("paper1: ok=%v err=%v", ok, err)
	}
	ok, err = ev.HasResultValue(bg, u, "NoSuchValue")
	if err != nil || ok {
		t.Fatalf("missing value: ok=%v err=%v", ok, err)
	}
}

func TestDifferenceExample55(t *testing.T) {
	// Example 5.5's second step: Q1 − Union(Q3, Q4) contains William, whose
	// Erdős chain avoids both constant spines.
	o := paperfix.Ontology()
	ev := eval.New(o)
	diff, err := ev.Difference(bg, query.NewUnion(paperfix.Q1()), query.NewUnion(paperfix.Q3(), paperfix.Q4()))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(diff, "William") {
		t.Fatalf("difference missing William: %v", diff)
	}
	if contains(diff, "Alice") || contains(diff, "Dave") {
		t.Fatalf("difference leaked union results: %v", diff)
	}
}

func TestProvenanceOfResult(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q1 := paperfix.Q1()
	provs, err := ev.ProvenanceOf(bg, q1, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) == 0 {
		t.Fatal("no provenance for Alice")
	}
	// Every provenance graph is a subgraph of the ontology, contains the
	// result, and contains the Erdos anchor.
	for _, p := range provs {
		if !p.IsSubgraphOf(o) {
			t.Fatal("provenance not a subgraph of the ontology")
		}
		if _, ok := p.NodeByValue("Alice"); !ok {
			t.Fatal("provenance misses the result node")
		}
		if _, ok := p.NodeByValue("Erdos"); !ok {
			t.Fatal("provenance misses the constant anchor")
		}
	}
	// E1 (Alice's full Erdős-3 chain) is one of the provenance graphs.
	e1 := paperfix.Explanations(o)[0]
	found := false
	for _, p := range provs {
		if p.EqualSets(e1.Graph) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("E1 not among Alice's %d provenance graphs", len(provs))
	}
}

func TestProvenanceLimit(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	all, err := ev.ProvenanceOf(bg, paperfix.Q1(), "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("only %d provenance graphs; limit test needs 2", len(all))
	}
	one, err := ev.ProvenanceOf(bg, paperfix.Q1(), "Alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("limit 1 returned %d graphs", len(one))
	}
}

func TestProvenanceOfUnionDedups(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q3().Clone())
	provs, err := ev.ProvenanceOfUnion(bg, u, "Alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range provs {
		sig := p.Signature()
		if seen[sig] {
			t.Fatal("duplicate provenance graph across branches")
		}
		seen[sig] = true
	}
}

func TestBindAndExplain(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	u := query.NewUnion(paperfix.Q1())
	rp, err := ev.BindAndExplain(bg, u, "William")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Value != "William" || rp.Provenance == nil {
		t.Fatalf("BindAndExplain = %+v", rp)
	}
	if _, ok := rp.Provenance.NodeByValue("William"); !ok {
		t.Fatal("explanation misses the bound result")
	}
	if _, err := ev.BindAndExplain(bg, u, "paper1"); err == nil {
		t.Fatal("non-result bind succeeded")
	}
}

func TestPreBindingConflicts(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	q := query.NewSimple()
	c := q.MustEnsureNode(query.Const("Alice"), "")
	v := q.MustEnsureNode(query.Var("p"), "")
	q.MustAddEdge(v, c, "wb")
	q.SetProjected(v)
	bob, _ := o.NodeByValue("Bob")
	err := ev.MatchesInto(bg, q, map[query.NodeID]graph.NodeID{c: bob.ID}, func(*eval.Match) bool { return true })
	if err == nil {
		t.Fatal("conflicting constant pre-binding accepted")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := graph.RandomOntology(rng, graph.RandomConfig{Nodes: 60, Edges: 600, Labels: []string{"p"}})
	ev := eval.New(o)
	ev.MaxSteps = 50 // absurdly small
	q := query.NewSimple()
	var prev query.NodeID = query.NoNode
	for i := 0; i < 6; i++ {
		cur := q.FreshVar("")
		if prev != query.NoNode {
			q.MustAddEdge(prev, cur, "p")
		}
		prev = cur
	}
	q.SetProjected(prev)
	count := 0
	err := ev.MatchesInto(bg, q, nil, func(*eval.Match) bool { count++; return true })
	if err != eval.ErrBudget {
		t.Fatalf("err = %v (found %d), want eval.ErrBudget", err, count)
	}
}

// Property: every match reported by the evaluator re-verifies Definition 2.2
// directly, and its image is a valid subgraph containing the result.
func TestMatchesVerifyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 15, Edges: 35, Labels: []string{"p", "q"},
		})
		sub, start := graph.RandomConnectedSubgraph(rng, o, 3)
		if sub == nil {
			return true
		}
		// Generalize the subgraph into a query: each node becomes a var
		// with probability 1/2.
		q := query.NewSimple()
		ids := map[string]query.NodeID{}
		for _, n := range sub.Nodes() {
			var term query.Term
			if rng.Intn(2) == 0 {
				term = query.Var("x" + n.Value)
			} else {
				term = query.Const(n.Value)
			}
			id, err := q.EnsureNode(term, "")
			if err != nil {
				return false
			}
			ids[n.Value] = id
		}
		for _, e := range sub.Edges() {
			from := ids[sub.Node(e.From).Value]
			to := ids[sub.Node(e.To).Value]
			if !q.HasEdgeTriple(from, to, e.Label) {
				if _, err := q.AddEdge(from, to, e.Label); err != nil {
					return false
				}
			}
		}
		q.SetProjected(ids[sub.Node(start).Value])

		ev := eval.New(o)
		okAll := true
		checked := 0
		err := ev.MatchesInto(bg, q, nil, func(m *eval.Match) bool {
			checked++
			if !verifyMatch(o, q, m) {
				okAll = false
				return false
			}
			img, err := ev.MatchImage(q, m)
			if err != nil || !img.IsSubgraphOf(o) {
				okAll = false
				return false
			}
			return checked < 50
		})
		if err != nil {
			return false
		}
		// The identity assignment is always a match, so something was found.
		return okAll && checked > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// verifyMatch re-checks Definition 2.2 naively.
func verifyMatch(o *graph.Graph, q *query.Simple, m *eval.Match) bool {
	for _, qn := range q.Nodes() {
		on := m.Nodes[qn.ID]
		if on == graph.NoNode {
			if q.Degree(qn.ID) > 0 {
				return false
			}
			continue
		}
		if !qn.Term.IsVar && o.Node(on).Value != qn.Term.Value {
			return false
		}
	}
	for _, qe := range q.Edges() {
		oe := m.Edges[qe.ID]
		if oe == graph.NoEdge {
			return false
		}
		e := o.Edge(oe)
		if e.Label != qe.Label {
			return false
		}
		if e.From != m.Nodes[qe.From] || e.To != m.Nodes[qe.To] {
			return false
		}
	}
	return true
}

// Property: Results of a ground query built from a subgraph always contains
// the subgraph's projected value (the identity match).
func TestGroundQueryIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 12, Edges: 30, Labels: []string{"p", "q", "r"},
		})
		sub, start := graph.RandomConnectedSubgraph(rng, o, 4)
		if sub == nil {
			return true
		}
		q, err := query.FromExplanation(sub, start)
		if err != nil {
			return false
		}
		ev := eval.New(o)
		res, err := ev.ResultsSimple(bg, q)
		if err != nil {
			return false
		}
		return contains(res, sub.Node(start).Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
