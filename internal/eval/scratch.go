package eval

import (
	"sync"

	"questpro/internal/graph"
)

// scratch is the pooled per-search buffer arena behind MatchesInto: the
// backtracking state, its match buffers, the plan and its resolved label
// ids, and the planner's mark buffers all live here, so a search allocates
// nothing once the pool is warm.
//
// Ownership rules (DESIGN.md §10): a scratch is owned by exactly one
// MatchesInto call, from getScratch to putScratch. The *Match handed to
// visit callbacks aliases the scratch's buffers and must be cloned if
// retained beyond the callback. Nothing may hold any scratch buffer across
// the put — the next search will overwrite it. Probers (probe.go) hold
// their state privately per query instead of pooling, because their buffers
// must survive across many probe calls.
type scratch struct {
	st    state
	used  []bool
	bound []bool
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// putScratch drops the pointer-typed fields that would otherwise pin the
// evaluator/query/context alive inside the pool, and recycles the buffers.
func putScratch(s *scratch) {
	s.st.ev = nil
	s.st.ctx = nil
	s.st.q = nil
	s.st.visit = nil
	s.st.fault = nil
	scratchPool.Put(s)
}

// nodeBuf resizes buf to n entries, all reset to graph.NoNode.
func nodeBuf(buf []graph.NodeID, n int) []graph.NodeID {
	if cap(buf) < n {
		buf = make([]graph.NodeID, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = graph.NoNode
	}
	return buf
}

// edgeBuf resizes buf to n entries, all reset to graph.NoEdge.
func edgeBuf(buf []graph.EdgeID, n int) []graph.EdgeID {
	if cap(buf) < n {
		buf = make([]graph.EdgeID, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = graph.NoEdge
	}
	return buf
}

// boolBuf resizes buf to n entries, all reset to false.
func boolBuf(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}
