package eval

import (
	"fmt"
	"sync/atomic"

	"questpro/internal/qerr"
)

// Guard bounds the resources one logical operation (an inference run, a
// result enumeration, a provenance materialization) may consume before it
// degrades. The zero value disables every limit. Budgets are approximate —
// charges happen in quanta on hot paths — and are shared across all the
// goroutines of the operation via a Meter.
//
// Exhaustion is not failure: guarded APIs return the partial results
// gathered so far alongside a qerr.ErrBudgetExhausted-matching error, the
// "degraded-but-useful answers" mode of Gilad & Moskovitch (2020).
type Guard struct {
	// MaxSteps bounds algorithmic work: backtracking steps in the matcher
	// (charged in cancelCheckMask+1 quanta plus one per search), and
	// pattern-size-weighted pair-merge work in the merge engine.
	MaxSteps int64

	// MaxResults bounds how many results (matches, result values,
	// provenance graphs) the operation may emit.
	MaxResults int64

	// MaxBytes approximately bounds the memory materialized for results
	// (provenance subgraphs, merged patterns), charged at a fixed estimate
	// per node and edge.
	MaxBytes int64
}

// Enabled reports whether any limit is set.
func (g Guard) Enabled() bool {
	return g.MaxSteps > 0 || g.MaxResults > 0 || g.MaxBytes > 0
}

// Validate rejects negative limits (0 means unlimited).
func (g Guard) Validate() error {
	if g.MaxSteps < 0 || g.MaxResults < 0 || g.MaxBytes < 0 {
		return fmt.Errorf("eval: negative guard limit (steps=%d results=%d bytes=%d); use 0 for unlimited",
			g.MaxSteps, g.MaxResults, g.MaxBytes)
	}
	return nil
}

// Reduce returns the guard that remains after a preceding phase consumed u
// of this guard's budgets — the phase-handoff used when one logical
// operation runs as two guarded phases (completion search, then inference)
// that must share a single budget. Disabled limits stay disabled; an
// enabled limit is reduced by the phase's usage and clamped at 1, so a
// fully spent budget makes the next phase degrade on its first charge
// instead of silently re-arming.
func (g Guard) Reduce(u Usage) Guard {
	cut := func(limit, spent int64) int64 {
		if limit <= 0 {
			return limit
		}
		rem := limit - spent
		if rem < 1 {
			return 1
		}
		return rem
	}
	return Guard{
		MaxSteps:   cut(g.MaxSteps, u.Steps),
		MaxResults: cut(g.MaxResults, u.Results),
		MaxBytes:   cut(g.MaxBytes, u.Bytes),
	}
}

// NewMeter returns the usage accumulator for one operation under the guard,
// or nil when the guard is disabled. A nil *Meter is valid everywhere and
// charges nothing.
func (g Guard) NewMeter() *Meter {
	if !g.Enabled() {
		return nil
	}
	return &Meter{guard: g}
}

// Meter accumulates an operation's resource usage against its Guard. Safe
// for concurrent use by the operation's worker goroutines; all methods are
// nil-receiver-safe.
type Meter struct {
	guard     Guard
	steps     atomic.Int64
	results   atomic.Int64
	bytes     atomic.Int64
	exhausted atomic.Bool
}

// charge adds n to counter and reports whether the budget still holds.
func (m *Meter) charge(counter *atomic.Int64, limit, n int64) bool {
	if m == nil {
		return true
	}
	if m.exhausted.Load() {
		return false
	}
	if counter.Add(n) > limit && limit > 0 {
		m.exhausted.Store(true)
		return false
	}
	return true
}

// ChargeSteps charges n units of algorithmic work.
func (m *Meter) ChargeSteps(n int64) bool {
	if m == nil {
		return true
	}
	return m.charge(&m.steps, m.guard.MaxSteps, n)
}

// ChargeResults charges n emitted results.
func (m *Meter) ChargeResults(n int64) bool {
	if m == nil {
		return true
	}
	return m.charge(&m.results, m.guard.MaxResults, n)
}

// ChargeBytes charges n bytes of materialized result memory.
func (m *Meter) ChargeBytes(n int64) bool {
	if m == nil {
		return true
	}
	return m.charge(&m.bytes, m.guard.MaxBytes, n)
}

// Exhausted reports whether any budget ran out.
func (m *Meter) Exhausted() bool { return m != nil && m.exhausted.Load() }

// Err returns a qerr.ErrBudgetExhausted-wrapped error describing the usage
// when the meter is exhausted, nil otherwise.
func (m *Meter) Err() error {
	if !m.Exhausted() {
		return nil
	}
	return fmt.Errorf("eval: guard spent (steps %d/%d, results %d/%d, bytes %d/%d): %w",
		m.steps.Load(), m.guard.MaxSteps,
		m.results.Load(), m.guard.MaxResults,
		m.bytes.Load(), m.guard.MaxBytes,
		qerr.ErrBudgetExhausted)
}

// Usage is a point-in-time snapshot of a meter's counters.
type Usage struct {
	Steps, Results, Bytes int64
	Exhausted             bool
}

// Snapshot reads the current usage (zero for a nil meter).
func (m *Meter) Snapshot() Usage {
	if m == nil {
		return Usage{}
	}
	return Usage{
		Steps:     m.steps.Load(),
		Results:   m.results.Load(),
		Bytes:     m.bytes.Load(),
		Exhausted: m.exhausted.Load(),
	}
}

// graphBytes is the fixed per-element estimate ChargeBytes uses for graph
// materializations: roughly two words of ids plus the value header per
// node/edge.
const graphBytes = 48
