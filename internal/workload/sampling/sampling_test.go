package sampling_test

import (
	"math/rand"
	"testing"

	"questpro/internal/eval"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
	"questpro/internal/query"
	"questpro/internal/workload/sampling"
)

func TestExampleSetBasics(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q3())
	s := sampling.New(ev, target, rand.New(rand.NewSource(5)))

	exs, err := s.ExampleSet(bg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 2 {
		t.Fatalf("got %d explanations", len(exs))
	}
	if err := exs.Validate(); err != nil {
		t.Fatal(err)
	}
	// A sampled explanation is a provenance image of the target, so the
	// target is consistent with the sampled example-set by construction.
	ok, err := provenance.Consistent(bg, target, exs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("target inconsistent with its own samples:\n%s", exs)
	}
	// Distinguished values are distinct results of the target.
	rs, err := s.Results(bg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range exs {
		v := e.DistinguishedValue()
		if seen[v] {
			t.Fatalf("duplicate sampled result %s", v)
		}
		seen[v] = true
		if !contains(rs, v) {
			t.Fatalf("sampled %s is not a target result", v)
		}
	}
}

func TestExampleSetTooMany(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q4()) // 3 results: Dave, Greg, Harry
	s := sampling.New(ev, target, rand.New(rand.NewSource(1)))
	if _, err := s.ExampleSet(bg, 100); err == nil {
		t.Fatal("oversized sample accepted")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q1())
	a, err := sampling.New(ev, target, rand.New(rand.NewSource(9))).ExampleSet(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.New(ev, target, rand.New(rand.NewSource(9))).ExampleSet(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].DistinguishedValue() != b[i].DistinguishedValue() ||
			a[i].Graph.Signature() != b[i].Graph.Signature() {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestExplainSharing(t *testing.T) {
	o := paperfix.Ontology()
	ev := eval.New(o)
	target := query.NewUnion(paperfix.Q1())
	s := sampling.New(ev, target, rand.New(rand.NewSource(2)))
	ref, err := s.Explain(bg, "Alice")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.ExplainSharing(bg, "Felix", ref.Graph)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, n := range ex.Graph.Nodes() {
		if _, ok := ref.Graph.NodeByValue(n.Value); ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("sharing-biased explanation shares nothing")
	}
	if _, err := s.Explain(bg, "NotAResult"); err == nil {
		t.Fatal("non-result explained")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
