package sampling

import (
	"fmt"
	"math/rand"

	"questpro/internal/graph"
	"questpro/internal/provenance"
)

// Degrade simulates a forgetful user (the partial-provenance input mode of
// Gilad & Moskovitch): it turns a complete explanation into a fragment by
// degrading approximately pct percent of its edges. Each selected edge is
// either re-labeled with the wildcard "*" (the user forgot the predicate)
// or dropped entirely with the missing-edge hint bumped (the user forgot
// the connection; the endpoints stay, possibly stranded). All nodes are
// kept — the user remembers the entities — and the distinguished node is
// untouched.
//
// pct 0 returns the explanation wrapped as a trivially complete fragment
// (sharing its graph), so a 0% degradation is byte-identical to full
// provenance. rng drives which edges degrade and how; a fixed seed gives a
// fixed fragment, which the quality experiment relies on.
func Degrade(ex provenance.Explanation, pct int, rng *rand.Rand) (provenance.PartialExplanation, error) {
	if pct < 0 || pct > 100 {
		return provenance.PartialExplanation{}, fmt.Errorf("sampling: degradation %d%% outside [0,100]", pct)
	}
	if pct == 0 {
		return provenance.FromExplanation(ex), nil
	}
	n := ex.Graph.NumEdges()
	k := (n*pct + 50) / 100
	if k >= n {
		k = n - 1 // keep at least one edge anchoring the fragment
	}
	if k < 1 {
		k = 1
	}
	if n <= 1 {
		return provenance.FromExplanation(ex), nil
	}
	chosen := make(map[graph.EdgeID]bool, k)
	for _, i := range rng.Perm(n)[:k] {
		chosen[graph.EdgeID(i)] = true
	}

	g := graph.New()
	for i := 0; i < ex.Graph.NumNodes(); i++ {
		nd := ex.Graph.Node(graph.NodeID(i))
		if _, err := g.AddNode(nd.Value, nd.Type); err != nil {
			return provenance.PartialExplanation{}, err
		}
	}
	missing := 0
	for i := 0; i < n; i++ {
		e := ex.Graph.Edge(graph.EdgeID(i))
		fv := ex.Graph.Node(e.From).Value
		tv := ex.Graph.Node(e.To).Value
		if !chosen[graph.EdgeID(i)] {
			if _, err := g.AddTriple(fv, e.Label, tv); err != nil {
				return provenance.PartialExplanation{}, err
			}
			continue
		}
		if rng.Intn(2) == 0 {
			// Forgotten predicate: keep the edge under the wildcard label. A
			// second wildcard between the same endpoints would collide; treat
			// it as a forgotten connection instead.
			if _, err := g.AddTriple(fv, provenance.Wildcard, tv); err == nil {
				continue
			}
		}
		missing++ // forgotten connection: drop the edge, hint at the loss
	}
	// Node ids are preserved: nodes were re-added in id order.
	return provenance.NewPartial(g, ex.Distinguished, missing)
}

// DegradeSet degrades every explanation of the set with an independent,
// index-seeded slice of rng's stream, so fragment i does not depend on the
// sizes of fragments 0..i-1.
func DegradeSet(exs provenance.ExampleSet, pct int, rng *rand.Rand) (provenance.PartialExampleSet, error) {
	out := make(provenance.PartialExampleSet, 0, len(exs))
	for i, ex := range exs {
		p, err := Degrade(ex, pct, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, fmt.Errorf("sampling: degrading explanation %d: %w", i, err)
		}
		out = append(out, p)
	}
	return out, nil
}
