package sampling

import (
	"math/rand"
	"testing"

	"questpro/internal/ntriples"
	"questpro/internal/paperfix"
)

// A 0% degradation must be the identity: the fragment shares the
// explanation's graph, so downstream completion takes its no-op short-cut
// and full-provenance runs stay byte-identical.
func TestDegradeZeroPctIsIdentity(t *testing.T) {
	o := paperfix.Ontology()
	for i, ex := range paperfix.Explanations(o) {
		p, err := Degrade(ex, 0, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if p.Graph != ex.Graph {
			t.Fatalf("explanation %d: p=0 rebuilt the graph", i)
		}
		if !p.IsComplete() || p.MissingEdges != 0 {
			t.Fatalf("explanation %d: p=0 fragment has holes: %s", i, p)
		}
		if p.DistinguishedValue() != ex.DistinguishedValue() {
			t.Fatalf("explanation %d: distinguished drifted", i)
		}
	}
}

func TestDegradeIsDeterministicAndKeepsNodes(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	for _, pct := range []int{10, 25, 50, 100} {
		for i, ex := range exs {
			a, err := Degrade(ex, pct, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Degrade(ex, pct, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			if ntriples.Format(a.Graph) != ntriples.Format(b.Graph) || a.MissingEdges != b.MissingEdges {
				t.Fatalf("pct %d, explanation %d: same seed produced different fragments", pct, i)
			}
			if a.Graph.NumNodes() != ex.Graph.NumNodes() {
				t.Fatalf("pct %d, explanation %d: nodes dropped (%d -> %d)",
					pct, i, ex.Graph.NumNodes(), a.Graph.NumNodes())
			}
			if a.DistinguishedValue() != ex.DistinguishedValue() {
				t.Fatalf("pct %d, explanation %d: distinguished drifted", pct, i)
			}
			// Degradation must leave a hole to complete (or keep at least one
			// anchoring edge when asked for 100%).
			holes := a.MissingEdges + len(a.WildcardEdges())
			if pct > 0 && holes == 0 {
				t.Fatalf("pct %d, explanation %d: nothing degraded", pct, i)
			}
			if a.Graph.NumEdges()+a.MissingEdges < 1 {
				t.Fatalf("pct %d, explanation %d: fragment lost every edge without a hint", pct, i)
			}
		}
	}
}

func TestDegradeRejectsBadPct(t *testing.T) {
	o := paperfix.Ontology()
	ex := paperfix.Explanations(o)[0]
	for _, pct := range []int{-1, 101} {
		if _, err := Degrade(ex, pct, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("pct %d accepted", pct)
		}
	}
}
