// Package sampling draws synthetic user input for the automatic experiments
// of Section VI-B: it evaluates a target query with provenance tracking and
// samples output examples together with one provenance graph each, which
// become the explanations fed back into the inference algorithms.
package sampling

import (
	"context"
	"fmt"
	"math/rand"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/provenance"
	"questpro/internal/query"
)

// MaxProvenancePerResult caps how many distinct provenance graphs are
// enumerated per sampled result before picking one.
const MaxProvenancePerResult = 16

// Sampler draws example-sets for a fixed target query over an ontology.
type Sampler struct {
	Ev     *eval.Evaluator
	Target *query.Union
	Rng    *rand.Rand

	results []string // cached result values of the target
}

// New builds a sampler; rng drives all random choices (fixed seed = fixed
// samples, which the experiments rely on for repeatability).
func New(ev *eval.Evaluator, target *query.Union, rng *rand.Rand) *Sampler {
	return &Sampler{Ev: ev, Target: target, Rng: rng}
}

// Results returns (and caches) the target query's full result set.
func (s *Sampler) Results(ctx context.Context) ([]string, error) {
	if s.results == nil {
		rs, err := s.Ev.Results(ctx, s.Target)
		if err != nil {
			return nil, err
		}
		s.results = rs
	}
	return s.results, nil
}

// ExampleSet samples n explanations: n distinct random results of the
// target (with replacement of the *provenance* choice, not the result) each
// paired with one random provenance graph. It fails when the target has
// fewer than n results — mirroring the paper's exclusion of single-result
// benchmark queries.
func (s *Sampler) ExampleSet(ctx context.Context, n int) (provenance.ExampleSet, error) {
	rs, err := s.Results(ctx)
	if err != nil {
		return nil, err
	}
	if len(rs) < n {
		return nil, fmt.Errorf("sampling: target has %d results, need %d", len(rs), n)
	}
	picks := s.Rng.Perm(len(rs))[:n]
	out := make(provenance.ExampleSet, 0, n)
	for _, idx := range picks {
		ex, err := s.Explain(ctx, rs[idx])
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	return out, nil
}

// Explain picks one random provenance graph of the given result and wraps
// it as an explanation.
func (s *Sampler) Explain(ctx context.Context, value string) (provenance.Explanation, error) {
	provs, err := s.Ev.ProvenanceOfUnion(ctx, s.Target, value, MaxProvenancePerResult)
	if err != nil {
		return provenance.Explanation{}, err
	}
	if len(provs) == 0 {
		return provenance.Explanation{}, fmt.Errorf("sampling: %q has no provenance", value)
	}
	g := provs[s.Rng.Intn(len(provs))]
	return provenance.NewByValue(g, value)
}

// ExplainSharing picks, among the result's provenance graphs, the one
// sharing the most node values with the reference graph — used to simulate
// the over-specific users of Section VI-C who give explanations with
// identical parts.
func (s *Sampler) ExplainSharing(ctx context.Context, value string, ref *graph.Graph) (provenance.Explanation, error) {
	provs, err := s.Ev.ProvenanceOfUnion(ctx, s.Target, value, MaxProvenancePerResult)
	if err != nil {
		return provenance.Explanation{}, err
	}
	if len(provs) == 0 {
		return provenance.Explanation{}, fmt.Errorf("sampling: %q has no provenance", value)
	}
	best, bestShared := provs[0], -1
	for _, p := range provs {
		shared := 0
		for _, n := range p.Nodes() {
			if _, ok := ref.NodeByValue(n.Value); ok {
				shared++
			}
		}
		if shared > bestShared {
			best, bestShared = p, shared
		}
	}
	return provenance.NewByValue(best, value)
}
