package workload_test

import (
	"math/rand"
	"reflect"
	"testing"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/workload/sampling"
	"questpro/internal/workload/sp2b"
)

// End-to-end pin of the kernel-rewrite acceptance bar: on an sp2b workload
// with an 8-explanation sample, the inferred union query and its evaluated
// result set are byte-identical across worker counts and across the lazy
// heap vs. the reference scan kernel — i.e. the incremental engine changes
// how fast the answer is computed, never the answer.
func TestSP2BInferenceByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := sp2b.DefaultConfig()
	cfg.Persons, cfg.Articles, cfg.Inproceedings = 300, 500, 500
	g, err := sp2b.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	var target = sp2b.Queries()[1].Query // q2: the benchmark's merge-heavy shape
	sampler := sampling.New(ev, target, rand.New(rand.NewSource(5)))
	exs, err := sampler.ExampleSet(bg, 8)
	if err != nil {
		t.Fatal(err)
	}

	var baseSPARQL string
	var baseResults []string
	first := true
	for _, workers := range []int{1, 4, 16} {
		for _, ref := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Workers = workers
			opts.ReferenceScan = ref
			u, _, err := core.InferUnion(bg, exs, opts)
			if err != nil {
				t.Fatalf("workers=%d ref=%v: %v", workers, ref, err)
			}
			rev := eval.New(g)
			rev.Workers = workers
			rs, err := rev.ResultsUnionParallel(bg, u, workers)
			if err != nil {
				t.Fatalf("workers=%d ref=%v: results: %v", workers, ref, err)
			}
			if first {
				baseSPARQL, baseResults = u.SPARQL(), rs
				first = false
				continue
			}
			if u.SPARQL() != baseSPARQL {
				t.Fatalf("workers=%d ref=%v: inferred query diverged:\n%s\nvs\n%s",
					workers, ref, u.SPARQL(), baseSPARQL)
			}
			if !reflect.DeepEqual(rs, baseResults) {
				t.Fatalf("workers=%d ref=%v: result set diverged", workers, ref)
			}
		}
	}
}
