package workload_test

import (
	"testing"

	"questpro/internal/graph"
	"questpro/internal/query"
	"questpro/internal/workload"
)

func tinyCatalog(t *testing.T) (*graph.Graph, []workload.BenchQuery) {
	t.Helper()
	g := graph.New()
	g.MustAddTriple("p1", "wb", "A")
	g.MustAddTriple("p2", "wb", "B")
	q := query.NewSimple()
	pv := q.MustEnsureNode(query.Var("p"), "")
	av := q.MustEnsureNode(query.Var("a"), "")
	q.MustAddEdge(pv, av, "wb")
	if err := q.SetProjected(av); err != nil {
		t.Fatal(err)
	}
	return g, []workload.BenchQuery{{
		Name:        "tiny",
		Description: "all authors",
		Query:       query.NewUnion(q),
	}}
}

func TestValidateAndLookup(t *testing.T) {
	g, qs := tinyCatalog(t)
	if err := workload.Validate(bg, g, qs, 2); err != nil {
		t.Fatal(err)
	}
	if err := workload.Validate(bg, g, qs, 3); err == nil {
		t.Fatal("min-results threshold not enforced")
	}
	if _, ok := workload.Lookup(qs, "tiny"); !ok {
		t.Fatal("Lookup missed an entry")
	}
	if _, ok := workload.Lookup(qs, "ghost"); ok {
		t.Fatal("Lookup invented an entry")
	}
	// A malformed query (no projected node) is rejected.
	bad := query.NewSimple()
	bad.MustEnsureNode(query.Var("x"), "")
	qs2 := []workload.BenchQuery{{Name: "bad", Query: query.NewUnion(bad)}}
	if err := workload.Validate(bg, g, qs2, 0); err == nil {
		t.Fatal("union without projected node validated")
	}
}
