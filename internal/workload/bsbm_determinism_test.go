package workload_test

import (
	"math/rand"
	"reflect"
	"testing"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/workload/bsbm"
	"questpro/internal/workload/sampling"
)

// The bsbm counterpart of TestSP2BInferenceByteIdenticalAcrossWorkers: on
// the densest workload's merge-heavy star query (q2v0, the benchmerge
// acceptance target), the inferred union query's SPARQL and its evaluated
// result set are byte-identical across worker counts 1/4/16 and across the
// lazy-heap vs. reference-scan kernels. Together with the sp2b variant this
// pins the CSR-substrate determinism invariant end to end: interning,
// adjacency order, candidate ranking and buffer pooling change how fast the
// answer is computed, never the answer.
func TestBSBMInferenceByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := bsbm.DefaultConfig()
	cfg.Products, cfg.Reviewers = 500, 150
	g, err := bsbm.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	var target = bsbm.Queries()[0].Query
	for _, bq := range bsbm.Queries() {
		if bq.Name == "q2v0" { // the wide product-details star
			target = bq.Query
		}
	}
	sampler := sampling.New(ev, target, rand.New(rand.NewSource(5)))
	exs, err := sampler.ExampleSet(bg, 8)
	if err != nil {
		t.Fatal(err)
	}

	var baseSPARQL string
	var baseResults []string
	first := true
	for _, workers := range []int{1, 4, 16} {
		for _, ref := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Workers = workers
			opts.ReferenceScan = ref
			u, _, err := core.InferUnion(bg, exs, opts)
			if err != nil {
				t.Fatalf("workers=%d ref=%v: %v", workers, ref, err)
			}
			rev := eval.New(g)
			rev.Workers = workers
			rs, err := rev.ResultsUnionParallel(bg, u, workers)
			if err != nil {
				t.Fatalf("workers=%d ref=%v: results: %v", workers, ref, err)
			}
			if first {
				baseSPARQL, baseResults = u.SPARQL(), rs
				first = false
				continue
			}
			if u.SPARQL() != baseSPARQL {
				t.Fatalf("workers=%d ref=%v: inferred query diverged:\n%s\nvs\n%s",
					workers, ref, u.SPARQL(), baseSPARQL)
			}
			if !reflect.DeepEqual(rs, baseResults) {
				t.Fatalf("workers=%d ref=%v: result set diverged", workers, ref)
			}
		}
	}
}
