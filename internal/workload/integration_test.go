package workload_test

import (
	"math/rand"
	"testing"

	"questpro/internal/core"
	"questpro/internal/eval"
	"questpro/internal/provenance"
	"questpro/internal/workload"
	"questpro/internal/workload/bsbm"
	"questpro/internal/workload/dbpedia"
	"questpro/internal/workload/sampling"
	"questpro/internal/workload/sp2b"
)

// catalogCase bundles a generated ontology with its query catalog.
type catalogCase struct {
	name     string
	ontology func() ([]workload.BenchQuery, *eval.Evaluator)
}

func smallCatalogs(t *testing.T) []catalogCase {
	t.Helper()
	return []catalogCase{
		{"sp2b", func() ([]workload.BenchQuery, *eval.Evaluator) {
			cfg := sp2b.DefaultConfig()
			cfg.Persons, cfg.Articles, cfg.Inproceedings = 300, 500, 500
			g, err := sp2b.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sp2b.Queries(), eval.New(g)
		}},
		{"bsbm", func() ([]workload.BenchQuery, *eval.Evaluator) {
			cfg := bsbm.DefaultConfig()
			cfg.Products, cfg.Reviewers = 600, 150
			g, err := bsbm.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return bsbm.Queries(), eval.New(g)
		}},
		{"dbpedia", func() ([]workload.BenchQuery, *eval.Evaluator) {
			g, err := dbpedia.Generate(dbpedia.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return dbpedia.Queries(), eval.New(g)
		}},
	}
}

// For every benchmark query of every workload: sampled explanations are
// valid provenance of the target (the target is consistent with them), and
// inference over them produces a consistent union — the end-to-end
// invariant behind all automatic experiments.
func TestEveryBenchmarkQueryRoundTrips(t *testing.T) {
	for _, c := range smallCatalogs(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			queries, ev := c.ontology()
			for _, bq := range queries {
				rng := rand.New(rand.NewSource(5))
				s := sampling.New(ev, bq.Query, rng)
				rs, err := s.Results(bg)
				if err != nil {
					t.Fatalf("%s: %v", bq.Name, err)
				}
				n := 3
				if n > len(rs) {
					n = len(rs)
				}
				if n < 2 {
					t.Fatalf("%s: only %d results", bq.Name, len(rs))
				}
				exs, err := s.ExampleSet(bg, n)
				if err != nil {
					t.Fatalf("%s: %v", bq.Name, err)
				}
				ok, err := provenance.Consistent(bg, bq.Query, exs)
				if err != nil {
					t.Fatalf("%s: %v", bq.Name, err)
				}
				if !ok {
					t.Errorf("%s: target inconsistent with its own samples", bq.Name)
					continue
				}
				u, _, err := core.InferUnion(bg, exs, core.DefaultOptions())
				if err != nil {
					t.Fatalf("%s: %v", bq.Name, err)
				}
				ok, err = provenance.Consistent(bg, u, exs)
				if err != nil {
					t.Fatalf("%s: %v", bq.Name, err)
				}
				if !ok {
					t.Errorf("%s: inferred union inconsistent with the samples", bq.Name)
				}
			}
		})
	}
}
