package dbpedia

import (
	"questpro/internal/query"
	"questpro/internal/workload"
)

type qb struct {
	q *query.Simple
}

func newQB() *qb { return &qb{q: query.NewSimple()} }

func (b *qb) v(name, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Var(name), typ)
}

func (b *qb) c(value, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Const(value), typ)
}

func (b *qb) edge(from query.NodeID, pred string, to query.NodeID) *qb {
	b.q.MustAddEdge(from, to, pred)
	return b
}

func (b *qb) diseq(x, y query.NodeID) *qb {
	if err := b.q.AddDiseqNodes(x, y); err != nil {
		panic(err)
	}
	return b
}

func (b *qb) project(n query.NodeID) *query.Union {
	if err := b.q.SetProjected(n); err != nil {
		panic(err)
	}
	return query.NewUnion(b.q)
}

// Queries returns the Table I catalog: queries 1-5 are basic, queries 6-10
// are the more challenging half (Section VI-C).
func Queries() []workload.BenchQuery {
	var out []workload.BenchQuery
	add := func(name, desc string, u *query.Union) {
		out = append(out, workload.BenchQuery{Name: name, Description: desc, Query: u})
	}

	{ // 1. Movies directed by Quentin Tarantino.
		b := newQB()
		f := b.v("film", TypeFilm)
		b.edge(f, PredDirector, b.c(Tarantino, TypePerson))
		add("table1-1", "movies directed by Quentin Tarantino", b.project(f))
	}
	{ // 2. Actors starring in Pulp Fiction.
		b := newQB()
		a := b.v("actor", TypePerson)
		b.edge(b.c(PulpFiction, TypeFilm), PredStarring, a)
		add("table1-2", "actors who star in Pulp Fiction", b.project(a))
	}
	{ // 3. Movies produced in France.
		b := newQB()
		f := b.v("film", TypeFilm)
		b.edge(f, PredCountry, b.c(France, TypeCountry))
		add("table1-3", "movies produced in France", b.project(f))
	}
	{ // 4. Movies starring Uma Thurman.
		b := newQB()
		f := b.v("film", TypeFilm)
		b.edge(f, PredStarring, b.c(UmaThurman, TypePerson))
		add("table1-4", "movies starring Uma Thurman", b.project(f))
	}
	{ // 5. Directors of Miramax movies.
		b := newQB()
		f := b.v("film", TypeFilm)
		d := b.v("director", TypePerson)
		b.edge(f, PredStudio, b.c(Miramax, TypeStudio)).edge(f, PredDirector, d)
		add("table1-5", "directors of Miramax movies", b.project(d))
	}
	{ // 6. Actors in a Tarantino movie.
		b := newQB()
		f := b.v("film", TypeFilm)
		a := b.v("actor", TypePerson)
		b.edge(f, PredDirector, b.c(Tarantino, TypePerson)).edge(f, PredStarring, a)
		add("table1-6", "actors who played in a Tarantino movie", b.project(a))
	}
	{ // 7. Actors in more than one Tarantino movie (needs a disequality).
		b := newQB()
		f1 := b.v("f1", TypeFilm)
		f2 := b.v("f2", TypeFilm)
		a := b.v("actor", TypePerson)
		tar := b.c(Tarantino, TypePerson)
		b.edge(f1, PredDirector, tar).edge(f2, PredDirector, tar).
			edge(f1, PredStarring, a).edge(f2, PredStarring, a).
			diseq(f1, f2)
		add("table1-7", "actors who played in more than one Tarantino movie", b.project(a))
	}
	{ // 8. Co-stars of Uma Thurman.
		b := newQB()
		f := b.v("film", TypeFilm)
		a := b.v("actor", TypePerson)
		uma := b.c(UmaThurman, TypePerson)
		b.edge(f, PredStarring, uma).edge(f, PredStarring, a).diseq(a, uma)
		add("table1-8", "actors who co-starred with Uma Thurman", b.project(a))
	}
	{ // 9. Directors who starred in their own movie.
		b := newQB()
		f := b.v("film", TypeFilm)
		d := b.v("director", TypePerson)
		b.edge(f, PredDirector, d).edge(f, PredStarring, d)
		add("table1-9", "directors who starred in a movie they directed", b.project(d))
	}
	{ // 10. Crime movies whose director was born in France.
		b := newQB()
		f := b.v("film", TypeFilm)
		d := b.v("director", TypePerson)
		b.edge(f, PredGenre, b.c(CrimeGenre, TypeGenre)).
			edge(f, PredDirector, d).
			edge(d, PredBirthPlace, b.c(France, TypeCountry))
		add("table1-10", "crime movies by a French-born director", b.project(f))
	}
	return out
}
