package dbpedia_test

import (
	"testing"

	"questpro/internal/eval"
	"questpro/internal/workload"
	"questpro/internal/workload/dbpedia"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := dbpedia.DefaultConfig()
	a, err := dbpedia.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbpedia.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() != b.Signature() {
		t.Fatal("generation not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnchorsPresent(t *testing.T) {
	g, err := dbpedia.Generate(dbpedia.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for value, typ := range map[string]string{
		dbpedia.Tarantino:   dbpedia.TypePerson,
		dbpedia.PulpFiction: dbpedia.TypeFilm,
		dbpedia.UmaThurman:  dbpedia.TypePerson,
		dbpedia.France:      dbpedia.TypeCountry,
		dbpedia.Miramax:     dbpedia.TypeStudio,
		dbpedia.CrimeGenre:  dbpedia.TypeGenre,
	} {
		n, ok := g.NodeByValue(value)
		if !ok || n.Type != typ {
			t.Errorf("%s = %+v, %v", value, n, ok)
		}
	}
	// Pulp Fiction is a Tarantino movie starring Uma Thurman.
	pf, _ := g.NodeByValue(dbpedia.PulpFiction)
	tar, _ := g.NodeByValue(dbpedia.Tarantino)
	uma, _ := g.NodeByValue(dbpedia.UmaThurman)
	if !g.HasEdgeTriple(pf.ID, tar.ID, dbpedia.PredDirector) {
		t.Error("Pulp Fiction not directed by Tarantino")
	}
	if !g.HasEdgeTriple(pf.ID, uma.ID, dbpedia.PredStarring) {
		t.Error("Pulp Fiction not starring Uma Thurman")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := dbpedia.Generate(dbpedia.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestQueriesCatalog(t *testing.T) {
	g, err := dbpedia.Generate(dbpedia.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := dbpedia.Queries()
	if len(qs) != 10 {
		t.Fatalf("catalog has %d queries, want 10", len(qs))
	}
	for i, bq := range qs {
		if bq.Name == "" || bq.Description == "" {
			t.Fatalf("catalog[%d] incomplete: %+v", i, bq)
		}
	}
	// Every Table I query needs at least a handful of results so that the
	// simulated users can pick diverse examples.
	if err := workload.Validate(bg, g, qs, 4); err != nil {
		t.Fatal(err)
	}
}

func TestQueryResultCounts(t *testing.T) {
	g, err := dbpedia.Generate(dbpedia.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	for _, bq := range dbpedia.Queries() {
		rs, err := ev.Results(bg, bq.Query)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		t.Logf("%s (%s): %d results", bq.Name, bq.Description, len(rs))
	}
}

// Query 7's disequality matters: without it, single-movie Tarantino actors
// leak into the results.
func TestQuery7DiseqMatters(t *testing.T) {
	g, err := dbpedia.Generate(dbpedia.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	q7, _ := workload.Lookup(dbpedia.Queries(), "table1-7")
	with, err := ev.Results(bg, q7.Query)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ev.Results(bg, q7.Query.WithoutDiseqs())
	if err != nil {
		t.Fatal(err)
	}
	if len(with) >= len(without) {
		t.Fatalf("diseq did not restrict results: %d vs %d", len(with), len(without))
	}
}
