// Package dbpedia generates a movie-domain ontology modeled on the DBpedia
// fragment of the paper's user study (Section VI-C) together with the ten
// Table I queries (five basic, five more challenging). The published table
// body is not part of the available paper text; the queries here match its
// described difficulty split and the worked examples (Tarantino appears
// explicitly in Section VI-C).
package dbpedia

import (
	"fmt"
	"math/rand"

	"questpro/internal/graph"
)

// Node types.
const (
	TypeFilm    = "Film"
	TypePerson  = "Person"
	TypeCountry = "Country"
	TypeStudio  = "Studio"
	TypeGenre   = "Genre"
)

// Edge predicates, mirroring the DBpedia movie vocabulary.
const (
	PredDirector   = "director"   // film -> person
	PredStarring   = "starring"   // film -> person
	PredCountry    = "country"    // film -> country
	PredStudio     = "studio"     // film -> studio
	PredGenre      = "genre"      // film -> genre
	PredBirthPlace = "birthPlace" // person -> country
	PredSpouse     = "spouse"     // person -> person
)

// Config sizes the generated fragment.
type Config struct {
	Seed          int64
	Films         int
	Directors     int
	Actors        int
	Countries     int
	Studios       int
	Genres        int
	ActorsPerFilm int
}

// DefaultConfig returns a laptop-scale movie fragment with a handful of
// named anchor entities (Tarantino, PulpFiction, UmaThurman, France, ...)
// wired densely enough for every Table I query to have many results.
func DefaultConfig() Config {
	return Config{
		Seed:          3,
		Films:         700,
		Directors:     60,
		Actors:        500,
		Countries:     15,
		Studios:       25,
		Genres:        12,
		ActorsPerFilm: 5,
	}
}

// Named anchor entities the Table I queries reference.
const (
	Tarantino   = "QuentinTarantino"
	PulpFiction = "PulpFiction"
	UmaThurman  = "UmaThurman"
	France      = "France"
	Miramax     = "Miramax"
	CrimeGenre  = "CrimeFilm"
)

// Generate builds the fragment deterministically from the config.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.Films < 10 || cfg.Directors < 2 || cfg.Actors < 10 ||
		cfg.Countries < 2 || cfg.Studios < 2 || cfg.Genres < 2 || cfg.ActorsPerFilm < 1 {
		return nil, fmt.Errorf("dbpedia: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()

	countries := make([]string, cfg.Countries)
	countries[0] = France
	for i := 1; i < cfg.Countries; i++ {
		countries[i] = fmt.Sprintf("country%d", i)
	}
	for _, c := range countries {
		if _, err := g.AddNode(c, TypeCountry); err != nil {
			return nil, err
		}
	}
	studios := make([]string, cfg.Studios)
	studios[0] = Miramax
	for i := 1; i < cfg.Studios; i++ {
		studios[i] = fmt.Sprintf("studio%d", i)
	}
	for _, s := range studios {
		if _, err := g.AddNode(s, TypeStudio); err != nil {
			return nil, err
		}
	}
	genres := make([]string, cfg.Genres)
	genres[0] = CrimeGenre
	for i := 1; i < cfg.Genres; i++ {
		genres[i] = fmt.Sprintf("genre%d", i)
	}
	for _, gn := range genres {
		if _, err := g.AddNode(gn, TypeGenre); err != nil {
			return nil, err
		}
	}

	directors := make([]string, cfg.Directors)
	directors[0] = Tarantino
	for i := 1; i < cfg.Directors; i++ {
		directors[i] = fmt.Sprintf("director%d", i)
	}
	actors := make([]string, cfg.Actors)
	actors[0] = UmaThurman
	for i := 1; i < cfg.Actors; i++ {
		actors[i] = fmt.Sprintf("actor%d", i)
	}
	persons := append(append([]string(nil), directors...), actors...)
	for _, p := range persons {
		if _, err := g.AddNode(p, TypePerson); err != nil {
			return nil, err
		}
	}

	triple := func(from, pred, to string) error {
		f, err := g.EnsureNode(from, "")
		if err != nil {
			return err
		}
		t, err := g.EnsureNode(to, "")
		if err != nil {
			return err
		}
		if g.HasEdgeTriple(f, t, pred) {
			return nil
		}
		_, err = g.AddEdge(f, t, pred)
		return err
	}

	for _, p := range persons {
		if err := triple(p, PredBirthPlace, countries[rng.Intn(len(countries))]); err != nil {
			return nil, err
		}
	}
	// A sprinkling of spouse links among persons.
	for i := 0; i < len(persons)/10; i++ {
		a := persons[rng.Intn(len(persons))]
		b := persons[rng.Intn(len(persons))]
		if a != b {
			if err := triple(a, PredSpouse, b); err != nil {
				return nil, err
			}
		}
	}

	skewed := func(n int) int {
		if rng.Intn(3) > 0 {
			return rng.Intn(1 + n/6)
		}
		return rng.Intn(n)
	}

	films := make([]string, cfg.Films)
	films[0] = PulpFiction
	for i := 1; i < cfg.Films; i++ {
		films[i] = fmt.Sprintf("film%d", i)
	}
	for i, f := range films {
		if _, err := g.AddNode(f, TypeFilm); err != nil {
			return nil, err
		}
		director := directors[skewed(len(directors))]
		if i == 0 {
			director = Tarantino // Pulp Fiction is a Tarantino movie.
		}
		if err := triple(f, PredDirector, director); err != nil {
			return nil, err
		}
		if err := triple(f, PredCountry, countries[skewed(len(countries))]); err != nil {
			return nil, err
		}
		if err := triple(f, PredStudio, studios[skewed(len(studios))]); err != nil {
			return nil, err
		}
		if err := triple(f, PredGenre, genres[skewed(len(genres))]); err != nil {
			return nil, err
		}
		n := 1 + rng.Intn(cfg.ActorsPerFilm)
		if i == 0 {
			n = cfg.ActorsPerFilm + 1 // Pulp Fiction gets a full cast.
		}
		for a := 0; a < n; a++ {
			actor := actors[skewed(len(actors))]
			if i == 0 && a == 0 {
				actor = UmaThurman
			}
			if err := triple(f, PredStarring, actor); err != nil {
				return nil, err
			}
		}
		// Some directors act in their own movies (Table I query 9).
		if rng.Intn(12) == 0 {
			if err := triple(f, PredStarring, director); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
