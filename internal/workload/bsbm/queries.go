package bsbm

import (
	"questpro/internal/query"
	"questpro/internal/workload"
)

type qb struct {
	q *query.Simple
}

func newQB() *qb { return &qb{q: query.NewSimple()} }

func (b *qb) v(name, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Var(name), typ)
}

func (b *qb) c(value, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Const(value), typ)
}

func (b *qb) edge(from query.NodeID, pred string, to query.NodeID) *qb {
	b.q.MustAddEdge(from, to, pred)
	return b
}

func (b *qb) project(n query.NodeID) *query.Union {
	if err := b.q.SetProjected(n); err != nil {
		panic(err)
	}
	return query.NewUnion(b.q)
}

// Queries returns the BSBM catalog of Section VI-B — q1v0, q2v0, q3v0,
// q5v0, q6v0, q8v0, q10v0 — adapted to single-output-node basic graph
// patterns over the generated fragment.
func Queries() []workload.BenchQuery {
	var out []workload.BenchQuery

	{ // q1v0: products of a given type with a given feature.
		b := newQB()
		p := b.v("p", TypeProduct)
		ty := b.c("ptype0", TypePType)
		f := b.c("feature0", TypeFeature)
		b.edge(p, PredType, ty).edge(p, PredFeature, f)
		out = append(out, workload.BenchQuery{
			Name:        "q1v0",
			Description: "products of ptype0 carrying feature0",
			Query:       b.project(p),
		})
	}
	{ // q2v0: the wide product-details star (the paper's slowest query).
		b := newQB()
		p := b.v("p", TypeProduct)
		pr := b.v("pr", TypeProducer)
		f1 := b.c("feature1", TypeFeature)
		f2 := b.v("f2", TypeFeature)
		ty := b.v("ty", TypePType)
		o := b.v("o", TypeOffer)
		vd := b.v("vd", TypeVendor)
		r := b.v("r", TypeReview)
		u := b.v("u", TypePerson)
		country := b.v("cy", TypeCountry)
		b.edge(p, PredProducer, pr).
			edge(p, PredFeature, f1).
			edge(p, PredFeature, f2).
			edge(p, PredType, ty).
			edge(o, PredOffProd, p).
			edge(o, PredVendor, vd).
			edge(r, PredReviewFor, p).
			edge(r, PredReviewer, u).
			edge(pr, PredCountry, country)
		out = append(out, workload.BenchQuery{
			Name:        "q2v0",
			Description: "fully described products: producer, features, type, offer, review",
			Query:       b.project(p),
		})
	}
	{ // q3v0: products with a feature whose producer is from a country.
		b := newQB()
		p := b.v("p", TypeProduct)
		pr := b.v("pr", TypeProducer)
		f := b.c("feature2", TypeFeature)
		cy := b.c("country0", TypeCountry)
		b.edge(p, PredFeature, f).edge(p, PredProducer, pr).edge(pr, PredCountry, cy)
		out = append(out, workload.BenchQuery{
			Name:        "q3v0",
			Description: "products with feature2 made by a country0 producer",
			Query:       b.project(p),
		})
	}
	{ // q5v0: products similar to product0 (shared feature and type).
		b := newQB()
		p := b.v("p", TypeProduct)
		ref := b.c("product0", TypeProduct)
		f := b.v("f", TypeFeature)
		ty := b.v("ty", TypePType)
		b.edge(ref, PredFeature, f).edge(p, PredFeature, f).
			edge(ref, PredType, ty).edge(p, PredType, ty)
		out = append(out, workload.BenchQuery{
			Name:        "q5v0",
			Description: "products sharing a feature and the type with product0",
			Query:       b.project(p),
		})
	}
	{ // q6v0: products of a given producer.
		b := newQB()
		p := b.v("p", TypeProduct)
		pr := b.c("producer0", TypeProducer)
		b.edge(p, PredProducer, pr)
		out = append(out, workload.BenchQuery{
			Name:        "q6v0",
			Description: "products made by producer0",
			Query:       b.project(p),
		})
	}
	{ // q8v0: reviewers of products made by a given producer.
		b := newQB()
		r := b.v("r", TypeReview)
		p := b.v("p", TypeProduct)
		u := b.v("u", TypePerson)
		pr := b.c("producer1", TypeProducer)
		b.edge(r, PredReviewFor, p).edge(p, PredProducer, pr).edge(r, PredReviewer, u)
		out = append(out, workload.BenchQuery{
			Name:        "q8v0",
			Description: "reviewers who reviewed a producer1 product",
			Query:       b.project(u),
		})
	}
	{ // q10v0: offers for feature3 products sold by country1 vendors.
		b := newQB()
		o := b.v("o", TypeOffer)
		p := b.v("p", TypeProduct)
		vd := b.v("vd", TypeVendor)
		f := b.c("feature3", TypeFeature)
		cy := b.c("country1", TypeCountry)
		b.edge(o, PredOffProd, p).edge(p, PredFeature, f).
			edge(o, PredVendor, vd).edge(vd, PredCountry, cy)
		out = append(out, workload.BenchQuery{
			Name:        "q10v0",
			Description: "offers for feature3 products from country1 vendors",
			Query:       b.project(o),
		})
	}
	return out
}
