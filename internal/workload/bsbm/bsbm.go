// Package bsbm generates an e-commerce ontology modeled on the Berlin
// SPARQL Benchmark the paper evaluates against (Section VI-B) — products,
// producers, features, types, vendors, offers, reviews and reviewers —
// together with the benchmark query catalog (q1v0, q2v0, q3v0, q5v0, q6v0,
// q8v0, q10v0) re-expressed in the paper's query class. Queries 4v0, 7v0
// and 9v0 are excluded, as in the paper, because they are designed to
// output a single result.
package bsbm

import (
	"fmt"
	"math/rand"

	"questpro/internal/graph"
)

// Node types.
const (
	TypeProduct  = "Product"
	TypeProducer = "Producer"
	TypeFeature  = "ProductFeature"
	TypePType    = "ProductType"
	TypeVendor   = "Vendor"
	TypeOffer    = "Offer"
	TypeReview   = "Review"
	TypePerson   = "Person"
	TypeCountry  = "Country"
)

// Edge predicates, mirroring the BSBM vocabulary.
const (
	PredProducer  = "producer"  // product -> producer
	PredFeature   = "feature"   // product -> feature
	PredType      = "type"      // product -> product type
	PredOffProd   = "product"   // offer -> product
	PredVendor    = "vendor"    // offer -> vendor
	PredReviewFor = "reviewFor" // review -> product
	PredReviewer  = "reviewer"  // review -> person
	PredCountry   = "country"   // vendor/person/producer -> country
)

// Config sizes the generated fragment.
type Config struct {
	Seed            int64
	Products        int
	Producers       int
	Features        int
	Types           int
	Vendors         int
	Reviewers       int
	Countries       int
	FeaturesPerProd int
	OffersPerProd   int
	ReviewsPerProd  int
}

// DefaultConfig returns a laptop-scale fragment (~40k triples). BSBM was
// the paper's largest ontology (647.5 MB); proportionally this fragment is
// the densest of the three workloads.
func DefaultConfig() Config {
	return Config{
		Seed:            2,
		Products:        1800,
		Producers:       60,
		Features:        120,
		Types:           30,
		Vendors:         50,
		Reviewers:       400,
		Countries:       12,
		FeaturesPerProd: 4,
		OffersPerProd:   3,
		ReviewsPerProd:  3,
	}
}

// Generate builds the fragment deterministically from the config.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.Products < 1 || cfg.Producers < 1 || cfg.Features < 1 || cfg.Types < 1 ||
		cfg.Vendors < 1 || cfg.Reviewers < 1 || cfg.Countries < 1 {
		return nil, fmt.Errorf("bsbm: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()

	add := func(prefix string, n int, typ string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
			if _, err := g.AddNode(out[i], typ); err != nil {
				panic(err) // unreachable: names are unique
			}
		}
		return out
	}
	countries := add("country", cfg.Countries, TypeCountry)
	producers := add("producer", cfg.Producers, TypeProducer)
	features := add("feature", cfg.Features, TypeFeature)
	ptypes := add("ptype", cfg.Types, TypePType)
	vendors := add("vendor", cfg.Vendors, TypeVendor)
	reviewers := add("reviewer", cfg.Reviewers, TypePerson)

	triple := func(from, pred, to string) error {
		f, err := g.EnsureNode(from, "")
		if err != nil {
			return err
		}
		t, err := g.EnsureNode(to, "")
		if err != nil {
			return err
		}
		if g.HasEdgeTriple(f, t, pred) {
			return nil
		}
		_, err = g.AddEdge(f, t, pred)
		return err
	}

	for _, p := range producers {
		if err := triple(p, PredCountry, countries[rng.Intn(len(countries))]); err != nil {
			return nil, err
		}
	}
	for _, v := range vendors {
		if err := triple(v, PredCountry, countries[rng.Intn(len(countries))]); err != nil {
			return nil, err
		}
	}
	for _, r := range reviewers {
		if err := triple(r, PredCountry, countries[rng.Intn(len(countries))]); err != nil {
			return nil, err
		}
	}

	// skewed picks head-heavy indexes so that low-numbered anchors
	// (producer0, feature0, ...) have dense extensions.
	skewed := func(n int) int {
		if rng.Intn(3) > 0 {
			return rng.Intn(1 + n/6)
		}
		return rng.Intn(n)
	}

	offerID, reviewID := 0, 0
	for i := 0; i < cfg.Products; i++ {
		prod := fmt.Sprintf("product%d", i)
		if _, err := g.AddNode(prod, TypeProduct); err != nil {
			return nil, err
		}
		if err := triple(prod, PredProducer, producers[skewed(len(producers))]); err != nil {
			return nil, err
		}
		if err := triple(prod, PredType, ptypes[skewed(len(ptypes))]); err != nil {
			return nil, err
		}
		for f := 0; f < cfg.FeaturesPerProd; f++ {
			if err := triple(prod, PredFeature, features[skewed(len(features))]); err != nil {
				return nil, err
			}
		}
		for o := rng.Intn(cfg.OffersPerProd + 1); o > 0; o-- {
			offer := fmt.Sprintf("offer%d", offerID)
			offerID++
			if _, err := g.AddNode(offer, TypeOffer); err != nil {
				return nil, err
			}
			if err := triple(offer, PredOffProd, prod); err != nil {
				return nil, err
			}
			if err := triple(offer, PredVendor, vendors[skewed(len(vendors))]); err != nil {
				return nil, err
			}
		}
		for r := rng.Intn(cfg.ReviewsPerProd + 1); r > 0; r-- {
			review := fmt.Sprintf("review%d", reviewID)
			reviewID++
			if _, err := g.AddNode(review, TypeReview); err != nil {
				return nil, err
			}
			if err := triple(review, PredReviewFor, prod); err != nil {
				return nil, err
			}
			if err := triple(review, PredReviewer, reviewers[skewed(len(reviewers))]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
