package bsbm_test

import (
	"testing"

	"questpro/internal/eval"
	"questpro/internal/workload"
	"questpro/internal/workload/bsbm"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := bsbm.DefaultConfig()
	a, err := bsbm.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bsbm.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() != b.Signature() {
		t.Fatal("generation not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := bsbm.Generate(bsbm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{
		bsbm.PredProducer, bsbm.PredFeature, bsbm.PredType, bsbm.PredOffProd,
		bsbm.PredVendor, bsbm.PredReviewFor, bsbm.PredReviewer, bsbm.PredCountry,
	} {
		if g.LabelCount(pred) == 0 {
			t.Errorf("predicate %s missing", pred)
		}
	}
	if g.NumEdges() < 10000 {
		t.Fatalf("fragment too small: %d edges", g.NumEdges())
	}
	n, ok := g.NodeByValue("product0")
	if !ok || n.Type != bsbm.TypeProduct {
		t.Fatalf("product0 = %+v, %v", n, ok)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := bsbm.Generate(bsbm.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestQueriesCatalog(t *testing.T) {
	g, err := bsbm.Generate(bsbm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := bsbm.Queries()
	want := []string{"q1v0", "q2v0", "q3v0", "q5v0", "q6v0", "q8v0", "q10v0"}
	if len(qs) != len(want) {
		t.Fatalf("catalog has %d queries, want %d", len(qs), len(want))
	}
	for i, name := range want {
		if qs[i].Name != name {
			t.Fatalf("catalog[%d] = %s, want %s", i, qs[i].Name, name)
		}
	}
	if err := workload.Validate(bg, g, qs, 14); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesShapeRanges(t *testing.T) {
	for _, bq := range bsbm.Queries() {
		for _, b := range bq.Query.Branches() {
			if b.NumEdges() < 1 || b.NumEdges() > 12 {
				t.Errorf("%s: %d edges", bq.Name, b.NumEdges())
			}
			if b.NumVars() < 1 || b.NumVars() > 12 {
				t.Errorf("%s: %d vars", bq.Name, b.NumVars())
			}
		}
	}
}

func TestQueryResultCounts(t *testing.T) {
	g, err := bsbm.Generate(bsbm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	for _, bq := range bsbm.Queries() {
		rs, err := ev.Results(bg, bq.Query)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		t.Logf("%s: %d results", bq.Name, len(rs))
	}
}
