package sp2b_test

import (
	"testing"

	"questpro/internal/eval"
	"questpro/internal/workload"
	"questpro/internal/workload/sp2b"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := sp2b.DefaultConfig()
	a, err := sp2b.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp2b.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() != b.Signature() {
		t.Fatal("generation not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := sp2b.Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() == c.Signature() {
		t.Fatal("different seeds produced identical fragments")
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := sp2b.Generate(sp2b.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.LabelCount(sp2b.PredCreator) == 0 || g.LabelCount(sp2b.PredJournal) == 0 ||
		g.LabelCount(sp2b.PredPartOf) == 0 || g.LabelCount(sp2b.PredEditor) == 0 ||
		g.LabelCount(sp2b.PredCites) == 0 {
		t.Fatalf("missing predicates: %v", g.Labels())
	}
	n, ok := g.NodeByValue("person0")
	if !ok || n.Type != sp2b.TypePerson {
		t.Fatalf("person0 = %+v, %v", n, ok)
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("fragment too small: %d edges", g.NumEdges())
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := sp2b.Generate(sp2b.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// The catalog must contain exactly the paper's 8 SP2B queries, each with
// enough results to sample the Figure-6 sweep's 14 explanations.
func TestQueriesCatalog(t *testing.T) {
	g, err := sp2b.Generate(sp2b.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := sp2b.Queries()
	want := []string{"q2", "q3a", "q3b", "q6", "q8a", "q8b", "q11", "q12a"}
	if len(qs) != len(want) {
		t.Fatalf("catalog has %d queries, want %d", len(qs), len(want))
	}
	for i, name := range want {
		if qs[i].Name != name {
			t.Fatalf("catalog[%d] = %s, want %s", i, qs[i].Name, name)
		}
		if qs[i].Description == "" {
			t.Fatalf("%s has no description", name)
		}
	}
	if err := workload.Validate(bg, g, qs, 14); err != nil {
		t.Fatal(err)
	}
	if _, ok := workload.Lookup(qs, "q8b"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := workload.Lookup(qs, "nope"); ok {
		t.Fatal("Lookup found a ghost")
	}
}

// Edge/variable counts stay in the paper's reported 1-12 range.
func TestQueriesShapeRanges(t *testing.T) {
	for _, bq := range sp2b.Queries() {
		for _, b := range bq.Query.Branches() {
			if b.NumEdges() < 1 || b.NumEdges() > 12 {
				t.Errorf("%s: %d edges", bq.Name, b.NumEdges())
			}
			if b.NumVars() < 1 || b.NumVars() > 12 {
				t.Errorf("%s: %d vars", bq.Name, b.NumVars())
			}
		}
	}
}

func TestQueryResultCounts(t *testing.T) {
	g, err := sp2b.Generate(sp2b.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(g)
	for _, bq := range sp2b.Queries() {
		rs, err := ev.Results(bg, bq.Query)
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		t.Logf("%s: %d results", bq.Name, len(rs))
	}
}
