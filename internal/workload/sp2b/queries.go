package sp2b

import (
	"questpro/internal/query"
	"questpro/internal/workload"
)

// qb is a small builder for anchored benchmark queries.
type qb struct {
	q *query.Simple
}

func newQB() *qb { return &qb{q: query.NewSimple()} }

func (b *qb) v(name, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Var(name), typ)
}

func (b *qb) c(value, typ string) query.NodeID {
	return b.q.MustEnsureNode(query.Const(value), typ)
}

func (b *qb) edge(from query.NodeID, pred string, to query.NodeID) *qb {
	b.q.MustAddEdge(from, to, pred)
	return b
}

func (b *qb) project(n query.NodeID) *query.Union {
	if err := b.q.SetProjected(n); err != nil {
		panic(err)
	}
	return query.NewUnion(b.q)
}

// Queries returns the SP²B benchmark catalog of Section VI-B — queries 2,
// 3a, 3b, 6, 8a, 8b, 11 and 12a — adapted to single-output-node basic graph
// patterns over the generated fragment (queries 4 and 7 are excluded, as in
// the paper, because they target single-result outputs). Constant anchors
// reference the generator's skewed head entities so that every query has a
// rich result set.
func Queries() []workload.BenchQuery {
	var out []workload.BenchQuery

	{ // q2: authors publishing in a given journal.
		b := newQB()
		art := b.v("article", TypeArticle)
		auth := b.v("author", TypePerson)
		j := b.c("journal0", TypeJournal)
		b.edge(art, PredJournal, j).edge(art, PredCreator, auth)
		out = append(out, workload.BenchQuery{
			Name:        "q2",
			Description: "authors of articles published in journal0",
			Query:       b.project(auth),
		})
	}
	{ // q3a: documents citing a document by a given author.
		b := newQB()
		x := b.v("x", "")
		y := b.v("y", "")
		p := b.c("person0", TypePerson)
		b.edge(x, PredCites, y).edge(y, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q3a",
			Description: "documents citing a document authored by person0",
			Query:       b.project(x),
		})
	}
	{ // q3b: authors of documents cited from a given journal's articles.
		b := newQB()
		x := b.v("x", TypeArticle)
		y := b.v("y", "")
		p := b.v("p", TypePerson)
		j := b.c("journal1", TypeJournal)
		b.edge(x, PredJournal, j).edge(x, PredCites, y).edge(y, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q3b",
			Description: "authors cited by articles of journal1",
			Query:       b.project(p),
		})
	}
	{ // q6: co-authors of a given person.
		b := newQB()
		d := b.v("d", "")
		p := b.v("p", TypePerson)
		a := b.c("person1", TypePerson)
		b.edge(d, PredCreator, a).edge(d, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q6",
			Description: "co-authors of person1",
			Query:       b.project(p),
		})
	}
	{ // q8a: co-authorship distance <= 2 from person0 (the Erdős pattern).
		b := newQB()
		d1 := b.v("d1", "")
		d2 := b.v("d2", "")
		m := b.v("m", TypePerson)
		p := b.v("p", TypePerson)
		anchor := b.c("person0", TypePerson)
		b.edge(d1, PredCreator, anchor).edge(d1, PredCreator, m).
			edge(d2, PredCreator, m).edge(d2, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q8a",
			Description: "persons within co-authorship distance 2 of person0",
			Query:       b.project(p),
		})
	}
	{ // q8b: co-authorship distance <= 3 (the paper's hardest SP2B query).
		b := newQB()
		d1 := b.v("d1", "")
		d2 := b.v("d2", "")
		d3 := b.v("d3", "")
		m1 := b.v("m1", TypePerson)
		m2 := b.v("m2", TypePerson)
		p := b.v("p", TypePerson)
		anchor := b.c("person0", TypePerson)
		b.edge(d1, PredCreator, anchor).edge(d1, PredCreator, m1).
			edge(d2, PredCreator, m1).edge(d2, PredCreator, m2).
			edge(d3, PredCreator, m2).edge(d3, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q8b",
			Description: "persons within co-authorship distance 3 of person0",
			Query:       b.project(p),
		})
	}
	{ // q11: editors of proceedings where a given person published.
		b := newQB()
		ip := b.v("ip", TypeInproceedings)
		proc := b.v("proc", TypeProceedings)
		e := b.v("e", TypePerson)
		a := b.c("person2", TypePerson)
		b.edge(ip, PredPartOf, proc).edge(ip, PredCreator, a).edge(proc, PredEditor, e)
		out = append(out, workload.BenchQuery{
			Name:        "q11",
			Description: "editors of proceedings in which person2 published",
			Query:       b.project(e),
		})
	}
	{ // q12a: authors with both a journal0 article and a proc0 paper.
		b := newQB()
		art := b.v("art", TypeArticle)
		ip := b.v("ip", TypeInproceedings)
		p := b.v("p", TypePerson)
		j := b.c("journal0", TypeJournal)
		proc := b.c("proc0", TypeProceedings)
		b.edge(art, PredJournal, j).edge(art, PredCreator, p).
			edge(ip, PredPartOf, proc).edge(ip, PredCreator, p)
		out = append(out, workload.BenchQuery{
			Name:        "q12a",
			Description: "authors with both a journal0 article and a proc0 inproceedings",
			Query:       b.project(p),
		})
	}
	return out
}
