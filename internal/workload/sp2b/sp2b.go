// Package sp2b generates a DBLP-style publications ontology modeled on the
// SP²Bench benchmark the paper evaluates against (Section VI-B), together
// with the benchmark queries (q2, q3a, q3b, q6, q8a, q8b, q11, q12a)
// re-expressed in the paper's query class: basic graph patterns with a
// single output node. The paper used a 67 MB SP²B fragment; the generator
// is scale-parameterized and deterministic — what matters for the
// experiments is enough result/provenance variety per query, not absolute
// size (see DESIGN.md, substitution 2).
package sp2b

import (
	"fmt"
	"math/rand"

	"questpro/internal/graph"
)

// Node types.
const (
	TypePerson        = "Person"
	TypeArticle       = "Article"
	TypeInproceedings = "Inproceedings"
	TypeJournal       = "Journal"
	TypeProceedings   = "Proceedings"
)

// Edge predicates, mirroring SP²B's DC/SWRC vocabulary.
const (
	PredCreator   = "creator"   // document -> person
	PredCites     = "cites"     // document -> document
	PredJournal   = "journal"   // article -> journal
	PredPartOf    = "partOf"    // inproceedings -> proceedings
	PredEditor    = "editor"    // proceedings -> person
	PredHomepage  = "homepage"  // person -> webpage value node
	PredSameEvent = "sameEvent" // proceedings -> proceedings (series)
)

// Config sizes the generated fragment. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Seed           int64
	Persons        int
	Journals       int
	Proceedings    int
	Articles       int
	Inproceedings  int
	MaxAuthors     int // max creators per document (>= 1)
	MaxCites       int // max citations per document
	HomepageShare  float64
	EditorsPerProc int
}

// DefaultConfig returns a laptop-scale fragment (~20k triples) with enough
// variety for up to 14 sampled explanations per benchmark query.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Persons:        900,
		Journals:       25,
		Proceedings:    40,
		Articles:       1400,
		Inproceedings:  1600,
		MaxAuthors:     4,
		MaxCites:       3,
		HomepageShare:  0.3,
		EditorsPerProc: 2,
	}
}

// Generate builds the fragment deterministically from the config.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.Persons < 1 || cfg.Articles < 1 || cfg.Inproceedings < 0 ||
		cfg.Journals < 1 || cfg.Proceedings < 1 || cfg.MaxAuthors < 1 {
		return nil, fmt.Errorf("sp2b: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()

	persons := make([]string, cfg.Persons)
	for i := range persons {
		persons[i] = fmt.Sprintf("person%d", i)
		if _, err := g.AddNode(persons[i], TypePerson); err != nil {
			return nil, err
		}
	}
	journals := make([]string, cfg.Journals)
	for i := range journals {
		journals[i] = fmt.Sprintf("journal%d", i)
		if _, err := g.AddNode(journals[i], TypeJournal); err != nil {
			return nil, err
		}
	}
	procs := make([]string, cfg.Proceedings)
	for i := range procs {
		procs[i] = fmt.Sprintf("proc%d", i)
		if _, err := g.AddNode(procs[i], TypeProceedings); err != nil {
			return nil, err
		}
	}

	// Editors: each proceedings gets EditorsPerProc editors.
	for _, p := range procs {
		for e := 0; e < cfg.EditorsPerProc; e++ {
			person := persons[rng.Intn(len(persons))]
			if err := addTripleIgnoringDup(g, p, PredEditor, person); err != nil {
				return nil, err
			}
		}
	}
	// Proceedings series links.
	for i := 1; i < len(procs); i++ {
		if i%4 == 0 {
			if err := addTripleIgnoringDup(g, procs[i], PredSameEvent, procs[i-4+rng.Intn(4)]); err != nil {
				return nil, err
			}
		}
	}

	// pickAuthors samples 1..MaxAuthors distinct authors with a skew toward
	// low person indexes (prolific authors), producing the dense
	// co-authorship neighborhoods the chain queries (q8a/q8b) need.
	pickAuthors := func() []string {
		n := 1 + rng.Intn(cfg.MaxAuthors)
		seen := map[string]bool{}
		var out []string
		for len(out) < n {
			idx := rng.Intn(len(persons))
			if rng.Intn(3) > 0 { // skew: 2/3 of draws come from the first 15%
				idx = rng.Intn(1 + len(persons)/7)
			}
			p := persons[idx]
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
		return out
	}

	docs := make([]string, 0, cfg.Articles+cfg.Inproceedings)
	for i := 0; i < cfg.Articles; i++ {
		a := fmt.Sprintf("article%d", i)
		if _, err := g.AddNode(a, TypeArticle); err != nil {
			return nil, err
		}
		docs = append(docs, a)
		if err := addTripleIgnoringDup(g, a, PredJournal, journals[rng.Intn(len(journals))]); err != nil {
			return nil, err
		}
		for _, p := range pickAuthors() {
			if err := addTripleIgnoringDup(g, a, PredCreator, p); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < cfg.Inproceedings; i++ {
		ip := fmt.Sprintf("inproc%d", i)
		if _, err := g.AddNode(ip, TypeInproceedings); err != nil {
			return nil, err
		}
		docs = append(docs, ip)
		if err := addTripleIgnoringDup(g, ip, PredPartOf, procs[rng.Intn(len(procs))]); err != nil {
			return nil, err
		}
		for _, p := range pickAuthors() {
			if err := addTripleIgnoringDup(g, ip, PredCreator, p); err != nil {
				return nil, err
			}
		}
	}

	// Citations between documents.
	for _, d := range docs {
		for c := rng.Intn(cfg.MaxCites + 1); c > 0; c-- {
			target := docs[rng.Intn(len(docs))]
			if target == d {
				continue
			}
			if err := addTripleIgnoringDup(g, d, PredCites, target); err != nil {
				return nil, err
			}
		}
	}

	// Homepages.
	for i, p := range persons {
		if rng.Float64() < cfg.HomepageShare {
			hp := fmt.Sprintf("http://people.example.org/%d", i)
			if _, err := g.AddNode(hp, "Webpage"); err != nil {
				return nil, err
			}
			if err := addTripleIgnoringDup(g, p, PredHomepage, hp); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// addTripleIgnoringDup inserts the triple unless it already exists (random
// generation may redraw the same pair).
func addTripleIgnoringDup(g *graph.Graph, from, pred, to string) error {
	f, err := g.EnsureNode(from, "")
	if err != nil {
		return err
	}
	t, err := g.EnsureNode(to, "")
	if err != nil {
		return err
	}
	if g.HasEdgeTriple(f, t, pred) {
		return nil
	}
	_, err = g.AddEdge(f, t, pred)
	return err
}
