// Package workload defines the shared shape of benchmark workloads: a
// generated ontology plus a catalog of named benchmark queries, re-expressed
// in the paper's query class. Concrete workloads live in the sp2b, bsbm and
// dbpedia subpackages.
package workload

import (
	"context"
	"fmt"

	"questpro/internal/eval"
	"questpro/internal/graph"
	"questpro/internal/query"
)

// BenchQuery is one catalog entry: a named target query over a workload
// ontology, used as the ground truth the inference algorithms try to
// reverse-engineer.
type BenchQuery struct {
	// Name is the benchmark identifier (e.g. "q8b", "q2v0", "table1-7").
	Name string
	// Description is the human-readable intent shown to (simulated) users.
	Description string
	// Query is the target, anchored to constants of the generated ontology.
	Query *query.Union
}

// Validate checks a catalog against its ontology: every query must be
// well-formed and have at least minResults results (the paper excludes
// benchmark queries designed to return a single result, since reproducing a
// query needs at least two explanations).
func Validate(ctx context.Context, o *graph.Graph, queries []BenchQuery, minResults int) error {
	ev := eval.New(o)
	for _, bq := range queries {
		if err := bq.Query.Validate(); err != nil {
			return fmt.Errorf("workload: %s: %w", bq.Name, err)
		}
		rs, err := ev.Results(ctx, bq.Query)
		if err != nil {
			return fmt.Errorf("workload: %s: %w", bq.Name, err)
		}
		if len(rs) < minResults {
			return fmt.Errorf("workload: %s has %d results, want >= %d", bq.Name, len(rs), minResults)
		}
	}
	return nil
}

// Lookup finds a catalog entry by name.
func Lookup(queries []BenchQuery, name string) (BenchQuery, bool) {
	for _, q := range queries {
		if q.Name == name {
			return q, true
		}
	}
	return BenchQuery{}, false
}
