package core

import (
	"fmt"

	"questpro/internal/query"
)

// EdgePair pairs an edge of pattern A with an edge of pattern B; the
// building block of complete relations (Definition 3.6).
type EdgePair struct {
	A, B query.EdgeID
}

// Relation is a set of edge pairs between two patterns. The patterns may be
// explanations (represented as ground queries) or previously inferred
// queries — Algorithm 1 merges both alike (Section III, "Extending to n
// Explanations").
type Relation struct {
	A, B  *query.Simple
	Pairs []EdgePair
}

// nodePair identifies a pair of nodes (one per pattern); BuildQuery's query
// nodes are exactly the node pairs induced by the relation's edge pairs.
type nodePair struct {
	a, b query.NodeID
}

// IsComplete checks Definition 3.6: labels agree on every pair, every edge
// of both patterns is covered, and some pair joins distinguished-adjacent
// edges in the same role.
func (r *Relation) IsComplete() bool {
	if len(r.Pairs) == 0 {
		return false
	}
	coveredA := make(map[query.EdgeID]bool, r.A.NumEdges())
	coveredB := make(map[query.EdgeID]bool, r.B.NumEdges())
	hasProjected := false
	for _, p := range r.Pairs {
		ea, eb := r.A.Edge(p.A), r.B.Edge(p.B)
		if ea.Label != eb.Label {
			return false
		}
		coveredA[p.A] = true
		coveredB[p.B] = true
		if pairProjects(r.A, r.B, ea, eb) {
			hasProjected = true
		}
	}
	return hasProjected &&
		len(coveredA) == r.A.NumEdges() && len(coveredB) == r.B.NumEdges()
}

// pairProjects reports whether the pair's edges touch the two projected
// (distinguished) nodes in the same role (both sources or both targets) —
// condition 4 of Definition 3.6.
func pairProjects(a, b *query.Simple, ea, eb query.Edge) bool {
	pa, pb := a.Projected(), b.Projected()
	return (ea.From == pa && eb.From == pb) || (ea.To == pa && eb.To == pb)
}

// Gain evaluates the dynamic gain function of Definition 3.11 for adding
// the pair (ea, eb) given the current partial relation state. Weights are
// (w1, w2, w3); a label mismatch yields -1.
//
//	c1: shared constants on the endpoints (0, 1 or 2);
//	c2: how many of the two edges are not yet paired (0, 1 or 2);
//	c3: endpoint node-pairs already induced by the relation (0, 1 or 2) —
//	    pairing such edges will reuse existing query nodes instead of
//	    introducing fresh variables.
func (st *relationState) Gain(pa, pb query.EdgeID) float64 {
	ea, eb := st.a.Edge(pa), st.b.Edge(pb)
	if ea.Label != eb.Label {
		return -1
	}
	c1 := 0
	if sameConstant(st.a.Node(ea.From), st.b.Node(eb.From)) {
		c1++
	}
	if sameConstant(st.a.Node(ea.To), st.b.Node(eb.To)) {
		c1++
	}
	c2 := 0
	if !st.pairedA[pa] {
		c2++
	}
	if !st.pairedB[pb] {
		c2++
	}
	c3 := 0
	if st.nodePairs[st.npIndex(ea.From, eb.From)] {
		c3++
	}
	if st.nodePairs[st.npIndex(ea.To, eb.To)] {
		c3++
	}
	w := st.weights
	return w[0]*float64(c1) + w[1]*float64(c2) + w[2]*float64(c3)
}

// sameConstant reports whether two pattern nodes carry the same constant
// (variables from different patterns are never "the same").
func sameConstant(a, b query.Node) bool {
	return !a.Term.IsVar && !b.Term.IsVar && a.Term.Value == b.Term.Value
}

// relationState tracks one in-flight greedy construction of a relation.
// Storage is dense and reset-in-place so the merge kernel can pool one
// state per worker across restarts (see reset): pairedA/pairedB are indexed
// by EdgeID, nodePairs by the flattened (a-node, b-node) index, and only
// the entries touched since the last reset are cleared.
type relationState struct {
	a, b    *query.Simple
	weights [3]float64

	pairedA, pairedB           []bool // indexed by EdgeID
	pairedACount, pairedBCount int

	nodePairs []bool  // indexed by npIndex
	npStride  int     // NumNodes(b); npIndex = a*npStride + b
	npTouched []int32 // set nodePairs entries, for reset

	pairs []EdgePair
	gain  float64
}

func newRelationState(a, b *query.Simple, weights [3]float64) *relationState {
	// pairs and npTouched get their worst-case capacity up front (every
	// candidate pair selected; both its endpoints fresh) — a state is built
	// once per MergePair per worker, and letting append grow these from nil
	// was a measurable slice-churn cost on the merge hot path.
	maxPairs := a.NumEdges() * b.NumEdges()
	maxNPs := a.NumNodes() * b.NumNodes()
	return &relationState{
		a: a, b: b, weights: weights,
		pairedA:   make([]bool, a.NumEdges()),
		pairedB:   make([]bool, b.NumEdges()),
		nodePairs: make([]bool, maxNPs),
		npStride:  b.NumNodes(),
		pairs:     make([]EdgePair, 0, maxPairs),
		npTouched: make([]int32, 0, maxNPs),
	}
}

// npIndex flattens a node pair into its nodePairs slot.
func (st *relationState) npIndex(na, nb query.NodeID) int32 {
	return int32(int(na)*st.npStride + int(nb))
}

// add records the selected pair, its gain, and the node pairs it induces.
func (st *relationState) add(pa, pb query.EdgeID) {
	st.gain += st.Gain(pa, pb)
	st.pairs = append(st.pairs, EdgePair{pa, pb})
	if !st.pairedA[pa] {
		st.pairedA[pa] = true
		st.pairedACount++
	}
	if !st.pairedB[pb] {
		st.pairedB[pb] = true
		st.pairedBCount++
	}
	ea, eb := st.a.Edge(pa), st.b.Edge(pb)
	st.induce(st.npIndex(ea.From, eb.From))
	st.induce(st.npIndex(ea.To, eb.To))
}

// induce marks a node pair as induced by the relation, remembering it for
// reset; it reports whether the pair is new.
func (st *relationState) induce(np int32) bool {
	if st.nodePairs[np] {
		return false
	}
	st.nodePairs[np] = true
	st.npTouched = append(st.npTouched, np)
	return true
}

// reset clears the state in place — only the entries actually touched — so
// a pooled state restarts without reallocating its dense arrays.
func (st *relationState) reset() {
	for _, p := range st.pairs {
		st.pairedA[p.A] = false
		st.pairedB[p.B] = false
	}
	for _, np := range st.npTouched {
		st.nodePairs[np] = false
	}
	st.pairs = st.pairs[:0]
	st.npTouched = st.npTouched[:0]
	st.pairedACount, st.pairedBCount = 0, 0
	st.gain = 0
}

// allPaired reports whether every edge of both patterns has been covered.
func (st *relationState) allPaired() bool {
	return st.pairedACount == st.a.NumEdges() && st.pairedBCount == st.b.NumEdges()
}

// BuildQuery realizes Proposition 3.10: it converts a complete relation
// into the consistent simple query with the minimum number of variables the
// relation can lead to via the operations of Definition 3.7. Each edge pair
// becomes a query edge; each induced node pair becomes a single query node —
// a constant when both components carry the same constant (operation 4), a
// fresh variable otherwise; node pairs shared between edge pairs connect the
// corresponding edges (operation 3); the (projected, projected) node pair
// becomes the new projected node (operation 2).
func BuildQuery(r *Relation) (*query.Simple, error) {
	if !r.IsComplete() {
		return nil, fmt.Errorf("core: relation is not complete")
	}
	q := query.NewSimple()
	q.Grow(2*len(r.Pairs), len(r.Pairs))
	nodes := make(map[nodePair]query.NodeID, 2*len(r.Pairs))
	materialize := func(na, nb query.Node) (query.NodeID, error) {
		key := nodePair{na.ID, nb.ID}
		if id, ok := nodes[key]; ok {
			return id, nil
		}
		typ := ""
		if na.Type == nb.Type {
			typ = na.Type
		}
		var id query.NodeID
		if sameConstant(na, nb) {
			var err error
			id, err = q.EnsureNode(query.Const(na.Term.Value), typ)
			if err != nil {
				// Conflicting types for the same constant across pairs:
				// retry untyped rather than failing the merge.
				id, err = q.EnsureNode(query.Const(na.Term.Value), "")
				if err != nil {
					return 0, err
				}
			}
		} else {
			id = q.FreshVar(typ)
		}
		nodes[key] = id
		return id, nil
	}
	for _, p := range r.Pairs {
		ea, eb := r.A.Edge(p.A), r.B.Edge(p.B)
		from, err := materialize(r.A.Node(ea.From), r.B.Node(eb.From))
		if err != nil {
			return nil, err
		}
		to, err := materialize(r.A.Node(ea.To), r.B.Node(eb.To))
		if err != nil {
			return nil, err
		}
		if !q.HasEdgeTriple(from, to, ea.Label) {
			if _, err := q.AddEdge(from, to, ea.Label); err != nil {
				return nil, err
			}
		}
	}
	proj, ok := nodes[nodePair{r.A.Projected(), r.B.Projected()}]
	if !ok {
		return nil, fmt.Errorf("core: complete relation induced no projected node")
	}
	if err := q.SetProjected(proj); err != nil {
		return nil, err
	}
	return q, nil
}
