package core

// This file implements the Algorithm-1 merge kernel: the restart-invariant
// precomputation shared by every greedy restart of one MergePair call
// (mergeShared), the pooled per-worker scratch (restartScratch), and the
// two selection kernels — the incremental lazy-heap kernel used by default,
// and the retained full-rescan reference kernel (Options.ReferenceScan)
// kept for ablation and for the determinism suite. DESIGN.md §4d states
// the gain-dirtiness invariant both kernels rely on and the argument for
// why their selections are byte-identical.

import (
	"math"
	"sort"

	"questpro/internal/query"
)

// sharedCand is the restart-invariant view of one candidate edge pair: the
// static shared-constant count c1 of Definition 3.11 and the flattened
// endpoint node-pair indices the pair would induce.
type sharedCand struct {
	p      EdgePair
	c1     int8
	npFrom int32
	npTo   int32
}

// mergeShared is the per-MergePair precomputation reused across the whole
// numIter × sweep restart grid. The candidate set is fixed for the call, so
// three things the original implementation redid per restart are computed
// exactly once: the initial gain ranking (on the empty state every gain is
// w1·c1 + 2·w2 — restart-independent, so each restart's stable sort yields
// the same permutation), the distinguished-pair ranking, and the dirtiness
// adjacency used by the incremental kernel.
type mergeShared struct {
	a, b    *query.Simple
	weights [3]float64

	// cands holds the candidates in the shared initial ranking (gain
	// descending, ties by position in compatiblePairs order); initGain is
	// aligned with it. "Ranked position" below always indexes these.
	cands    []sharedCand
	initGain []float64

	// rankOf maps a candidate pair to its ranked position.
	rankOf map[EdgePair]int32

	// byNP[np] lists the ranked positions of candidates inducing endpoint
	// node pair np. It is the increase half of the gain-dirtiness
	// adjacency: add(pa, pb) can only *raise* the gain of candidates in
	// byNP of a newly induced endpoint pair (the c3 term) — those must get
	// fresh heap bounds or they could be starved. Gains can only *fall*
	// through the c2 term (a candidate's edge getting paired away), and a
	// fallen gain needs no bookkeeping at all: its heap entries merely
	// become stale upper bounds, settled by pop-time validation.
	byNP [][]int32

	// disPairs are the distinguished-adjacent pairs ranked by seed gain —
	// the forced first selections of the sweep (lines 10-12 of Algorithm 1).
	disPairs []EdgePair

	// sharedEvals counts the gain evaluations performed here (candidate
	// ranking + distinguished ranking), charged once per MergePair.
	sharedEvals int64
}

// newMergeShared builds the shared precomputation; ok is false when no
// candidate pairs or no distinguished-adjacent pairs exist (Lemma 3.2: no
// complete relation, hence no consistent simple query, can exist).
func newMergeShared(a, b *query.Simple, weights [3]float64) (*mergeShared, bool) {
	candidates := compatiblePairs(a, b)
	if len(candidates) == 0 {
		return nil, false
	}
	seed := newRelationState(a, b, weights)
	type ranked struct {
		p    EdgePair
		gain float64
	}
	evals := int64(0)
	var disRanked []ranked
	for _, p := range candidates {
		if pairProjects(a, b, a.Edge(p.A), b.Edge(p.B)) {
			disRanked = append(disRanked, ranked{p, seed.Gain(p.A, p.B)})
			evals++
		}
	}
	if len(disRanked) == 0 {
		return nil, false // Lemma 3.2
	}
	sort.SliceStable(disRanked, func(i, j int) bool { return disRanked[i].gain > disRanked[j].gain })

	initial := make([]ranked, len(candidates))
	for i, p := range candidates {
		initial[i] = ranked{p, seed.Gain(p.A, p.B)}
		evals++
	}
	sort.SliceStable(initial, func(i, j int) bool { return initial[i].gain > initial[j].gain })

	sh := &mergeShared{
		a: a, b: b, weights: weights,
		cands:       make([]sharedCand, len(initial)),
		initGain:    make([]float64, len(initial)),
		rankOf:      make(map[EdgePair]int32, len(initial)),
		byNP:        make([][]int32, a.NumNodes()*b.NumNodes()),
		sharedEvals: evals,
	}
	stride := b.NumNodes()
	for r, rc := range initial {
		ea, eb := a.Edge(rc.p.A), b.Edge(rc.p.B)
		c1 := int8(0)
		if sameConstant(a.Node(ea.From), b.Node(eb.From)) {
			c1++
		}
		if sameConstant(a.Node(ea.To), b.Node(eb.To)) {
			c1++
		}
		npFrom := int32(int(ea.From)*stride + int(eb.From))
		npTo := int32(int(ea.To)*stride + int(eb.To))
		sh.cands[r] = sharedCand{p: rc.p, c1: c1, npFrom: npFrom, npTo: npTo}
		sh.initGain[r] = rc.gain
		sh.rankOf[rc.p] = int32(r)
		sh.byNP[npFrom] = append(sh.byNP[npFrom], int32(r))
		if npTo != npFrom {
			sh.byNP[npTo] = append(sh.byNP[npTo], int32(r))
		}
	}
	sh.disPairs = make([]EdgePair, len(disRanked))
	for i, r := range disRanked {
		sh.disPairs[i] = r.p
	}
	return sh, true
}

// heapEntry is one (gain bound, ranked position) heap element. Entries are
// immutable once pushed and carry upper bounds, not necessarily exact
// gains; the pop loop settles the exact value with one gain evaluation
// before a candidate can be selected.
type heapEntry struct {
	gain float64
	pos  int32
}

// before reports whether x pops before y: gain descending, ranked position
// ascending — exactly the "first strict maximum" order of the reference
// scan, so the heap's top valid entry is the candidate the scan selects.
func (x heapEntry) before(y heapEntry) bool {
	return x.gain > y.gain || (x.gain == y.gain && x.pos < y.pos)
}

// restartScratch is one worker's pooled restart state: the dense relation
// state plus the kernel bookkeeping, all reset in place between restarts so
// a restart allocates nothing beyond the winning pair list.
type restartScratch struct {
	st      *relationState
	alive   []bool      // by ranked position
	curGain []float64   // by ranked position; an upper bound on the true gain
	heap    []heapEntry // max-heap in before order
	evals   int64       // gain evaluations performed since last cell start
}

func newRestartScratch(sh *mergeShared) *restartScratch {
	return &restartScratch{
		st:      newRelationState(sh.a, sh.b, sh.weights),
		alive:   make([]bool, len(sh.cands)),
		curGain: make([]float64, len(sh.cands)),
		heap:    make([]heapEntry, 0, 2*len(sh.cands)),
	}
}

// gainOf evaluates the dynamic gain of candidate c against the scratch
// state with the exact arithmetic and term order of relationState.Gain
// (label mismatch is impossible: compatiblePairs filters candidates), so
// comparisons — and hence selections — are bitwise-identical across
// kernels and versions.
func (sc *restartScratch) gainOf(c *sharedCand) float64 {
	st := sc.st
	c2 := 0
	if !st.pairedA[c.p.A] {
		c2++
	}
	if !st.pairedB[c.p.B] {
		c2++
	}
	c3 := 0
	if st.nodePairs[c.npFrom] {
		c3++
	}
	if st.nodePairs[c.npTo] {
		c3++
	}
	w := st.weights
	return w[0]*float64(c.c1) + w[1]*float64(c2) + w[2]*float64(c3)
}

func (sc *restartScratch) push(e heapEntry) {
	sc.heap = append(sc.heap, e)
	h := sc.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (sc *restartScratch) pop() {
	h := sc.heap
	n := len(h) - 1
	h[0] = h[n]
	sc.heap = h[:n]
	h = sc.heap
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h[l].before(h[m]) {
			m = l
		}
		if r < n && h[r].before(h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// selectCand applies the greedy selection of ranked candidate pos: record
// the pair in the relation state, then repair the heap's bound invariant
// for the state changes this add made. Only gain *increases* need work —
// candidates sharing a newly induced endpoint node pair get a bumped
// upper-bound entry (no gain evaluation). Gain decreases (the selected
// edges getting paired away from their other candidates) leave existing
// entries as stale upper bounds for pop-time validation to settle.
func (sc *restartScratch) selectCand(sh *mergeShared, pos int32) {
	c := &sh.cands[pos]
	st := sc.st
	newFrom := !st.nodePairs[c.npFrom]
	newTo := !st.nodePairs[c.npTo]
	st.add(c.p.A, c.p.B)
	sc.evals++ // the add's own gain evaluation
	sc.alive[pos] = false
	if newFrom {
		sc.bump(sh, c.npFrom)
	}
	if newTo && c.npTo != c.npFrom {
		sc.bump(sh, c.npTo)
	}
}

// bump raises the cached bound of every alive candidate inducing node pair
// np, which just entered the relation: the candidate's c3 term grew by one
// per endpoint mapped to np, so its gain rose by that many w3 increments.
// The refreshed entry is pushed as a certified upper bound computed
// without evaluating the gain function — upperAdd rounds up whenever the
// float addition is inexact — so the heap invariant (every alive candidate
// has an entry ≥ its true gain) is maintained at zero evaluation cost.
func (sc *restartScratch) bump(sh *mergeShared, np int32) {
	w3 := sh.weights[2]
	for _, r := range sh.byNP[np] {
		if !sc.alive[r] {
			continue
		}
		inc := w3
		if c := &sh.cands[r]; c.npFrom == np && c.npTo == np {
			inc = w3 + w3
		}
		b := upperAdd(sc.curGain[r], inc)
		sc.curGain[r] = b
		sc.push(heapEntry{b, r})
	}
}

// upperAdd returns a float64 guaranteed ≥ the exact real sum a+b, and
// equal to fl(a+b) whenever that rounding did not lose anything (with the
// default integer-valued gain weights it never does, so bounds stay exact
// and validation hits on the first pop). The rounding error of s is
// recovered exactly with Knuth's 2Sum; a positive residual means s rounded
// below the true sum, so the next float up restores the upper bound.
func upperAdd(a, b float64) float64 {
	s := a + b
	ap := s - b
	bp := s - ap
	if (a-ap)+(b-bp) > 0 {
		return math.Nextafter(s, math.Inf(1))
	}
	return s
}

// begin validates and prepares one restart cell shared by both kernels:
// skip removes the top-skip ranked candidates (restart diversification),
// first is the forced initial selection. It returns the forced pair's
// ranked position and false when the cell cannot run (pool empty after
// diversification, or the forced pair diversified away).
func (sc *restartScratch) begin(sh *mergeShared, skip int, first EdgePair) (int32, bool) {
	if skip >= len(sh.cands) {
		return 0, false
	}
	firstPos := sh.rankOf[first]
	if int(firstPos) < skip {
		return 0, false // diversification removed the forced first pair
	}
	sc.st.reset()
	return firstPos, true
}

// finish extracts the completed relation, or fails when edges remain
// uncovered. The pair list is copied out: the scratch is reused by the next
// cell, but the winning relation escapes into the MergeResult.
func (sc *restartScratch) finish() ([]EdgePair, float64, bool) {
	if !sc.st.allPaired() {
		return nil, 0, false
	}
	return append([]EdgePair(nil), sc.st.pairs...), sc.st.gain, true
}

// runHeap performs one greedy restart with the incremental bound-heap
// kernel. Candidates enter the heap at their shared initial gains (the
// ranked array is sorted in before order, so it is already a valid heap),
// which are exact; from then on entries are upper bounds maintained by
// selectCand/bump. The selection loop pops the top entry, discards it if
// dead, and otherwise settles the candidate's exact gain with one
// evaluation. If the exact entry still dominates the rest of the heap it
// is the selection: every other alive candidate's true gain sits below one
// of the remaining entries, and the (gain, rank) order of before breaks
// ties at equal gain by ranked position — exactly the reference scan's
// "first strict maximum", byte for byte. Otherwise the corrected entry is
// requeued to contend at its true gain.
func (sc *restartScratch) runHeap(sh *mergeShared, skip int, first EdgePair) ([]EdgePair, float64, bool) {
	firstPos, ok := sc.begin(sh, skip, first)
	if !ok {
		return nil, 0, false
	}
	n := len(sh.cands)
	sc.heap = sc.heap[:0]
	for r := 0; r < skip; r++ {
		sc.alive[r] = false
	}
	for r := skip; r < n; r++ {
		sc.alive[r] = true
		sc.curGain[r] = sh.initGain[r]
		sc.heap = append(sc.heap, heapEntry{sh.initGain[r], int32(r)})
	}
	sc.selectCand(sh, firstPos)
	remaining := (n - skip) - 1
	st := sc.st
	for remaining > 0 && !st.allPaired() {
		pos := int32(-1)
		for len(sc.heap) > 0 {
			top := sc.heap[0]
			if !sc.alive[top.pos] {
				sc.pop() // dead entry
				continue
			}
			g := sc.gainOf(&sh.cands[top.pos])
			sc.evals++
			sc.pop()
			if ent := (heapEntry{g, top.pos}); g != top.gain && len(sc.heap) > 0 && !ent.before(sc.heap[0]) {
				// The settled gain no longer dominates: requeue the exact
				// entry and let the new top contend.
				sc.curGain[top.pos] = g
				sc.push(ent)
				continue
			}
			if g > -1.0 {
				pos = top.pos
			}
			break
		}
		if pos < 0 {
			break // no candidate beats the scan's -1 floor
		}
		sc.selectCand(sh, pos)
		remaining--
	}
	return sc.finish()
}

// runScan is the retained reference kernel: the original full-rescan greedy
// loop, selecting by a linear scan over the alive pool every step. Kept for
// the determinism suite (heap vs scan byte-equality) and as the honest
// baseline for the gain-evaluation counter — including the per-restart
// initial ranking pass the original performed, which the shared
// precomputation now hoists.
func (sc *restartScratch) runScan(sh *mergeShared, skip int, first EdgePair) ([]EdgePair, float64, bool) {
	firstPos, ok := sc.begin(sh, skip, first)
	if !ok {
		return nil, 0, false
	}
	n := len(sh.cands)
	for r := 0; r < n; r++ {
		sc.alive[r] = r >= skip
		// The original ranked the pool by evaluating every candidate's gain
		// on the empty state each restart; the ranking is shared now, but
		// the reference kernel still performs the evaluations so its
		// counter reflects the pre-incremental cost faithfully.
		_ = sc.gainOf(&sh.cands[r])
		sc.evals++
	}
	st := sc.st
	st.add(first.A, first.B)
	sc.evals++
	sc.alive[firstPos] = false
	remaining := (n - skip) - 1
	for remaining > 0 && !st.allPaired() {
		bestIdx := -1
		bestGain := -1.0
		for r := skip; r < n; r++ {
			if !sc.alive[r] {
				continue
			}
			g := sc.gainOf(&sh.cands[r])
			sc.evals++
			if g > bestGain {
				bestGain = g
				bestIdx = r
			}
		}
		if bestIdx < 0 {
			break
		}
		c := &sh.cands[bestIdx]
		st.add(c.p.A, c.p.B)
		sc.evals++
		sc.alive[bestIdx] = false
		remaining--
	}
	return sc.finish()
}
