package core

// This file implements the Algorithm-1 merge kernel: the restart-invariant
// precomputation shared by every greedy restart of one MergePair call
// (mergeShared), the pooled per-worker scratch (restartScratch), and the
// two selection kernels — the incremental lazy-heap kernel used by default,
// and the retained full-rescan reference kernel (Options.ReferenceScan)
// kept for ablation and for the determinism suite. DESIGN.md §4d states
// the gain-dirtiness invariant both kernels rely on and the argument for
// why their selections are byte-identical.

import (
	"math"

	"questpro/internal/query"
)

// sharedCand is the restart-invariant view of one candidate edge pair: the
// static shared-constant count c1 of Definition 3.11 and the flattened
// endpoint node-pair indices the pair would induce.
type sharedCand struct {
	p      EdgePair
	c1     int8
	npFrom int32
	npTo   int32
}

// mergeShared is the per-MergePair precomputation reused across the whole
// numIter × sweep restart grid. The candidate set is fixed for the call, so
// three things the original implementation redid per restart are computed
// exactly once: the initial gain ranking (on the empty state every gain is
// w1·c1 + 2·w2 — restart-independent, so each restart's stable sort yields
// the same permutation), the distinguished-pair ranking, and the dirtiness
// adjacency used by the incremental kernel.
type mergeShared struct {
	a, b    *query.Simple
	weights [3]float64

	// cands holds the candidates in the shared initial ranking (gain
	// descending, ties by position in compatiblePairs order); initGain is
	// aligned with it. "Ranked position" below always indexes these.
	cands    []sharedCand
	initGain []float64

	// rankOf maps a candidate pair to its ranked position through a dense
	// table indexed by the flattened (A-edge, B-edge) interned-id pair
	// (stride bEdges); -1 for non-candidate pairs. See rank.
	rankOf []int32
	bEdges int

	// npVar records, for every endpoint node pair a candidate can induce,
	// whether BuildQuery would materialize it as a fresh variable (true) or
	// a shared constant (false). Because query terms are unique per pattern
	// (Simple.byTerm), two *distinct* node pairs can never carry the same
	// constant value, so the variable count of the built query equals
	// exactly the number of induced node pairs with npVar set — letting
	// finish rank restart outcomes without building the query at all.
	npVar []bool

	// byNP(np) lists the ranked positions of candidates inducing endpoint
	// node pair np, stored in CSR form (byNPOff offsets into byNPAdj, in
	// ranked-position order). It is the increase half of the gain-dirtiness
	// adjacency: add(pa, pb) can only *raise* the gain of candidates in
	// byNP of a newly induced endpoint pair (the c3 term) — those must get
	// fresh heap bounds or they could be starved. Gains can only *fall*
	// through the c2 term (a candidate's edge getting paired away), and a
	// fallen gain needs no bookkeeping at all: its heap entries merely
	// become stale upper bounds, settled by pop-time validation.
	byNPOff []int32
	byNPAdj []int32

	// disPairs are the distinguished-adjacent pairs ranked by seed gain —
	// the forced first selections of the sweep (lines 10-12 of Algorithm 1).
	disPairs []EdgePair

	// sharedEvals counts the gain evaluations performed here (candidate
	// ranking + distinguished ranking), charged once per MergePair.
	sharedEvals int64
}

// newMergeShared builds the shared precomputation; ok is false when no
// candidate pairs or no distinguished-adjacent pairs exist (Lemma 3.2: no
// complete relation, hence no consistent simple query, can exist).
func newMergeShared(a, b *query.Simple, weights [3]float64) (*mergeShared, bool) {
	candidates := compatiblePairs(a, b)
	if len(candidates) == 0 {
		return nil, false
	}
	seed := newRelationState(a, b, weights)
	evals := int64(0)
	nProj := 0
	initial := make([]ranked, len(candidates))
	for i, p := range candidates {
		g := seed.Gain(p.A, p.B)
		evals++
		proj := pairProjects(a, b, a.Edge(p.A), b.Edge(p.B))
		if proj {
			// The distinguished ranking historically re-evaluated the seed
			// gain of each projecting pair; the eval count is a pinned
			// deterministic counter, so it is preserved even though the
			// value is now computed once.
			evals++
			nProj++
		}
		initial[i] = ranked{p: p, gain: g, proj: proj}
	}
	if nProj == 0 {
		return nil, false // Lemma 3.2
	}
	// One stable sort serves both rankings: the distinguished ranking is
	// (gain desc, candidate order) restricted to projecting pairs, which is
	// exactly the projecting subsequence of the full stable ranking.
	stableSortByGain(initial)

	nps := a.NumNodes() * b.NumNodes()
	sh := &mergeShared{
		a: a, b: b, weights: weights,
		cands:       make([]sharedCand, len(initial)),
		initGain:    make([]float64, len(initial)),
		rankOf:      make([]int32, a.NumEdges()*b.NumEdges()),
		bEdges:      b.NumEdges(),
		byNPOff:     make([]int32, nps+1),
		npVar:       make([]bool, nps),
		sharedEvals: evals,
	}
	for i := range sh.rankOf {
		sh.rankOf[i] = -1
	}
	stride := b.NumNodes()
	adjLen := 0
	for r, rc := range initial {
		ea, eb := a.Edge(rc.p.A), b.Edge(rc.p.B)
		sameFrom := sameConstant(a.Node(ea.From), b.Node(eb.From))
		sameTo := sameConstant(a.Node(ea.To), b.Node(eb.To))
		c1 := int8(0)
		if sameFrom {
			c1++
		}
		if sameTo {
			c1++
		}
		npFrom := int32(int(ea.From)*stride + int(eb.From))
		npTo := int32(int(ea.To)*stride + int(eb.To))
		sh.cands[r] = sharedCand{p: rc.p, c1: c1, npFrom: npFrom, npTo: npTo}
		sh.initGain[r] = rc.gain
		sh.rankOf[int(rc.p.A)*sh.bEdges+int(rc.p.B)] = int32(r)
		sh.npVar[npFrom] = !sameFrom
		sh.npVar[npTo] = !sameTo
		sh.byNPOff[npFrom+1]++
		adjLen++
		if npTo != npFrom {
			sh.byNPOff[npTo+1]++
			adjLen++
		}
	}
	// Counting-sort fill of the CSR adjacency: offsets by prefix sum, then a
	// second pass over cands in ranked order keeps each bucket ascending.
	for np := 0; np < nps; np++ {
		sh.byNPOff[np+1] += sh.byNPOff[np]
	}
	sh.byNPAdj = make([]int32, adjLen)
	cursor := make([]int32, nps)
	copy(cursor, sh.byNPOff[:nps])
	for r := range sh.cands {
		c := &sh.cands[r]
		sh.byNPAdj[cursor[c.npFrom]] = int32(r)
		cursor[c.npFrom]++
		if c.npTo != c.npFrom {
			sh.byNPAdj[cursor[c.npTo]] = int32(r)
			cursor[c.npTo]++
		}
	}
	sh.disPairs = make([]EdgePair, 0, nProj)
	for _, r := range initial {
		if r.proj {
			sh.disPairs = append(sh.disPairs, r.p)
		}
	}
	return sh, true
}

// ranked is one candidate pair with its seed gain during the shared initial
// ranking; proj marks distinguished-adjacent pairs (see disPairs).
type ranked struct {
	p    EdgePair
	gain float64
	proj bool
}

// stableSortByGain sorts by gain descending, preserving the input order of
// equal-gain entries (binary-insertion sort). Candidate sets are small —
// label-compatible pairs between two query patterns — and the hand-rolled
// sort avoids sort.SliceStable's per-call reflection allocations, which
// dominated newMergeShared's allocation profile.
func stableSortByGain(s []ranked) {
	for i := 1; i < len(s); i++ {
		x := s[i]
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s[mid].gain < x.gain {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < i {
			copy(s[lo+1:i+1], s[lo:i])
			s[lo] = x
		}
	}
}

// rank returns the ranked position of a candidate pair (-1 if p is not a
// candidate) via the dense id-pair table.
func (sh *mergeShared) rank(p EdgePair) int32 {
	return sh.rankOf[int(p.A)*sh.bEdges+int(p.B)]
}

// heapEntry is one (gain bound, ranked position) heap element. Entries are
// immutable once pushed and carry upper bounds, not necessarily exact
// gains; the pop loop settles the exact value with one gain evaluation
// before a candidate can be selected.
type heapEntry struct {
	gain float64
	pos  int32
}

// before reports whether x pops before y: gain descending, ranked position
// ascending — exactly the "first strict maximum" order of the reference
// scan, so the heap's top valid entry is the candidate the scan selects.
func (x heapEntry) before(y heapEntry) bool {
	return x.gain > y.gain || (x.gain == y.gain && x.pos < y.pos)
}

// restartScratch is one worker's pooled restart state: the dense relation
// state plus the kernel bookkeeping, all reset in place between restarts so
// a restart allocates nothing beyond the winning pair list.
type restartScratch struct {
	st      *relationState
	alive   []bool      // by ranked position
	curGain []float64   // by ranked position; an upper bound on the true gain
	heap    []heapEntry // max-heap in before order
	evals   int64       // gain evaluations performed since last cell start
}

func newRestartScratch(sh *mergeShared) *restartScratch {
	return &restartScratch{
		st:      newRelationState(sh.a, sh.b, sh.weights),
		alive:   make([]bool, len(sh.cands)),
		curGain: make([]float64, len(sh.cands)),
		heap:    make([]heapEntry, 0, 2*len(sh.cands)),
	}
}

// gainOf evaluates the dynamic gain of candidate c against the scratch
// state with the exact arithmetic and term order of relationState.Gain
// (label mismatch is impossible: compatiblePairs filters candidates), so
// comparisons — and hence selections — are bitwise-identical across
// kernels and versions.
func (sc *restartScratch) gainOf(c *sharedCand) float64 {
	st := sc.st
	c2 := 0
	if !st.pairedA[c.p.A] {
		c2++
	}
	if !st.pairedB[c.p.B] {
		c2++
	}
	c3 := 0
	if st.nodePairs[c.npFrom] {
		c3++
	}
	if st.nodePairs[c.npTo] {
		c3++
	}
	w := st.weights
	return w[0]*float64(c.c1) + w[1]*float64(c2) + w[2]*float64(c3)
}

func (sc *restartScratch) push(e heapEntry) {
	sc.heap = append(sc.heap, e)
	h := sc.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (sc *restartScratch) pop() {
	h := sc.heap
	n := len(h) - 1
	h[0] = h[n]
	sc.heap = h[:n]
	h = sc.heap
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h[l].before(h[m]) {
			m = l
		}
		if r < n && h[r].before(h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// selectCand applies the greedy selection of ranked candidate pos: record
// the pair in the relation state, then repair the heap's bound invariant
// for the state changes this add made. Only gain *increases* need work —
// candidates sharing a newly induced endpoint node pair get a bumped
// upper-bound entry (no gain evaluation). Gain decreases (the selected
// edges getting paired away from their other candidates) leave existing
// entries as stale upper bounds for pop-time validation to settle.
func (sc *restartScratch) selectCand(sh *mergeShared, pos int32) {
	c := &sh.cands[pos]
	st := sc.st
	newFrom := !st.nodePairs[c.npFrom]
	newTo := !st.nodePairs[c.npTo]
	st.add(c.p.A, c.p.B)
	sc.evals++ // the add's own gain evaluation
	sc.alive[pos] = false
	if newFrom {
		sc.bump(sh, c.npFrom)
	}
	if newTo && c.npTo != c.npFrom {
		sc.bump(sh, c.npTo)
	}
}

// bump raises the cached bound of every alive candidate inducing node pair
// np, which just entered the relation: the candidate's c3 term grew by one
// per endpoint mapped to np, so its gain rose by that many w3 increments.
// The refreshed entry is pushed as a certified upper bound computed
// without evaluating the gain function — upperAdd rounds up whenever the
// float addition is inexact — so the heap invariant (every alive candidate
// has an entry ≥ its true gain) is maintained at zero evaluation cost.
func (sc *restartScratch) bump(sh *mergeShared, np int32) {
	w3 := sh.weights[2]
	for _, r := range sh.byNPAdj[sh.byNPOff[np]:sh.byNPOff[np+1]] {
		if !sc.alive[r] {
			continue
		}
		inc := w3
		if c := &sh.cands[r]; c.npFrom == np && c.npTo == np {
			inc = w3 + w3
		}
		b := upperAdd(sc.curGain[r], inc)
		sc.curGain[r] = b
		sc.push(heapEntry{b, r})
	}
}

// upperAdd returns a float64 guaranteed ≥ the exact real sum a+b, and
// equal to fl(a+b) whenever that rounding did not lose anything (with the
// default integer-valued gain weights it never does, so bounds stay exact
// and validation hits on the first pop). The rounding error of s is
// recovered exactly with Knuth's 2Sum; a positive residual means s rounded
// below the true sum, so the next float up restores the upper bound.
func upperAdd(a, b float64) float64 {
	s := a + b
	ap := s - b
	bp := s - ap
	if (a-ap)+(b-bp) > 0 {
		return math.Nextafter(s, math.Inf(1))
	}
	return s
}

// begin validates and prepares one restart cell shared by both kernels:
// skip removes the top-skip ranked candidates (restart diversification),
// first is the forced initial selection. It returns the forced pair's
// ranked position and false when the cell cannot run (pool empty after
// diversification, or the forced pair diversified away).
func (sc *restartScratch) begin(sh *mergeShared, skip int, first EdgePair) (int32, bool) {
	if skip >= len(sh.cands) {
		return 0, false
	}
	firstPos := sh.rank(first)
	if int(firstPos) < skip {
		return 0, false // diversification removed the forced first pair
	}
	sc.st.reset()
	return firstPos, true
}

// finish extracts the completed relation, or fails when edges remain
// uncovered. The pair list is copied out: the scratch is reused by the next
// cell, but the winning relation escapes into the MergeResult. The variable
// count of the query the relation leads to is derived directly from the
// touched node pairs (see mergeShared.npVar) — exactly NumVars of
// BuildQuery's output — so only the grid's winning cell ever builds a query.
func (sc *restartScratch) finish(sh *mergeShared) ([]EdgePair, float64, int, bool) {
	if !sc.st.allPaired() {
		return nil, 0, 0, false
	}
	vars := 0
	for _, np := range sc.st.npTouched {
		if sh.npVar[np] {
			vars++
		}
	}
	return append([]EdgePair(nil), sc.st.pairs...), sc.st.gain, vars, true
}

// runHeap performs one greedy restart with the incremental bound-heap
// kernel. Candidates enter the heap at their shared initial gains (the
// ranked array is sorted in before order, so it is already a valid heap),
// which are exact; from then on entries are upper bounds maintained by
// selectCand/bump. The selection loop pops the top entry, discards it if
// dead, and otherwise settles the candidate's exact gain with one
// evaluation. If the exact entry still dominates the rest of the heap it
// is the selection: every other alive candidate's true gain sits below one
// of the remaining entries, and the (gain, rank) order of before breaks
// ties at equal gain by ranked position — exactly the reference scan's
// "first strict maximum", byte for byte. Otherwise the corrected entry is
// requeued to contend at its true gain.
func (sc *restartScratch) runHeap(sh *mergeShared, skip int, first EdgePair) ([]EdgePair, float64, int, bool) {
	firstPos, ok := sc.begin(sh, skip, first)
	if !ok {
		return nil, 0, 0, false
	}
	n := len(sh.cands)
	sc.heap = sc.heap[:0]
	for r := 0; r < skip; r++ {
		sc.alive[r] = false
	}
	for r := skip; r < n; r++ {
		sc.alive[r] = true
		sc.curGain[r] = sh.initGain[r]
		sc.heap = append(sc.heap, heapEntry{sh.initGain[r], int32(r)})
	}
	sc.selectCand(sh, firstPos)
	remaining := (n - skip) - 1
	st := sc.st
	for remaining > 0 && !st.allPaired() {
		pos := int32(-1)
		for len(sc.heap) > 0 {
			top := sc.heap[0]
			if !sc.alive[top.pos] {
				sc.pop() // dead entry
				continue
			}
			g := sc.gainOf(&sh.cands[top.pos])
			sc.evals++
			sc.pop()
			if ent := (heapEntry{g, top.pos}); g != top.gain && len(sc.heap) > 0 && !ent.before(sc.heap[0]) {
				// The settled gain no longer dominates: requeue the exact
				// entry and let the new top contend.
				sc.curGain[top.pos] = g
				sc.push(ent)
				continue
			}
			if g > -1.0 {
				pos = top.pos
			}
			break
		}
		if pos < 0 {
			break // no candidate beats the scan's -1 floor
		}
		sc.selectCand(sh, pos)
		remaining--
	}
	return sc.finish(sh)
}

// runScan is the retained reference kernel: the original full-rescan greedy
// loop, selecting by a linear scan over the alive pool every step. Kept for
// the determinism suite (heap vs scan byte-equality) and as the honest
// baseline for the gain-evaluation counter — including the per-restart
// initial ranking pass the original performed, which the shared
// precomputation now hoists.
func (sc *restartScratch) runScan(sh *mergeShared, skip int, first EdgePair) ([]EdgePair, float64, int, bool) {
	firstPos, ok := sc.begin(sh, skip, first)
	if !ok {
		return nil, 0, 0, false
	}
	n := len(sh.cands)
	for r := 0; r < n; r++ {
		sc.alive[r] = r >= skip
		// The original ranked the pool by evaluating every candidate's gain
		// on the empty state each restart; the ranking is shared now, but
		// the reference kernel still performs the evaluations so its
		// counter reflects the pre-incremental cost faithfully.
		_ = sc.gainOf(&sh.cands[r])
		sc.evals++
	}
	st := sc.st
	st.add(first.A, first.B)
	sc.evals++
	sc.alive[firstPos] = false
	remaining := (n - skip) - 1
	for remaining > 0 && !st.allPaired() {
		bestIdx := -1
		bestGain := -1.0
		for r := skip; r < n; r++ {
			if !sc.alive[r] {
				continue
			}
			g := sc.gainOf(&sh.cands[r])
			sc.evals++
			if g > bestGain {
				bestGain = g
				bestIdx = r
			}
		}
		if bestIdx < 0 {
			break
		}
		c := &sh.cands[bestIdx]
		st.add(c.p.A, c.p.B)
		sc.evals++
		sc.alive[bestIdx] = false
		remaining--
	}
	return sc.finish(sh)
}
