package core

import (
	"context"
	"math"
	"sort"

	"questpro/internal/provenance"
)

// The paper's conclusion lists "dealing with incorrect provenance provided
// by users" as future work; this file implements a first-order solution.
// The observation: a correct explanation merges with its peers into a
// low-variable pattern (that is what Algorithm 1 exploits), while an
// incorrect one — wrong relation, reversed edge, unrelated subgraph —
// either admits no complete relation at all or only merges into patterns
// with abnormally many variables. We score each explanation by its best
// pairwise merge and flag the ones that sit far above the median.

// OutlierOptions configures DetectOutliers.
type OutlierOptions struct {
	// VarSlack is how many variables above the median best-merge count an
	// explanation may sit before it is flagged.
	VarSlack int
}

// DefaultOutlierOptions returns a slack of 3 variables.
func DefaultOutlierOptions() OutlierOptions { return OutlierOptions{VarSlack: 3} }

// OutlierScore is the diagnostic for one explanation.
type OutlierScore struct {
	Index int
	// BestMergeVars is the minimum variable count over all pairwise merges
	// with the other explanations; math.MaxInt32 when no peer merges.
	BestMergeVars int
	// Mergeable is false when the explanation admits no complete relation
	// with any other explanation.
	Mergeable bool
	Outlier   bool
}

// DetectOutliers scores every explanation of the example-set and flags
// probable incorrect provenance. It needs at least three explanations —
// with two there is no majority to defer to.
func DetectOutliers(ctx context.Context, ex provenance.ExampleSet, opts Options, oopts OutlierOptions) ([]OutlierScore, error) {
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, err
	}
	n := len(patterns)
	scores := make([]OutlierScore, n)
	for i := range scores {
		scores[i] = OutlierScore{Index: i, BestMergeVars: math.MaxInt32}
	}
	if n < 3 {
		return scores, nil
	}
	type cell struct {
		vars int
		ok   bool
	}
	// All pairwise merges are independent; compute them through the merge
	// engine's worker pool and read the memoized results back in order.
	cache := NewMergeCache(opts)
	if _, err := cache.Prefetch(ctx, allPairs(patterns), nil); err != nil {
		return nil, err
	}
	merged := make(map[[2]int]cell, n*n/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			res, ok, err := cache.Lookup(patterns[i], patterns[j])
			if err != nil {
				return nil, err
			}
			c := cell{ok: ok}
			if ok {
				c.vars = res.Query.NumVars()
			}
			merged[[2]int{i, j}] = c
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			c := merged[[2]int{a, b}]
			if !c.ok {
				continue
			}
			scores[i].Mergeable = true
			if c.vars < scores[i].BestMergeVars {
				scores[i].BestMergeVars = c.vars
			}
		}
	}
	// Median of the mergeable scores.
	var vals []int
	for _, s := range scores {
		if s.Mergeable {
			vals = append(vals, s.BestMergeVars)
		}
	}
	if len(vals) == 0 {
		// Nothing merges with anything: no basis for flagging.
		return scores, nil
	}
	sort.Ints(vals)
	median := vals[len(vals)/2]
	for i := range scores {
		if !scores[i].Mergeable || scores[i].BestMergeVars > median+oopts.VarSlack {
			scores[i].Outlier = true
		}
	}
	return scores, nil
}

// Repair removes the flagged outliers from the example-set and returns the
// cleaned set together with the indexes (into the original set) that were
// dropped. At least two explanations are always retained: if flagging would
// leave fewer, the least-suspicious flagged ones are kept.
func Repair(ctx context.Context, ex provenance.ExampleSet, opts Options, oopts OutlierOptions) (provenance.ExampleSet, []int, error) {
	scores, err := DetectOutliers(ctx, ex, opts, oopts)
	if err != nil {
		return nil, nil, err
	}
	flagged := make([]OutlierScore, 0)
	for _, s := range scores {
		if s.Outlier {
			flagged = append(flagged, s)
		}
	}
	keepBudget := len(ex) - len(flagged)
	if keepBudget < 2 {
		// Keep the least-suspicious flagged explanations (lowest best-merge
		// variable count first) until two remain.
		sort.Slice(flagged, func(i, j int) bool {
			return flagged[i].BestMergeVars < flagged[j].BestMergeVars
		})
		unflag := 2 - keepBudget
		for i := 0; i < unflag && i < len(flagged); i++ {
			scores[flagged[i].Index].Outlier = false
		}
	}
	var clean provenance.ExampleSet
	var dropped []int
	for i, e := range ex {
		if scores[i].Outlier {
			dropped = append(dropped, i)
			continue
		}
		clean = append(clean, e)
	}
	return clean, dropped, nil
}

// InferRobust is InferTopK preceded by Repair: the pipeline for example-sets
// that may contain incorrect provenance. It returns the candidates, the
// dropped explanation indexes, and the inference stats.
func InferRobust(ctx context.Context, ex provenance.ExampleSet, opts Options, oopts OutlierOptions) ([]Candidate, []int, Stats, error) {
	clean, dropped, err := Repair(ctx, ex, opts, oopts)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	cands, stats, err := InferTopK(ctx, clean, opts)
	if err != nil {
		return nil, nil, stats, err
	}
	// Candidates must still be consistent with the cleaned set; guaranteed
	// by construction, asserted cheaply here for defense in depth.
	var out []Candidate
	for _, c := range cands {
		ok, err := provenance.Consistent(ctx, c.Query, clean)
		if err != nil {
			return nil, nil, stats, err
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, dropped, stats, nil
}
