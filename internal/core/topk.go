package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"questpro/internal/obs"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// InferTopK implements the top-k variant of Algorithm 2 (Section IV): a
// beam search over union states. Each round expands every state in the beam
// with its k cheapest merges (k² candidates), keeps the current states as
// candidates too (a state may already be locally optimal, as in Example
// 4.4's Union(Q4, E1, E3)), deduplicates up to isomorphism, and retains the
// k cheapest states. The search stops at a fixed point. Results are sorted
// by cost.
//
// Beam states descend from one initial union and share branch pointers, so
// one MergeCache serves the whole search: a branch pair evaluated for any
// state (in any earlier round) is never recomputed, and each round's fresh
// pairs across all states are computed in one parallel batch.
//
// Beam states are consistent unions, so an exhausted Options.Guard degrades
// gracefully: the current beam is returned with Stats.Degraded set and an
// error matching qerr.ErrBudgetExhausted.
func InferTopK(ctx context.Context, ex provenance.ExampleSet, opts Options) (_ []Candidate, stats Stats, err error) {
	ctx, isp := obs.StartSpan(ctx, "infer.topk")
	defer func() { finishInfer(isp, &stats, err) }()
	k := opts.K
	if k < 1 {
		k = 1
	}
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, stats, err
	}
	cache := NewMergeCache(opts)
	defer recordGuard(&stats, cache)
	start := query.NewUnion(patterns...)
	beam := []Candidate{{Query: start, Cost: start.Cost(opts.CostW1, opts.CostW2)}}
	degrade := func(err error) ([]Candidate, Stats, error) {
		stats.Degraded = true
		return beam, stats, fmt.Errorf("core: top-k inference degraded in round %d: %w", stats.Rounds, err)
	}

	for round := 0; round < len(ex); round++ {
		stats.Rounds++
		if err := roundCanceled(ctx, stats.Rounds); err != nil {
			return nil, stats, err
		}
		roundStart := time.Now()
		rctx, rsp := obs.StartSpan(ctx, "merge.round")
		var pre CountersSnapshot
		if rsp != nil {
			pre = stats.Counters()
			rsp.SetInt("round", int64(stats.Rounds))
			rsp.SetInt("beam", int64(len(beam)))
		}
		var pairs []pairKey
		for _, state := range beam {
			pairs = append(pairs, branchPairs(state.Query)...)
		}
		fresh, err := cache.Prefetch(rctx, pairs, &stats)
		if err != nil {
			rsp.SetOutcome("error")
			rsp.Finish()
			if errors.Is(err, qerr.ErrBudgetExhausted) {
				return degrade(err)
			}
			return nil, stats, err
		}
		stats.Algorithm1Calls += len(pairs)
		stats.CacheMisses += fresh
		stats.CacheHits += len(pairs) - fresh
		pool := append([]Candidate(nil), beam...)
		expanded := false
		for _, state := range beam {
			cands, err := topMerges(state.Query, k, opts, cache)
			if err != nil {
				rsp.SetOutcome("error")
				rsp.Finish()
				if errors.Is(err, qerr.ErrBudgetExhausted) {
					return degrade(err)
				}
				return nil, stats, err
			}
			if len(cands) > 0 {
				expanded = true
			}
			pool = append(pool, cands...)
		}
		stats.RoundWall = append(stats.RoundWall, time.Since(roundStart))
		if rsp != nil {
			annotateRound(rsp, pre, stats.Counters())
			rsp.SetOutcome("ok")
			rsp.Finish()
		}
		if !expanded {
			break
		}
		next := selectTop(pool, k)
		if sameBeam(next, beam) {
			break
		}
		beam = next
	}
	return beam, stats, nil
}

// topMerges returns up to k merge candidates of the union state, cheapest
// first, reading every pair merge from the cache (prefetched by InferTopK).
func topMerges(u *query.Union, k int, opts Options, cache *MergeCache) ([]Candidate, error) {
	var out []Candidate
	for i := 0; i < u.Size(); i++ {
		for j := i + 1; j < u.Size(); j++ {
			res, ok, err := cache.Lookup(u.Branch(i), u.Branch(j))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			merged, err := u.Replace(i, j, res.Query)
			if err != nil {
				return nil, err
			}
			out = append(out, Candidate{Query: merged, Cost: merged.Cost(opts.CostW1, opts.CostW2)})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Cost < out[b].Cost })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// selectTop deduplicates candidates up to isomorphism and keeps the k
// cheapest, deterministically.
func selectTop(pool []Candidate, k int) []Candidate {
	sort.SliceStable(pool, func(a, b int) bool {
		if pool[a].Cost != pool[b].Cost {
			return pool[a].Cost < pool[b].Cost
		}
		return pool[a].Query.Fingerprint() < pool[b].Query.Fingerprint()
	})
	var out []Candidate
	byFP := map[string][]*query.Union{}
	for _, c := range pool {
		fp := c.Query.Fingerprint()
		dup := false
		for _, seen := range byFP[fp] {
			if query.UnionIsomorphic(c.Query, seen) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byFP[fp] = append(byFP[fp], c.Query)
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out
}

// sameBeam reports whether two beams contain isomorphic states in order.
func sameBeam(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || !query.UnionIsomorphic(a[i].Query, b[i].Query) {
			return false
		}
	}
	return true
}

// ConsistentCandidates filters candidates to those consistent with the
// example-set (Definition 2.6). InferTopK's states are consistent by
// construction, so this is a safety net used by callers that post-process
// candidates (e.g. after adding disequalities).
func ConsistentCandidates(ctx context.Context, cands []Candidate, ex provenance.ExampleSet) ([]Candidate, error) {
	var out []Candidate
	for _, c := range cands {
		ok, err := provenance.Consistent(ctx, c.Query, ex)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, nil
}
