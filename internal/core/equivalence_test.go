package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"questpro/internal/core"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// This file pins the merge engine's central guarantee: InferSimple and
// InferUnion produce byte-identical SPARQL to the sequential, cache-free
// implementation they replaced. The reference implementations below are
// verbatim ports of the pre-engine code paths (re-running MergePair on every
// pair in every round), kept in-tree so the equivalence is checked on every
// run — including under -race, where it also exercises the parallel
// prefetch for data races.

func seqGroundPatterns(t testing.TB, ex provenance.ExampleSet) []*query.Simple {
	t.Helper()
	if err := ex.Validate(); err != nil {
		t.Fatal(err)
	}
	out := make([]*query.Simple, len(ex))
	for i, e := range ex {
		q, err := query.FromExplanation(e.Graph, e.Distinguished)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

// inferSimpleSequential is the pre-engine InferSimple: every pair, every
// round, no cache, no parallelism.
func inferSimpleSequential(t testing.TB, ex provenance.ExampleSet, opts core.Options) (*query.Simple, bool) {
	t.Helper()
	patterns := seqGroundPatterns(t, ex)
	for len(patterns) > 1 {
		bestI, bestJ := -1, -1
		var best core.MergeResult
		for i := 0; i < len(patterns); i++ {
			for j := i + 1; j < len(patterns); j++ {
				res, ok, err := core.MergePair(patterns[i], patterns[j], opts)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				if bestI < 0 || res.Gain > best.Gain {
					bestI, bestJ, best = i, j, res
				}
			}
		}
		if bestI < 0 {
			return nil, false
		}
		next := patterns[:0:0]
		for k, p := range patterns {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		patterns = append(next, best.Query)
	}
	return patterns[0], true
}

// inferUnionSequential is the pre-engine InferUnion/mergeBestTwo.
func inferUnionSequential(t testing.TB, ex provenance.ExampleSet, opts core.Options) *query.Union {
	t.Helper()
	patterns := seqGroundPatterns(t, ex)
	u := query.NewUnion(patterns...)
	costCur := u.Cost(opts.CostW1, opts.CostW2)
	for u.Size() > 1 {
		bestI, bestJ := -1, -1
		var best core.MergeResult
		for i := 0; i < u.Size(); i++ {
			for j := i + 1; j < u.Size(); j++ {
				res, ok, err := core.MergePair(u.Branch(i), u.Branch(j), opts)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				better := bestI < 0 ||
					res.Query.NumVars() < best.Query.NumVars() ||
					(res.Query.NumVars() == best.Query.NumVars() && res.Gain > best.Gain)
				if better {
					bestI, bestJ, best = i, j, res
				}
			}
		}
		if bestI < 0 {
			break
		}
		merged, err := u.Replace(bestI, bestJ, best.Query)
		if err != nil {
			t.Fatal(err)
		}
		cost := merged.Cost(opts.CostW1, opts.CostW2)
		if cost >= costCur {
			break
		}
		u, costCur = merged, cost
	}
	return u
}

// randomExampleSet samples n explanations as random connected subgraphs of a
// random ontology (the same construction TestInferenceConsistencyProperty
// uses); returns nil when the seed cannot produce one.
func randomExampleSet(t testing.TB, seed int64, n int) provenance.ExampleSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o := graph.RandomOntology(rng, graph.RandomConfig{
		Nodes: 24, Edges: 60, Labels: []string{"p", "q", "r"}, Types: []string{"A", "B"},
	})
	var exs provenance.ExampleSet
	for len(exs) < n {
		sub, start := graph.RandomConnectedSubgraph(rng, o, 1+rng.Intn(4))
		if sub == nil {
			return nil
		}
		ex, err := provenance.New(sub, start)
		if err != nil {
			t.Fatal(err)
		}
		exs = append(exs, ex)
	}
	return exs
}

// The engine-backed InferSimple/InferUnion render byte-identical SPARQL to
// the sequential implementation across seeded random example-sets, for both
// the sequential (Workers=1) and the parallel engine configuration.
func TestEngineMatchesSequentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		exs := randomExampleSet(t, seed, 3+int(seed%4))
		if exs == nil {
			continue
		}
		for _, workers := range []int{1, 4} {
			opts := core.DefaultOptions()
			opts.Workers = workers

			wantQ, wantOK := inferSimpleSequential(t, exs, opts)
			gotQ, _, err := core.InferSimple(bg, exs, opts)
			if err != nil && !errors.Is(err, qerr.ErrNoConsistentQuery) {
				t.Fatalf("seed %d workers %d: InferSimple: %v", seed, workers, err)
			}
			gotOK := err == nil
			if gotOK != wantOK {
				t.Fatalf("seed %d workers %d: InferSimple ok=%v, sequential ok=%v",
					seed, workers, gotOK, wantOK)
			}
			if gotOK && gotQ.SPARQL() != wantQ.SPARQL() {
				t.Fatalf("seed %d workers %d: InferSimple diverged:\nengine:\n%s\nsequential:\n%s",
					seed, workers, gotQ.SPARQL(), wantQ.SPARQL())
			}

			wantU := inferUnionSequential(t, exs, opts)
			gotU, _, err := core.InferUnion(bg, exs, opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: InferUnion: %v", seed, workers, err)
			}
			if gotU.SPARQL() != wantU.SPARQL() {
				t.Fatalf("seed %d workers %d: InferUnion diverged:\nengine:\n%s\nsequential:\n%s",
					seed, workers, gotU.SPARQL(), wantU.SPARQL())
			}
		}
	}
}

// Same equivalence on the paper's running example (the four explanations of
// Figure 2), where the expected outputs are known queries.
func TestEngineMatchesSequentialRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()
	opts.Workers = 4

	wantQ, wantOK := inferSimpleSequential(t, exs, opts)
	gotQ, _, err := core.InferSimple(bg, exs, opts)
	gotOK := err == nil
	if (err != nil && !errors.Is(err, qerr.ErrNoConsistentQuery)) || gotOK != wantOK {
		t.Fatalf("InferSimple: ok=%v want %v err=%v", gotOK, wantOK, err)
	}
	if gotQ.SPARQL() != wantQ.SPARQL() {
		t.Fatalf("InferSimple diverged:\n%s\nvs\n%s", gotQ.SPARQL(), wantQ.SPARQL())
	}

	wantU := inferUnionSequential(t, exs, opts)
	gotU, _, err := core.InferUnion(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotU.SPARQL() != wantU.SPARQL() {
		t.Fatalf("InferUnion diverged:\n%s\nvs\n%s", gotU.SPARQL(), wantU.SPARQL())
	}
}

// Worker-count invariance: the engine returns identical queries and
// identical deterministic counters for any pool size.
func TestEngineWorkerCountInvariance(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	var baseU string
	var baseStats core.CountersSnapshot
	for i, workers := range []int{1, 2, 3, 8} {
		opts := core.DefaultOptions()
		opts.Workers = workers
		u, stats, err := core.InferUnion(bg, exs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseU, baseStats = u.SPARQL(), stats.Counters()
			continue
		}
		if u.SPARQL() != baseU {
			t.Fatalf("workers=%d produced a different query", workers)
		}
		if stats.Counters() != baseStats {
			t.Fatalf("workers=%d produced different counters: %v vs %v",
				workers, stats.Counters(), baseStats)
		}
	}
}
