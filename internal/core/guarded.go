package core

import (
	"context"
	"fmt"
	"runtime/debug"

	"questpro/internal/eval"
	"questpro/internal/faults"
	"questpro/internal/obs"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// pairCost estimates the work of one MergePair in guard steps: the size of
// the complete-relation table Algorithm 1 scans, |V(a)+1| * |V(b)+1|
// (Definition 3.6 relations range over nodes plus the "unmatched" slot).
func pairCost(a, b *query.Simple) int64 {
	return int64(a.NumNodes()+1) * int64(b.NumNodes()+1)
}

// safeMergePair is the merge engine's recovery boundary around the merge
// kernel: a panic in the merge algebra — on any worker goroutine — is
// converted to a qerr.ErrInternal-matching error with a sanitized stack
// instead of killing the process, and the faults.MergePair injection point
// fires first so the chaos harness can fail or panic exactly here. The
// meter (nil when the operation is unguarded) is charged pairCost up front;
// an exhausted guard surfaces as the meter's qerr.ErrBudgetExhausted-
// matching error without running the merge. restartWorkers bounds the
// restart-grid fan-out inside the merge (computePairs splits the
// operation's worker allowance between pairs in flight and restarts within
// each pair); ctx is polled between restarts.
func safeMergePair(ctx context.Context, a, b *query.Simple, opts Options, restartWorkers int, m *eval.Meter) (res MergeResult, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, ok = MergeResult{}, false
			err = fmt.Errorf("core: merge pair: %w", qerr.Internal(r, debug.Stack()))
		}
	}()
	if !m.ChargeSteps(pairCost(a, b)) {
		return MergeResult{}, false, m.Err()
	}
	if e := faults.Fire(faults.MergePair); e != nil {
		return MergeResult{}, false, fmt.Errorf("core: merge pair: %w", e)
	}
	return mergePair(ctx, a, b, opts, restartWorkers, m)
}

// tracedMergePair wraps safeMergePair in a "merge.pair" span annotated
// with the kernel used and the pair's deterministic work counters. With
// tracing disabled (or no root span installed) the span is nil and the
// extra cost is one atomic load per pair — MergePair itself dominates by
// orders of magnitude. Restart-grid cells are deliberately NOT spanned:
// they are the kernel's innermost parallel unit, far too hot for per-cell
// bookkeeping; the pair span carries their aggregate (restarts,
// gain_evals) instead.
func tracedMergePair(ctx context.Context, a, b *query.Simple, opts Options, restartWorkers int, m *eval.Meter) (MergeResult, bool, error) {
	pctx, sp := obs.StartSpan(ctx, "merge.pair")
	if sp == nil {
		return safeMergePair(ctx, a, b, opts, restartWorkers, m)
	}
	res, ok, err := safeMergePair(pctx, a, b, opts, restartWorkers, m)
	kernel := "heap"
	if opts.ReferenceScan {
		kernel = "scan"
	}
	sp.SetLabel("kernel", kernel)
	sp.SetInt("gain_evals", res.GainEvals)
	sp.SetInt("restarts", int64(res.Restarts))
	switch {
	case err != nil:
		sp.SetOutcome("error")
	case !ok:
		sp.SetOutcome("unmergeable")
	default:
		sp.SetOutcome("ok")
	}
	sp.Finish()
	return res, ok, err
}
