package core

import (
	"testing"

	"questpro/internal/query"
)

// buildPatterns creates two tiny ground patterns sharing the constant
// target "Erdos":
//
//	A: paper3 -wb-> Carol, paper3 -wb-> Erdos   (projected Carol)
//	B: paper4 -wb-> Dave,  paper4 -wb-> Erdos   (projected Dave)
func buildPatterns(t *testing.T) (*query.Simple, *query.Simple) {
	t.Helper()
	mk := func(paper, author string) *query.Simple {
		q := query.NewSimple()
		p := q.MustEnsureNode(query.Const(paper), "Paper")
		a := q.MustEnsureNode(query.Const(author), "Author")
		e := q.MustEnsureNode(query.Const("Erdos"), "Author")
		q.MustAddEdge(p, a, "wb")
		q.MustAddEdge(p, e, "wb")
		if err := q.SetProjected(a); err != nil {
			t.Fatal(err)
		}
		return q
	}
	return mk("paper3", "Carol"), mk("paper4", "Dave")
}

func edgeByTarget(t *testing.T, q *query.Simple, target string) query.EdgeID {
	t.Helper()
	for _, e := range q.Edges() {
		if q.Node(e.To).Term.Value == target {
			return e.ID
		}
	}
	t.Fatalf("no edge with target %s", target)
	return 0
}

// TestGainComponents mirrors Example 3.12: after pairing the author edges,
// the Erdos-Erdos pair scores w1*1 (shared target constant) + w2*2 (both
// unpaired) + w3*1 (sources previously paired together).
func TestGainComponents(t *testing.T) {
	a, b := buildPatterns(t)
	st := newRelationState(a, b, DefaultGainWeights)

	carol := edgeByTarget(t, a, "Carol")
	dave := edgeByTarget(t, b, "Dave")
	erdosA := edgeByTarget(t, a, "Erdos")
	erdosB := edgeByTarget(t, b, "Erdos")

	// Initially: the Erdos pair shares one constant endpoint and both edges
	// are unpaired; no node pairs exist yet.
	if got, want := st.Gain(erdosA, erdosB), 3.0*1+15*2+1*0; got != want {
		t.Fatalf("initial gain = %v, want %v", got, want)
	}
	// The author pair shares no constants.
	if got, want := st.Gain(carol, dave), 3.0*0+15*2+1*0; got != want {
		t.Fatalf("author pair gain = %v, want %v", got, want)
	}

	st.add(carol, dave)

	// Now the Erdos pair's sources (paper3, paper4) are a known node pair.
	if got, want := st.Gain(erdosA, erdosB), 3.0*1+15*2+1*1; got != want {
		t.Fatalf("post-add gain = %v, want %v", got, want)
	}
	// Re-pairing the already-paired author edges loses the whole c2 term.
	if got, want := st.Gain(carol, dave), 3.0*0+15*0+1*2; got != want {
		t.Fatalf("re-pair gain = %v, want %v", got, want)
	}
	// Label mismatch yields -1.
	q := query.NewSimple()
	x := q.FreshVar("")
	y := q.FreshVar("")
	q.MustAddEdge(x, y, "cites")
	q.SetProjected(y)
	st2 := newRelationState(a, q, DefaultGainWeights)
	if got := st2.Gain(carol, 0); got != -1 {
		t.Fatalf("label mismatch gain = %v, want -1", got)
	}
}

func TestRelationCompleteness(t *testing.T) {
	a, b := buildPatterns(t)
	carol := edgeByTarget(t, a, "Carol")
	dave := edgeByTarget(t, b, "Dave")
	erdosA := edgeByTarget(t, a, "Erdos")
	erdosB := edgeByTarget(t, b, "Erdos")

	full := &Relation{A: a, B: b, Pairs: []EdgePair{{carol, dave}, {erdosA, erdosB}}}
	if !full.IsComplete() {
		t.Fatal("covering relation with projected pair not complete")
	}
	empty := &Relation{A: a, B: b}
	if empty.IsComplete() {
		t.Fatal("empty relation complete")
	}
	partial := &Relation{A: a, B: b, Pairs: []EdgePair{{carol, dave}}}
	if partial.IsComplete() {
		t.Fatal("partial cover complete")
	}
	// Covers everything but never pairs the distinguished-adjacent edges in
	// the same role.
	crossed := &Relation{A: a, B: b, Pairs: []EdgePair{{carol, erdosB}, {erdosA, dave}}}
	if crossed.IsComplete() {
		t.Fatal("relation without projected pair complete")
	}
	if _, err := BuildQuery(partial); err == nil {
		t.Fatal("BuildQuery accepted incomplete relation")
	}
}

// BuildQuery on the full relation yields the expected 2-variable merge:
// ?p -wb-> ?a* and ?p -wb-> Erdos.
func TestBuildQueryMinimumVariables(t *testing.T) {
	a, b := buildPatterns(t)
	full := &Relation{A: a, B: b, Pairs: []EdgePair{
		{edgeByTarget(t, a, "Carol"), edgeByTarget(t, b, "Dave")},
		{edgeByTarget(t, a, "Erdos"), edgeByTarget(t, b, "Erdos")},
	}}
	q, err := BuildQuery(full)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 2 || q.NumEdges() != 2 {
		t.Fatalf("merged query vars=%d edges=%d:\n%s", q.NumVars(), q.NumEdges(), q.SPARQL())
	}
	erdos, ok := q.NodeByTerm(query.Const("Erdos"))
	if !ok {
		t.Fatal("shared constant not preserved")
	}
	if q.Node(q.Projected()).Term.IsVar == false {
		t.Fatal("projected node should be a variable")
	}
	// Both edges share their source variable (the paper pair).
	var sources []query.NodeID
	for _, e := range q.Edges() {
		sources = append(sources, e.From)
	}
	if sources[0] != sources[1] {
		t.Fatal("paper sources not unified into one variable")
	}
	// Types carried over where they agree.
	if q.Node(erdos.ID).Type != "Author" {
		t.Fatalf("Erdos type = %q", q.Node(erdos.ID).Type)
	}
	if q.Node(sources[0]).Type != "Paper" {
		t.Fatalf("paper var type = %q", q.Node(sources[0]).Type)
	}
}

// The same node pair appearing as a source pair of one edge and a target
// pair of another must unify (path-shaped merges).
func TestBuildQueryUnifiesAcrossRoles(t *testing.T) {
	mk := func(a, b, c string) *query.Simple {
		q := query.NewSimple()
		na := q.MustEnsureNode(query.Const(a), "")
		nb := q.MustEnsureNode(query.Const(b), "")
		nc := q.MustEnsureNode(query.Const(c), "")
		q.MustAddEdge(na, nb, "p")
		q.MustAddEdge(nb, nc, "p")
		q.SetProjected(nc)
		return q
	}
	a := mk("a1", "b1", "c1")
	b := mk("a2", "b2", "c2")
	rel := &Relation{A: a, B: b, Pairs: []EdgePair{{0, 0}, {1, 1}}}
	if !rel.IsComplete() {
		t.Fatal("path relation not complete")
	}
	q, err := BuildQuery(rel)
	if err != nil {
		t.Fatal(err)
	}
	// a -> b -> c as variables: 3 nodes, not 4.
	if q.NumNodes() != 3 || q.NumVars() != 3 {
		t.Fatalf("path merge nodes=%d vars=%d", q.NumNodes(), q.NumVars())
	}
	e0, e1 := q.Edge(0), q.Edge(1)
	if e0.To != e1.From {
		t.Fatal("middle node not unified across roles")
	}
	if q.Projected() != e1.To {
		t.Fatal("projected node misplaced")
	}
}
