package core

import (
	"context"

	"questpro/internal/provenance"
	"questpro/internal/query"
)

// WithDiseqs returns a copy of q augmented with every valid disequality
// (Section V): for each pair of query nodes of the same type — a variable
// against a variable or against a constant — whose witness values differ in
// *every* explanation the query covers, the disequality is added if the
// query stays consistent. The result is the Q^all form used by the feedback
// loop; q itself is not modified.
//
// Explanations the query has no onto match for are ignored, which makes the
// function directly usable on the branches of a union query (each branch
// only covers part of the example-set).
func WithDiseqs(ctx context.Context, q *query.Simple, ex provenance.ExampleSet) (*query.Simple, error) {
	covered, witnesses, err := coveredWitnesses(ctx, q, ex)
	if err != nil {
		return nil, err
	}
	if len(covered) == 0 || q.NumVars() == 0 {
		return q.Clone(), nil
	}
	out := q.Clone()
	nNodes := q.NumNodes()
	for xi := 0; xi < nNodes; xi++ {
		x := q.Node(query.NodeID(xi))
		if !x.Term.IsVar {
			continue
		}
		for yi := 0; yi < nNodes; yi++ {
			y := q.Node(query.NodeID(yi))
			if xi == yi || (y.Term.IsVar && yi < xi) {
				continue // var-var pairs once; var-const pairs for every const
			}
			if x.Type != y.Type {
				continue
			}
			if !differsEverywhere(witnesses, x.ID, y.ID) {
				continue
			}
			trial := out.Clone()
			if err := trial.AddDiseqNodes(x.ID, y.ID); err != nil {
				return nil, err
			}
			ok, err := consistentWithAll(ctx, trial, covered)
			if err != nil {
				return nil, err
			}
			if ok {
				out = trial
			}
		}
	}
	return out, nil
}

// coveredWitnesses returns the explanations q covers and one witness
// assignment (query node -> explanation value) per covered explanation.
func coveredWitnesses(ctx context.Context, q *query.Simple, ex provenance.ExampleSet) (provenance.ExampleSet, [][]string, error) {
	assignments, missing, err := provenance.WitnessAssignments(ctx, q, ex)
	if err != nil {
		return nil, nil, err
	}
	skip := map[int]bool{}
	for _, i := range missing {
		skip[i] = true
	}
	var covered provenance.ExampleSet
	var witnesses [][]string
	for i, e := range ex {
		if skip[i] {
			continue
		}
		covered = append(covered, e)
		witnesses = append(witnesses, assignments[i])
	}
	return covered, witnesses, nil
}

// differsEverywhere reports whether nodes x and y received different values
// in every witness assignment.
func differsEverywhere(witnesses [][]string, x, y query.NodeID) bool {
	for _, w := range witnesses {
		if w[x] == "" || w[y] == "" || w[x] == w[y] {
			return false
		}
	}
	return true
}

func consistentWithAll(ctx context.Context, q *query.Simple, ex provenance.ExampleSet) (bool, error) {
	for _, e := range ex {
		ok, err := provenance.ConsistentSimple(ctx, q, e)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// WithDiseqsUnion applies WithDiseqs to every branch of a union query,
// producing the union's Q^all form.
func WithDiseqsUnion(ctx context.Context, u *query.Union, ex provenance.ExampleSet) (*query.Union, error) {
	branches := make([]*query.Simple, u.Size())
	for i, b := range u.Branches() {
		wb, err := WithDiseqs(ctx, b, ex)
		if err != nil {
			return nil, err
		}
		branches[i] = wb
	}
	return query.NewUnion(branches...), nil
}
