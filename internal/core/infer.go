package core

import (
	"fmt"

	"questpro/internal/provenance"
	"questpro/internal/query"
)

// groundPatterns converts an example-set into constants-only simple queries
// (the leaves of Algorithm 2's lattice and the starting points of every
// merge).
func groundPatterns(ex provenance.ExampleSet) ([]*query.Simple, error) {
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	out := make([]*query.Simple, len(ex))
	for i, e := range ex {
		q, err := query.FromExplanation(e.Graph, e.Distinguished)
		if err != nil {
			return nil, fmt.Errorf("core: explanation %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// InferSimple implements the n-explanation extension of Section III: it
// repeatedly runs Algorithm 1 on every pair of patterns (explanations and
// intermediate queries alike) and greedily merges the pair whose complete
// relation has maximal gain, until a single simple query remains. ok is
// false when some explanations cannot be merged into one simple pattern.
func InferSimple(ex provenance.ExampleSet, opts Options) (*query.Simple, Stats, bool, error) {
	var stats Stats
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, stats, false, err
	}
	for len(patterns) > 1 {
		stats.Rounds++
		bestI, bestJ := -1, -1
		var best MergeResult
		for i := 0; i < len(patterns); i++ {
			for j := i + 1; j < len(patterns); j++ {
				stats.Algorithm1Calls++
				res, ok, err := MergePair(patterns[i], patterns[j], opts)
				if err != nil {
					return nil, stats, false, err
				}
				if !ok {
					continue
				}
				if bestI < 0 || res.Gain > best.Gain {
					bestI, bestJ, best = i, j, res
				}
			}
		}
		if bestI < 0 {
			return nil, stats, false, nil
		}
		next := patterns[:0:0]
		for k, p := range patterns {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		patterns = append(next, best.Query)
	}
	return patterns[0], stats, true, nil
}

// InferUnion implements Algorithm 2 (FindConsistentUnion): starting from
// the trivial union of constants-only patterns, repeatedly merge the two
// branches whose consistent simple query has the fewest variables, as long
// as the cost f(Q) = CostW1 * Σ vars + CostW2 * |Q| decreases.
func InferUnion(ex provenance.ExampleSet, opts Options) (*query.Union, Stats, error) {
	var stats Stats
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, stats, err
	}
	u := query.NewUnion(patterns...)
	costCur := u.Cost(opts.CostW1, opts.CostW2)
	for u.Size() > 1 {
		stats.Rounds++
		merged, err := mergeBestTwo(u, opts, &stats)
		if err != nil {
			return nil, stats, err
		}
		if merged == nil {
			break
		}
		cost := merged.Cost(opts.CostW1, opts.CostW2)
		if cost >= costCur {
			break
		}
		u, costCur = merged, cost
	}
	return u, stats, nil
}

// mergeBestTwo implements procedure MergeBestTwo: run Algorithm 1 on every
// pair of branches and return the union produced by the merge with the
// minimum number of variables (nil when no pair can be merged).
func mergeBestTwo(u *query.Union, opts Options, stats *Stats) (*query.Union, error) {
	bestI, bestJ := -1, -1
	var best MergeResult
	for i := 0; i < u.Size(); i++ {
		for j := i + 1; j < u.Size(); j++ {
			stats.Algorithm1Calls++
			res, ok, err := MergePair(u.Branch(i), u.Branch(j), opts)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			better := bestI < 0 ||
				res.Query.NumVars() < best.Query.NumVars() ||
				(res.Query.NumVars() == best.Query.NumVars() && res.Gain > best.Gain)
			if better {
				bestI, bestJ, best = i, j, res
			}
		}
	}
	if bestI < 0 {
		return nil, nil
	}
	return u.Replace(bestI, bestJ, best.Query)
}
