package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"questpro/internal/obs"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

// groundPatterns converts an example-set into constants-only simple queries
// (the leaves of Algorithm 2's lattice and the starting points of every
// merge).
func groundPatterns(ex provenance.ExampleSet) ([]*query.Simple, error) {
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	out := make([]*query.Simple, len(ex))
	for i, e := range ex {
		q, err := query.FromExplanation(e.Graph, e.Distinguished)
		if err != nil {
			return nil, fmt.Errorf("core: explanation %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// roundCanceled is the merge-engine round loop's cancellation check: every
// inference round starts by polling the context so a canceled request stops
// between rounds even when each individual round is cheap.
func roundCanceled(ctx context.Context, round int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: round %d: %w", round, qerr.Canceled(err))
	}
	return nil
}

// recordGuard copies the cache meter's final reading into the stats.
func recordGuard(stats *Stats, cache *MergeCache) {
	if m := cache.Meter(); m != nil {
		stats.GuardUsage = m.Snapshot()
	}
}

// InferSimple implements the n-explanation extension of Section III: it
// repeatedly runs Algorithm 1 on every pair of patterns (explanations and
// intermediate queries alike) and greedily merges the pair whose complete
// relation has maximal gain, until a single simple query remains. When some
// explanations cannot be merged into one simple pattern the error matches
// qerr.ErrNoConsistentQuery; when the context is canceled mid-inference it
// matches qerr.ErrCanceled (and the underlying context error).
//
// Pair merges are memoized in a MergeCache: after the first round only the
// pairs involving the previous round's merged query are computed (in
// parallel, see Options.Workers); selection replays the pair scan in index
// order, so the result is identical to the sequential pre-cache
// implementation.
//
// An exhausted Options.Guard aborts with an error matching
// qerr.ErrBudgetExhausted and a nil query: unlike InferUnion, the
// intermediate states here are not consistent queries, so there is no
// meaningful partial to degrade to.
func InferSimple(ctx context.Context, ex provenance.ExampleSet, opts Options) (_ *query.Simple, stats Stats, err error) {
	ctx, isp := obs.StartSpan(ctx, "infer.simple")
	defer func() { finishInfer(isp, &stats, err) }()
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, stats, err
	}
	cache := NewMergeCache(opts)
	defer recordGuard(&stats, cache)
	for len(patterns) > 1 {
		stats.Rounds++
		if err := roundCanceled(ctx, stats.Rounds); err != nil {
			return nil, stats, err
		}
		roundStart := time.Now()
		rctx, rsp := obs.StartSpan(ctx, "merge.round")
		var pre CountersSnapshot
		if rsp != nil {
			pre = stats.Counters()
			rsp.SetInt("round", int64(stats.Rounds))
		}
		pairs := allPairs(patterns)
		fresh, err := cache.Prefetch(rctx, pairs, &stats)
		if err != nil {
			rsp.SetOutcome("error")
			rsp.Finish()
			return nil, stats, err
		}
		stats.Algorithm1Calls += len(pairs)
		stats.CacheMisses += fresh
		stats.CacheHits += len(pairs) - fresh
		bestI, bestJ := -1, -1
		var best MergeResult
		for i := 0; i < len(patterns); i++ {
			for j := i + 1; j < len(patterns); j++ {
				res, ok, err := cache.Lookup(patterns[i], patterns[j])
				if err != nil {
					rsp.SetOutcome("error")
					rsp.Finish()
					return nil, stats, err
				}
				if !ok {
					continue
				}
				if bestI < 0 || res.Gain > best.Gain {
					bestI, bestJ, best = i, j, res
				}
			}
		}
		stats.RoundWall = append(stats.RoundWall, time.Since(roundStart))
		if rsp != nil {
			annotateRound(rsp, pre, stats.Counters())
		}
		if bestI < 0 {
			rsp.SetOutcome("unmergeable")
			rsp.Finish()
			return nil, stats, fmt.Errorf("core: %d explanations left unmergeable: %w",
				len(patterns), qerr.ErrNoConsistentQuery)
		}
		rsp.SetOutcome("ok")
		rsp.Finish()
		next := patterns[:0:0]
		for k, p := range patterns {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		patterns = append(next, best.Query)
	}
	return patterns[0], stats, nil
}

// InferUnion implements Algorithm 2 (FindConsistentUnion): starting from
// the trivial union of constants-only patterns, repeatedly merge the two
// branches whose consistent simple query has the fewest variables, as long
// as the cost f(Q) = CostW1 * Σ vars + CostW2 * |Q| decreases. Branch merges
// are memoized and computed in parallel exactly as in InferSimple.
//
// Every intermediate state of Algorithm 2 is itself a consistent union
// (each example's ground pattern is subsumed by some branch), so when
// Options.Guard runs out mid-inference the current union is returned as a
// degraded-but-correct answer: Stats.Degraded is set and the error matches
// qerr.ErrBudgetExhausted. Callers that treat any non-nil error as fatal
// keep working; callers that understand degradation get a usable query.
func InferUnion(ctx context.Context, ex provenance.ExampleSet, opts Options) (_ *query.Union, stats Stats, err error) {
	ctx, isp := obs.StartSpan(ctx, "infer.union")
	defer func() { finishInfer(isp, &stats, err) }()
	patterns, err := groundPatterns(ex)
	if err != nil {
		return nil, stats, err
	}
	cache := NewMergeCache(opts)
	defer recordGuard(&stats, cache)
	u := query.NewUnion(patterns...)
	costCur := u.Cost(opts.CostW1, opts.CostW2)
	for u.Size() > 1 {
		stats.Rounds++
		if err := roundCanceled(ctx, stats.Rounds); err != nil {
			return nil, stats, err
		}
		roundStart := time.Now()
		rctx, rsp := obs.StartSpan(ctx, "merge.round")
		var pre CountersSnapshot
		if rsp != nil {
			pre = stats.Counters()
			rsp.SetInt("round", int64(stats.Rounds))
			rsp.SetInt("branches", int64(u.Size()))
		}
		merged, err := mergeBestTwo(rctx, u, cache, &stats)
		stats.RoundWall = append(stats.RoundWall, time.Since(roundStart))
		if rsp != nil {
			annotateRound(rsp, pre, stats.Counters())
			switch {
			case err != nil:
				rsp.SetOutcome("error")
			case merged == nil:
				rsp.SetOutcome("unmergeable")
			default:
				rsp.SetOutcome("ok")
			}
			rsp.Finish()
		}
		if err != nil {
			if errors.Is(err, qerr.ErrBudgetExhausted) {
				stats.Degraded = true
				return u, stats, fmt.Errorf("core: inference degraded after round %d: %w", stats.Rounds, err)
			}
			return nil, stats, err
		}
		if merged == nil {
			break
		}
		cost := merged.Cost(opts.CostW1, opts.CostW2)
		if cost >= costCur {
			break
		}
		u, costCur = merged, cost
	}
	return u, stats, nil
}

// mergeBestTwo implements procedure MergeBestTwo: evaluate Algorithm 1 on
// every pair of branches (through the merge cache — only pairs not seen in
// an earlier round are actually computed) and return the union produced by
// the merge with the minimum number of variables (nil when no pair can be
// merged). Ties break on gain, then on the lowest branch-index pair, a fixed
// order independent of goroutine scheduling.
func mergeBestTwo(ctx context.Context, u *query.Union, cache *MergeCache, stats *Stats) (*query.Union, error) {
	pairs := branchPairs(u)
	fresh, err := cache.Prefetch(ctx, pairs, stats)
	if err != nil {
		return nil, err
	}
	stats.Algorithm1Calls += len(pairs)
	stats.CacheMisses += fresh
	stats.CacheHits += len(pairs) - fresh
	bestI, bestJ := -1, -1
	var best MergeResult
	for i := 0; i < u.Size(); i++ {
		for j := i + 1; j < u.Size(); j++ {
			res, ok, err := cache.Lookup(u.Branch(i), u.Branch(j))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			better := bestI < 0 ||
				res.Query.NumVars() < best.Query.NumVars() ||
				(res.Query.NumVars() == best.Query.NumVars() && res.Gain > best.Gain)
			if better {
				bestI, bestJ, best = i, j, res
			}
		}
	}
	if bestI < 0 {
		return nil, nil
	}
	return u.Replace(bestI, bestJ, best.Query)
}
