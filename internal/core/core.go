// Package core implements the paper's primary contribution: inference of
// SPARQL queries from output examples and their provenance (explanations).
//
//   - Proposition 3.1: polynomial existence check and trivial construction of
//     a consistent simple query (Trivial / TrivialExists).
//   - Definitions 3.6/3.7 and Proposition 3.10: complete relations between
//     two patterns and the minimum-variable query a relation leads to
//     (Relation, BuildQuery).
//   - Algorithm 1 (FindRelationGreedy): greedy search over complete
//     relations driven by the dynamic gain function of Definition 3.11
//     (MergePair).
//   - Section III, "Extending to n Explanations": InferSimple.
//   - Definition 4.1 and Algorithm 2 (FindConsistentUnion): InferUnion.
//   - Section IV, "Top-K Queries": InferTopK.
//   - Section V disequality inference: WithDiseqs / InferUnionDiseqs.
package core

import (
	"fmt"
	"time"

	"questpro/internal/eval"
	"questpro/internal/query"
)

// DefaultGainWeights are the gain-function weights (w1, w2, w3) the paper
// fixes in Section VI: 3, 15, 1.
var DefaultGainWeights = [3]float64{3, 15, 1}

// Options configures the inference algorithms. The zero value is not
// meaningful; start from DefaultOptions.
type Options struct {
	// GainWeights are w1, w2, w3 of Definition 3.11.
	GainWeights [3]float64

	// NumIter is Algorithm 1's number of diversified restarts.
	NumIter int

	// CostW1 and CostW2 are the weights of the minimum-generalization cost
	// f(Q) = CostW1 * Σ vars + CostW2 * |Q| (Definition 4.1).
	CostW1, CostW2 float64

	// K is the beam width of the top-k variant of Algorithm 2.
	K int

	// FirstPairSweep is how many distinguished-adjacent pairs Algorithm 1
	// tries as the forced first selection (see DefaultFirstPairSweep).
	// 0 selects the default; 1 reproduces the paper's single-choice rule.
	FirstPairSweep int

	// Workers bounds the goroutine pool the merge engine uses to compute a
	// round's fresh pairwise merges and, within each merge, Algorithm 1's
	// restart grid (when a round has fewer fresh pairs than workers, the
	// spare workers parallelize the restarts of the pairs in flight). It
	// resolves through conc.Workers — the one default shared with the eval
	// layer's parallel fan-outs (Results*Parallel) and the service's global
	// budget: <= 0 selects GOMAXPROCS; 1 forces sequential computation.
	// Results are identical regardless of the value (pair selection and
	// restart selection are both replayed deterministically in a fixed
	// order).
	Workers int

	// ReferenceScan, when true, runs Algorithm 1's greedy selection with
	// the retained full-rescan reference kernel instead of the incremental
	// lazy-heap kernel. Results are byte-identical (the determinism suite
	// pins this); only Stats.GainEvals differs. An ablation/validation
	// knob — leave false in production.
	ReferenceScan bool

	// Guard bounds the resources one inference operation may consume (see
	// eval.Guard). The zero value disables guarding — the pre-guard behavior,
	// byte-identical results included. When the guard runs out mid-inference,
	// InferUnion and InferTopK return the best consistent state reached so
	// far with Stats.Degraded set and an error matching
	// qerr.ErrBudgetExhausted; InferSimple, whose intermediate states are not
	// consistent queries, returns only the error.
	Guard eval.Guard

	// MaxCompletions bounds the candidate completions CompleteExamples
	// enumerates per partial explanation before committing to the ranked
	// best. 0 selects DefaultMaxCompletions; it never disables the bound
	// (completion search over a large ontology is combinatorial).
	MaxCompletions int
}

// DefaultMaxCompletions is the default per-fragment bound on candidate
// completions (see Options.MaxCompletions).
const DefaultMaxCompletions = 64

// DefaultOptions returns the paper's parameterization: gain weights
// (3, 15, 1), three Algorithm-1 restarts, the cost weights of Example 4.4
// (1, 7), and k = 3 (the fixed k of the timing experiment in Section VI-B).
func DefaultOptions() Options {
	return Options{
		GainWeights: DefaultGainWeights,
		NumIter:     3,
		CostW1:      1,
		CostW2:      7,
		K:           3,
	}
}

// Validate rejects option values that would silently misbehave: negative
// worker counts (only 0 has a defined meaning, "use the shared default")
// and beam widths below one. The inference entry points tolerate a zero K
// by clamping; services accepting options from clients should Validate
// first so nonsense is rejected at the boundary instead.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d (use 0 for the shared default)", o.Workers)
	}
	if o.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", o.K)
	}
	if o.NumIter < 1 {
		return fmt.Errorf("core: NumIter must be >= 1, got %d", o.NumIter)
	}
	if o.FirstPairSweep < 0 {
		return fmt.Errorf("core: negative FirstPairSweep %d (use 0 for the default sweep)", o.FirstPairSweep)
	}
	if o.MaxCompletions < 0 {
		return fmt.Errorf("core: negative MaxCompletions %d (use 0 for the default bound)", o.MaxCompletions)
	}
	if err := o.Guard.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Stats records the work performed by an inference run. Algorithm1Calls is
// the "number of intermediate queries" metric of Figure 6: how many times
// Algorithm 2 (or its top-k variant) *logically* invoked Algorithm 1 — the
// count the pre-cache implementation would have executed, kept stable so the
// Figure 6 trajectories remain comparable across versions. The actual number
// of MergePair executions after memoization is CacheMisses; CacheHits is the
// work the incremental engine avoided (Algorithm1Calls = CacheHits +
// CacheMisses).
type Stats struct {
	Algorithm1Calls int
	Rounds          int

	// CacheHits and CacheMisses split Algorithm1Calls into pair evaluations
	// served from the merge cache vs fresh MergePair executions. Both are
	// deterministic for a fixed input and options.
	CacheHits   int
	CacheMisses int

	// GainEvals counts the gain-function evaluations (Definition 3.11 —
	// the merge kernel's unit of work) performed by the run's fresh
	// MergePair executions; Restarts counts the greedy restarts they ran.
	// Both are deterministic for a fixed input and options (cache hits
	// contribute nothing: the work was counted when it was performed).
	GainEvals int64
	Restarts  int

	// CompletionsConsidered and CompletionsAccepted count the candidate
	// completions the partial-provenance engine (CompleteExamples)
	// enumerated and the non-identity completions it committed to. Both
	// are zero on full-provenance runs, keeping those runs' snapshots
	// byte-identical to the pre-partial implementation, and deterministic
	// for a fixed input and options otherwise.
	CompletionsConsidered int64
	CompletionsAccepted   int64

	// PeakParallelism is the maximum number of MergePair computations that
	// were observed in flight simultaneously. Scheduling-dependent; excluded
	// from determinism comparisons.
	PeakParallelism int

	// RoundWall is the wall-clock time of each inference round (index =
	// round-1). Timing only: excluded from determinism comparisons.
	RoundWall []time.Duration

	// Degraded records that the run exhausted its Options.Guard budget and
	// the returned query is a best-effort partial state, not the fixpoint.
	// Excluded from CountersSnapshot: a degraded run did strictly less work,
	// so its counters are not comparable to a full run's anyway.
	Degraded bool

	// GuardUsage is the final reading of the run's guard meter (zero when no
	// guard was configured). Timing-like observability; excluded from
	// determinism comparisons because step charges depend on scheduling only
	// in degraded runs.
	GuardUsage eval.Usage
}

// TotalWall sums the per-round wall times.
func (s Stats) TotalWall() time.Duration {
	var t time.Duration
	for _, d := range s.RoundWall {
		t += d
	}
	return t
}

// CountersSnapshot is the deterministic portion of the stats — everything
// except timings and observed parallelism. Comparable with ==, so it serves
// directly in equality assertions and as a metrics export unit.
type CountersSnapshot struct {
	Algorithm1Calls int
	Rounds          int
	CacheHits       int
	CacheMisses     int
	GainEvals       int64
	Restarts        int

	CompletionsConsidered int64
	CompletionsAccepted   int64
}

// Counters returns the deterministic counters as a named-field snapshot.
func (s Stats) Counters() CountersSnapshot {
	return CountersSnapshot{
		Algorithm1Calls: s.Algorithm1Calls,
		Rounds:          s.Rounds,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		GainEvals:       s.GainEvals,
		Restarts:        s.Restarts,

		CompletionsConsidered: s.CompletionsConsidered,
		CompletionsAccepted:   s.CompletionsAccepted,
	}
}

// Add accumulates another snapshot into this one (used by the service's
// aggregate metrics).
func (c *CountersSnapshot) Add(o CountersSnapshot) {
	c.Algorithm1Calls += o.Algorithm1Calls
	c.Rounds += o.Rounds
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.GainEvals += o.GainEvals
	c.Restarts += o.Restarts

	c.CompletionsConsidered += o.CompletionsConsidered
	c.CompletionsAccepted += o.CompletionsAccepted
}

// Candidate pairs an inferred union query with its cost under the options'
// cost weights; the top-k APIs return candidates sorted by cost.
type Candidate struct {
	Query *query.Union
	Cost  float64
}
