package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"questpro/internal/core"
	"questpro/internal/graph"
	"questpro/internal/paperfix"
	"questpro/internal/provenance"
	"questpro/internal/qerr"
	"questpro/internal/query"
)

func mustConsistent(t *testing.T, u *query.Union, ex provenance.ExampleSet, what string) {
	t.Helper()
	ok, err := provenance.Consistent(bg, u, ex)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if !ok {
		t.Fatalf("%s is not consistent with the example-set:\n%s", what, u.SPARQL())
	}
}

// Proposition 3.1 / Example 3.3: the trivial construction on the running
// example yields the 6-disjoint-edge query Q2.
func TestTrivialRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	role, label, ok := core.TrivialExists(exs)
	if !ok {
		t.Fatal("TrivialExists = false on the running example")
	}
	if role != "in" || label != "wb" {
		t.Fatalf("role=%q label=%q, want in/wb", role, label)
	}
	q, ok, err := core.Trivial(exs)
	if err != nil || !ok {
		t.Fatalf("Trivial: ok=%v err=%v", ok, err)
	}
	if q.NumEdges() != 6 || q.NumVars() != 12 {
		t.Fatalf("trivial query edges=%d vars=%d, want 6/12", q.NumEdges(), q.NumVars())
	}
	if !query.Isomorphic(q, stripTypes(paperfix.Q2())) {
		t.Fatalf("trivial query not isomorphic to Q2:\n%s", q.SPARQL())
	}
	mustConsistent(t, query.NewUnion(q), exs, "trivial query")
}

func TestTrivialNonexistence(t *testing.T) {
	// Label sets differ between explanations.
	g1 := graph.New()
	g1.MustAddTriple("p1", "wb", "A")
	e1, _ := provenance.NewByValue(g1, "A")
	g2 := graph.New()
	g2.MustAddTriple("B", "cites", "p2")
	e2, _ := provenance.NewByValue(g2, "B")
	if _, _, ok := core.TrivialExists(provenance.ExampleSet{e1, e2}); ok {
		t.Fatal("label mismatch accepted")
	}
	if _, ok, err := core.Trivial(provenance.ExampleSet{e1, e2}); err != nil || ok {
		t.Fatalf("Trivial: ok=%v err=%v", ok, err)
	}

	// Same labels, but the distinguished nodes disagree on the role: one
	// only has an outgoing wb edge, the other only an incoming one.
	g3 := graph.New()
	g3.MustAddTriple("A", "wb", "p1")
	e3, _ := provenance.NewByValue(g3, "A")
	g4 := graph.New()
	g4.MustAddTriple("p2", "wb", "B")
	e4, _ := provenance.NewByValue(g4, "B")
	if _, _, ok := core.TrivialExists(provenance.ExampleSet{e3, e4}); ok {
		t.Fatal("role mismatch accepted (Lemma 3.2)")
	}
	if _, _, ok := core.TrivialExists(nil); ok {
		t.Fatal("empty example-set accepted")
	}
}

// Example 3.14 / Figure 4: merging E1 with E3 yields the two-variable Q3;
// merging E2 with E4 yields the two-variable Q4.
func TestMergePairFigure4(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()

	ge := func(i int) *query.Simple {
		q, err := query.FromExplanation(exs[i].Graph, exs[i].Distinguished)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	res, ok, err := core.MergePair(ge(0), ge(2), opts)
	if err != nil || !ok {
		t.Fatalf("merge E1,E3: ok=%v err=%v", ok, err)
	}
	if !query.Isomorphic(res.Query, paperfix.Q3()) {
		t.Fatalf("merge(E1,E3) != Q3:\n%s", res.Query.SPARQL())
	}
	if !res.Relation.IsComplete() {
		t.Fatal("returned relation not complete")
	}

	res, ok, err = core.MergePair(ge(1), ge(3), opts)
	if err != nil || !ok {
		t.Fatalf("merge E2,E4: ok=%v err=%v", ok, err)
	}
	if !query.Isomorphic(res.Query, paperfix.Q4()) {
		t.Fatalf("merge(E2,E4) != Q4:\n%s", res.Query.SPARQL())
	}
}

// Merging two explanations with no shared edge label fails.
func TestMergePairIncompatible(t *testing.T) {
	mk := func(label string) *query.Simple {
		q := query.NewSimple()
		a := q.MustEnsureNode(query.Const("a"+label), "")
		b := q.MustEnsureNode(query.Const("b"+label), "")
		q.MustAddEdge(a, b, label)
		q.SetProjected(b)
		return q
	}
	_, ok, err := core.MergePair(mk("p"), mk("q"), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("incompatible patterns merged")
	}
}

// InferSimple over all four explanations must produce a consistent simple
// query, and the greedy merge order (E1+E3 first or E2+E4 first, then the
// rest) should land on the six-variable chain Q1.
func TestInferSimpleRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	q, stats, err := core.InferSimple(bg, exs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("InferSimple: %v", err)
	}
	mustConsistent(t, query.NewUnion(q), exs, "InferSimple result")
	if stats.Algorithm1Calls == 0 || stats.Rounds != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if q.NumVars() >= 12 {
		t.Fatalf("inferred simple query no better than trivial: %d vars", q.NumVars())
	}
	t.Logf("InferSimple produced (%d vars): %s", q.NumVars(), q)
}

// Two-explanation subsets reproduce Figure 4 through InferSimple as well.
func TestInferSimpleTwoExplanations(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	q, _, err := core.InferSimple(bg, provenance.ExampleSet{exs[0], exs[2]}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !query.Isomorphic(q, paperfix.Q3()) {
		t.Fatalf("InferSimple(E1,E3) != Q3:\n%s", q.SPARQL())
	}
}

func TestInferSimpleImpossible(t *testing.T) {
	g1 := graph.New()
	g1.MustAddTriple("p1", "wb", "A")
	e1, _ := provenance.NewByValue(g1, "A")
	g2 := graph.New()
	g2.MustAddTriple("B", "cites", "p2")
	e2, _ := provenance.NewByValue(g2, "B")
	_, _, err := core.InferSimple(bg, provenance.ExampleSet{e1, e2}, core.DefaultOptions())
	if !errors.Is(err, qerr.ErrNoConsistentQuery) {
		t.Fatalf("want ErrNoConsistentQuery, got %v", err)
	}
}

// Algorithm 2 on the running example (Example 4.3/4.4 structure): the cost
// must decrease monotonically from the trivial union's 4*CostW2, the result
// must be consistent, and with the Example 4.4 weights (1, 7) the final
// query should be the fully merged chain (one branch, six variables).
func TestInferUnionRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions() // CostW1=1, CostW2=7
	u, stats, err := core.InferUnion(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustConsistent(t, u, exs, "InferUnion result")
	trivialCost := 4 * opts.CostW2
	if got := u.Cost(opts.CostW1, opts.CostW2); got >= trivialCost {
		t.Fatalf("cost %v did not improve on trivial %v", got, trivialCost)
	}
	if stats.Algorithm1Calls == 0 {
		t.Fatal("no Algorithm 1 calls recorded")
	}
	if u.Size() != 1 {
		t.Fatalf("expected full merge under (1,7) weights, got %d branches", u.Size())
	}
	if u.Branch(0).NumVars() != 6 {
		t.Fatalf("expected the 6-variable chain, got %d vars:\n%s",
			u.Branch(0).NumVars(), u.SPARQL())
	}
}

// With branch-heavy weights Algorithm 2 stops early, as in Example 4.3
// (weights 2, 5): merging E1/E3 and E2/E4 pays off, but the final merge
// (2 -> 1 branches, +4 variables) costs more than it saves.
func TestInferUnionStopsWhenCostRises(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()
	opts.CostW1, opts.CostW2 = 4, 1 // variables are expensive: keep branches
	u, _, err := core.InferUnion(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustConsistent(t, u, exs, "InferUnion result")
	if u.Size() != 4 {
		t.Fatalf("with var-heavy weights expected no merges, got %d branches", u.Size())
	}
}

func TestInferTopKRunningExample(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()
	opts.K = 3
	cands, stats, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) > 3 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i, c := range cands {
		mustConsistent(t, c.Query, exs, "top-k candidate")
		if i > 0 && cands[i-1].Cost > c.Cost {
			t.Fatal("candidates not sorted by cost")
		}
	}
	// The best candidate matches the single-track Algorithm 2 result or
	// improves on it.
	u, _, err := core.InferUnion(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Cost > u.Cost(opts.CostW1, opts.CostW2) {
		t.Fatalf("top-k best (%v) worse than single-track (%v)",
			cands[0].Cost, u.Cost(opts.CostW1, opts.CostW2))
	}
	// Candidates are pairwise non-isomorphic.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if query.UnionIsomorphic(cands[i].Query, cands[j].Query) {
				t.Fatal("duplicate candidates in top-k")
			}
		}
	}
	if stats.Algorithm1Calls <= 3 {
		t.Fatalf("suspiciously few Algorithm 1 calls: %d", stats.Algorithm1Calls)
	}
}

func TestInferTopKMoreCandidatesWithLargerK(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()
	opts.K = 1
	_, s1, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.K = 5
	c5, s5, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s5.Algorithm1Calls < s1.Algorithm1Calls {
		t.Fatalf("larger k did less work: %d vs %d", s5.Algorithm1Calls, s1.Algorithm1Calls)
	}
	if len(c5) < 2 {
		t.Fatalf("k=5 produced only %d candidates", len(c5))
	}
}

// Example 5.1 analog: after inferring diseqs for Q3, ?aA != Bob must be
// present (its witnesses are Alice and Felix), while Q1's a1 != a2 must not
// (E2 assigns Dave to both).
func TestWithDiseqs(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)

	q3all, err := core.WithDiseqs(bg, paperfix.Q3(), exs)
	if err != nil {
		t.Fatal(err)
	}
	aA, _ := q3all.NodeByTerm(query.Var("aA"))
	bob, _ := q3all.NodeByTerm(query.Const("Bob"))
	foundBob := false
	for _, d := range q3all.Diseqs() {
		if d.X == aA.ID && d.YIsNode && d.Y == bob.ID {
			foundBob = true
		}
	}
	if !foundBob {
		t.Fatalf("aA != Bob missing from %v", q3all.Diseqs())
	}
	// The augmented query stays consistent with the explanations it covers.
	for _, i := range []int{0, 2} {
		ok, err := provenance.ConsistentSimple(bg, q3all, exs[i])
		if err != nil || !ok {
			t.Fatalf("Q3^all inconsistent with E%d: %v", i+1, err)
		}
	}

	q1all, err := core.WithDiseqs(bg, paperfix.Q1(), exs)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := q1all.NodeByTerm(query.Var("a1"))
	a2, _ := q1all.NodeByTerm(query.Var("a2"))
	for _, d := range q1all.Diseqs() {
		if d.YIsNode && ((d.X == a1.ID && d.Y == a2.ID) || (d.X == a2.ID && d.Y == a1.ID)) {
			t.Fatal("a1 != a2 added despite E2's collapsed witness")
		}
	}
	mustConsistent(t, query.NewUnion(q1all), exs, "Q1^all")
}

func TestWithDiseqsGroundQuery(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	ground, err := query.FromExplanation(exs[0].Graph, exs[0].Distinguished)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.WithDiseqs(bg, ground, exs)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDiseqs() != 0 {
		t.Fatal("ground query received diseqs")
	}
}

func TestWithDiseqsUnion(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	u := query.NewUnion(paperfix.Q3(), paperfix.Q4())
	all, err := core.WithDiseqsUnion(bg, u, exs)
	if err != nil {
		t.Fatal(err)
	}
	if all.TotalDiseqs() == 0 {
		t.Fatal("no diseqs inferred for Union(Q3, Q4)")
	}
	mustConsistent(t, all, exs, "Union(Q3,Q4)^all")
	// Original untouched.
	if u.TotalDiseqs() != 0 {
		t.Fatal("WithDiseqsUnion mutated its input")
	}
}

func TestConsistentCandidates(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	good := query.NewUnion(paperfix.Q1())
	bad := query.NewUnion(paperfix.Q3()) // misses E2/E4
	out, err := core.ConsistentCandidates(bg, []core.Candidate{
		{Query: good}, {Query: bad},
	}, exs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Query != good {
		t.Fatalf("filtered to %d candidates", len(out))
	}
}

// Determinism: repeated runs produce identical candidates.
func TestInferenceDeterministic(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	opts := core.DefaultOptions()
	a, sa, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := core.InferTopK(bg, exs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// RoundWall and PeakParallelism are timing/scheduling observations; the
	// counter portion of the stats must be bit-identical across runs.
	if sa.Counters() != sb.Counters() || len(a) != len(b) {
		t.Fatalf("stats or lengths differ: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || a[i].Query.Fingerprint() != b[i].Query.Fingerprint() {
			t.Fatalf("candidate %d differs between runs", i)
		}
	}
}

// Property (the paper's Prop 3.8/3.13 guarantee): for random example-sets
// sampled as connected subgraphs of a random ontology, InferUnion always
// returns a query consistent with the example-set, and InferSimple's result
// (when it succeeds) is consistent too.
func TestInferenceConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := graph.RandomOntology(rng, graph.RandomConfig{
			Nodes: 16, Edges: 36, Labels: []string{"p", "q"}, Types: []string{"A", "B"},
		})
		var exs provenance.ExampleSet
		for len(exs) < 2+rng.Intn(2) {
			sub, start := graph.RandomConnectedSubgraph(rng, o, 1+rng.Intn(4))
			if sub == nil {
				return true
			}
			ex, err := provenance.New(sub, start)
			if err != nil {
				return false
			}
			exs = append(exs, ex)
		}
		opts := core.DefaultOptions()
		u, _, err := core.InferUnion(bg, exs, opts)
		if err != nil {
			t.Logf("seed %d: InferUnion: %v", seed, err)
			return false
		}
		ok, err := provenance.Consistent(bg, u, exs)
		if err != nil || !ok {
			t.Logf("seed %d: union inconsistent (err=%v)", seed, err)
			return false
		}
		q, _, serr := core.InferSimple(bg, exs, opts)
		if serr != nil && !errors.Is(serr, qerr.ErrNoConsistentQuery) {
			return false
		}
		if serr == nil {
			ok, err := provenance.Consistent(bg, query.NewUnion(q), exs)
			if err != nil || !ok {
				t.Logf("seed %d: simple inconsistent (err=%v)", seed, err)
				return false
			}
		}
		// Diseq augmentation preserves consistency as well.
		all, err := core.WithDiseqsUnion(bg, u, exs)
		if err != nil {
			return false
		}
		ok, err = provenance.Consistent(bg, all, exs)
		if err != nil || !ok {
			t.Logf("seed %d: diseq-augmented union inconsistent (err=%v)", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// stripTypes drops node types for comparisons with untyped constructions.
func stripTypes(q *query.Simple) *query.Simple {
	out := query.NewSimple()
	ids := map[query.NodeID]query.NodeID{}
	for _, n := range q.Nodes() {
		id, err := out.EnsureNode(n.Term, "")
		if err != nil {
			panic(err)
		}
		ids[n.ID] = id
	}
	for _, e := range q.Edges() {
		out.MustAddEdge(ids[e.From], ids[e.To], e.Label)
	}
	if q.Projected() != query.NoNode {
		if err := out.SetProjected(ids[q.Projected()]); err != nil {
			panic(err)
		}
	}
	return out
}

// Ablation sanity: the first-pair sweep is what lets the full merge of the
// running example reach the 6-variable chain; the paper's single-choice
// rule lands on a weaker (7-variable) merge here.
func TestFirstPairSweepAblation(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)
	def := core.DefaultOptions()
	u1, _, err := core.InferUnion(bg, exs, def)
	if err != nil {
		t.Fatal(err)
	}
	paperOpts := def
	paperOpts.FirstPairSweep = 1
	u2, _, err := core.InferUnion(bg, exs, paperOpts)
	if err != nil {
		t.Fatal(err)
	}
	mustConsistent(t, u2, exs, "paper-variant result")
	if u1.TotalVars() > u2.TotalVars() {
		t.Fatalf("sweep made things worse: %d vs %d vars", u1.TotalVars(), u2.TotalVars())
	}
	if u1.TotalVars() == u2.TotalVars() {
		t.Logf("variants tied at %d vars (sweep matters on intermediate merges)", u1.TotalVars())
	}
}

// A single explanation infers its own ground query.
func TestInferSimpleSingleExplanation(t *testing.T) {
	o := paperfix.Ontology()
	exs := paperfix.Explanations(o)[:1]
	q, stats, err := core.InferSimple(bg, exs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm1Calls != 0 || !q.IsGround() {
		t.Fatalf("single-explanation inference: stats=%+v ground=%v", stats, q.IsGround())
	}
	mustConsistent(t, query.NewUnion(q), exs, "single-explanation result")
	u, _, err := core.InferUnion(bg, exs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 1 || !u.Branch(0).IsGround() {
		t.Fatalf("union of one explanation: %s", u)
	}
}

// Inference rejects empty example-sets up front.
func TestInferRejectsEmptyExampleSet(t *testing.T) {
	if _, _, err := core.InferSimple(bg, nil, core.DefaultOptions()); err == nil {
		t.Fatal("InferSimple accepted empty example-set")
	}
	if _, _, err := core.InferUnion(bg, nil, core.DefaultOptions()); err == nil {
		t.Fatal("InferUnion accepted empty example-set")
	}
	if _, _, err := core.InferTopK(bg, nil, core.DefaultOptions()); err == nil {
		t.Fatal("InferTopK accepted empty example-set")
	}
}
